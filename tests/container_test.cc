// Property tests for the hot-path containers: FlatMap/FlatSet vs the
// std::unordered_map/set reference model under random operation streams
// (insert/erase/rehash/bulk-erase), pool recycle-reuse never aliasing a live
// object, and SmallVector copy/move/grow/initializer-list behavior. The
// whole file runs under the ASan tier too (tools/verify.sh asan), which is
// what makes "never aliases" and the move-out contracts trustworthy.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/flat_map.h"
#include "common/pool.h"
#include "common/random.h"
#include "common/small_vector.h"
#include "common/value.h"

namespace graphdance {
namespace {

// ---------------------------------------------------------------------------
// FlatMap vs unordered_map: random op stream equivalence.

TEST(FlatMapTest, RandomOpsMatchUnorderedMap) {
  for (uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    Rng rng(seed);
    FlatMap<uint64_t, uint64_t> flat;
    std::unordered_map<uint64_t, uint64_t> ref;
    // Small key space forces collisions, repeats, and erase-of-present.
    const uint64_t key_space = 1 + rng.Below(200);
    for (int op = 0; op < 20000; ++op) {
      uint64_t k = rng.Below(key_space);
      switch (rng.Below(4)) {
        case 0:
        case 1: {  // insert-or-keep
          uint64_t v = rng.Next();
          auto [slot, inserted] = flat.TryEmplace(k, v);
          auto [it, ref_inserted] = ref.try_emplace(k, v);
          ASSERT_EQ(inserted, ref_inserted);
          ASSERT_EQ(*slot, it->second);
          break;
        }
        case 2: {  // overwrite via operator[]
          uint64_t v = rng.Next();
          flat[k] = v;
          ref[k] = v;
          break;
        }
        case 3: {  // erase
          ASSERT_EQ(flat.Erase(k), ref.erase(k) > 0);
          break;
        }
      }
      ASSERT_EQ(flat.size(), ref.size());
    }
    // Full-content equivalence, both directions.
    ASSERT_EQ(flat.size(), ref.size());
    size_t visited = 0;
    flat.ForEach([&](const uint64_t& k, const uint64_t& v) {
      auto it = ref.find(k);
      ASSERT_NE(it, ref.end());
      ASSERT_EQ(it->second, v);
      ++visited;
    });
    ASSERT_EQ(visited, ref.size());
    for (const auto& [k, v] : ref) {
      const uint64_t* found = flat.Find(k);
      ASSERT_NE(found, nullptr);
      ASSERT_EQ(*found, v);
    }
  }
}

TEST(FlatMapTest, EraseIfMatchesReference) {
  Rng rng(99);
  FlatMap<uint64_t, uint64_t> flat;
  std::unordered_map<uint64_t, uint64_t> ref;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 300; ++i) {
      uint64_t k = rng.Below(500);
      uint64_t v = rng.Next();
      flat[k] = v;
      ref[k] = v;
    }
    uint64_t modulus = 2 + rng.Below(5);
    uint64_t target = rng.Below(modulus);
    size_t flat_erased =
        flat.EraseIf([&](const uint64_t& k, uint64_t&) { return k % modulus == target; });
    size_t ref_erased = std::erase_if(
        ref, [&](const auto& kv) { return kv.first % modulus == target; });
    ASSERT_EQ(flat_erased, ref_erased);
    ASSERT_EQ(flat.size(), ref.size());
    // Post-erase probe invariant: every survivor is still findable.
    for (const auto& [k, v] : ref) {
      const uint64_t* found = flat.Find(k);
      ASSERT_NE(found, nullptr);
      ASSERT_EQ(*found, v);
    }
  }
}

TEST(FlatMapTest, ClearKeepsCapacityAndEmpties) {
  FlatMap<uint64_t, uint64_t> flat;
  for (uint64_t i = 0; i < 1000; ++i) flat.TryEmplace(i, i * 3);
  flat.Clear();
  ASSERT_EQ(flat.size(), 0u);
  ASSERT_TRUE(flat.empty());
  for (uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(flat.Find(i), nullptr);
  // Reusable after Clear.
  flat.TryEmplace(7, 11);
  ASSERT_EQ(*flat.Find(7), 11u);
}

TEST(FlatMapTest, MoveOnlyValues) {
  FlatMap<uint64_t, std::unique_ptr<int>> flat;
  for (uint64_t i = 0; i < 300; ++i) {
    flat.TryEmplace(i, std::make_unique<int>(static_cast<int>(i)));
  }
  for (uint64_t i = 0; i < 300; i += 2) ASSERT_TRUE(flat.Erase(i));
  for (uint64_t i = 0; i < 300; ++i) {
    auto* p = flat.Find(i);
    if (i % 2 == 0) {
      ASSERT_EQ(p, nullptr);
    } else {
      ASSERT_NE(p, nullptr);
      ASSERT_EQ(**p, static_cast<int>(i));
    }
  }
  flat.EraseIf([](const uint64_t&, std::unique_ptr<int>&) { return true; });
  ASSERT_TRUE(flat.empty());
}

TEST(FlatMapTest, ValueKeysWithValueHash) {
  // DedupMemo's key type: the Value variant hashed through ValueHash.
  FlatSet<Value, ValueHash> flat;
  std::unordered_set<Value, ValueHash> ref;
  Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    Value v;
    switch (rng.Below(3)) {
      case 0: v = Value(static_cast<int64_t>(rng.Below(300))); break;
      case 1: v = Value(std::string("k") + std::to_string(rng.Below(300))); break;
      case 2: v = Value(rng.Below(2) == 0); break;
    }
    ASSERT_EQ(flat.Insert(v), ref.insert(v).second);
  }
  ASSERT_EQ(flat.size(), ref.size());
  for (const Value& v : ref) ASSERT_TRUE(flat.Contains(v));
}

TEST(FlatSetTest, RandomOpsMatchUnorderedSet) {
  Rng rng(2026);
  FlatSet<uint64_t> flat;
  std::unordered_set<uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    uint64_t k = rng.Below(300);
    if (rng.Below(3) == 0) {
      ASSERT_EQ(flat.Erase(k), ref.erase(k) > 0);
    } else {
      ASSERT_EQ(flat.Insert(k), ref.insert(k).second);
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  size_t visited = 0;
  flat.ForEach([&](const uint64_t& k) {
    ASSERT_TRUE(ref.count(k));
    ++visited;
  });
  ASSERT_EQ(visited, ref.size());
}

// ---------------------------------------------------------------------------
// Pools: a recycled object must never alias a live one.

TEST(PoolTest, RecycledBuffersNeverAliasLive) {
  BufferPool pool(64);
  Rng rng(5);
  std::vector<std::vector<uint8_t>> live;
  std::set<const uint8_t*> live_data;
  for (int op = 0; op < 5000; ++op) {
    if (live.empty() || rng.Below(2) == 0) {
      std::vector<uint8_t> buf = pool.Acquire();
      ASSERT_TRUE(buf.empty());  // pool hands out cleared buffers
      buf.resize(1 + rng.Below(256), static_cast<uint8_t>(op));
      // The new buffer's storage must not alias any live buffer's storage.
      ASSERT_EQ(live_data.count(buf.data()), 0u)
          << "pool returned storage still owned by a live buffer";
      live_data.insert(buf.data());
      live.push_back(std::move(buf));
    } else {
      size_t i = rng.Below(live.size());
      live_data.erase(live[i].data());
      pool.Release(std::move(live[i]));
      live.erase(live.begin() + i);
    }
  }
}

TEST(PoolTest, ReleaseBoundsRetention) {
  BufferPool pool(/*max_pooled=*/2, /*max_retained=*/64);
  std::vector<uint8_t> small(16), small2(16), small3(16), big(1024);
  pool.Release(std::move(small));
  pool.Release(std::move(small2));
  ASSERT_EQ(pool.pooled(), 2u);
  pool.Release(std::move(small3));  // over max_pooled: freed
  ASSERT_EQ(pool.pooled(), 2u);
  BufferPool pool2(8, 64);
  pool2.Release(std::move(big));  // over max_retained: freed
  ASSERT_EQ(pool2.pooled(), 0u);
}

TEST(PoolTest, ObjectPoolRecyclesCapacity) {
  struct Trav {
    std::vector<uint64_t> path;
  };
  ObjectPool<Trav> pool;
  Trav t = pool.Acquire();
  t.path.assign(100, 7);
  const uint64_t* storage = t.path.data();
  pool.Release(std::move(t));
  Trav t2 = pool.Acquire();
  // Same storage came back (recycled, not reallocated)...
  ASSERT_EQ(t2.path.data(), storage);
  // ...and a second Acquire cannot hand the same storage out again.
  Trav t3 = pool.Acquire();
  ASSERT_NE(t3.path.data(), storage);
}

// ---------------------------------------------------------------------------
// SmallVector: copy/move/grow/initializer-list properties.

TEST(SmallVectorTest, InitializerListSizesOnce) {
  SmallVector<int, 4> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  ASSERT_EQ(v.size(), 9u);
  ASSERT_EQ(v.capacity(), 9u);  // pre-sized: one allocation, not doublings
  for (int i = 0; i < 9; ++i) ASSERT_EQ(v[i], i + 1);
  SmallVector<int, 4> inline_v{1, 2, 3};
  ASSERT_EQ(inline_v.size(), 3u);
  ASSERT_EQ(inline_v.capacity(), 4u);  // fits inline: no heap
}

TEST(SmallVectorTest, RandomOpsMatchVector) {
  Rng rng(11);
  for (int round = 0; round < 200; ++round) {
    SmallVector<std::string, 2> sv;
    std::vector<std::string> ref;
    for (int op = 0; op < 64; ++op) {
      switch (rng.Below(4)) {
        case 0:
        case 1: {
          std::string s(1 + rng.Below(20), 'a' + static_cast<char>(rng.Below(26)));
          sv.push_back(s);
          ref.push_back(s);
          break;
        }
        case 2:
          if (!ref.empty()) {
            sv.pop_back();
            ref.pop_back();
          }
          break;
        case 3: {
          size_t n = rng.Below(8);
          sv.resize(n);
          ref.resize(n);
          break;
        }
      }
      ASSERT_EQ(sv.size(), ref.size());
    }
    ASSERT_TRUE(std::equal(sv.begin(), sv.end(), ref.begin(), ref.end()));

    // Copy preserves content and is independent of the source.
    SmallVector<std::string, 2> copy(sv);
    ASSERT_TRUE(copy == sv);
    copy.push_back("sentinel");
    ASSERT_EQ(copy.size(), sv.size() + 1);

    // Move leaves content in the destination; source is reusable.
    SmallVector<std::string, 2> moved(std::move(copy));
    ASSERT_EQ(moved.size(), sv.size() + 1);
    ASSERT_EQ(moved.back(), "sentinel");

    // Move-assignment over existing content.
    SmallVector<std::string, 2> target{std::string("x"), std::string("y"),
                                       std::string("z")};
    target = std::move(moved);
    ASSERT_EQ(target.size(), sv.size() + 1);
    ASSERT_EQ(target.back(), "sentinel");

    // Copy-assignment.
    SmallVector<std::string, 2> copy2;
    copy2 = sv;
    ASSERT_TRUE(copy2 == sv);
  }
}

TEST(SmallVectorTest, SelfMoveAssignIsNoOp) {
  SmallVector<std::string, 2> v{std::string("a"), std::string("b"),
                                std::string("c")};
  SmallVector<std::string, 2>& alias = v;
  v = std::move(alias);
  ASSERT_EQ(v.size(), 3u);
  ASSERT_EQ(v[0], "a");
  ASSERT_EQ(v[2], "c");
}

TEST(SmallVectorTest, ReserveGrowsOnceAndKeepsContent) {
  SmallVector<int, 2> v;
  v.push_back(1);
  v.push_back(2);
  v.reserve(100);
  ASSERT_EQ(v.capacity(), 100u);
  int* data = v.data();
  for (int i = 3; i <= 100; ++i) v.push_back(i);
  ASSERT_EQ(v.data(), data);  // no reallocation within reserved capacity
  for (int i = 0; i < 100; ++i) ASSERT_EQ(v[i], i + 1);
}

TEST(SmallVectorTest, MoveFromSpilledTransfersHeap) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  const int* heap = v.data();
  SmallVector<int, 2> stolen(std::move(v));
  ASSERT_EQ(stolen.data(), heap);  // heap block transferred, not copied
  ASSERT_EQ(stolen.size(), 50u);
  ASSERT_TRUE(v.empty());
  v.push_back(7);  // source reusable after move
  ASSERT_EQ(v[0], 7);
}

}  // namespace
}  // namespace graphdance
