// Tests for the real-thread runtime (DESIGN.md §14): the MPSC inbox's
// FIFO-per-producer contract under genuine multi-producer contention (the
// rows-before-weights termination invariant rides on it), the ThreadCluster
// differential gate — row multisets byte-identical to the single-worker
// simulated reference across thread counts and weight-split seeds — and the
// sim-engine matrix on the same workload, which transitively pins
// ThreadCluster == SimCluster for every engine. The whole suite carries the
// `rt` ctest label and is the set run under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "check/oracle.h"
#include "check/thread_oracle.h"
#include "common/mpsc_queue.h"
#include "graph/generators.h"
#include "query/gremlin.h"
#include "rt/thread_cluster.h"

namespace graphdance {
namespace {

using check::CanonicalRows;
using check::ComputeReference;
using check::DifferentialOptions;
using check::MakeDefaultCheckWorkload;
using check::RunDifferential;
using check::RunThreadDifferential;
using check::ThreadDifferentialOptions;
using check::WorkloadInstance;

// --- MpscQueue under real contention ----------------------------------------

// Items carry (producer, sequence) so the consumer can verify exactly-once
// delivery and FIFO order per producer while producers race.
TEST(MpscQueueTest, MultiProducerStressFifoPerProducer) {
  constexpr uint32_t kProducers = 4;
  constexpr uint64_t kPerProducer = 20'000;
  MpscQueue<uint64_t> q;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      // Mix singleton pushes and batches so both entry points race.
      std::vector<uint64_t> batch;
      for (uint64_t s = 0; s < kPerProducer; ++s) {
        uint64_t item = (uint64_t(p) << 32) | s;
        if (s % 7 == 0) {
          // Flush buffered items first so this producer pushes in order.
          q.PushBatch(batch.begin(), batch.end());
          batch.clear();
          q.Push(item);
        } else {
          batch.push_back(item);
          if (batch.size() == 16) {
            q.PushBatch(batch.begin(), batch.end());
            batch.clear();
          }
        }
      }
      q.PushBatch(batch.begin(), batch.end());
    });
  }

  std::vector<uint64_t> next_seq(kProducers, 0);
  uint64_t received = 0;
  std::vector<uint64_t> drained;
  while (received < kProducers * kPerProducer) {
    drained.clear();
    q.WaitDrainInto(&drained, std::chrono::microseconds(1000));
    for (uint64_t item : drained) {
      uint32_t p = static_cast<uint32_t>(item >> 32);
      uint64_t s = item & 0xffffffffu;
      ASSERT_LT(p, kProducers);
      // FIFO per producer: sequences arrive strictly in push order.
      ASSERT_EQ(s, next_seq[p]) << "producer " << p;
      ++next_seq[p];
      ++received;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.Empty());
  for (uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer);
  }
}

// PushBatch publishes the whole batch contiguously: no interleaving point
// exists inside one batch even with a concurrent producer hammering away.
TEST(MpscQueueTest, PushBatchIsContiguous) {
  MpscQueue<uint64_t> q;
  std::atomic<bool> stop{false};
  // Noise producer: odd-tagged singletons.
  std::thread noise([&] {
    uint64_t s = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      q.Push((1ULL << 32) | s++);
    }
  });

  constexpr uint64_t kBatches = 2'000;
  constexpr uint64_t kBatchLen = 8;
  std::thread batcher([&] {
    std::vector<uint64_t> batch(kBatchLen);
    for (uint64_t b = 0; b < kBatches; ++b) {
      for (uint64_t i = 0; i < kBatchLen; ++i) batch[i] = b * kBatchLen + i;
      q.PushBatch(batch.begin(), batch.end());
    }
  });

  uint64_t batch_items = 0;
  uint64_t expect = 0;
  std::vector<uint64_t> drained;
  while (batch_items < kBatches * kBatchLen) {
    drained.clear();
    q.WaitDrainInto(&drained, std::chrono::microseconds(1000));
    for (uint64_t item : drained) {
      if (item >> 32) continue;  // noise
      ASSERT_EQ(item, expect);   // batch items in order, none lost
      ++expect;
      ++batch_items;
    }
  }
  batcher.join();
  stop.store(true, std::memory_order_relaxed);
  noise.join();
}

// Close() wakes blocked consumers, makes subsequent waits non-blocking, and
// still accepts pushes — the exit-drain protocol of ThreadCluster depends on
// all three.
TEST(MpscQueueTest, CloseWakesAndStillAcceptsPushes) {
  MpscQueue<int> q;
  std::vector<int> out;
  std::thread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Close();
  });
  // Generous timeout: Close() must be what wakes us.
  auto t0 = std::chrono::steady_clock::now();
  size_t n = q.WaitDrainInto(&out, std::chrono::microseconds(5'000'000));
  auto waited = std::chrono::steady_clock::now() - t0;
  closer.join();
  EXPECT_EQ(n, 0u);
  EXPECT_LT(waited, std::chrono::seconds(2));
  EXPECT_TRUE(q.closed());

  q.Push(7);  // late message (e.g. a memo-clear control) is not dropped
  out.clear();
  EXPECT_EQ(q.WaitDrainInto(&out, std::chrono::microseconds(0)), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7);
}

// --- ThreadCluster differential gate ----------------------------------------

// The acceptance matrix: {1,2,4,8} threads x 8 weight-split seeds, every plan
// of the default check workload, rows canonically identical to the
// single-worker simulated reference.
TEST(ThreadClusterTest, DifferentialMatrixMatchesReference) {
  ThreadDifferentialOptions opt;  // defaults: {1,2,4,8} x 8 seeds
  auto report = RunThreadDifferential(MakeDefaultCheckWorkload(), opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().cells, opt.thread_counts.size() * opt.num_seeds);
  EXPECT_EQ(report.value().mismatches, 0u) << report.value().Summary();
  for (const auto& f : report.value().failures) ADD_FAILURE() << f;
}

// Thread counts that do not divide the partition count exercise the uneven
// ownership map (one thread owns two partitions, finalize fan-out per
// partition, not per thread).
TEST(ThreadClusterTest, UnevenOwnershipMatchesReference) {
  ThreadDifferentialOptions opt;
  opt.num_partitions = 5;
  opt.thread_counts = {2, 3, 7};
  opt.num_seeds = 3;
  auto report = RunThreadDifferential(MakeDefaultCheckWorkload(), opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().mismatches, 0u) << report.value().Summary();
}

// Bulking off + tiny flush threshold: maximum cross-thread message traffic,
// no merge path. Rows must not care.
TEST(ThreadClusterTest, NoBulkingTinyFlushMatchesReference) {
  ThreadDifferentialOptions opt;
  opt.thread_counts = {4};
  opt.num_seeds = 4;
  opt.traverser_bulking = false;
  opt.flush_threshold_bytes = 1;
  auto report = RunThreadDifferential(MakeDefaultCheckWorkload(), opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().mismatches, 0u) << report.value().Summary();
}

// The sim side of the same matrix: every engine x 8 tie-break seeds against
// the identical reference. Green here plus green above means ThreadCluster
// rows == SimCluster rows for {async, bsp, hybrid} x seeds x thread counts.
TEST(ThreadClusterTest, SimEngineMatrixSharesReference) {
  DifferentialOptions opt;  // defaults: async/bsp/hybrid x 8 seeds
  auto report = RunDifferential(MakeDefaultCheckWorkload(), opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().mismatches, 0u) << report.value().Summary();
  EXPECT_EQ(report.value().trips, 0u);
}

// --- ThreadCluster API and metrics ------------------------------------------

TEST(ThreadClusterTest, RunConvenienceAndMetrics) {
  WorkloadInstance wl = MakeDefaultCheckWorkload()(4);
  ASSERT_TRUE(wl.graph != nullptr);
  ASSERT_FALSE(wl.plans.empty());

  rt::ThreadClusterConfig cfg;
  cfg.num_threads = 4;
  rt::ThreadCluster cluster(cfg, wl.graph);
  std::vector<uint64_t> ids;
  for (const auto& plan : wl.plans) ids.push_back(cluster.Submit(plan));
  ASSERT_TRUE(cluster.RunToCompletion().ok());

  for (uint64_t id : ids) {
    const QueryResult& r = cluster.result(id);
    EXPECT_TRUE(r.done);
    EXPECT_FALSE(r.failed);
    EXPECT_GT(r.complete_time, r.submit_time);
  }
  EXPECT_GT(cluster.TotalTasksExecuted(), 0u);

  obs::MetricsSnapshot snap = cluster.MetricsSnapshot();
  EXPECT_EQ(snap.queries_completed, ids.size());
  EXPECT_EQ(snap.queries_failed, 0u);
  EXPECT_GT(snap.tasks_executed, 0u);

  // Single-shot contract: a second run must not be attempted, but a second
  // single-plan cluster via Run() works.
  rt::ThreadClusterConfig cfg1;
  cfg1.num_threads = 2;
  rt::ThreadCluster single(cfg1, wl.graph);
  auto one = single.Run(wl.plans[0]);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  EXPECT_TRUE(one.value().done);
  EXPECT_EQ(CanonicalRows(one.value().rows),
            CanonicalRows(cluster.result(ids[0]).rows));
}

// Oversubscription: more threads than partitions leaves some threads with no
// partitions at all; they must still start, idle, observe stop, and join.
TEST(ThreadClusterTest, MoreThreadsThanPartitions) {
  WorkloadInstance wl = MakeDefaultCheckWorkload()(2);
  ASSERT_TRUE(wl.graph != nullptr);
  rt::ThreadClusterConfig cfg;
  cfg.num_threads = 6;
  rt::ThreadCluster cluster(cfg, wl.graph);
  auto r = cluster.Run(wl.plans[0]);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  auto ref = ComputeReference(MakeDefaultCheckWorkload());
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(CanonicalRows(r.value().rows), CanonicalRows(ref.value()[0]));
}

}  // namespace
}  // namespace graphdance
