// Chaos harness for the fault-injection subsystem: randomized and scripted
// fault schedules (message drops / duplicates / delays, worker crashes, link
// degradation) run real query workloads on every asynchronous engine, and
// every query must either match its fault-free reference exactly or be
// explicitly marked failed / timed out. A silent wrong answer or a hang is a
// bug; recovery is epoch-fenced retry driven by the progress watchdog.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "graph/generators.h"
#include "ldbc/driver.h"
#include "ldbc/snb_generator.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"
#include "txn/txn_manager.h"

namespace graphdance {
namespace {

struct TestGraph {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  LabelId link;
  PropKeyId weight;
};

TestGraph MakeGraph(uint32_t partitions, uint64_t nv = 1024, uint64_t ne = 8192,
                    uint64_t seed = 11) {
  TestGraph tg;
  tg.schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = nv;
  opt.num_edges = ne;
  opt.seed = seed;
  opt.weight_range = 10'000;
  auto result = GeneratePowerLawGraph(opt, tg.schema, partitions);
  EXPECT_TRUE(result.ok());
  tg.graph = result.TakeValue();
  tg.link = tg.schema->EdgeLabel("link");
  tg.weight = tg.schema->PropKey("weight");
  return tg;
}

ClusterConfig ChaosConfig(EngineKind engine) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  cfg.engine = engine;
  // Queries here finish in well under a virtual millisecond, so a 20 ms
  // silence window cannot fire spuriously yet keeps retry chains short.
  cfg.progress_timeout_ns = 20'000'000;
  return cfg;
}

std::shared_ptr<const Plan> TopKPlan(const TestGraph& tg, VertexId start, int k,
                                     size_t limit = 10) {
  auto plan = Traversal(tg.graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
                  .Project({Operand::VertexIdOp(), Operand::Property(tg.weight)})
                  .OrderByLimit({{1, false}, {0, true}}, limit)
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.TakeValue();
}

std::shared_ptr<const Plan> CountPlan(const TestGraph& tg, VertexId start, int k) {
  auto plan = Traversal(tg.graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
                  .Count()
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.TakeValue();
}

std::vector<Row> SortedRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    for (size_t i = 0; i < a.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return rows;
}

/// Fault-free reference rows for `plans` under `cfg`'s engine.
std::vector<std::vector<Row>> CleanReference(
    const TestGraph& tg, ClusterConfig cfg,
    const std::vector<std::shared_ptr<const Plan>>& plans) {
  cfg.fault = FaultPlan{};
  cfg.fault_drop_remote_message = 0;
  SimCluster cluster(cfg, tg.graph);
  std::vector<uint64_t> ids;
  for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
  EXPECT_TRUE(cluster.RunToCompletion().ok());
  std::vector<std::vector<Row>> out;
  for (uint64_t id : ids) out.push_back(SortedRows(cluster.result(id).rows));
  return out;
}

// ---- WeightKey packing regression --------------------------------------------

TEST(WeightKeyTest, QueryAndScopeDoNotCollide) {
  // The original packing was (query << 16) | scope with an unmasked 32-bit
  // scope: scope ids at or above 2^16 bled into the query bits, so
  // (query=1, scope=0x20005) and (query=3, scope=5) coalesced into the same
  // per-worker weight cell. The 32/32 split keeps them distinct.
  EXPECT_EQ((1ULL << 16) | 0x20005ULL, (3ULL << 16) | 5ULL);  // the old bug
  EXPECT_NE(WeightKey(1, 0x20005u), WeightKey(3, 5u));
  EXPECT_EQ(WeightKeyQuery(WeightKey(123, 456u)), 123u);
  EXPECT_EQ(WeightKeyScope(WeightKey(123, 456u)), 456u);
  // Full 32-bit scope range survives the round trip.
  EXPECT_EQ(WeightKeyScope(WeightKey(7, 0xfffffffeu)), 0xfffffffeu);
}

// ---- deterministic single-fault scenarios -------------------------------------

TEST(ChaosTest, DuplicatedMessageIsSuppressedNotDoubleCounted) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = ChaosConfig(EngineKind::kAsync);
  auto plan = TopKPlan(tg, 1, 3);
  std::vector<Row> ref = CleanReference(tg, cfg, {plan})[0];

  cfg.fault.DuplicateNth(5);
  SimCluster cluster(cfg, tg.graph);
  uint64_t q = cluster.Submit(plan, 0);
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  const QueryResult& r = cluster.result(q);
  EXPECT_TRUE(r.done);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.retries, 0u);  // a duplicate loses nothing: no retry needed
  EXPECT_EQ(SortedRows(r.rows), ref);
  EXPECT_EQ(cluster.fault_stats().duplicates, 1u);
  EXPECT_EQ(cluster.fault_stats().duplicates_suppressed, 1u);
}

TEST(ChaosTest, DelayedMessageOnlySlowsTheQuery) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = ChaosConfig(EngineKind::kAsync);
  auto plan = TopKPlan(tg, 1, 3);
  std::vector<Row> ref = CleanReference(tg, cfg, {plan})[0];

  cfg.fault.DelayNth(7, /*extra_ns=*/150'000);
  SimCluster cluster(cfg, tg.graph);
  uint64_t q = cluster.Submit(plan, 0);
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  const QueryResult& r = cluster.result(q);
  EXPECT_TRUE(r.done);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.retries, 0u);  // well inside the progress window
  EXPECT_EQ(SortedRows(r.rows), ref);
  EXPECT_EQ(cluster.fault_stats().delays, 1u);
}

TEST(ChaosTest, DroppedMessageIsRecoveredByRetry) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = ChaosConfig(EngineKind::kAsync);
  auto plan = TopKPlan(tg, 1, 3);
  std::vector<Row> ref = CleanReference(tg, cfg, {plan})[0];

  cfg.fault.DropNth(10);
  SimCluster cluster(cfg, tg.graph);
  uint64_t q = cluster.Submit(plan, 0);
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  const QueryResult& r = cluster.result(q);
  EXPECT_TRUE(r.done);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(SortedRows(r.rows), ref);
  EXPECT_EQ(cluster.fault_stats().drops, 1u);
  // The drop stalled attempt 0; the watchdog retried; the retry ran clean.
  EXPECT_GE(r.retries, 1u);
  EXPECT_EQ(cluster.fault_stats().recovered_queries, 1u);
}

TEST(ChaosTest, CoordinatorCrashTriggersEpochFencedRetry) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = ChaosConfig(EngineKind::kAsync);
  auto plan = TopKPlan(tg, 1, 3);
  std::vector<Row> ref = CleanReference(tg, cfg, {plan})[0];

  // The first submitted query gets id 1 and coordinator 1 % 4 = worker 1;
  // crashing worker 1 early takes down the coordinator mid-flight.
  cfg.fault.CrashWorker(/*worker=*/1, /*at=*/5'000, /*restart_after=*/300'000);
  SimCluster cluster(cfg, tg.graph);
  uint64_t q = cluster.Submit(plan, 0);
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  const QueryResult& r = cluster.result(q);
  EXPECT_TRUE(r.done);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(SortedRows(r.rows), ref);
  EXPECT_GE(r.retries, 1u);
  EXPECT_EQ(cluster.fault_stats().crashes, 1u);
  EXPECT_EQ(cluster.fault_stats().restarts, 1u);
  EXPECT_EQ(cluster.fault_stats().recovered_queries, 1u);
}

TEST(ChaosTest, DegradedLinkOnlySlowsTheQuery) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = ChaosConfig(EngineKind::kAsync);
  auto plan = TopKPlan(tg, 1, 3);
  std::vector<Row> ref = CleanReference(tg, cfg, {plan})[0];

  cfg.fault.DegradeLink(/*at=*/0, /*duration_ns=*/5'000'000, /*factor=*/8.0);
  SimCluster cluster(cfg, tg.graph);
  uint64_t q = cluster.Submit(plan, 0);
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  const QueryResult& r = cluster.result(q);
  EXPECT_TRUE(r.done);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(SortedRows(r.rows), ref);
}

TEST(ChaosTest, ScriptedFaultsOnSameOrdinalAllApply) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = ChaosConfig(EngineKind::kAsync);
  auto plan = TopKPlan(tg, 1, 3);
  std::vector<Row> ref = CleanReference(tg, cfg, {plan})[0];

  // Both faults target remote send #5: the message is delivered late AND a
  // duplicate rides the normal path. Neither may be silently ignored.
  cfg.fault.DuplicateNth(5);
  cfg.fault.DelayNth(5, /*extra_ns=*/150'000);
  SimCluster cluster(cfg, tg.graph);
  uint64_t q = cluster.Submit(plan, 0);
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  const QueryResult& r = cluster.result(q);
  EXPECT_TRUE(r.done);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(SortedRows(r.rows), ref);
  EXPECT_EQ(cluster.fault_stats().duplicates, 1u);
  EXPECT_EQ(cluster.fault_stats().delays, 1u);
  EXPECT_EQ(cluster.fault_stats().duplicates_suppressed, 1u);
}

TEST(ChaosTest, OverlappingDegradeWindowsDoNotCancel) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = ChaosConfig(EngineKind::kAsync);
  auto plan = TopKPlan(tg, 1, 3);
  std::vector<Row> ref = CleanReference(tg, cfg, {plan})[0];

  // A long window with a short one nested inside it. The short window's end
  // must restore the long window's factor, not reset degradation entirely,
  // and inside the overlap the factors compound — so the run can only be
  // slower than with the long window alone.
  ClusterConfig single = cfg;
  single.fault.DegradeLink(/*at=*/0, /*duration_ns=*/10'000'000, /*factor=*/8.0);
  SimCluster sc(single, tg.graph);
  uint64_t sq = sc.Submit(plan, 0);
  ASSERT_TRUE(sc.RunToCompletion().ok());
  EXPECT_EQ(SortedRows(sc.result(sq).rows), ref);

  ClusterConfig overlap = cfg;
  overlap.fault.DegradeLink(/*at=*/0, /*duration_ns=*/10'000'000, /*factor=*/8.0);
  overlap.fault.DegradeLink(/*at=*/1'000, /*duration_ns=*/5'000, /*factor=*/2.0);
  SimCluster oc(overlap, tg.graph);
  uint64_t oq = oc.Submit(plan, 0);
  ASSERT_TRUE(oc.RunToCompletion().ok());
  EXPECT_EQ(SortedRows(oc.result(oq).rows), ref);
  EXPECT_GE(oc.result(oq).complete_time, sc.result(sq).complete_time);
}

TEST(ChaosTest, WatchdogSurvivesCoordinatorCrashDuringRestartBackoff) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = ChaosConfig(EngineKind::kAsync);
  // Every remote message vanishes, so every attempt stalls and only a live
  // watchdog chain can drive the query to its explicit failed verdict.
  cfg.fault.drop_prob = 1.0;
  cfg.max_retries = 3;
  cfg.retry_backoff_ns = 10'000'000;
  // Crash the coordinator (query 1 -> worker 1) inside the first retry's
  // backoff window, and keep it down long past the rescheduled StartQuery:
  // the restart keeps deferring with restart_pending set, which used to let
  // the only live watchdog chain die and the query hang forever.
  cfg.fault.CrashWorker(/*worker=*/1, /*at=*/25'000'000,
                        /*restart_after=*/100'000'000);
  SimCluster cluster(cfg, tg.graph);
  uint64_t q = cluster.Submit(TopKPlan(tg, 1, 2), 0);
  Status s = cluster.RunToCompletion();
  ASSERT_TRUE(s.ok()) << s.ToString();  // no hang, no kInternal
  const QueryResult& r = cluster.result(q);
  EXPECT_TRUE(r.done);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.retries, cfg.max_retries);
  EXPECT_EQ(cluster.fault_stats().crashes, 1u);
  EXPECT_EQ(cluster.fault_stats().failed_queries, 1u);
}

TEST(ChaosTest, AnySingleDroppedMessageNeverSilentlyWrong) {
  // Sweep the drop over every early remote-send ordinal so each message
  // kind — traverser hop, weight report (with piggybacked row_delta),
  // finalize, collect reply, result row, control — gets dropped in some
  // run. Whatever vanishes, the query must either recover to the exact
  // reference rows or fail explicitly; in particular a dropped ResultRow
  // must not be masked by coordinator-local rows in the row ledgers.
  TestGraph tg = MakeGraph(4);
  ClusterConfig base = ChaosConfig(EngineKind::kAsync);
  auto plan = TopKPlan(tg, 1, 3);
  std::vector<Row> ref = CleanReference(tg, base, {plan})[0];

  int dropped_runs = 0;
  for (uint64_t nth = 1; nth <= 60; ++nth) {
    SCOPED_TRACE("drop ordinal " + std::to_string(nth));
    ClusterConfig cfg = base;
    cfg.fault.DropNth(nth);
    SimCluster cluster(cfg, tg.graph);
    uint64_t q = cluster.Submit(plan, 0);
    Status s = cluster.RunToCompletion();
    ASSERT_TRUE(s.ok()) << s.ToString();
    const QueryResult& r = cluster.result(q);
    ASSERT_TRUE(r.done);
    if (cluster.fault_stats().drops > 0) ++dropped_runs;
    if (r.failed || r.timed_out) continue;  // explicit, never silent
    EXPECT_EQ(SortedRows(r.rows), ref) << "silent wrong answer";
  }
  EXPECT_GE(dropped_runs, 20) << "the sweep barely exercised the fault path";
}

TEST(ChaosTest, RetriesExhaustedMarksQueryFailedNotWrong) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = ChaosConfig(EngineKind::kAsync);
  cfg.fault.drop_prob = 1.0;  // every remote message vanishes: unrecoverable
  cfg.max_retries = 2;
  SimCluster cluster(cfg, tg.graph);
  uint64_t q = cluster.Submit(TopKPlan(tg, 1, 2), 0);
  Status s = cluster.RunToCompletion();
  ASSERT_TRUE(s.ok()) << s.ToString();  // recovery resolves it: no hang
  const QueryResult& r = cluster.result(q);
  EXPECT_TRUE(r.done);
  EXPECT_TRUE(r.failed);
  EXPECT_TRUE(r.rows.empty());  // never a partial answer posing as complete
  EXPECT_EQ(r.retries, 2u);
  EXPECT_FALSE(r.failure_reason.empty());
  EXPECT_EQ(cluster.fault_stats().failed_queries, 1u);
}

TEST(ChaosTest, RecoveryDisabledSurfacesLostWeightAsInternal) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = ChaosConfig(EngineKind::kAsync);
  cfg.fault.drop_prob = 1.0;
  cfg.fault_recovery = false;  // detect-and-report mode: no watchdog, no retry
  SimCluster cluster(cfg, tg.graph);
  uint64_t q = cluster.Submit(TopKPlan(tg, 1, 2), 0);
  Status s = cluster.RunToCompletion();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("stuck query ids: " + std::to_string(q)),
            std::string::npos)
      << s.ToString();
  EXPECT_FALSE(cluster.result(q).done);
}

TEST(ChaosTest, TinyEventBudgetIsDeadlineExceededNotInternal) {
  TestGraph tg = MakeGraph(4);
  SimCluster cluster(ChaosConfig(EngineKind::kAsync), tg.graph);
  cluster.Submit(TopKPlan(tg, 1, 3), 0);
  Status s = cluster.RunToCompletion(/*max_events=*/5);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.message().find("event budget"), std::string::npos) << s.ToString();
}

TEST(ChaosTest, BspEngineIgnoresMessageFaultPlans) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = ChaosConfig(EngineKind::kBsp);
  auto plan = CountPlan(tg, 1, 3);
  std::vector<Row> ref = CleanReference(tg, cfg, {plan})[0];

  cfg.fault.drop_prob = 0.9;
  cfg.fault.dup_prob = 0.9;
  SimCluster cluster(cfg, tg.graph);
  uint64_t q = cluster.Submit(plan, 0);
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  // BSP exchanges traversers at superstep barriers, not via the message
  // layer, so the injector is never consulted.
  EXPECT_EQ(SortedRows(cluster.result(q).rows), ref);
  EXPECT_EQ(cluster.fault_stats().drops, 0u);
  EXPECT_EQ(cluster.fault_stats().duplicates, 0u);
}

// ---- randomized chaos matrix --------------------------------------------------

TEST(ChaosTest, RandomizedScheduleMatrixNeverSilentlyWrong) {
  TestGraph tg = MakeGraph(4);
  const EngineKind engines[] = {EngineKind::kAsync, EngineKind::kShared,
                                EngineKind::kGaiaSim, EngineKind::kBanyanSim};
  int schedules = 0;
  uint64_t total_injected = 0, total_failed = 0, total_recovered = 0;
  for (EngineKind engine : engines) {
    ClusterConfig base = ChaosConfig(engine);
    std::vector<std::shared_ptr<const Plan>> plans = {
        TopKPlan(tg, 1, 2),  TopKPlan(tg, 17, 3, 5), CountPlan(tg, 5, 2),
        CountPlan(tg, 42, 3), TopKPlan(tg, 99, 2)};
    std::vector<std::vector<Row>> ref = CleanReference(tg, base, plans);

    for (uint64_t seed = 1; seed <= 6; ++seed) {
      ++schedules;
      SCOPED_TRACE("engine=" + std::string(EngineKindName(engine)) +
                   " seed=" + std::to_string(seed));
      ClusterConfig cfg = base;
      Rng mix(seed * 7919 + static_cast<uint64_t>(engine) * 131);
      cfg.fault.seed = mix.Next();
      cfg.fault.dup_prob = 0.01 + 0.04 * mix.NextDouble();
      cfg.fault.delay_prob = 0.01 + 0.04 * mix.NextDouble();
      cfg.fault.delay_ns = 20'000 + mix.Below(80'000);
      // Drops are the destructive fault: keep them rare enough that most
      // retries land, but present in half the schedules.
      if (seed % 2 == 0) cfg.fault.drop_prob = 0.001;
      if (seed % 3 == 0) {
        cfg.fault.CrashWorker(static_cast<uint32_t>(mix.Below(4)),
                              /*at=*/10'000 + mix.Below(80'000),
                              /*restart_after=*/100'000 + mix.Below(400'000));
      }
      SimCluster cluster(cfg, tg.graph);
      std::vector<uint64_t> ids;
      for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
      Status s = cluster.RunToCompletion(/*max_events=*/200'000'000ULL);
      ASSERT_TRUE(s.ok()) << s.ToString();

      for (size_t i = 0; i < ids.size(); ++i) {
        const QueryResult& r = cluster.result(ids[i]);
        ASSERT_TRUE(r.done) << "query " << ids[i] << " neither finished nor "
                            << "failed explicitly";
        if (r.failed || r.timed_out) continue;  // explicit, never silent
        EXPECT_EQ(SortedRows(r.rows), ref[i])
            << "silent wrong answer on query " << ids[i];
      }
      const FaultStats& fs = cluster.fault_stats();
      total_injected += fs.drops + fs.duplicates + fs.delays + fs.crashes;
      total_failed += fs.failed_queries;
      total_recovered += fs.recovered_queries;
      // Every suppressed duplicate had an injected twin.
      EXPECT_LE(fs.duplicates_suppressed, fs.duplicates);
    }
  }
  EXPECT_GE(schedules, 24);
  EXPECT_GT(total_injected, 0u) << "the chaos matrix never injected a fault";
  // The harness is only meaningful if recovery actually exercises: across
  // the matrix at least one query must have survived a retry.
  EXPECT_GT(total_recovered + total_failed, 0u);
}

// ---- traverser bulking under faults -------------------------------------------

TEST(ChaosTest, BulkingOnAndOffAgreeUnderFaultSchedules) {
  // Bulking merges in-flight traversers; with faults active that interacts
  // with seq-window dedup, epoch fencing, and row-ledger accounting. Same
  // fault schedule, bulking on vs off: both runs must either fail explicitly
  // or produce the clean-run rows.
  TestGraph tg = MakeGraph(4);
  ClusterConfig base = ChaosConfig(EngineKind::kAsync);
  std::vector<std::shared_ptr<const Plan>> plans = {
      TopKPlan(tg, 1, 3), CountPlan(tg, 5, 3), TopKPlan(tg, 17, 2, 5)};
  std::vector<std::vector<Row>> ref = CleanReference(tg, base, plans);

  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (bool bulking : {true, false}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " bulking=" + (bulking ? std::string("on") : "off"));
      ClusterConfig cfg = base;
      cfg.traverser_bulking = bulking;
      Rng mix(seed * 104729);
      cfg.fault.seed = mix.Next();
      cfg.fault.dup_prob = 0.03;
      cfg.fault.delay_prob = 0.03;
      cfg.fault.delay_ns = 50'000;
      if (seed % 2 == 0) cfg.fault.drop_prob = 0.001;
      if (seed % 3 == 0) {
        cfg.fault.CrashWorker(static_cast<uint32_t>(mix.Below(4)),
                              /*at=*/10'000 + mix.Below(50'000),
                              /*restart_after=*/200'000);
      }
      SimCluster cluster(cfg, tg.graph);
      std::vector<uint64_t> ids;
      for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
      Status s = cluster.RunToCompletion(/*max_events=*/200'000'000ULL);
      ASSERT_TRUE(s.ok()) << s.ToString();
      for (size_t i = 0; i < ids.size(); ++i) {
        const QueryResult& r = cluster.result(ids[i]);
        ASSERT_TRUE(r.done);
        if (r.failed || r.timed_out) continue;  // explicit, never silent
        EXPECT_EQ(SortedRows(r.rows), ref[i])
            << "silent wrong answer on query " << ids[i];
      }
    }
  }
}

TEST(ChaosTest, HighDuplicationNeverDoubleCountsBulkedWeight) {
  // Regression for the duplicate/bulking hazard: an injector-duplicated
  // message and its twin share one seq, so if either copy merged into a
  // differently-sequenced carrier, the carrier would deliver its weight AND
  // the surviving twin would pass the seq check — double-counting weight and
  // either hanging the scope or finishing it early with missing rows. Both
  // copies are marked no_bulk; under an aggressive duplication schedule the
  // answers must still match the clean run exactly.
  TestGraph tg = MakeGraph(4);
  ClusterConfig base = ChaosConfig(EngineKind::kAsync);
  std::vector<std::shared_ptr<const Plan>> plans = {TopKPlan(tg, 1, 3),
                                                    CountPlan(tg, 5, 3)};
  std::vector<std::vector<Row>> ref = CleanReference(tg, base, plans);

  for (uint64_t seed : {3u, 11u, 29u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ClusterConfig cfg = base;
    cfg.traverser_bulking = true;
    cfg.fault.seed = seed;
    cfg.fault.dup_prob = 0.5;  // every other remote message is duplicated
    SimCluster cluster(cfg, tg.graph);
    std::vector<uint64_t> ids;
    for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
    Status s = cluster.RunToCompletion(/*max_events=*/200'000'000ULL);
    ASSERT_TRUE(s.ok()) << s.ToString();
    const FaultStats& fs = cluster.fault_stats();
    EXPECT_GT(fs.duplicates, 0u);
    for (size_t i = 0; i < ids.size(); ++i) {
      const QueryResult& r = cluster.result(ids[i]);
      ASSERT_TRUE(r.done);
      ASSERT_FALSE(r.failed || r.timed_out)
          << "duplication alone must never fail a query";
      EXPECT_EQ(SortedRows(r.rows), ref[i]);
    }
  }
}

// ---- LDBC mixed workload under faults -----------------------------------------

TEST(ChaosTest, LdbcMixedWorkloadSurvivesFaults) {
  SnbConfig scfg = SnbConfig::Tiny(150);
  auto data = GenerateSnb(scfg, /*num_partitions=*/8).TakeValue();
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 4;
  cfg.progress_timeout_ns = 20'000'000;
  cfg.fault.seed = 77;
  cfg.fault.dup_prob = 0.02;
  cfg.fault.delay_prob = 0.02;
  cfg.fault.drop_prob = 0.0005;
  SimCluster cluster(cfg, data->graph);
  TransactionManager txn(&cluster);
  DriverConfig dcfg;
  dcfg.tcr = 1.0;
  dcfg.duration_s = 0.05;
  DriverReport report = RunMixedWorkload(&cluster, &txn, *data, dcfg);
  // The run must terminate (no hang) with real work done; individual
  // queries may be failed/retried but the driver keeps going.
  EXPECT_GT(report.total_operations, 10u);
  EXPECT_GT(cluster.fault_stats().duplicates + cluster.fault_stats().delays +
                cluster.fault_stats().drops,
            0u);
}

}  // namespace
}  // namespace graphdance
