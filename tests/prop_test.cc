// Property and regression tests for the serde layer, weight splitting and
// the QoS bookkeeping primitives:
//  - ByteReader hardening: reads past the end assert in debug builds and
//    fail-safe (zero value, pinned cursor, latched truncated()) in release.
//  - Truncated-message regression: every Message payload decoder is total
//    over arbitrary prefixes of a valid frame — no crash, no UB, no giant
//    allocation from a garbage length prefix.
//  - Randomized round-trips for Value, Traverser, Row and AggState (all
//    tags, >255 vars, empty and near-limit payloads).
//  - SplitWeight conservation in Z_2^64 and Take/TakeLast equivalence with
//    the vector path.
//  - CreditMeter conservation (available + outstanding == granted) under
//    random traffic, with the same assert-in-debug / clamp-and-latch-in-
//    release hardening contract as ByteReader.
//  - AdmissionController ordering: per-class FIFO, deadline-expired pops
//    are shed not admitted, ledger conservation at every step, and stride
//    scheduling admits saturated classes in proportion to their weights.
//  - TEL visibility: random interleaved create/delete timestamp histories
//    pushed through the TransactionalEdgeLog, with visibility at every
//    timestamp checked against a brute-force model — across arena
//    compactions at random watermarks (compaction must be visibility-
//    preserving at and above the watermark).
//  - Snapshot-isolation checker smoke: CorruptNthVisibility plants a stale
//    read (create stamp pushed past the reader's timestamp between scan and
//    observation) that the SI checker must trip on — guards against a
//    vacuously green checker.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/invariants.h"
#include "common/random.h"
#include "common/serde.h"
#include "common/value.h"
#include "graph/generators.h"
#include "graph/tel.h"
#include "gtest/gtest.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"
#include "pstm/memo.h"
#include "pstm/steps.h"
#include "pstm/traverser.h"
#include "pstm/weight.h"
#include "qos/admission.h"
#include "qos/credit.h"
#include "qos/qos.h"
#include "txn/dist_txn.h"

namespace graphdance {
namespace {

// --- ByteReader hardening (satellite: harden ByteReader) --------------------

#ifdef NDEBUG

TEST(ByteReaderGuardTest, TruncatedFixedReadsFailSafe) {
  uint8_t buf[4] = {0x01, 0x02, 0x03, 0x04};
  ByteReader r(buf, sizeof(buf));
  EXPECT_EQ(r.ReadU32(), 0x04030201u);
  EXPECT_FALSE(r.truncated());
  // The buffer is spent: every further read returns zero, latches
  // truncated() and pins the cursor at the end.
  EXPECT_EQ(r.ReadU64(), 0u);
  EXPECT_TRUE(r.truncated());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(r.ReadU8(), 0u);
  EXPECT_EQ(r.ReadI64(), 0);
  EXPECT_EQ(r.ReadDouble(), 0.0);
  EXPECT_EQ(r.pos(), sizeof(buf));
}

TEST(ByteReaderGuardTest, PartialReadDoesNotConsume) {
  // A read that does not fit must not consume the bytes that were there: the
  // guard pins to the end without handing out a half-read value.
  uint8_t buf[6] = {1, 2, 3, 4, 5, 6};
  ByteReader r(buf, sizeof(buf));
  EXPECT_EQ(r.ReadU64(), 0u);  // needs 8, only 6 available
  EXPECT_TRUE(r.truncated());
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteReaderGuardTest, TruncatedReadRawZeroFills) {
  uint8_t buf[2] = {0xaa, 0xbb};
  ByteReader r(buf, sizeof(buf));
  uint8_t out[5] = {9, 9, 9, 9, 9};
  r.ReadRaw(out, sizeof(out));
  EXPECT_TRUE(r.truncated());
  for (uint8_t b : out) EXPECT_EQ(b, 0u);
}

TEST(ByteReaderGuardTest, HostileStringLengthDoesNotOverflow) {
  // A length prefix of 0xffffffff must not wrap pos_ + n or allocate 4 GB.
  ByteWriter w;
  w.WriteU32(0xffffffffu);
  std::vector<uint8_t> buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_TRUE(r.truncated());
  EXPECT_TRUE(r.AtEnd());
}

#else  // !NDEBUG

TEST(ByteReaderDeathTest, FixedReadPastEndAsserts) {
  uint8_t buf[2] = {1, 2};
  EXPECT_DEATH(
      {
        ByteReader r(buf, sizeof(buf));
        (void)r.ReadU32();
      },
      "ByteReader overflow");
}

TEST(ByteReaderDeathTest, ReadRawPastEndAsserts) {
  uint8_t buf[2] = {1, 2};
  EXPECT_DEATH(
      {
        ByteReader r(buf, sizeof(buf));
        uint8_t out[8];
        r.ReadRaw(out, sizeof(out));
      },
      "ByteReader overflow");
}

TEST(ByteReaderDeathTest, HostileStringLengthAsserts) {
  ByteWriter w;
  w.WriteU32(0xffffffffu);
  std::vector<uint8_t> buf = w.Take();
  EXPECT_DEATH(
      {
        ByteReader r(buf);
        (void)r.ReadString();
      },
      "ByteReader overflow");
}

#endif  // NDEBUG

// --- truncated-message regression -------------------------------------------
//
// Message structs are never serialized whole; what crosses the simulated wire
// is the payload of each kind. The decoders exercised below cover every kind
// that carries one:
//   kTraverserBatch -> Traverser::Deserialize
//   kResultRow      -> DeserializeRow
//   kCollectReply   -> u32 row count + DeserializeRow each (top-k collect),
//                      or DeserializeAggState (scalar-aggregate collect)
//   kWeightReport / kFinalize / kControl carry no payload bytes (all fields
//   travel in the Message header), so truncation cannot reach a decoder.
// Value::Deserialize is the shared leaf decoder under rows and vars.

std::vector<uint8_t> SampleTraverserBytes() {
  Traverser t;
  t.vertex = 0x1122334455667788ULL;
  t.step = 3;
  t.hop = 2;
  t.scope = 7;
  t.weight = 0xdeadbeefcafef00dULL;
  t.bulk = 5;
  t.vars.push_back(Value(int64_t{42}));
  t.vars.push_back(Value("hello world"));
  t.vars.push_back(Value());
  t.vars.push_back(Value(true));
  t.vars.push_back(Value(2.5));
  t.path = {11, 22, 33};
  ByteWriter w;
  t.Serialize(&w);
  return w.Take();
}

std::vector<uint8_t> SampleRowBytes() {
  Row row;
  row.push_back(Value(int64_t{7}));
  row.push_back(Value("abcdef"));
  row.push_back(Value(1.25));
  row.push_back(Value(false));
  row.push_back(Value());
  ByteWriter w;
  SerializeRow(row, &w);
  return w.Take();
}

std::vector<uint8_t> SampleTopKCollectBytes() {
  ByteWriter w;
  w.WriteU32(3);
  for (int i = 0; i < 3; ++i) {
    Row row;
    row.push_back(Value(int64_t{i}));
    row.push_back(Value(std::string(static_cast<size_t>(i) * 3, 'x')));
    SerializeRow(row, &w);
  }
  return w.Take();
}

std::vector<uint8_t> SampleAggStateBytes() {
  AggState agg;
  agg.count = 12;
  agg.sum = 99.5;
  agg.min = Value(int64_t{-4});
  agg.max = Value("zzz");
  ByteWriter w;
  SerializeAggState(agg, &w);
  return w.Take();
}

// Decodes a top-k collect payload the way OrderByLimitStep::OnCollect does:
// a u32 row count (clamped against remaining bytes: every row costs at least
// its own 4-byte count prefix) followed by that many rows.
std::vector<Row> DecodeTopKCollect(ByteReader* in) {
  uint32_t n = in->ReadU32();
  n = std::min<uint32_t>(n, static_cast<uint32_t>(in->remaining() / 4));
  std::vector<Row> rows;
  rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) rows.push_back(DeserializeRow(in));
  return rows;
}

// Runs `decode` over every strict prefix of `full`. The property under test:
// the decoder is total — it terminates, never reads out of bounds (the ASan
// job gives this teeth), never allocates from a garbage length prefix, and
// leaves the reader cursor within the prefix.
template <typename DecodeFn>
void CheckTotalOverPrefixes(const std::vector<uint8_t>& full, DecodeFn decode) {
  for (size_t cut = 0; cut < full.size(); ++cut) {
    ByteReader r(full.data(), cut);
    decode(&r);
    EXPECT_LE(r.pos(), cut) << "decoder cursor escaped a " << cut
                            << "-byte prefix of a " << full.size()
                            << "-byte frame";
  }
}

#ifdef NDEBUG

TEST(TruncatedMessageTest, TraverserBatchPayload) {
  std::vector<uint8_t> full = SampleTraverserBytes();
  CheckTotalOverPrefixes(full, [&](ByteReader* r) {
    Traverser t = Traverser::Deserialize(r);
    // A garbage path count from a truncated frame must not drive a giant
    // reserve: a valid stream carries 8 bytes per element.
    EXPECT_LE(t.path.size(), full.size() / 8 + 1);
  });
}

TEST(TruncatedMessageTest, ResultRowPayload) {
  std::vector<uint8_t> full = SampleRowBytes();
  CheckTotalOverPrefixes(full, [&](ByteReader* r) {
    Row row = DeserializeRow(r);
    EXPECT_LE(row.size(), full.size());
  });
}

TEST(TruncatedMessageTest, TopKCollectPayload) {
  std::vector<uint8_t> full = SampleTopKCollectBytes();
  CheckTotalOverPrefixes(full, [&](ByteReader* r) {
    std::vector<Row> rows = DecodeTopKCollect(r);
    EXPECT_LE(rows.size(), full.size() / 4 + 1);
  });
}

TEST(TruncatedMessageTest, AggCollectPayload) {
  std::vector<uint8_t> full = SampleAggStateBytes();
  CheckTotalOverPrefixes(full,
                         [](ByteReader* r) { (void)DeserializeAggState(r); });
}

TEST(TruncatedMessageTest, ValueLeafDecoder) {
  // Unknown tags and truncated bodies both fall back to a null Value.
  for (uint8_t tag = 0; tag < 16; ++tag) {
    std::vector<uint8_t> buf = {tag};
    ByteReader r(buf.data(), buf.size());
    Value v = Value::Deserialize(&r);
    if (tag == 0) {
      EXPECT_TRUE(v.is_null());
      EXPECT_FALSE(r.truncated());
    }
    EXPECT_LE(r.pos(), buf.size());
  }
}

#else  // !NDEBUG

// Debug builds assert on the first out-of-bounds read; cover a representative
// truncation per payload kind rather than every prefix (death tests fork).

TEST(TruncatedMessageDeathTest, TraverserBatchPayloadAsserts) {
  std::vector<uint8_t> full = SampleTraverserBytes();
  EXPECT_DEATH(
      {
        ByteReader r(full.data(), full.size() / 2);
        (void)Traverser::Deserialize(&r);
      },
      "ByteReader overflow");
}

TEST(TruncatedMessageDeathTest, ResultRowPayloadAsserts) {
  std::vector<uint8_t> full = SampleRowBytes();
  EXPECT_DEATH(
      {
        ByteReader r(full.data(), full.size() - 1);
        (void)DeserializeRow(&r);
      },
      "ByteReader overflow");
}

TEST(TruncatedMessageDeathTest, AggCollectPayloadAsserts) {
  std::vector<uint8_t> full = SampleAggStateBytes();
  EXPECT_DEATH(
      {
        ByteReader r(full.data(), full.size() / 2);
        (void)DeserializeAggState(&r);
      },
      "ByteReader overflow");
}

#endif  // NDEBUG

// --- randomized round-trips (satellite: serde property test) ----------------

Value RandomValue(Rng* rng, bool allow_big_strings) {
  switch (rng->Below(5)) {
    case 0:
      return Value();
    case 1:
      return Value(rng->Chance(0.5));
    case 2:
      return Value(static_cast<int64_t>(rng->Next()));
    case 3:
      return Value(static_cast<double>(static_cast<int64_t>(rng->Next())) *
                   1.5e-3);
    default: {
      size_t n = rng->Below(24);
      if (allow_big_strings && rng->Chance(0.02)) {
        n = 60000 + rng->Below(8192);  // near the u16-var / frame scale limits
      }
      std::string s(n, '\0');
      for (char& c : s) {
        c = static_cast<char>(rng->Below(256));  // full byte range, incl. NUL
      }
      return Value(std::move(s));
    }
  }
}

TEST(SerdePropertyTest, ValueRoundTripsAllTags) {
  Rng rng(0x5eed0001);
  for (int iter = 0; iter < 2000; ++iter) {
    Value v = RandomValue(&rng, /*allow_big_strings=*/true);
    ByteWriter w;
    v.Serialize(&w);
    std::vector<uint8_t> buf = w.Take();
    ByteReader r(buf);
    Value back = Value::Deserialize(&r);
    EXPECT_FALSE(r.truncated());
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(v.type(), back.type());
    EXPECT_EQ(v, back);
  }
}

TEST(SerdePropertyTest, ValueEdgeCasesRoundTrip) {
  std::vector<Value> edges;
  edges.push_back(Value());
  edges.push_back(Value(false));
  edges.push_back(Value(true));
  edges.push_back(Value(int64_t{0}));
  edges.push_back(Value(std::numeric_limits<int64_t>::min()));
  edges.push_back(Value(std::numeric_limits<int64_t>::max()));
  edges.push_back(Value(0.0));
  edges.push_back(Value(-0.0));
  edges.push_back(Value(std::numeric_limits<double>::infinity()));
  edges.push_back(Value(std::string()));  // empty string
  edges.push_back(Value(std::string(1, '\0')));
  edges.push_back(Value(std::string(100000, 'q')));
  for (const Value& v : edges) {
    ByteWriter w;
    v.Serialize(&w);
    std::vector<uint8_t> buf = w.Take();
    ByteReader r(buf);
    Value back = Value::Deserialize(&r);
    EXPECT_FALSE(r.truncated());
    EXPECT_EQ(v.type(), back.type());
    EXPECT_EQ(v, back);
  }
}

void ExpectTraverserEq(const Traverser& a, const Traverser& b) {
  EXPECT_EQ(a.vertex, b.vertex);
  EXPECT_EQ(a.step, b.step);
  EXPECT_EQ(a.hop, b.hop);
  EXPECT_EQ(a.scope, b.scope);
  EXPECT_EQ(a.weight, b.weight);
  EXPECT_EQ(a.bulk, b.bulk);
  ASSERT_EQ(a.vars.size(), b.vars.size());
  for (size_t i = 0; i < a.vars.size(); ++i) EXPECT_EQ(a.vars[i], b.vars[i]);
  EXPECT_EQ(a.path, b.path);
}

Traverser RoundTrip(const Traverser& t) {
  ByteWriter w;
  t.Serialize(&w);
  std::vector<uint8_t> buf = w.Take();
  ByteReader r(buf);
  Traverser back = Traverser::Deserialize(&r);
  EXPECT_FALSE(r.truncated());
  EXPECT_TRUE(r.AtEnd());
  return back;
}

TEST(SerdePropertyTest, TraverserRoundTripsRandomized) {
  Rng rng(0x5eed0002);
  for (int iter = 0; iter < 300; ++iter) {
    Traverser t;
    t.vertex = rng.Next();
    t.step = static_cast<uint16_t>(rng.Below(1 << 16));
    t.hop = static_cast<uint16_t>(rng.Below(1 << 16));
    t.scope = static_cast<uint32_t>(rng.Next());
    t.weight = rng.Next();
    t.bulk = static_cast<uint32_t>(rng.Below(UINT32_MAX) + 1);
    size_t nvars = rng.Below(8);
    for (size_t i = 0; i < nvars; ++i) {
      t.vars.push_back(RandomValue(&rng, /*allow_big_strings=*/false));
    }
    size_t plen = rng.Chance(0.3) ? rng.Below(20) : 0;
    for (size_t i = 0; i < plen; ++i) t.path.push_back(rng.Next());
    ExpectTraverserEq(t, RoundTrip(t));
  }
}

TEST(SerdePropertyTest, TraverserRoundTripsOver255Vars) {
  // Regression: the vars count used to be a raw u8, silently truncating
  // traversers with more than 255 local variables. It is a u16 now.
  Traverser t;
  t.vertex = 17;
  t.weight = kUnitWeight;
  for (int i = 0; i < 300; ++i) t.vars.push_back(Value(int64_t{i}));
  Traverser back = RoundTrip(t);
  ASSERT_EQ(back.vars.size(), 300u);
  ExpectTraverserEq(t, back);
}

TEST(SerdePropertyTest, TraverserRoundTripsEmptyAndMinimal) {
  Traverser t;  // all defaults: no vars, no path, weight 0
  ExpectTraverserEq(t, RoundTrip(t));
}

TEST(SerdePropertyTest, RowAndAggStateRoundTripRandomized) {
  Rng rng(0x5eed0003);
  for (int iter = 0; iter < 300; ++iter) {
    Row row;
    size_t n = rng.Below(6);
    for (size_t i = 0; i < n; ++i) {
      row.push_back(RandomValue(&rng, /*allow_big_strings=*/false));
    }
    ByteWriter w;
    SerializeRow(row, &w);
    std::vector<uint8_t> buf = w.Take();
    ByteReader r(buf);
    Row back = DeserializeRow(&r);
    EXPECT_FALSE(r.truncated());
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(row, back);

    AggState agg;
    agg.count = static_cast<int64_t>(rng.Next());
    agg.sum = static_cast<double>(static_cast<int64_t>(rng.Next())) * 1e-3;
    agg.min = RandomValue(&rng, false);
    agg.max = RandomValue(&rng, false);
    ByteWriter aw;
    SerializeAggState(agg, &aw);
    std::vector<uint8_t> abuf = aw.Take();
    ByteReader ar(abuf);
    AggState aback = DeserializeAggState(&ar);
    EXPECT_FALSE(ar.truncated());
    EXPECT_TRUE(ar.AtEnd());
    EXPECT_EQ(agg.count, aback.count);
    EXPECT_EQ(agg.sum, aback.sum);
    EXPECT_EQ(agg.min, aback.min);
    EXPECT_EQ(agg.max, aback.max);
  }
}

// --- weight-splitting properties (satellite: SplitWeight conservation) ------

TEST(WeightPropertyTest, SplitWeightConservesMod2To64) {
  Rng rng(0x5eed0004);
  for (int iter = 0; iter < 500; ++iter) {
    Weight w = rng.Chance(0.1) ? kUnitWeight : rng.Next();
    size_t n = 1 + rng.Below(200);
    Rng split_rng(rng.Next());
    std::vector<Weight> shares = SplitWeight(w, n, &split_rng);
    ASSERT_EQ(shares.size(), n);
    Weight sum = 0;
    for (Weight s : shares) sum += s;  // Z_2^64: wraps
    EXPECT_EQ(sum, w) << "split of " << w << " into " << n
                      << " shares lost mass";
  }
}

TEST(WeightPropertyTest, SplitWeightSingleShareIsIdentity) {
  Rng rng(0x5eed0005);
  for (int iter = 0; iter < 50; ++iter) {
    Weight w = rng.Next();
    Rng split_rng(7);
    std::vector<Weight> shares = SplitWeight(w, 1, &split_rng);
    ASSERT_EQ(shares.size(), 1u);
    EXPECT_EQ(shares[0], w);
  }
}

TEST(WeightPropertyTest, SplitterMatchesVectorPath) {
  // The allocation-free WeightSplitter must be share-for-share identical to
  // SplitWeight under the same seed: Take() x (n-1) then TakeLast() IS the
  // vector path. The runtime mixes both on different paths, so a divergence
  // would silently break weight conservation across them.
  Rng rng(0x5eed0006);
  for (int iter = 0; iter < 500; ++iter) {
    Weight total = rng.Next();
    size_t n = 1 + rng.Below(64);
    uint64_t seed = rng.Next();

    Rng vec_rng(seed);
    std::vector<Weight> expected = SplitWeight(total, n, &vec_rng);

    Rng inc_rng(seed);
    WeightSplitter splitter(total, &inc_rng);
    Weight sum = 0;
    for (size_t i = 0; i + 1 < n; ++i) {
      Weight share = splitter.Take();
      EXPECT_EQ(share, expected[i]);
      sum += share;
    }
    Weight last = splitter.TakeLast();
    EXPECT_EQ(last, expected[n - 1]);
    sum += last;
    EXPECT_EQ(sum, total);
    EXPECT_EQ(splitter.remaining(), 0u);
  }
}

TEST(WeightPropertyTest, SplitterRemainingTracksTakes) {
  Rng rng(0x5eed0007);
  Weight total = 123456789;
  WeightSplitter splitter(total, &rng);
  Weight taken = 0;
  for (int i = 0; i < 10; ++i) {
    taken += splitter.Take();
    EXPECT_EQ(splitter.remaining(), static_cast<Weight>(total - taken));
  }
  EXPECT_EQ(splitter.TakeLast(), static_cast<Weight>(total - taken));
}

// --- CreditMeter properties (satellite: credit arithmetic) ------------------

TEST(CreditMeterPropertyTest, ConservationUnderRandomTraffic) {
  // The conservation invariant `available + outstanding == granted` must
  // hold after every legal Consume / Return, including overdraft flushes
  // (an idle meter granting its whole window to an oversized buffer).
  Rng rng(0x5eed0010);
  for (int iter = 0; iter < 200; ++iter) {
    uint64_t granted = 1 + rng.Below(1 << 16);
    qos::CreditMeter m(granted);
    std::vector<uint64_t> inflight;  // consumed amounts awaiting return
    for (int step = 0; step < 300; ++step) {
      if (!inflight.empty() && rng.Chance(0.5)) {
        size_t i = rng.Below(inflight.size());
        m.Return(inflight[i]);
        inflight[i] = inflight.back();
        inflight.pop_back();
      } else {
        uint64_t avail = m.available();
        uint64_t want = 1 + rng.Below(2 * granted);
        if (!m.CanSend(want)) {
          // Blocked means genuinely short of credits — never a full window.
          EXPECT_LT(avail, want);
          EXPECT_LT(avail, granted);
          continue;
        }
        uint64_t got = m.Consume(want);
        EXPECT_EQ(got, std::min(want, avail));  // exact, or whole-window
        if (got > 0) inflight.push_back(got);
      }
      EXPECT_EQ(m.available() + m.outstanding(), granted);
      EXPECT_FALSE(m.saturated());
    }
    for (uint64_t b : inflight) m.Return(b);
    EXPECT_EQ(m.available(), granted);
    EXPECT_EQ(m.outstanding(), 0u);
  }
}

#ifdef NDEBUG

TEST(CreditMeterGuardTest, OverdrawClampsAndLatches) {
  // Release builds clamp a protocol violation to the available balance and
  // latch saturated() so the resource-ledger checker can flag the run.
  qos::CreditMeter m(100);
  EXPECT_EQ(m.Consume(60), 60u);
  EXPECT_FALSE(m.CanSend(50));  // 40 available, not idle: must not send
  EXPECT_EQ(m.Consume(50), 40u);
  EXPECT_TRUE(m.saturated());
  EXPECT_EQ(m.available(), 0u);
  EXPECT_EQ(m.outstanding(), 100u);  // conservation survives the clamp
}

TEST(CreditMeterGuardTest, OverReturnClampsAndLatches) {
  qos::CreditMeter m(100);
  EXPECT_EQ(m.Consume(30), 30u);
  m.Return(50);  // more than is outstanding
  EXPECT_TRUE(m.saturated());
  EXPECT_EQ(m.available(), 100u);  // clamped: the window never overflows
  EXPECT_EQ(m.outstanding(), 0u);
}

#else  // !NDEBUG

TEST(CreditMeterDeathTest, OverdrawAsserts) {
  EXPECT_DEATH(
      {
        qos::CreditMeter m(100);
        (void)m.Consume(60);
        (void)m.Consume(50);
      },
      "CreditMeter overdraw");
}

TEST(CreditMeterDeathTest, OverReturnAsserts) {
  EXPECT_DEATH(
      {
        qos::CreditMeter m(100);
        (void)m.Consume(30);
        m.Return(50);
      },
      "CreditMeter return exceeds outstanding");
}

#endif  // NDEBUG

// --- AdmissionController properties (satellite: admission ordering) ---------

TEST(AdmissionPropertyTest, LedgerFifoAndDeadlinesUnderRandomSchedules) {
  // Random arrival / completion / cancel schedules with random classes and
  // deadlines. Checked at every step:
  //  - ledger conservation: submitted == admitted + shed + cancelled + queued
  //  - running never exceeds max_concurrent; at most one admit per pop
  //  - within a class, backlog pops are FIFO
  //  - a popped query is admitted iff its backlog wait respects its deadline
  Rng rng(0x5eed0011);
  for (int iter = 0; iter < 40; ++iter) {
    qos::QosConfig cfg;
    cfg.enabled = true;
    cfg.max_concurrent_queries = 1 + static_cast<uint32_t>(rng.Below(3));
    cfg.max_queued_queries = 1 + static_cast<uint32_t>(rng.Below(8));
    cfg.class_weights = {1 + static_cast<uint32_t>(rng.Below(4)),
                         1 + static_cast<uint32_t>(rng.Below(4)),
                         1 + static_cast<uint32_t>(rng.Below(4))};
    qos::AdmissionController adm(cfg);

    struct Rec {
      uint32_t cls;
      SimTime submit;
      SimTime deadline;
    };
    std::map<uint64_t, Rec> recs;
    std::vector<std::vector<uint64_t>> fifo(cfg.num_classes());  // queued ids
    uint64_t next_id = 1;
    uint64_t running = 0;
    SimTime now = 0;

    auto check_ledger = [&] {
      const qos::AdmissionStats& st = adm.stats();
      EXPECT_EQ(st.submitted,
                st.admitted + st.shed() + st.cancelled + adm.queued());
      EXPECT_EQ(adm.running(), running);
      EXPECT_LE(adm.running(), cfg.max_concurrent_queries);
    };

    // Pops from a completion: sheds (in pop order) then at most one admit.
    // Each popped id must be the FIFO head of its class, and the deadline
    // decides which side of the shed/admit line it lands on.
    auto check_pops = [&](const std::vector<uint64_t>& admit,
                          const std::vector<uint64_t>& shed) {
      EXPECT_LE(admit.size(), 1u);
      for (uint64_t id : shed) {
        const Rec& r = recs.at(id);
        ASSERT_FALSE(fifo[r.cls].empty());
        EXPECT_EQ(fifo[r.cls].front(), id) << "non-FIFO shed pop";
        fifo[r.cls].erase(fifo[r.cls].begin());
        EXPECT_TRUE(r.deadline > 0 && now - r.submit > r.deadline)
            << "shed a query whose deadline still held";
      }
      for (uint64_t id : admit) {
        const Rec& r = recs.at(id);
        ASSERT_FALSE(fifo[r.cls].empty());
        EXPECT_EQ(fifo[r.cls].front(), id) << "non-FIFO admission";
        fifo[r.cls].erase(fifo[r.cls].begin());
        EXPECT_FALSE(r.deadline > 0 && now - r.submit > r.deadline)
            << "admitted a query past its deadline";
        ++running;
      }
    };

    for (int step = 0; step < 300; ++step) {
      now += rng.Below(100);
      uint32_t dice = static_cast<uint32_t>(rng.Below(10));
      if (dice < 5) {  // arrival
        uint64_t id = next_id++;
        uint32_t cls = static_cast<uint32_t>(rng.Below(cfg.num_classes()));
        SimTime deadline = rng.Chance(0.3) ? 1 + rng.Below(200) : 0;
        recs[id] = Rec{cls, now, deadline};
        auto d = adm.OnSubmit(id, cls, now, deadline);
        switch (d) {
          case qos::AdmissionController::Decision::kAdmit:
            // Immediate admission requires a free slot and an empty backlog.
            EXPECT_LT(running, cfg.max_concurrent_queries);
            for (const auto& q : fifo) EXPECT_TRUE(q.empty());
            ++running;
            break;
          case qos::AdmissionController::Decision::kQueue:
            fifo[cls].push_back(id);
            break;
          case qos::AdmissionController::Decision::kShed:
            EXPECT_EQ(adm.queued(), cfg.max_queued_queries);
            break;
        }
      } else if (dice < 8) {  // completion
        if (running == 0) continue;
        std::vector<uint64_t> admit, shed;
        adm.OnComplete(now, &admit, &shed);
        --running;
        check_pops(admit, shed);
      } else {  // cancel a random queued query (its deadline timer fired)
        std::vector<uint64_t> queued;
        for (const auto& q : fifo) queued.insert(queued.end(), q.begin(), q.end());
        if (queued.empty()) continue;
        uint64_t id = queued[rng.Below(queued.size())];
        EXPECT_TRUE(adm.Cancel(id));
        EXPECT_FALSE(adm.Cancel(id));  // second cancel: no longer queued
        uint32_t cls = recs.at(id).cls;
        auto& q = fifo[cls];
        q.erase(std::find(q.begin(), q.end(), id));
      }
      check_ledger();
    }

    // Drain: completing everything must admit / shed the whole backlog.
    while (running > 0) {
      now += 50;
      std::vector<uint64_t> admit, shed;
      adm.OnComplete(now, &admit, &shed);
      --running;
      check_pops(admit, shed);
      check_ledger();
    }
    EXPECT_EQ(adm.queued(), 0u);
    for (const auto& q : fifo) EXPECT_TRUE(q.empty());
  }
}

TEST(AdmissionPropertyTest, StrideSchedulingHonorsClassWeights) {
  // A saturated backlog with weights 3:1 must admit class 0 three times as
  // often as class 1 — stride scheduling is exactly proportional, so over
  // 800 backlog admissions the split is 600/200 up to one stride of skew.
  qos::QosConfig cfg;
  cfg.enabled = true;
  cfg.max_concurrent_queries = 1;
  cfg.max_queued_queries = 4096;
  cfg.class_weights = {3, 1};
  qos::AdmissionController adm(cfg);

  ASSERT_EQ(adm.OnSubmit(0, 0, 0, 0), qos::AdmissionController::Decision::kAdmit);
  // Queue more per class than the total admissions below, so neither class
  // ever runs dry — exhaustion would skew the observed ratio.
  std::map<uint64_t, uint32_t> cls_of;
  uint64_t id = 1;
  for (int i = 0; i < 900; ++i) {
    for (uint32_t c : {0u, 1u}) {
      cls_of[id] = c;
      ASSERT_EQ(adm.OnSubmit(id, c, 0, 0),
                qos::AdmissionController::Decision::kQueue);
      ++id;
    }
  }

  uint64_t admits_by_class[2] = {0, 0};
  for (int i = 0; i < 800; ++i) {
    std::vector<uint64_t> admit, shed;
    adm.OnComplete(static_cast<SimTime>(i), &admit, &shed);
    ASSERT_EQ(admit.size(), 1u);
    EXPECT_TRUE(shed.empty());
    ++admits_by_class[cls_of.at(admit[0])];
  }
  EXPECT_NEAR(static_cast<double>(admits_by_class[0]), 600.0, 2.0);
  EXPECT_NEAR(static_cast<double>(admits_by_class[1]), 200.0, 2.0);
}

// --- TEL visibility vs brute force (streaming SI battery) -------------------

// Brute-force model of one adjacency chain: edges in append order with raw
// version stamps. Mirrors the TEL's contract exactly: VisibleAt(ts) ==
// create <= ts < del, and DeleteEdge marks the *first* visible match in
// append order.
struct ModelEdge {
  VertexId anchor;
  VertexId other;
  Timestamp create;
  Timestamp del;
};

std::vector<VertexId> ModelVisible(const std::vector<ModelEdge>& model,
                                   VertexId anchor, Timestamp ts) {
  std::vector<VertexId> out;
  for (const ModelEdge& e : model) {
    if (e.anchor == anchor && e.create <= ts && ts < e.del) out.push_back(e.other);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VertexId> TelVisible(const TransactionalEdgeLog& tel,
                                 VertexId anchor, Timestamp ts) {
  std::vector<VertexId> out;
  tel.ForEachEdgeStamped(anchor, /*elabel=*/0, Direction::kOut, ts,
                         [&](VertexId dst, const Value&, Timestamp create_ts,
                             Timestamp delete_ts) {
                           // The stamps handed to the SI checker must
                           // themselves certify visibility.
                           EXPECT_LE(create_ts, ts);
                           EXPECT_LT(ts, delete_ts);
                           out.push_back(dst);
                         });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(TelVisibilityPropertyTest, RandomHistoriesMatchBruteForceAcrossCompaction) {
  // Random interleaved create/delete histories at increasing timestamps,
  // interleaved with compactions at random watermarks. After every round the
  // full visibility relation — every anchor at every timestamp at or above
  // the compaction floor — must match the model edge-for-edge (multiset).
  constexpr VertexId kAnchors = 4;
  constexpr VertexId kOthers = 24;
  Rng rng(0x5eed7e10);
  for (int round = 0; round < 8; ++round) {
    TransactionalEdgeLog tel;
    std::vector<ModelEdge> model;
    Timestamp now = 0;
    Timestamp floor = 0;  // compaction watermark high-water: check ts >= floor
    for (int step = 0; step < 160; ++step) {
      now += 1 + rng.Below(3);
      const uint64_t roll = rng.Below(100);
      const VertexId anchor = 1 + rng.Below(kAnchors);
      const VertexId other = 1 + rng.Below(kOthers);
      if (roll < 55) {
        tel.AddEdge(anchor, 0, Direction::kOut, other, now);
        model.push_back(ModelEdge{anchor, other, now, kMaxTimestamp});
      } else if (roll < 85) {
        // Delete must pick the first visible match in append order — apply
        // the same rule to the model and require agreement on existence.
        bool model_hit = false;
        for (ModelEdge& e : model) {
          if (e.anchor == anchor && e.other == other && e.create <= now &&
              now < e.del) {
            e.del = now;
            model_hit = true;
            break;
          }
        }
        EXPECT_EQ(tel.DeleteEdge(anchor, 0, Direction::kOut, other, now),
                  model_hit);
      } else {
        const Timestamp watermark = floor + rng.Below(now - floor + 1);
        tel.Compact(watermark);
        floor = std::max(floor, watermark);
        // Compaction is physical only: the model is untouched, because
        // visibility at ts >= watermark must be exactly preserved.
      }
      if (step % 20 == 19) {
        for (VertexId a = 1; a <= kAnchors; ++a) {
          for (Timestamp ts = floor; ts <= now; ++ts) {
            ASSERT_EQ(TelVisible(tel, a, ts), ModelVisible(model, a, ts))
                << "round=" << round << " step=" << step << " anchor=" << a
                << " ts=" << ts << " floor=" << floor;
          }
        }
      }
    }
    // Final sweep, then a full compaction at `now`: only edges live at `now`
    // survive physically, and visibility at `now` is still intact.
    tel.Compact(now);
    for (VertexId a = 1; a <= kAnchors; ++a) {
      ASSERT_EQ(TelVisible(tel, a, now), ModelVisible(model, a, now));
    }
    size_t live = 0;
    for (const ModelEdge& e : model) {
      if (e.create <= now && now < e.del) ++live;
    }
    EXPECT_EQ(tel.num_edge_versions(), live);
  }
}

TEST(TelVisibilityPropertyTest, VertexHistoriesMatchBruteForce) {
  Rng rng(0x5eedbeef);
  TransactionalEdgeLog tel;
  struct VState {
    Timestamp create = kMaxTimestamp;
    Timestamp del = kMaxTimestamp;
  };
  std::map<VertexId, VState> model;
  Timestamp now = 0;
  for (int step = 0; step < 400; ++step) {
    now += 1 + rng.Below(2);
    const VertexId v = 1 + rng.Below(12);
    if (rng.Chance(0.6)) {
      tel.AddVertex(v, /*label=*/0, now);
      model[v] = VState{now, kMaxTimestamp};  // AddVertex overwrites tombstones
    } else {
      const bool model_live =
          model.count(v) != 0 && model[v].create <= now && now < model[v].del;
      EXPECT_EQ(tel.DeleteVertex(v, now), model_live);
      if (model_live) model[v].del = now;
    }
    if (step % 40 == 39) {
      for (VertexId u = 1; u <= 12; ++u) {
        for (Timestamp ts = 0; ts <= now; ts += 1 + ts / 8) {
          const bool expect_live = model.count(u) != 0 &&
                                   model[u].create <= ts && ts < model[u].del;
          ASSERT_EQ(tel.HasVertex(u, ts), expect_live)
              << "v=" << u << " ts=" << ts;
        }
      }
    }
  }
}

// --- snapshot-isolation checker smoke (mutation hook) -----------------------

// A small live run with every checker attached. With `corrupt_nth` == 0 the
// run must be silent; with a planted visibility corruption the SI checker
// must trip (the stamped-scan observation path is live end to end).
uint64_t RunWithVisibilityCorruption(uint64_t corrupt_nth,
                                     std::string* summary = nullptr) {
  auto schema = std::make_shared<Schema>();
  PowerLawGraphOptions gopt;
  gopt.num_vertices = 256;
  gopt.num_edges = 1024;
  gopt.seed = 11;
  gopt.weight_range = 10'000;
  auto graph = GeneratePowerLawGraph(gopt, schema, /*partitions=*/4);
  EXPECT_TRUE(graph.ok());
  auto plan = Traversal(graph.value())
                  .V({1})
                  .RepeatOut("link", /*k=*/3, /*dedup=*/true)
                  .Count()
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();

  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  cfg.progress_timeout_ns = 20'000'000;
  SimCluster cluster(cfg, graph.value());
  auto harness = check::CheckHarness::WithAllCheckers();
  if (corrupt_nth != 0) harness->CorruptNthVisibility(corrupt_nth);
  cluster.AttachChecker(harness.get());
  cluster.Submit(plan.value(), 0);
  EXPECT_TRUE(cluster.RunToCompletion().ok());
  if (summary != nullptr) *summary = harness->Summary();
  const auto& by_checker = harness->TripsByChecker();
  auto it = by_checker.find("snapshot-isolation");
  const uint64_t si_trips = it == by_checker.end() ? 0 : it->second;
  // Only the planted SI corruption may trip, and only the SI checker.
  EXPECT_EQ(harness->trip_count(), si_trips) << harness->Summary();
  return si_trips;
}

TEST(SnapshotIsolationCheckerTest, CleanRunIsSilent) {
  std::string summary;
  EXPECT_EQ(RunWithVisibilityCorruption(0, &summary), 0u) << summary;
}

TEST(SnapshotIsolationCheckerTest, PlantedVisibilityCorruptionTrips) {
  // The first observed edge gets its create stamp pushed past the reader's
  // read_ts between the visibility scan and the observation — exactly the
  // stale-read a torn streaming batch would produce. A silent checker here
  // would make the whole streaming oracle vacuous.
  EXPECT_GE(RunWithVisibilityCorruption(1), 1u);
}

TEST(SnapshotIsolationCheckerTest, CorruptionAnywhereInTheScanTrips) {
  Rng rng(0x5eedc0de);
  for (int i = 0; i < 4; ++i) {
    const uint64_t nth = 1 + rng.Below(64);  // well below the edges observed
    EXPECT_GE(RunWithVisibilityCorruption(nth), 1u) << "nth=" << nth;
  }
}

// --- distributed transactions vs the brute-force serial model ----------------
//
// Random interleaved transaction histories pushed through the distributed
// commit protocol (txn/dist_txn.h), checked two ways:
//  - Serializability: commit order is commit-timestamp order, so replaying
//    exactly the committed transactions, one at a time and in ts order, on a
//    same-seed twin graph must materialize the identical final state — every
//    anchor's out/in-degree and latest property version.
//  - Lock-table invariants at every step: locks are only ever held by
//    decided-but-unfinished transactions (conflict aborts and commits both
//    release), no (partition, vertex) is claimed twice, and recovery leaves
//    the table empty.

namespace {

// Degree of `v` at `ts` counted through a query (the reader-visible state).
int64_t TxnPropDegree(const std::shared_ptr<PartitionedGraph>& graph,
                      VertexId v, Timestamp ts, bool out) {
  Traversal t(graph);
  t.V({v});
  if (out) {
    t.Out("link");
  } else {
    t.In("link");
  }
  t.Count();
  auto plan = t.Build();
  EXPECT_TRUE(plan.ok());
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.workers_per_node = 4;
  SimCluster fresh(cfg, graph);
  auto res = fresh.Run(plan.TakeValue(), ts);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.value().rows[0][0].as_int();
}

struct TxnPropOp {
  enum class Kind { kAddEdge, kDelEdge, kSetProp };
  Kind kind;
  VertexId src = 0;
  VertexId dst = 0;
  int64_t value = 0;
};

Status BufferTxnPropOps(DistTxnManager* mgr, DistTxnManager::TxnId id,
                        LabelId link, PropKeyId key,
                        const std::vector<TxnPropOp>& ops) {
  for (const TxnPropOp& op : ops) {
    Status st;
    switch (op.kind) {
      case TxnPropOp::Kind::kAddEdge:
        st = mgr->AddEdge(id, op.src, link, op.dst);
        break;
      case TxnPropOp::Kind::kDelEdge:
        st = mgr->DeleteEdge(id, op.src, link, op.dst);
        break;
      case TxnPropOp::Kind::kSetProp:
        st = mgr->SetProperty(id, op.src, key, Value(op.value));
        break;
    }
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace

TEST(TxnPropTest, RandomHistoriesMatchSerialModel) {
  constexpr uint64_t kHot = 10;  // anchors drawn from a hot pool: real races
  for (uint64_t round = 0; round < 3; ++round) {
    auto schema = std::make_shared<Schema>();
    auto schema2 = std::make_shared<Schema>();
    auto g1r = GenerateUniformGraph(48, 192, 7 + round, schema, 4);
    auto g2r = GenerateUniformGraph(48, 192, 7 + round, schema2, 4);
    ASSERT_TRUE(g1r.ok() && g2r.ok());
    auto g1 = g1r.TakeValue();
    auto g2 = g2r.TakeValue();
    LabelId link = schema->EdgeLabel("link");
    ASSERT_EQ(link, schema2->EdgeLabel("link"));
    PropKeyId key = schema->PropKey("score");
    ASSERT_EQ(key, schema2->PropKey("score"));

    DistTxnManager mgr(g1.get());
    Rng rng(0x517eed00 + round);
    std::map<DistTxnManager::TxnId, std::vector<TxnPropOp>> ops_of;

    // Waves of overlapping transactions: all begin on the same snapshot,
    // then commit in a random order — first committer wins, the rest abort.
    for (int wave = 0; wave < 6; ++wave) {
      std::vector<DistTxnManager::TxnId> batch;
      for (int k = 0; k < 5; ++k) {
        DistTxnManager::TxnId id = mgr.Begin();
        std::vector<TxnPropOp> ops;
        const uint64_t n = 1 + rng.Below(3);
        for (uint64_t j = 0; j < n; ++j) {
          TxnPropOp op;
          op.src = 1 + rng.Below(kHot);
          op.dst = 1 + rng.Below(kHot);
          if (op.dst == op.src) op.dst = (op.dst % kHot) + 1;
          switch (rng.Below(3)) {
            case 0:
              op.kind = TxnPropOp::Kind::kAddEdge;
              break;
            case 1:
              op.kind = TxnPropOp::Kind::kDelEdge;
              break;
            default:
              op.kind = TxnPropOp::Kind::kSetProp;
              op.value = static_cast<int64_t>(rng.Below(1 << 20));
              break;
          }
          ops.push_back(op);
        }
        ASSERT_TRUE(BufferTxnPropOps(&mgr, id, link, key, ops).ok());
        ops_of[id] = std::move(ops);
        batch.push_back(id);
      }
      // Random commit order within the wave.
      for (size_t i = batch.size(); i > 1; --i) {
        std::swap(batch[i - 1], batch[rng.Below(i)]);
      }
      for (DistTxnManager::TxnId id : batch) {
        (void)mgr.CommitDirect(id);  // conflict aborts are part of the model
      }
    }
    ASSERT_EQ(mgr.active(), 0u);
    ASSERT_EQ(mgr.LocksHeld(), 0u);
    ASSERT_EQ(mgr.commit_log().size(), mgr.committed());

    // Serial model: the committed schedule replayed one transaction at a
    // time, in commit-timestamp order, on the same-seed twin.
    DistTxnManager serial(g2.get());
    Timestamp prev_ts = 0;
    for (const auto& [ts, id] : mgr.commit_log()) {
      ASSERT_GT(ts, prev_ts);  // commit order IS timestamp order
      prev_ts = ts;
      DistTxnManager::TxnId sid = serial.Begin();
      ASSERT_TRUE(
          BufferTxnPropOps(&serial, sid, link, key, ops_of.at(id)).ok());
      auto r = serial.CommitDirect(sid);
      ASSERT_TRUE(r.ok()) << "serial replay must never abort: "
                          << r.status().ToString();
    }
    ASSERT_EQ(serial.ReadTimestamp(), mgr.ReadTimestamp());

    // Identical final state at the LCT: degrees both ways and the latest
    // property version of every hot anchor.
    for (VertexId v = 1; v <= kHot; ++v) {
      EXPECT_EQ(TxnPropDegree(g1, v, mgr.ReadTimestamp(), true),
                TxnPropDegree(g2, v, serial.ReadTimestamp(), true))
          << "out-degree diverged at v=" << v << " round=" << round;
      EXPECT_EQ(TxnPropDegree(g1, v, mgr.ReadTimestamp(), false),
                TxnPropDegree(g2, v, serial.ReadTimestamp(), false))
          << "in-degree diverged at v=" << v << " round=" << round;
      const Value* p1 = g1->partition(g1->PartitionOf(v))
                            .PropertyOf(v, key, mgr.ReadTimestamp());
      const Value* p2 = g2->partition(g2->PartitionOf(v))
                            .PropertyOf(v, key, serial.ReadTimestamp());
      ASSERT_EQ(p1 != nullptr, p2 != nullptr) << "property presence diverged";
      if (p1 != nullptr) {
        EXPECT_EQ(*p1, *p2) << "property value diverged at v=" << v;
      }
    }
  }
}

TEST(TxnPropTest, LockTableInvariantsUnderRandomHistories) {
  auto schema = std::make_shared<Schema>();
  auto gr = GenerateUniformGraph(48, 192, 11, schema, 4);
  ASSERT_TRUE(gr.ok());
  auto g = gr.TakeValue();
  LabelId link = schema->EdgeLabel("link");
  PropKeyId key = schema->PropKey("score");

  DistTxnManager::Options o;
  o.crash_phase = DistTxnManager::CrashPhase::kApply;
  o.crash_nth = 2;  // tear the first transaction between its partitions
  DistTxnManager mgr(g.get(), o);
  Rng rng(0x10cab1e);

  auto check_lock_table = [&]() {
    // Every held lock belongs to a decided transaction (commit_log) that has
    // not finished — open transactions hold nothing (OCC), aborted and
    // completed ones released theirs — and no (partition, vertex) twice.
    std::set<std::pair<PartitionId, VertexId>> seen;
    std::set<DistTxnManager::TxnId> decided;
    for (const auto& [ts, id] : mgr.commit_log()) decided.insert(id);
    mgr.ForEachLock([&](PartitionId p, VertexId v, DistTxnManager::TxnId h) {
      EXPECT_TRUE(seen.emplace(p, v).second)
          << "vertex " << v << " claimed twice";
      EXPECT_TRUE(decided.count(h) > 0)
          << "lock held by undecided transaction " << h;
    });
    if (!mgr.HasTorn()) {
      EXPECT_EQ(mgr.LocksHeld(), 0u);
    }
  };

  // A three-partition transaction torn at its second apply: partition #1
  // applied, #2 crashed (volatile table gone with the worker), #3 never
  // reached — its claim on `c` is the stranded lock everything below
  // collides with.
  VertexId a = 1;
  VertexId b = 0;
  VertexId c = 0;
  for (VertexId v = 2; v < 48 && c == 0; ++v) {
    if (b == 0 && g->PartitionOf(v) != g->PartitionOf(a)) {
      b = v;
    } else if (b != 0 && g->PartitionOf(v) != g->PartitionOf(a) &&
               g->PartitionOf(v) != g->PartitionOf(b)) {
      c = v;
    }
  }
  ASSERT_NE(c, 0u);
  // Applies run in sorted partition order and the second one crashes, so the
  // stranded claim sits at whichever of a/b/c lives on the highest partition.
  VertexId stranded = a;
  for (VertexId v : {b, c}) {
    if (g->PartitionOf(v) > g->PartitionOf(stranded)) stranded = v;
  }
  DistTxnManager::TxnId torn = mgr.Begin();
  ASSERT_TRUE(mgr.AddEdge(torn, a, link, b).ok());
  ASSERT_TRUE(mgr.SetProperty(torn, c, key, Value(int64_t{1})).ok());
  ASSERT_TRUE(mgr.CommitDirect(torn).ok());
  ASSERT_TRUE(mgr.HasTorn());
  ASSERT_GT(mgr.LocksHeldBy(torn), 0u);
  check_lock_table();

  // Deliberate collision with the stranded lock: no-wait, the writer aborts
  // with every claim handed back — it never blocks, never steals.
  DistTxnManager::TxnId blocked = mgr.Begin();
  ASSERT_TRUE(mgr.SetProperty(blocked, stranded, key, Value(int64_t{2})).ok());
  EXPECT_FALSE(mgr.CommitDirect(blocked).ok());
  EXPECT_EQ(mgr.LocksHeldBy(blocked), 0u);
  EXPECT_GT(mgr.stats().conflicts_locked, 0u);
  check_lock_table();

  // Random history on a hot anchor pool while the hole is open: conflict
  // aborts (locked or stale) are legal; lock-table corruption is not.
  for (int i = 0; i < 24; ++i) {
    DistTxnManager::TxnId id = mgr.Begin();
    std::vector<TxnPropOp> ops;
    const uint64_t n = 1 + rng.Below(3);
    for (uint64_t j = 0; j < n; ++j) {
      TxnPropOp op;
      op.kind = rng.Chance(0.5) ? TxnPropOp::Kind::kAddEdge
                                : TxnPropOp::Kind::kSetProp;
      op.src = 1 + rng.Below(8);
      op.dst = 1 + rng.Below(8);
      if (op.dst == op.src) op.dst = (op.dst % 8) + 1;
      op.value = static_cast<int64_t>(rng.Below(1000));
      ops.push_back(op);
    }
    ASSERT_TRUE(BufferTxnPropOps(&mgr, id, link, key, ops).ok());
    if (rng.Chance(0.2)) {
      mgr.Abort(id);
      EXPECT_EQ(mgr.LocksHeldBy(id), 0u);  // release-on-abort
    } else if (!mgr.CommitDirect(id).ok()) {
      EXPECT_EQ(mgr.LocksHeldBy(id), 0u);  // release-on-conflict-abort
    }
    check_lock_table();
  }
  EXPECT_TRUE(mgr.HasTorn());
  EXPECT_GT(mgr.LocksHeld(), 0u);

  mgr.RecoverDirect();
  EXPECT_FALSE(mgr.HasTorn());
  EXPECT_EQ(mgr.LocksHeld(), 0u);  // release-on-recovery
  EXPECT_EQ(mgr.active(), 0u);

  // The table is genuinely clean: a fresh writer on the once-stranded anchor
  // commits without conflict.
  DistTxnManager::TxnId fresh = mgr.Begin();
  ASSERT_TRUE(mgr.SetProperty(fresh, stranded, key, Value(int64_t{3})).ok());
  EXPECT_TRUE(mgr.CommitDirect(fresh).ok());
  EXPECT_EQ(mgr.LocksHeld(), 0u);
}

}  // namespace
}  // namespace graphdance
