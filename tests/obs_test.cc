// Tests for the observability layer (src/obs/): the log-bucketed latency
// histogram, the unified MetricsRegistry/MetricsSnapshot, the virtual-time
// tracer, and — most importantly — the guarantee that observation is pure:
// two same-seed runs produce byte-identical snapshots and trace JSON, with
// or without faults injected.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"

namespace graphdance {
namespace {

using obs::LogHistogram;
using obs::MetricsSnapshot;

// ---- LogHistogram -----------------------------------------------------------

TEST(LogHistogramTest, SmallValuesAreExact) {
  LogHistogram h;
  for (uint64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(LogHistogram::BucketOf(v), v) << v;
    EXPECT_EQ(LogHistogram::UpperBound(static_cast<uint32_t>(v)), v) << v;
  }
  h.Record(7);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.P50(), 7u);
  EXPECT_EQ(h.P99(), 7u);
  EXPECT_EQ(h.Min(), 7u);
  EXPECT_EQ(h.Max(), 7u);
}

TEST(LogHistogramTest, BucketUpperBoundsAreConsistent) {
  // Every value must land in a bucket whose upper bound is >= the value, and
  // the previous bucket's upper bound must be < the value.
  for (uint64_t v : {1ULL,        31ULL,      32ULL,       33ULL,
                     1000ULL,     4095ULL,    4096ULL,     123456789ULL,
                     (1ULL << 40), (1ULL << 40) + 12345ULL}) {
    uint32_t b = LogHistogram::BucketOf(v);
    EXPECT_GE(LogHistogram::UpperBound(b), v) << v;
    if (b > 0) {
      EXPECT_LT(LogHistogram::UpperBound(b - 1), v) << v;
    }
  }
}

TEST(LogHistogramTest, QuantileErrorIsBounded) {
  // 32 sub-buckets per octave: relative quantile error <= 1/32.
  Rng rng(41);
  LogHistogram h;
  std::vector<uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = 100 + rng.Below(10'000'000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.50, 0.95, 0.99}) {
    size_t rank = static_cast<size_t>(q * values.size());
    uint64_t exact = values[std::min(rank, values.size() - 1)];
    uint64_t approx = h.Percentile(q);
    EXPECT_GE(approx, exact * 0.96) << "q=" << q;
    EXPECT_LE(approx, exact * 1.04) << "q=" << q;
  }
  // Percentiles never exceed the recorded maximum (clamped).
  EXPECT_LE(h.Percentile(1.0), values.back());
  EXPECT_EQ(h.Percentile(1.0), h.Max());
}

TEST(LogHistogramTest, AvgIsExact) {
  LogHistogram h;
  h.Record(1'000'000);
  h.Record(3'000'000);
  h.Record(5'000'000);
  EXPECT_EQ(h.Sum(), 9'000'000u);
  EXPECT_DOUBLE_EQ(h.Avg(), 3'000'000.0);  // no bucketing error in the mean
}

TEST(LogHistogramTest, MergeEqualsCombinedRecording) {
  Rng rng(43);
  LogHistogram a, b, combined;
  for (int i = 0; i < 300; ++i) {
    uint64_t v = rng.Below(1'000'000);
    (i % 2 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), combined.Count());
  EXPECT_EQ(a.Sum(), combined.Sum());
  EXPECT_EQ(a.Min(), combined.Min());
  EXPECT_EQ(a.Max(), combined.Max());
  EXPECT_EQ(a.P50(), combined.P50());
  EXPECT_EQ(a.P99(), combined.P99());
  EXPECT_EQ(a.ToString(), combined.ToString());
}

// ---- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistryTest, LinksAndPairsAccumulate) {
  obs::MetricsRegistry reg;
  reg.Init(/*num_workers=*/4, /*num_nodes=*/2);
  reg.OnFrame(0, 1, 100);
  reg.OnFrame(0, 1, 50);
  reg.OnFrame(1, 0, 10);
  reg.OnPairMessage(0, 3);
  reg.OnPairMessage(0, 3);
  MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.Link(0, 1).frames, 2u);
  EXPECT_EQ(s.Link(0, 1).bytes, 150u);
  EXPECT_EQ(s.Link(1, 0).frames, 1u);
  EXPECT_EQ(s.Link(0, 0).frames, 0u);
  EXPECT_EQ(s.PairMessages(0, 3), 2u);
  EXPECT_EQ(s.PairMessages(3, 0), 0u);
  EXPECT_EQ(s.net.frames, 3u);
  EXPECT_EQ(s.net.bytes, 160u);
}

TEST(MetricsRegistryTest, QueryLifecycleCounters) {
  obs::MetricsRegistry reg;
  reg.Init(1, 1);
  reg.OnQuerySubmitted();
  reg.OnQuerySubmitted();
  reg.OnQueryDone(/*latency_ns=*/5000, /*failed=*/false, /*timed_out=*/false);
  reg.OnQueryDone(/*latency_ns=*/7000, /*failed=*/true, /*timed_out=*/true);
  MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.queries_submitted, 2u);
  EXPECT_EQ(s.queries_completed, 2u);
  EXPECT_EQ(s.queries_failed, 1u);
  EXPECT_EQ(s.queries_timed_out, 1u);
  const LogHistogram* lat = s.Latency("query");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Count(), 2u);
  EXPECT_EQ(lat->Sum(), 12'000u);
  EXPECT_EQ(s.Latency("no-such-label"), nullptr);
}

// ---- SimCluster integration -------------------------------------------------

struct TestGraph {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  PropKeyId weight;
};

TestGraph MakeGraph(uint32_t partitions) {
  TestGraph tg;
  tg.schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = 1024;
  opt.num_edges = 8192;
  opt.seed = 11;
  opt.weight_range = 10'000;
  auto result = GeneratePowerLawGraph(opt, tg.schema, partitions);
  EXPECT_TRUE(result.ok());
  tg.graph = result.TakeValue();
  tg.weight = tg.schema->PropKey("weight");
  return tg;
}

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  cfg.progress_timeout_ns = 20'000'000;
  return cfg;
}

std::shared_ptr<const Plan> KHopPlan(const TestGraph& tg, VertexId start,
                                     int k) {
  auto plan = Traversal(tg.graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
                  .Project({Operand::VertexIdOp(), Operand::Property(tg.weight)})
                  .OrderByLimit({{1, false}, {0, true}}, 10)
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.TakeValue();
}

TEST(MetricsClusterTest, SnapshotCoversAllSubsystems) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = SmallConfig();
  SimCluster cluster(cfg, tg.graph);
  cluster.Submit(KHopPlan(tg, 1, 3), 0);
  cluster.Submit(KHopPlan(tg, 2, 2), 0);
  ASSERT_TRUE(cluster.RunToCompletion().ok());

  MetricsSnapshot s = cluster.MetricsSnapshot();
  EXPECT_EQ(s.num_nodes, 2u);
  EXPECT_EQ(s.num_workers, 4u);
  EXPECT_EQ(s.queries_submitted, 2u);
  EXPECT_EQ(s.queries_completed, 2u);
  EXPECT_EQ(s.queries_failed, 0u);

  // Per-step traverser counts: a k-hop plan exercises the source lookup,
  // repeated expansion and the order-by sink.
  EXPECT_GT(s.steps_in[static_cast<uint32_t>(StepKind::kIndexLookup)], 0u);
  EXPECT_GT(s.steps_in[static_cast<uint32_t>(StepKind::kExpand)], 0u);
  EXPECT_GT(s.steps_in[static_cast<uint32_t>(StepKind::kOrderByLimit)], 0u);
  EXPECT_GT(s.tasks_executed, 0u);

  // Dedup'd repeat traversal creates and consults memoranda.
  EXPECT_GT(s.memo_created, 0u);
  EXPECT_GT(s.memo_misses, 0u);
  EXPECT_GT(s.memo_hits, 0u);
  // Query teardown drops every memo state it materialized.
  EXPECT_EQ(s.memo_cleared, s.memo_created);

  // Weight lifecycle: finishes precede (and outnumber) coalesced reports.
  EXPECT_GT(s.weight_finishes, 0u);
  EXPECT_GT(s.weight_reports, 0u);
  EXPECT_GE(s.weight_finishes, s.weight_reports);

  // NetStats inside the snapshot is the same object net_stats() views.
  EXPECT_EQ(s.net.frames, cluster.net_stats().frames);
  EXPECT_EQ(s.net.bytes, cluster.net_stats().bytes);
  EXPECT_GT(s.net.frames, 0u);

  // Per-link traffic sums back to the cluster totals.
  uint64_t link_frames = 0, link_bytes = 0;
  for (uint32_t a = 0; a < s.num_nodes; ++a) {
    for (uint32_t b = 0; b < s.num_nodes; ++b) {
      link_frames += s.Link(a, b).frames;
      link_bytes += s.Link(a, b).bytes;
    }
  }
  EXPECT_EQ(link_frames, s.net.frames);
  EXPECT_EQ(link_bytes, s.net.bytes);

  // End-to-end virtual latency: one sample per completed query.
  const LogHistogram* lat = s.Latency("query");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Count(), 2u);
  EXPECT_GT(lat->Min(), 0u);
}

TEST(MetricsClusterTest, SameSeedRunsYieldIdenticalSnapshots) {
  TestGraph tg = MakeGraph(4);
  auto run = [&]() {
    SimCluster cluster(SmallConfig(), tg.graph);
    cluster.Submit(KHopPlan(tg, 1, 3), 0);
    cluster.Submit(KHopPlan(tg, 5, 2), 1000);
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    return cluster.MetricsSnapshot().ToString();
  };
  std::string first = run();
  std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // byte-identical, not just "equivalent"
}

TEST(MetricsClusterTest, SnapshotMergeSumsRuns) {
  TestGraph tg = MakeGraph(4);
  auto run = [&]() {
    SimCluster cluster(SmallConfig(), tg.graph);
    cluster.Submit(KHopPlan(tg, 1, 2), 0);
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    return cluster.MetricsSnapshot();
  };
  MetricsSnapshot a = run();
  MetricsSnapshot b = run();
  uint64_t frames = a.net.frames;
  uint64_t queries = a.queries_completed;
  a.Merge(b);
  EXPECT_EQ(a.net.frames, 2 * frames);
  EXPECT_EQ(a.queries_completed, 2 * queries);
  ASSERT_NE(a.Latency("query"), nullptr);
  EXPECT_EQ(a.Latency("query")->Count(), 2 * queries);
}

// ---- Tracer -----------------------------------------------------------------

TEST(TracerTest, DisabledByDefaultAndRecordsNothing) {
  obs::Tracer t;
  EXPECT_FALSE(t.enabled());
  t.Span("x", "cat", 0, 10, 0, 0, 1, 0);
  t.Instant("y", "cat", 5, 0, 0, 1, 0);
  EXPECT_EQ(t.size(), 0u);
}

TEST(TracerTest, JsonShapeAndEscaping) {
  obs::Tracer t;
  t.set_enabled(true);
  t.Meta("process_name", 0, 0, "node 0");
  t.Span("scope \"1\"", "query", 1'500, 2'500, 0, 0, 7, 0);
  t.Instant("submit", "query", 1'000, 0, 0, 7, 0);
  std::string json = t.ToJson();
  // Chrome trace_event envelope with microsecond fixed-point timestamps.
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.000"), std::string::npos);
  EXPECT_NE(json.find("scope \\\"1\\\""), std::string::npos);  // escaped quote
}

TEST(TracerTest, ClusterTraceIsByteIdenticalAcrossSameSeedRuns) {
  TestGraph tg = MakeGraph(4);
  auto run = [&]() {
    ClusterConfig cfg = SmallConfig();
    cfg.trace = true;
    SimCluster cluster(cfg, tg.graph);
    cluster.Submit(KHopPlan(tg, 1, 3), 0);
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    EXPECT_GT(cluster.tracer().size(), 0u);
    return cluster.tracer().ToJson();
  };
  std::string first = run();
  std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The trace contains query spans stamped with virtual time (ids from 1).
  EXPECT_NE(first.find("\"query 1\""), std::string::npos);
  EXPECT_NE(first.find("\"scope 0\""), std::string::npos);
}

TEST(TracerTest, TracingDoesNotPerturbExecution) {
  // Pure observation: the event schedule — and hence every metric and every
  // result — is identical with tracing on and off.
  TestGraph tg = MakeGraph(4);
  auto run = [&](bool trace) {
    ClusterConfig cfg = SmallConfig();
    cfg.trace = trace;
    SimCluster cluster(cfg, tg.graph);
    cluster.Submit(KHopPlan(tg, 1, 3), 0);
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    return cluster.MetricsSnapshot().ToString();
  };
  EXPECT_EQ(run(false), run(true));
}

// ---- metrics under faults ---------------------------------------------------

TEST(MetricsChaosTest, FaultActivityAppearsInSnapshot) {
  // An Emit-terminated plan streams rows to the coordinator as kResultRow
  // messages (top-k plans gather through the collect path instead).
  TestGraph tg = MakeGraph(4);
  auto emit_plan = Traversal(tg.graph)
                       .V({1})
                       .RepeatOut("link", 2, /*dedup=*/true)
                       .Emit({Operand::VertexIdOp()})
                       .Build();
  ASSERT_TRUE(emit_plan.ok()) << emit_plan.status().ToString();
  std::shared_ptr<const Plan> plan = emit_plan.TakeValue();

  auto row_messages = [&](ClusterConfig cfg) {
    SimCluster cluster(cfg, tg.graph);
    uint64_t id = cluster.Submit(plan, 0);
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    EXPECT_TRUE(cluster.result(id).done);
    MetricsSnapshot s = cluster.MetricsSnapshot();
    EXPECT_EQ(s.fault.drops, cluster.fault_stats().drops);  // thin view agrees
    return std::make_pair(
        s.net.messages_by_kind[static_cast<int>(MessageKind::kResultRow)], s);
  };

  auto [clean_rows, clean] = row_messages(SmallConfig());
  ClusterConfig faulty_cfg = SmallConfig();
  faulty_cfg.fault.DropNth(10);  // loses in-flight work -> watchdog retry
  auto [faulty_rows, faulty] = row_messages(faulty_cfg);

  // Injected faults and the recovery they triggered are all visible.
  EXPECT_EQ(clean.fault.drops, 0u);
  EXPECT_EQ(faulty.fault.drops, 1u);
  EXPECT_GE(faulty.fault.retries, 1u);
  EXPECT_EQ(faulty.queries_completed, 1u);
  // The retried attempt re-sent its rows: strictly more kResultRow messages
  // crossed the wire than in the fault-free run.
  EXPECT_GT(clean_rows, 0u);
  EXPECT_GT(faulty_rows, clean_rows);
}

TEST(MetricsChaosTest, ChaosSnapshotsAreBitIdenticalAcrossSameSeedRuns) {
  TestGraph tg = MakeGraph(4);
  auto run = [&]() {
    ClusterConfig cfg = SmallConfig();
    cfg.trace = true;
    cfg.fault.seed = 77;
    cfg.fault.drop_prob = 0.01;
    cfg.fault.dup_prob = 0.02;
    cfg.fault.delay_prob = 0.02;
    SimCluster cluster(cfg, tg.graph);
    cluster.Submit(KHopPlan(tg, 1, 3), 0);
    cluster.Submit(KHopPlan(tg, 2, 2), 500);
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    return std::make_pair(cluster.MetricsSnapshot().ToString(),
                          cluster.tracer().ToJson());
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first.first, second.first);    // metrics dump bit-identical
  EXPECT_EQ(first.second, second.second);  // trace JSON bit-identical
}

}  // namespace
}  // namespace graphdance
