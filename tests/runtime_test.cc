// End-to-end tests of the simulated cluster runtime: every engine executes
// real PSTM plans over real graphs; results are checked against
// single-threaded reference oracles, across engines, weight-coalescing
// settings and I/O modes.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include "graph/generators.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"

namespace graphdance {
namespace {

// ---- reference oracles -------------------------------------------------------

/// BFS: all vertices within `k` hops of `start` (including start).
std::set<VertexId> RefKHop(const PartitionedGraph& g, LabelId elabel, VertexId start,
                           int k) {
  std::set<VertexId> seen = {start};
  std::vector<VertexId> frontier = {start};
  for (int hop = 0; hop < k; ++hop) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      g.ForEachNeighbor(v, elabel, Direction::kOut, [&](VertexId d, const Value&) {
        if (seen.insert(d).second) next.push_back(d);
      });
    }
    frontier = std::move(next);
  }
  return seen;
}

/// Reference top-k rows [id, weight] ordered by weight desc, id asc.
std::vector<Row> RefTopK(const PartitionedGraph& g, PropKeyId weight_key,
                         const std::set<VertexId>& vertices, size_t k) {
  std::vector<Row> rows;
  for (VertexId v : vertices) {
    const Value* w = g.PropertyOf(v, weight_key);
    rows.push_back(Row{Value(static_cast<int64_t>(v)), w ? *w : Value()});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    int c = a[1].Compare(b[1]);
    if (c != 0) return c > 0;
    return a[0].Compare(b[0]) < 0;
  });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

std::vector<Row> SortedRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    for (size_t i = 0; i < a.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return rows;
}

struct TestGraph {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  LabelId link;
  PropKeyId weight;
};

TestGraph MakeGraph(uint32_t partitions, uint64_t nv = 2048, uint64_t ne = 16384,
                    uint64_t seed = 5) {
  TestGraph tg;
  tg.schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = nv;
  opt.num_edges = ne;
  opt.seed = seed;
  opt.weight_range = 10'000;
  auto result = GeneratePowerLawGraph(opt, tg.schema, partitions);
  EXPECT_TRUE(result.ok());
  tg.graph = result.TakeValue();
  tg.link = tg.schema->EdgeLabel("link");
  tg.weight = tg.schema->PropKey("weight");
  return tg;
}

ClusterConfig MakeConfig(uint32_t nodes, uint32_t wpn, EngineKind engine) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.workers_per_node = wpn;
  cfg.engine = engine;
  return cfg;
}

/// The paper's Fig. 1 query: top-10 most weighted vertices within k hops.
std::shared_ptr<const Plan> KHopTopKPlan(const TestGraph& tg, VertexId start, int k,
                                         size_t limit = 10) {
  auto plan = Traversal(tg.graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
                  .Project({Operand::VertexIdOp(), Operand::Property(tg.weight)})
                  .OrderByLimit({{1, false}, {0, true}}, limit)
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.TakeValue();
}

/// Plain k-hop reachability count (dedup via distance memo, then Count).
std::shared_ptr<const Plan> KHopCountPlan(const TestGraph& tg, VertexId start, int k) {
  auto plan = Traversal(tg.graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
                  .Count()
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.TakeValue();
}

// ---- basic async execution ---------------------------------------------------

TEST(AsyncEngineTest, KHopCountMatchesBfs) {
  TestGraph tg = MakeGraph(8);
  SimCluster cluster(MakeConfig(2, 4, EngineKind::kAsync), tg.graph);
  for (VertexId start : {VertexId{0}, VertexId{5}, VertexId{100}}) {
    for (int k : {1, 2, 3}) {
      SimCluster c(MakeConfig(2, 4, EngineKind::kAsync), tg.graph);
      auto res = c.Run(KHopCountPlan(tg, start, k));
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      ASSERT_EQ(res.value().rows.size(), 1u);
      size_t expected = RefKHop(*tg.graph, tg.link, start, k).size();
      EXPECT_EQ(res.value().rows[0][0].as_int(), static_cast<int64_t>(expected))
          << "start=" << start << " k=" << k;
    }
  }
}

TEST(AsyncEngineTest, KHopTopKMatchesReference) {
  TestGraph tg = MakeGraph(8);
  for (int k : {2, 3}) {
    SimCluster cluster(MakeConfig(2, 4, EngineKind::kAsync), tg.graph);
    auto res = cluster.Run(KHopTopKPlan(tg, /*start=*/3, k));
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    auto expected = RefTopK(*tg.graph, tg.weight,
                            RefKHop(*tg.graph, tg.link, 3, k), 10);
    ASSERT_EQ(res.value().rows.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(res.value().rows[i], expected[i]) << "row " << i << " k=" << k;
    }
  }
}

TEST(AsyncEngineTest, LatencyIsPositiveAndFinite) {
  TestGraph tg = MakeGraph(4);
  SimCluster cluster(MakeConfig(2, 2, EngineKind::kAsync), tg.graph);
  auto res = cluster.Run(KHopTopKPlan(tg, 1, 2));
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res.value().LatencyMicros(), 0.0);
  EXPECT_TRUE(res.value().done);
}

TEST(AsyncEngineTest, DeterministicAcrossRuns) {
  TestGraph tg = MakeGraph(8);
  std::vector<Row> first;
  double latency = 0;
  for (int trial = 0; trial < 2; ++trial) {
    SimCluster cluster(MakeConfig(2, 4, EngineKind::kAsync), tg.graph);
    auto res = cluster.Run(KHopTopKPlan(tg, 7, 3));
    ASSERT_TRUE(res.ok());
    if (trial == 0) {
      first = res.value().rows;
      latency = res.value().LatencyMicros();
    } else {
      EXPECT_EQ(res.value().rows, first);
      EXPECT_DOUBLE_EQ(res.value().LatencyMicros(), latency);
    }
  }
}

TEST(AsyncEngineTest, MissingStartVertexCompletesEmpty) {
  TestGraph tg = MakeGraph(4, 256, 1024);
  SimCluster cluster(MakeConfig(1, 4, EngineKind::kAsync), tg.graph);
  auto res = cluster.Run(KHopTopKPlan(tg, /*start=*/999999, 2));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res.value().rows.empty());
}

TEST(AsyncEngineTest, ConcurrentQueriesAllComplete) {
  TestGraph tg = MakeGraph(8);
  SimCluster cluster(MakeConfig(2, 4, EngineKind::kAsync), tg.graph);
  std::vector<uint64_t> ids;
  for (VertexId s = 0; s < 16; ++s) {
    ids.push_back(cluster.Submit(KHopCountPlan(tg, s, 2), /*at=*/s * 1000));
  }
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  for (VertexId s = 0; s < 16; ++s) {
    const QueryResult& r = cluster.result(ids[s]);
    EXPECT_TRUE(r.done);
    ASSERT_EQ(r.rows.size(), 1u);
    EXPECT_EQ(r.rows[0][0].as_int(),
              static_cast<int64_t>(RefKHop(*tg.graph, tg.link, s, 2).size()));
  }
}

TEST(AsyncEngineTest, MemosClearedAfterQuery) {
  TestGraph tg = MakeGraph(4);
  SimCluster cluster(MakeConfig(1, 4, EngineKind::kAsync), tg.graph);
  auto res = cluster.Run(KHopCountPlan(tg, 2, 3));
  ASSERT_TRUE(res.ok());
  for (PartitionId p = 0; p < 4; ++p) {
    EXPECT_EQ(cluster.memo(p).size(), 0u) << "partition " << p;
  }
}

// ---- filters / projections / dedup -------------------------------------------

TEST(AsyncEngineTest, FilterByProperty) {
  TestGraph tg = MakeGraph(4, 512, 4096);
  // Count 2-hop neighbors with weight >= 5000.
  auto plan = Traversal(tg.graph)
                  .V({1})
                  .RepeatOut("link", 2, true)
                  .Has("weight", CmpOp::kGe, Value(int64_t{5000}))
                  .Count()
                  .Build();
  ASSERT_TRUE(plan.ok());
  SimCluster cluster(MakeConfig(2, 2, EngineKind::kAsync), tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());

  int64_t expected = 0;
  for (VertexId v : RefKHop(*tg.graph, tg.link, 1, 2)) {
    const Value* w = tg.graph->PropertyOf(v, tg.weight);
    if (w != nullptr && w->as_int() >= 5000) ++expected;
  }
  EXPECT_EQ(res.value().rows[0][0].as_int(), expected);
}

TEST(AsyncEngineTest, DedupStepDeduplicates) {
  TestGraph tg = MakeGraph(4, 512, 4096);
  // 2-hop paths WITHOUT distance pruning, then Dedup by vertex: the result
  // count must equal the distinct vertices at <=2 hops.
  auto plan = Traversal(tg.graph)
                  .V({1})
                  .RepeatOut("link", 2, /*dedup=*/false)
                  .Dedup()
                  .Count()
                  .Build();
  ASSERT_TRUE(plan.ok());
  SimCluster cluster(MakeConfig(2, 2, EngineKind::kAsync), tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().rows[0][0].as_int(),
            static_cast<int64_t>(RefKHop(*tg.graph, tg.link, 1, 2).size()));
}

TEST(AsyncEngineTest, GroupByCountsPerKey) {
  TestGraph tg = MakeGraph(4, 256, 2048);
  // Group 1-hop neighbors of several starts by hop count (trivially 1) and
  // by vertex: count of visits per vertex at exactly 1 hop from vertex 0.
  auto plan = Traversal(tg.graph)
                  .V({0})
                  .Out("link")
                  .GroupCount(Operand::VertexIdOp())
                  .Build();
  ASSERT_TRUE(plan.ok());
  SimCluster cluster(MakeConfig(2, 2, EngineKind::kAsync), tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());

  std::map<VertexId, int64_t> expected;
  tg.graph->ForEachNeighbor(0, tg.link, Direction::kOut,
                            [&](VertexId d, const Value&) { expected[d]++; });
  ASSERT_EQ(res.value().rows.size(), expected.size());
  for (const Row& row : res.value().rows) {
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(row[1].as_int(), expected[row[0].as_int()]);
  }
}

TEST(AsyncEngineTest, ScalarSumMatchesReference) {
  TestGraph tg = MakeGraph(4, 512, 4096);
  auto plan = Traversal(tg.graph)
                  .V({9})
                  .RepeatOut("link", 2, true)
                  .Values("weight")
                  .Sum(Operand::Var(0))
                  .Build();
  ASSERT_TRUE(plan.ok());
  SimCluster cluster(MakeConfig(2, 2, EngineKind::kAsync), tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());
  double expected = 0;
  for (VertexId v : RefKHop(*tg.graph, tg.link, 9, 2)) {
    expected += tg.graph->PropertyOf(v, tg.weight)->ToDouble();
  }
  ASSERT_EQ(res.value().rows.size(), 1u);
  EXPECT_DOUBLE_EQ(res.value().rows[0][0].as_double(), expected);
}

TEST(AsyncEngineTest, IndexLookupByProperty) {
  TestGraph tg = MakeGraph(4, 256, 1024);
  LabelId node = tg.schema->VertexLabel("node");
  tg.graph->BuildIndex(node, tg.weight);
  // Find the weight of some vertex, look all vertices with that weight up
  // via the index, and count them.
  int64_t target = tg.graph->PropertyOf(42, tg.weight)->as_int();
  auto plan = Traversal(tg.graph)
                  .V("node", "weight", Value(target))
                  .Count()
                  .Build();
  ASSERT_TRUE(plan.ok());
  SimCluster cluster(MakeConfig(2, 2, EngineKind::kAsync), tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());
  int64_t expected = 0;
  for (VertexId v = 0; v < 256; ++v) {
    const Value* w = tg.graph->PropertyOf(v, tg.weight);
    if (w != nullptr && w->as_int() == target) ++expected;
  }
  EXPECT_GE(expected, 1);
  EXPECT_EQ(res.value().rows[0][0].as_int(), expected);
}

// ---- joins ---------------------------------------------------------------------

TEST(AsyncEngineTest, JoinCountsTwoHopPaths) {
  TestGraph tg = MakeGraph(4, 512, 4096);
  // Paths start ->out-> m ->out-> end, split at m: forward 1 hop from
  // start, backward 1 hop from end; join at the middle vertex.
  VertexId start = 1, end = 2;
  Traversal fwd(tg.graph);
  fwd.V({start}).Out("link");
  Traversal bwd(tg.graph);
  bwd.V({end}).In("link");
  auto plan = Traversal::Join(std::move(fwd), Operand::VertexIdOp(),
                              std::move(bwd), Operand::VertexIdOp())
                  .Count()
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  SimCluster cluster(MakeConfig(2, 2, EngineKind::kAsync), tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  // Oracle: count pairs of edges start->m, m->end (multi-edges count).
  std::map<VertexId, int64_t> mid_counts;
  tg.graph->ForEachNeighbor(start, tg.link, Direction::kOut,
                            [&](VertexId m, const Value&) { mid_counts[m]++; });
  int64_t expected = 0;
  tg.graph->ForEachNeighbor(end, tg.link, Direction::kIn,
                            [&](VertexId m, const Value&) {
                              auto it = mid_counts.find(m);
                              if (it != mid_counts.end()) expected += it->second;
                            });
  ASSERT_EQ(res.value().rows.size(), 1u);
  EXPECT_EQ(res.value().rows[0][0].as_int(), expected);
}

// ---- engine equivalence ---------------------------------------------------------

class EngineEquivalenceTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineEquivalenceTest, TopKMatchesAsync) {
  TestGraph tg = MakeGraph(8, 1024, 8192);
  SimCluster async_cluster(MakeConfig(2, 4, EngineKind::kAsync), tg.graph);
  auto base = async_cluster.Run(KHopTopKPlan(tg, 11, 3));
  ASSERT_TRUE(base.ok());

  SimCluster other(MakeConfig(2, 4, GetParam()), tg.graph);
  auto res = other.Run(KHopTopKPlan(tg, 11, 3));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().rows, base.value().rows);
}

TEST_P(EngineEquivalenceTest, GroupByMatchesAsync) {
  TestGraph tg = MakeGraph(8, 512, 4096);
  auto make_plan = [&] {
    auto p = Traversal(tg.graph).V({0}).Out("link").Out("link")
                 .GroupCount(Operand::VertexIdOp())
                 .Build();
    EXPECT_TRUE(p.ok());
    return p.TakeValue();
  };
  SimCluster async_cluster(MakeConfig(2, 4, EngineKind::kAsync), tg.graph);
  auto base = async_cluster.Run(make_plan());
  ASSERT_TRUE(base.ok());

  SimCluster other(MakeConfig(2, 4, GetParam()), tg.graph);
  auto res = other.Run(make_plan());
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(SortedRows(res.value().rows), SortedRows(base.value().rows));
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineEquivalenceTest,
                         ::testing::Values(EngineKind::kBsp, EngineKind::kShared,
                                           EngineKind::kGaiaSim,
                                           EngineKind::kBanyanSim),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case EngineKind::kBsp:
                               return "bsp";
                             case EngineKind::kShared:
                               return "shared";
                             case EngineKind::kGaiaSim:
                               return "gaia";
                             case EngineKind::kBanyanSim:
                               return "banyan";
                             default:
                               return "other";
                           }
                         });

// ---- configuration sweeps: results invariant -----------------------------------

struct SweepParam {
  bool weight_coalescing;
  IoMode io_mode;
  uint32_t nodes;
  uint32_t wpn;
};

class ConfigSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConfigSweepTest, ResultsInvariantUnderConfig) {
  const SweepParam& p = GetParam();
  TestGraph tg = MakeGraph(p.nodes * p.wpn, 1024, 8192);
  ClusterConfig cfg = MakeConfig(p.nodes, p.wpn, EngineKind::kAsync);
  cfg.weight_coalescing = p.weight_coalescing;
  cfg.io_mode = p.io_mode;
  SimCluster cluster(cfg, tg.graph);
  auto res = cluster.Run(KHopTopKPlan(tg, 5, 3));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto expected =
      RefTopK(*tg.graph, tg.weight, RefKHop(*tg.graph, tg.link, 5, 3), 10);
  EXPECT_EQ(res.value().rows, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfigSweepTest,
    ::testing::Values(SweepParam{true, IoMode::kTlcNlc, 1, 1},
                      SweepParam{true, IoMode::kTlcNlc, 1, 8},
                      SweepParam{true, IoMode::kTlcNlc, 8, 4},
                      SweepParam{false, IoMode::kTlcNlc, 4, 2},
                      SweepParam{true, IoMode::kTlcOnly, 4, 2},
                      SweepParam{true, IoMode::kSyncSend, 4, 2},
                      SweepParam{false, IoMode::kSyncSend, 2, 2}),
    [](const auto& info) {
      const SweepParam& p = info.param;
      std::string name = p.weight_coalescing ? "wc" : "nowc";
      name += p.io_mode == IoMode::kSyncSend
                  ? "_sync"
                  : (p.io_mode == IoMode::kTlcOnly ? "_tlc" : "_tlcnlc");
      name += "_n" + std::to_string(p.nodes) + "w" + std::to_string(p.wpn);
      return name;
    });

// ---- performance-shape sanity ----------------------------------------------------

TEST(PerfShapeTest, AsyncBeatsBspOnKHop) {
  TestGraph tg = MakeGraph(16, 4096, 32768);
  SimCluster async_cluster(MakeConfig(4, 4, EngineKind::kAsync), tg.graph);
  auto a = async_cluster.Run(KHopTopKPlan(tg, 21, 3));
  ASSERT_TRUE(a.ok());

  SimCluster bsp_cluster(MakeConfig(4, 4, EngineKind::kBsp), tg.graph);
  auto b = bsp_cluster.Run(KHopTopKPlan(tg, 21, 3));
  ASSERT_TRUE(b.ok());

  EXPECT_LT(a.value().LatencyMicros(), b.value().LatencyMicros())
      << "async should beat BSP on interactive queries";
}

TEST(PerfShapeTest, MoreWorkersReduceLatency) {
  TestGraph tg1 = MakeGraph(1, 4096, 32768);
  SimCluster c1(MakeConfig(1, 1, EngineKind::kAsync), tg1.graph);
  auto r1 = c1.Run(KHopTopKPlan(tg1, 21, 3));
  ASSERT_TRUE(r1.ok());

  TestGraph tg8 = MakeGraph(8, 4096, 32768);
  SimCluster c8(MakeConfig(2, 4, EngineKind::kAsync), tg8.graph);
  auto r8 = c8.Run(KHopTopKPlan(tg8, 21, 3));
  ASSERT_TRUE(r8.ok());

  EXPECT_LT(r8.value().LatencyMicros(), r1.value().LatencyMicros())
      << "8 workers should beat 1 worker on a large traversal";
}

TEST(PerfShapeTest, SharedStateSlowerThanPartitioned) {
  TestGraph tg = MakeGraph(8, 4096, 32768);
  SimCluster part(MakeConfig(2, 4, EngineKind::kAsync), tg.graph);
  auto rp = part.Run(KHopTopKPlan(tg, 13, 3));
  ASSERT_TRUE(rp.ok());

  SimCluster shared(MakeConfig(2, 4, EngineKind::kShared), tg.graph);
  auto rs = shared.Run(KHopTopKPlan(tg, 13, 3));
  ASSERT_TRUE(rs.ok());

  EXPECT_LT(rp.value().LatencyMicros(), rs.value().LatencyMicros())
      << "partitioned execution should beat the shared/NUMA model";
}

TEST(PerfShapeTest, WeightCoalescingReducesProgressMessages) {
  TestGraph tg = MakeGraph(8, 2048, 16384);
  ClusterConfig with_wc = MakeConfig(2, 4, EngineKind::kAsync);
  SimCluster c1(with_wc, tg.graph);
  ASSERT_TRUE(c1.Run(KHopCountPlan(tg, 3, 3)).ok());
  uint64_t wc_reports = c1.net_stats().progress_messages();

  ClusterConfig no_wc = with_wc;
  no_wc.weight_coalescing = false;
  SimCluster c2(no_wc, tg.graph);
  ASSERT_TRUE(c2.Run(KHopCountPlan(tg, 3, 3)).ok());
  uint64_t raw_reports = c2.net_stats().progress_messages();

  EXPECT_LT(wc_reports * 5, raw_reports)
      << "coalescing should reduce progress messages by a large factor";
}

TEST(PerfShapeTest, TlcReducesFramesVsSyncSend) {
  TestGraph tg = MakeGraph(8, 2048, 16384);
  ClusterConfig sync_cfg = MakeConfig(2, 4, EngineKind::kAsync);
  sync_cfg.io_mode = IoMode::kSyncSend;
  SimCluster c1(sync_cfg, tg.graph);
  ASSERT_TRUE(c1.Run(KHopCountPlan(tg, 3, 3)).ok());

  ClusterConfig tlc_cfg = sync_cfg;
  tlc_cfg.io_mode = IoMode::kTlcOnly;
  SimCluster c2(tlc_cfg, tg.graph);
  ASSERT_TRUE(c2.Run(KHopCountPlan(tg, 3, 3)).ok());

  EXPECT_LT(c2.net_stats().frames * 3, c1.net_stats().frames)
      << "thread-level combining should collapse frames";
}

// ---- transactional read path -----------------------------------------------------

TEST(AsyncEngineTest, SnapshotReadsHonorTimestamps) {
  TestGraph tg = MakeGraph(4, 128, 256);
  // Dynamically add edges 0 -> {10, 11} at ts 100 on the owning partition.
  SimCluster cluster(MakeConfig(1, 4, EngineKind::kAsync), tg.graph);
  PartitionId p0 = tg.graph->PartitionOf(0);
  cluster.ApplyAtPartition(p0, 100, [&](PartitionStore& store) {
    store.tel().AddEdge(0, tg.link, Direction::kOut, 10, 100);
    store.tel().AddEdge(0, tg.link, Direction::kOut, 11, 100);
  });

  auto count_at = [&](Timestamp ts) {
    auto plan = Traversal(tg.graph).V({0}).Out("link").Count().Build();
    EXPECT_TRUE(plan.ok());
    SimCluster c(MakeConfig(1, 4, EngineKind::kAsync), tg.graph);
    auto res = c.Run(plan.TakeValue(), ts);
    EXPECT_TRUE(res.ok());
    return res.value().rows[0][0].as_int();
  };
  int64_t before = count_at(50);
  int64_t after = count_at(150);
  EXPECT_EQ(after, before + 2);
}

}  // namespace
}  // namespace graphdance
