// Tests for PSTM-expressed offline analytics: PageRank (iterative
// Project/Expand/GroupBy scopes) against its single-threaded oracle across
// engines, and the degree histogram.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "analytics/analytics.h"
#include "query/gremlin.h"
#include "graph/generators.h"
#include "runtime/sim_cluster.h"

namespace graphdance {
namespace {

struct TestGraph {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  LabelId node;
  LabelId link;
};

TestGraph MakeGraph(uint32_t parts, uint64_t nv = 512, uint64_t ne = 4096) {
  TestGraph tg;
  tg.schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = nv;
  opt.num_edges = ne;
  opt.seed = 71;
  tg.graph = GeneratePowerLawGraph(opt, tg.schema, parts).TakeValue();
  tg.node = tg.schema->VertexLabel("node");
  tg.link = tg.schema->EdgeLabel("link");
  return tg;
}

std::map<VertexId, double> RowsToRanks(const std::vector<Row>& rows) {
  std::map<VertexId, double> out;
  for (const Row& row : rows) {
    out[static_cast<VertexId>(row[0].as_int())] = row[1].ToDouble();
  }
  return out;
}

TEST(PageRankTest, MatchesReferenceOracle) {
  TestGraph tg = MakeGraph(8);
  for (int iters : {1, 3}) {
    auto plan = BuildPageRankPlan(tg.graph, "node", "link", iters);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    ClusterConfig cfg;
    cfg.num_nodes = 2;
    cfg.workers_per_node = 4;
    SimCluster cluster(cfg, tg.graph);
    auto res = cluster.Run(plan.TakeValue());
    ASSERT_TRUE(res.ok()) << res.status().ToString();

    auto expected = ReferencePageRank(*tg.graph, tg.node, tg.link, iters);
    auto got = RowsToRanks(res.value().rows);
    ASSERT_EQ(got.size(), expected.size()) << "iters=" << iters;
    for (const auto& [v, rank] : expected) {
      auto it = got.find(v);
      ASSERT_NE(it, got.end()) << "missing vertex " << v;
      EXPECT_NEAR(it->second, rank, 1e-9 + rank * 1e-9) << "vertex " << v;
    }
  }
}

TEST(PageRankTest, RanksSumBounded) {
  TestGraph tg = MakeGraph(4);
  auto plan = BuildPageRankPlan(tg.graph, "node", "link", 4);
  ASSERT_TRUE(plan.ok());
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.workers_per_node = 4;
  SimCluster cluster(cfg, tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());
  double sum = 0;
  for (const Row& row : res.value().rows) sum += row[1].ToDouble();
  EXPECT_GT(sum, 0.05);  // mass survives
  EXPECT_LT(sum, 1.01);  // never exceeds total probability mass
}

TEST(PageRankTest, HubsRankHigh) {
  TestGraph tg = MakeGraph(4, 1024, 16384);
  auto plan = BuildPageRankPlan(tg.graph, "node", "link", 3);
  ASSERT_TRUE(plan.ok());
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  SimCluster cluster(cfg, tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());
  auto ranks = RowsToRanks(res.value().rows);

  // The vertex with the highest in-degree should rank in the top decile.
  VertexId top_in = 0;
  uint64_t best = 0;
  for (VertexId v = 0; v < 1024; ++v) {
    uint64_t deg = tg.graph->partition(tg.graph->PartitionOf(v))
                       .Degree(v, tg.link, Direction::kIn, kMaxTimestamp - 1);
    if (deg > best) {
      best = deg;
      top_in = v;
    }
  }
  ASSERT_GT(ranks.count(top_in), 0u);
  double top_rank = ranks[top_in];
  size_t higher = 0;
  for (const auto& [v, r] : ranks) {
    if (r > top_rank) ++higher;
  }
  EXPECT_LT(higher, ranks.size() / 10);
}

TEST(PageRankTest, EnginesAgree) {
  TestGraph tg = MakeGraph(4, 256, 2048);
  auto make_plan = [&] {
    return BuildPageRankPlan(tg.graph, "node", "link", 2).TakeValue();
  };
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  SimCluster async_cluster(cfg, tg.graph);
  auto base = async_cluster.Run(make_plan());
  ASSERT_TRUE(base.ok());
  auto base_ranks = RowsToRanks(base.value().rows);

  for (EngineKind engine : {EngineKind::kBsp, EngineKind::kShared}) {
    ClusterConfig ecfg = cfg;
    ecfg.engine = engine;
    SimCluster cluster(ecfg, tg.graph);
    auto res = cluster.Run(make_plan());
    ASSERT_TRUE(res.ok());
    auto ranks = RowsToRanks(res.value().rows);
    ASSERT_EQ(ranks.size(), base_ranks.size());
    for (const auto& [v, r] : base_ranks) {
      EXPECT_NEAR(ranks[v], r, 1e-12) << "vertex " << v;
    }
  }
}

TEST(PageRankTest, RejectsBadArguments) {
  TestGraph tg = MakeGraph(2, 64, 128);
  EXPECT_FALSE(BuildPageRankPlan(tg.graph, "node", "link", 0).ok());
}

TEST(DegreeHistogramTest, MatchesDirectComputation) {
  TestGraph tg = MakeGraph(4, 512, 2048);
  auto plan = BuildDegreeHistogramPlan(tg.graph, "node", "link");
  ASSERT_TRUE(plan.ok());
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  SimCluster cluster(cfg, tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());

  std::map<int64_t, int64_t> expected;
  for (VertexId v = 0; v < 512; ++v) {
    expected[static_cast<int64_t>(
        tg.graph->partition(tg.graph->PartitionOf(v))
            .Degree(v, tg.link, Direction::kOut, kMaxTimestamp - 1))]++;
  }
  ASSERT_EQ(res.value().rows.size(), expected.size());
  int64_t prev_degree = -1;
  for (const Row& row : res.value().rows) {
    int64_t degree = row[0].as_int();
    EXPECT_GT(degree, prev_degree) << "histogram must be sorted ascending";
    prev_degree = degree;
    EXPECT_EQ(row[1].as_int(), expected[degree]) << "degree " << degree;
  }
}

TEST(ArithOperandTest, ComposesInProjection) {
  TestGraph tg = MakeGraph(2, 64, 256);
  // rank-style expression: 10 + 2 * degree(v).
  Traversal t(tg.graph);
  t.V({1}).Project({Operand::Arith(
      ArithKind::kAdd, Operand::Const(Value(10.0)),
      Operand::Arith(ArithKind::kMul, Operand::Const(Value(2.0)),
                     Operand::Degree(tg.link, Direction::kOut)))});
  auto plan = t.Emit().Build();
  ASSERT_TRUE(plan.ok());
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.workers_per_node = 2;
  SimCluster cluster(cfg, tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().rows.size(), 1u);
  double deg = static_cast<double>(
      tg.graph->partition(tg.graph->PartitionOf(1))
          .Degree(1, tg.link, Direction::kOut, kMaxTimestamp - 1));
  EXPECT_DOUBLE_EQ(res.value().rows[0][0].ToDouble(), 10.0 + 2.0 * deg);
}

TEST(ArithOperandTest, DivisionByZeroYieldsZero) {
  TestGraph tg = MakeGraph(2, 64, 256);
  Traversal t(tg.graph);
  t.V({1}).Project({Operand::Arith(ArithKind::kDiv, Operand::Const(Value(5.0)),
                                   Operand::Const(Value(0.0)))});
  auto plan = t.Emit().Build();
  ASSERT_TRUE(plan.ok());
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.workers_per_node = 2;
  SimCluster cluster(cfg, tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());
  EXPECT_DOUBLE_EQ(res.value().rows[0][0].ToDouble(), 0.0);
}

}  // namespace
}  // namespace graphdance
