// Tests for the resource-governance subsystem (DESIGN.md §11): admission
// control with weighted fairness and deadline-aware backlog shedding,
// credit-based flow control on inter-node links, per-worker task-byte and
// memo-byte budgets, and the resource-ledger invariant checker that audits
// all of it. The battery proves three things end to end:
//   1. Off means off: with qos.enabled == false the metrics snapshot and the
//      trace are byte-identical to a pre-QoS build on the pinned schedule.
//   2. Governance never changes answers: every admitted query returns rows
//      identical to an ungoverned serial run, across engines, tie-break
//      seeds, tight credit windows and the faulted differential matrix.
//   3. Limits actually limit: backlog overflow sheds, queued-past-deadline
//      queries never start, credit windows hold flushes, task budgets defer
//      ingestion, and the memo budget aborts the hungriest query — all with
//      zero resource-ledger trips.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "check/oracle.h"
#include "common/random.h"
#include "graph/generators.h"
#include "qos/qos.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"

namespace graphdance {
namespace {

using check::CheckHarness;
using check::DifferentialOptions;
using check::DifferentialReport;
using check::ReplaySpec;
using check::RunDifferential;

// --- shared workload helpers (same idiom as check_test / chaos_test) --------

struct TestGraph {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  LabelId link;
  PropKeyId weight;
};

TestGraph MakeGraph(uint32_t partitions, uint64_t nv = 1024, uint64_t ne = 8192,
                    uint64_t seed = 11) {
  TestGraph tg;
  tg.schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = nv;
  opt.num_edges = ne;
  opt.seed = seed;
  opt.weight_range = 10'000;
  auto result = GeneratePowerLawGraph(opt, tg.schema, partitions);
  EXPECT_TRUE(result.ok());
  tg.graph = result.TakeValue();
  tg.link = tg.schema->EdgeLabel("link");
  tg.weight = tg.schema->PropKey("weight");
  return tg;
}

ClusterConfig BaseConfig(EngineKind engine = EngineKind::kAsync) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  cfg.engine = engine;
  cfg.progress_timeout_ns = 20'000'000;
  return cfg;
}

std::shared_ptr<const Plan> TopKPlan(const TestGraph& tg, VertexId start, int k,
                                     size_t limit = 10) {
  auto plan = Traversal(tg.graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
                  .Project({Operand::VertexIdOp(), Operand::Property(tg.weight)})
                  .OrderByLimit({{1, false}, {0, true}}, limit)
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.TakeValue();
}

std::shared_ptr<const Plan> CountPlan(const TestGraph& tg, VertexId start,
                                      int k) {
  auto plan = Traversal(tg.graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
                  .Count()
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.TakeValue();
}

/// Six overlapping queries: enough concurrency to force queueing behind a
/// small max_concurrent and real cross-partition traffic for flow control.
std::vector<std::shared_ptr<const Plan>> OverlapPlans(const TestGraph& tg) {
  return {TopKPlan(tg, 1, 3),  CountPlan(tg, 5, 2), TopKPlan(tg, 17, 2, 5),
          TopKPlan(tg, 9, 3),  CountPlan(tg, 2, 3), TopKPlan(tg, 33, 2, 7)};
}

/// Ungoverned serial reference: each plan alone on a fresh pinned-schedule
/// async cluster. The bar every governed run must clear row-for-row.
std::vector<std::vector<Row>> SerialReference(
    const TestGraph& tg, const std::vector<std::shared_ptr<const Plan>>& plans) {
  std::vector<std::vector<Row>> out;
  for (const auto& p : plans) {
    SimCluster cluster(BaseConfig(), tg.graph);
    auto r = cluster.Run(p);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    out.push_back(check::CanonicalRows(r.value().rows));
  }
  return out;
}

// --- off means off: byte-identical snapshots and traces ---------------------

TEST(QosOffTest, DisabledKnobsLeaveSnapshotAndTraceByteIdentical) {
  TestGraph tg = MakeGraph(4);
  auto plans = OverlapPlans(tg);

  auto run = [&](const ClusterConfig& cfg) {
    SimCluster cluster(cfg, tg.graph);
    for (const auto& p : plans) cluster.Submit(p, 0);
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    return std::make_pair(cluster.MetricsSnapshot().ToString(),
                          cluster.tracer().ToJson());
  };

  ClusterConfig plain = BaseConfig();
  plain.trace = true;

  // Every governance knob cranked to aggressive values — but enabled=false,
  // so none of it may perturb the schedule, the metrics or the trace.
  ClusterConfig knobs = plain;
  knobs.qos.enabled = false;
  knobs.qos.max_concurrent_queries = 1;
  knobs.qos.max_queued_queries = 1;
  knobs.qos.worker_task_budget_bytes = 1024;
  knobs.qos.worker_memo_budget_bytes = 1024;
  knobs.qos.memo_check_interval = 1;
  knobs.qos.link_credit_bytes = 512;
  knobs.qos.sender_stall_bytes = 256;

  auto [plain_metrics, plain_trace] = run(plain);
  auto [knob_metrics, knob_trace] = run(knobs);
  EXPECT_EQ(plain_metrics, knob_metrics);
  EXPECT_EQ(plain_trace, knob_trace);
  // The qos sections are gated exactly like checker_attached: absent when
  // governance is off, so pre-QoS golden snapshots keep matching.
  EXPECT_EQ(plain_metrics.find("qos:"), std::string::npos);
  EXPECT_EQ(plain_metrics.find("qos_flow:"), std::string::npos);
  EXPECT_EQ(plain_metrics.find("qos_budget:"), std::string::npos);
}

// --- governance never changes answers ---------------------------------------

TEST(QosInterleavingTest, GovernedRowsMatchUngovernedSerialAcrossEngines) {
  TestGraph tg = MakeGraph(4);
  auto plans = OverlapPlans(tg);
  std::vector<std::vector<Row>> reference = SerialReference(tg, plans);

  for (EngineKind engine : {EngineKind::kAsync, EngineKind::kBsp}) {
    for (uint64_t seed : {uint64_t{0}, uint64_t{7}}) {
      for (bool governed : {false, true}) {
        SCOPED_TRACE(std::string("engine=") +
                     (engine == EngineKind::kAsync ? "async" : "bsp") +
                     " seed=" + std::to_string(seed) +
                     " qos=" + (governed ? "on" : "off"));
        ClusterConfig cfg = BaseConfig(engine);
        cfg.explore.tiebreak_seed = seed;
        if (seed != 0) cfg.explore.jitter_ns = 500;
        if (governed) {
          cfg.qos.enabled = true;
          // Small enough to force real queueing, generous enough that no
          // query is ever shed: governance must reorder, never reject.
          cfg.qos.max_concurrent_queries = 2;
          cfg.qos.max_queued_queries = 64;
          cfg.qos.link_credit_bytes = 8192;
          cfg.qos.sender_stall_bytes = 4096;
        }
        SimCluster cluster(cfg, tg.graph);
        std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
        cluster.AttachChecker(harness.get());
        std::vector<uint64_t> ids;
        for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
        ASSERT_TRUE(cluster.RunToCompletion().ok());
        for (size_t i = 0; i < ids.size(); ++i) {
          const QueryResult& r = cluster.result(ids[i]);
          EXPECT_TRUE(r.done);
          EXPECT_FALSE(r.failed) << r.failure_reason;
          EXPECT_FALSE(r.resource_exhausted);
          EXPECT_EQ(check::CanonicalRows(r.rows), reference[i])
              << "plan " << i << " diverged from the serial reference";
        }
        EXPECT_EQ(harness->trip_count(), 0u) << harness->trips()[0].what;
      }
    }
  }
}

TEST(QosInterleavingTest, GovernedDifferentialMatrixMatchesReference) {
  // The full oracle matrix — {async, bsp, hybrid} x tie-break seeds — under
  // the standard QoS stress config. Budgets are sized so nothing is shed:
  // every cell must stay row-identical to the ungoverned single-worker
  // reference with zero checker trips.
  DifferentialOptions opt;
  opt.num_seeds = 4;
  opt.jitter_ns = 1000;
  opt.qos = true;
  auto rep = RunDifferential(check::MakeDefaultCheckWorkload(), opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  const DifferentialReport& r = rep.value();
  EXPECT_EQ(r.cells, 3u * 4u);
  EXPECT_EQ(r.trips, 0u) << r.Summary();
  EXPECT_EQ(r.mismatches, 0u) << r.Summary();
  EXPECT_EQ(r.explicit_failures, 0u);  // generous budgets: nothing shed
  EXPECT_TRUE(r.ok());
}

TEST(QosAcceptanceTest, SixtyFourSeedsThreeEnginesGovernedAndFaulted) {
  // The PR's acceptance bar: >= 64 tie-break seeds x {async, bsp, hybrid}
  // with QoS governance AND message-level faults active simultaneously —
  // zero resource-ledger (or any other checker) trips, no silent mismatches.
  DifferentialOptions opt;
  opt.num_seeds = 64;
  opt.jitter_ns = 2000;
  opt.qos = true;
  opt.fault_active = true;
  opt.fault.seed = 77;
  opt.fault.dup_prob = 0.02;
  opt.fault.delay_prob = 0.02;
  opt.fault.drop_prob = 0.0005;
  auto rep = RunDifferential(check::MakeDefaultCheckWorkload(), opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  const DifferentialReport& r = rep.value();
  EXPECT_EQ(r.cells, 3u * 64u);
  EXPECT_EQ(r.trips, 0u) << r.Summary();
  EXPECT_EQ(r.mismatches, 0u) << r.Summary();
  EXPECT_TRUE(r.ok()) << r.Summary();
}

// --- admission control -------------------------------------------------------

TEST(AdmissionTest, ShedsArrivalsPastTheBacklogLimit) {
  TestGraph tg = MakeGraph(4);
  auto plan = TopKPlan(tg, 1, 3);
  std::vector<Row> reference;
  {
    SimCluster ref(BaseConfig(), tg.graph);
    auto r = ref.Run(plan);
    ASSERT_TRUE(r.ok());
    reference = check::CanonicalRows(r.value().rows);
  }

  ClusterConfig cfg = BaseConfig();
  cfg.qos.enabled = true;
  cfg.qos.max_concurrent_queries = 1;
  cfg.qos.max_queued_queries = 2;
  SimCluster cluster(cfg, tg.graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(cluster.Submit(plan, 0));
  ASSERT_TRUE(cluster.RunToCompletion().ok());

  // 1 admitted at arrival + 2 drained from the backlog; the other 5 arrivals
  // found the backlog full and were shed resource-exhausted.
  size_t ok = 0, shed = 0;
  for (uint64_t id : ids) {
    const QueryResult& r = cluster.result(id);
    EXPECT_TRUE(r.done);
    if (r.resource_exhausted) {
      ++shed;
      EXPECT_TRUE(r.failed);
      EXPECT_TRUE(r.rows.empty());
      EXPECT_EQ(r.failure_reason, "admission backlog full");
    } else {
      ++ok;
      EXPECT_EQ(check::CanonicalRows(r.rows), reference)
          << "an admitted query diverged from the ungoverned reference";
    }
  }
  EXPECT_EQ(ok, 3u);
  EXPECT_EQ(shed, 5u);

  obs::MetricsSnapshot s = cluster.MetricsSnapshot();
  EXPECT_TRUE(s.qos_enabled);
  EXPECT_EQ(s.qos.submitted, 8u);
  EXPECT_EQ(s.qos.admitted, 3u);
  EXPECT_EQ(s.qos.shed, 5u);
  EXPECT_EQ(s.qos.cancelled, 0u);
  EXPECT_EQ(s.qos.peak_queued, 2u);
  EXPECT_NE(s.ToString().find("qos:"), std::string::npos);
  EXPECT_EQ(harness->trip_count(), 0u) << harness->trips()[0].what;
}

TEST(AdmissionTest, DeadlineTimerCancelsAQueuedQuery) {
  // Async engine: the query's deadline fires while it still sits in the
  // admission backlog. It must complete timed-out without ever starting
  // (no rows, no slot consumed) via the controller's Cancel path.
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = BaseConfig();
  cfg.qos.enabled = true;
  cfg.qos.max_concurrent_queries = 1;
  SimCluster cluster(cfg, tg.graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());

  uint64_t big = cluster.Submit(TopKPlan(tg, 1, 3), 0);
  uint64_t doomed = cluster.Submit(CountPlan(tg, 5, 2), 0,
                                   kMaxTimestamp - 1, /*deadline_ns=*/1);
  ASSERT_TRUE(cluster.RunToCompletion().ok());

  EXPECT_TRUE(cluster.result(big).done);
  EXPECT_FALSE(cluster.result(big).timed_out);
  const QueryResult& r = cluster.result(doomed);
  EXPECT_TRUE(r.done);
  EXPECT_TRUE(r.timed_out);
  EXPECT_TRUE(r.rows.empty());

  obs::MetricsSnapshot s = cluster.MetricsSnapshot();
  EXPECT_EQ(s.qos.cancelled, 1u);
  EXPECT_EQ(s.qos.admitted, 1u);
  EXPECT_EQ(harness->trip_count(), 0u) << harness->trips()[0].what;
}

TEST(AdmissionTest, BspDriverShedsQueuedPastDeadlineInsteadOfStarting) {
  // BSP runs its backlog serially; a queued query whose wait already blew
  // its deadline is shed at its turn (ForceAdmit fails), never started.
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = BaseConfig(EngineKind::kBsp);
  cfg.qos.enabled = true;
  cfg.qos.max_concurrent_queries = 1;
  SimCluster cluster(cfg, tg.graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());

  uint64_t big = cluster.Submit(TopKPlan(tg, 1, 3), 0);
  uint64_t doomed = cluster.Submit(CountPlan(tg, 5, 2), 0,
                                   kMaxTimestamp - 1, /*deadline_ns=*/1);
  ASSERT_TRUE(cluster.RunToCompletion().ok());

  EXPECT_TRUE(cluster.result(big).done);
  EXPECT_FALSE(cluster.result(big).resource_exhausted);
  const QueryResult& r = cluster.result(doomed);
  EXPECT_TRUE(r.done);
  EXPECT_TRUE(r.timed_out);
  EXPECT_TRUE(r.resource_exhausted);
  EXPECT_EQ(r.failure_reason, "deadline exceeded while queued");
  EXPECT_EQ(harness->trip_count(), 0u) << harness->trips()[0].what;
}

// --- flow control and budgets ------------------------------------------------

TEST(FlowControlTest, TightCreditsHoldFlushesWithoutChangingAnswers) {
  TestGraph tg = MakeGraph(4);
  auto plans = OverlapPlans(tg);
  std::vector<std::vector<Row>> reference = SerialReference(tg, plans);

  ClusterConfig cfg = BaseConfig();
  cfg.qos.enabled = true;
  cfg.qos.link_credit_bytes = 2048;   // far below the tier-1 flush threshold
  cfg.qos.sender_stall_bytes = 1024;  // senders park while credit-blocked
  cfg.qos.worker_task_budget_bytes = 4096;  // ingestion gates under load
  SimCluster cluster(cfg, tg.graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());
  std::vector<uint64_t> ids;
  for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
  ASSERT_TRUE(cluster.RunToCompletion().ok());

  for (size_t i = 0; i < ids.size(); ++i) {
    const QueryResult& r = cluster.result(ids[i]);
    EXPECT_TRUE(r.done);
    EXPECT_FALSE(r.resource_exhausted) << r.failure_reason;
    EXPECT_EQ(check::CanonicalRows(r.rows), reference[i]) << "plan " << i;
  }

  obs::MetricsSnapshot s = cluster.MetricsSnapshot();
  // The tiny window actually blocked flushes, and the task budget actually
  // deferred ingestion — the mechanisms engaged, they didn't just exist.
  EXPECT_GT(s.qos.flushes_held, 0u);
  EXPECT_GT(s.qos.ingest_deferrals, 0u);
  // Credit conservation at quiescence: everything consumed came back, every
  // meter is idle at full grant, nothing ever clamped.
  EXPECT_EQ(s.qos.credit_bytes_consumed, s.qos.credit_bytes_returned);
  EXPECT_GT(s.qos.credit_bytes_consumed, 0u);
  cluster.ProbeLinkCredits([](const check::LinkCreditProbe& lc) {
    EXPECT_EQ(lc.outstanding, 0u)
        << "link " << lc.src_node << "->" << lc.dst_node;
    EXPECT_EQ(lc.available, lc.granted);
    EXPECT_FALSE(lc.saturated);
  });
  EXPECT_EQ(harness->trip_count(), 0u) << harness->trips()[0].what;
}

TEST(FlowControlTest, TaskBudgetBoundsPeakQueuedBytes) {
  // The budget is enforced at ingest: remote bytes stop entering while a
  // worker is over budget. It deliberately does NOT gate a task's own local
  // fan-out — blocking a worker from expanding its own queue would deadlock
  // the drain — so a multi-hop frontier can exceed the budget locally. The
  // workload here is therefore remote-dominated: single-hop expansions from
  // many scattered sources, whose traversers arrive almost entirely over
  // the wire and die after one hop. Ungoverned, a burst of delivered frames
  // dumps straight into the task queue; governed, ingestion stops at the
  // budget and the backlog waits in the inbox (and, via credits, upstream).
  // 16 partitions: a task's local emission share is 1/16, so with avg
  // out-degree 8 the local growth factor is 1/2 — local queues decay and
  // nearly everything a worker executes arrived through its inbox.
  TestGraph tg;
  tg.schema = std::make_shared<Schema>();
  auto g = GenerateUniformGraph(4096, 32768, 13, tg.schema, 16);
  ASSERT_TRUE(g.ok());
  tg.graph = g.TakeValue();
  tg.link = tg.schema->EdgeLabel("link");
  tg.weight = tg.schema->PropKey("weight");
  std::vector<std::shared_ptr<const Plan>> plans;
  for (int q = 0; q < 8; ++q) {
    std::vector<VertexId> starts;
    for (VertexId v = 0; v < 64; ++v) starts.push_back(q * 64 + v);
    auto plan = Traversal(tg.graph)
                    .V(starts)
                    .RepeatOut("link", 2, /*dedup=*/true)
                    .Count()
                    .Build();
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans.push_back(plan.TakeValue());
  }

  auto peak_bytes = [&](uint64_t budget) {
    ClusterConfig cfg = BaseConfig();
    cfg.num_nodes = 8;
    cfg.qos.enabled = true;
    cfg.qos.worker_task_budget_bytes = budget;
    SimCluster cluster(cfg, tg.graph);
    // Open-loop burst: every plan four times, all arriving at once.
    for (int rep = 0; rep < 4; ++rep) {
      for (const auto& p : plans) cluster.Submit(p, 0);
    }
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    return cluster.MetricsSnapshot().qos.peak_task_bytes;
  };

  const uint64_t small_budget = 4096;
  uint64_t governed_peak = peak_bytes(small_budget);
  uint64_t open_peak = peak_bytes(1ull << 40);  // effectively unbounded
  EXPECT_GT(governed_peak, 0u);
  EXPECT_LE(governed_peak, small_budget + (8u << 10))
      << "budget + local-fanout slack exceeded: " << governed_peak;
  EXPECT_GT(open_peak, 2 * governed_peak)
      << "the workload never pressured the budget: open peak " << open_peak;
}

TEST(BudgetTest, MemoBudgetAbortsTheHungriestQuery) {
  TestGraph tg = MakeGraph(4);
  auto plans = OverlapPlans(tg);

  ClusterConfig cfg = BaseConfig();
  cfg.qos.enabled = true;
  cfg.qos.worker_memo_budget_bytes = 512;  // a handful of memo states
  cfg.qos.memo_check_interval = 1;
  SimCluster cluster(cfg, tg.graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());
  std::vector<uint64_t> ids;
  for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
  ASSERT_TRUE(cluster.RunToCompletion().ok());

  size_t aborted = 0;
  for (uint64_t id : ids) {
    const QueryResult& r = cluster.result(id);
    EXPECT_TRUE(r.done);
    if (r.resource_exhausted) {
      ++aborted;
      EXPECT_NE(r.failure_reason.find("memo budget exceeded"),
                std::string::npos)
          << r.failure_reason;
      EXPECT_TRUE(r.rows.empty());
    }
  }
  EXPECT_GE(aborted, 1u);

  obs::MetricsSnapshot s = cluster.MetricsSnapshot();
  EXPECT_GE(s.qos.memo_aborts, 1u);
  EXPECT_GT(s.qos.peak_memo_bytes, 0u);
  EXPECT_EQ(harness->trip_count(), 0u) << harness->trips()[0].what;
}

TEST(BudgetTest, MemoBudgetAbortSurvivesAnActiveFaultSchedule) {
  // A worker crash interleaved with hungriest-query aborts: the crash wipes
  // one worker's memo partition and queued tasks mid-pressure, recovery
  // retries its coordinated queries, and the sweep keeps aborting over-budget
  // ones — the resource ledger must balance through both teardown paths at
  // once, and every query must still reach a terminal state.
  TestGraph tg = MakeGraph(4);
  auto plans = OverlapPlans(tg);

  ClusterConfig cfg = BaseConfig();
  cfg.qos.enabled = true;
  cfg.qos.worker_memo_budget_bytes = 512;
  cfg.qos.memo_check_interval = 1;
  cfg.fault.CrashWorker(/*worker=*/1, /*at=*/50'000,
                        /*restart_after=*/400'000);
  SimCluster cluster(cfg, tg.graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());
  std::vector<uint64_t> ids;
  for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
  ASSERT_TRUE(cluster.RunToCompletion().ok());

  size_t aborted = 0;
  for (uint64_t id : ids) {
    const QueryResult& r = cluster.result(id);
    EXPECT_TRUE(r.done);
    if (r.resource_exhausted) {
      ++aborted;
      EXPECT_NE(r.failure_reason.find("memo budget exceeded"),
                std::string::npos)
          << r.failure_reason;
    }
  }
  EXPECT_GE(aborted, 1u);
  EXPECT_EQ(cluster.fault_stats().crashes, 1u);
  EXPECT_EQ(cluster.fault_stats().restarts, 1u);
  EXPECT_GE(cluster.MetricsSnapshot().qos.memo_aborts, 1u);
  EXPECT_EQ(harness->trip_count(), 0u) << harness->trips()[0].what;
}

// --- diagnostics -------------------------------------------------------------

TEST(DiagnosticsTest, EventBudgetExhaustionNamesStuckQueries) {
  TestGraph tg = MakeGraph(4);
  SimCluster cluster(BaseConfig(), tg.graph);
  for (const auto& p : OverlapPlans(tg)) cluster.Submit(p, 0);
  Status st = cluster.RunToCompletion(/*max_events=*/50);
  ASSERT_FALSE(st.ok());
  std::string msg = st.ToString();
  EXPECT_NE(msg.find("event budget exhausted"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unfinished queries"), std::string::npos) << msg;
  EXPECT_NE(msg.find("q1(submitted@"), std::string::npos) << msg;
}

TEST(DiagnosticsTest, EventBudgetExhaustionMarksUnadmittedQueries) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = BaseConfig();
  cfg.qos.enabled = true;
  cfg.qos.max_concurrent_queries = 1;
  SimCluster cluster(cfg, tg.graph);
  for (const auto& p : OverlapPlans(tg)) cluster.Submit(p, 0);
  Status st = cluster.RunToCompletion(/*max_events=*/200);
  ASSERT_FALSE(st.ok());
  // With max_concurrent=1 and six arrivals, at least one stuck query is
  // still waiting in the admission backlog when the budget runs out.
  EXPECT_NE(st.ToString().find("awaiting admission"), std::string::npos)
      << st.ToString();
}

// --- replay token ------------------------------------------------------------

TEST(ReplayTokenTest, QosFlagRoundTripsAndStaysBackCompatible) {
  ReplaySpec spec;
  spec.mode = "bsp";
  spec.tiebreak_seed = 5;
  spec.qos = true;
  std::string token = check::FormatReplayToken(spec);
  EXPECT_NE(token.find(";qos=1"), std::string::npos) << token;
  auto parsed = check::ParseReplayToken(token);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().qos);
  EXPECT_EQ(parsed.value().mode, "bsp");
  EXPECT_EQ(parsed.value().tiebreak_seed, 5u);

  // A token minted without QoS carries no qos key and parses to qos=false —
  // old bug-report tokens keep replaying the exact same cell.
  spec.qos = false;
  std::string legacy = check::FormatReplayToken(spec);
  EXPECT_EQ(legacy.find("qos"), std::string::npos) << legacy;
  auto reparsed = check::ParseReplayToken(legacy);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_FALSE(reparsed.value().qos);
}

}  // namespace
}  // namespace graphdance
