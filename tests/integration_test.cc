// System-level integration tests: interleaved update/query workloads with
// snapshot isolation, multi-query concurrency determinism, memo hygiene
// under sustained load, TEL compaction through the transaction manager, and
// a mixed-engine consistency sweep over the LDBC dataset.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "graph/generators.h"
#include "ldbc/driver.h"
#include "ldbc/snb_generator.h"
#include "ldbc/snb_queries.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"
#include "txn/txn_manager.h"

namespace graphdance {
namespace {

TEST(IntegrationTest, InterleavedUpdatesAndSnapshots) {
  // A history of snapshots: after each batch of edge inserts, remember the
  // LCT and the expected 1-hop degree; at the end, every historical snapshot
  // must still read its own consistent value.
  auto schema = std::make_shared<Schema>();
  auto graph = GenerateUniformGraph(128, 512, 4, schema, 8).TakeValue();
  LabelId link = schema->EdgeLabel("link");
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 4;
  SimCluster cluster(cfg, graph);
  TransactionManager txn(&cluster);

  std::vector<std::pair<Timestamp, int64_t>> snapshots;
  auto degree_of_7 = [&](Timestamp ts) {
    auto plan = Traversal(graph).V({7}).Out("link").Count().Build().TakeValue();
    SimCluster c(cfg, graph);
    auto res = c.Run(plan, ts);
    EXPECT_TRUE(res.ok());
    return res.value().rows[0][0].as_int();
  };

  int64_t base = degree_of_7(txn.ReadTimestamp());
  for (int batch = 0; batch < 5; ++batch) {
    auto t = txn.Begin();
    for (int e = 0; e < 3; ++e) {
      ASSERT_TRUE(txn.AddEdge(t, 7, link, 20 + batch * 3 + e).ok());
    }
    ASSERT_TRUE(txn.Commit(t).ok());
    snapshots.emplace_back(txn.ReadTimestamp(), base + (batch + 1) * 3);
  }
  // All snapshots remain individually consistent.
  for (const auto& [ts, expected] : snapshots) {
    EXPECT_EQ(degree_of_7(ts), expected) << "snapshot ts=" << ts;
  }
}

TEST(IntegrationTest, CompactionPreservesLatestSnapshot) {
  auto schema = std::make_shared<Schema>();
  auto graph = GenerateUniformGraph(64, 256, 5, schema, 4).TakeValue();
  LabelId link = schema->EdgeLabel("link");
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.workers_per_node = 4;
  SimCluster cluster(cfg, graph);
  TransactionManager txn(&cluster);

  // Add then delete an edge; add another that stays.
  auto t1 = txn.Begin();
  ASSERT_TRUE(txn.AddEdge(t1, 3, link, 40).ok());
  ASSERT_TRUE(txn.Commit(t1).ok());
  auto t2 = txn.Begin();
  ASSERT_TRUE(txn.DeleteEdge(t2, 3, link, 40).ok());
  ASSERT_TRUE(txn.AddEdge(t2, 3, link, 41).ok());
  ASSERT_TRUE(txn.Commit(t2).ok());

  Timestamp now_ts = txn.ReadTimestamp();
  auto degree = [&](Timestamp ts) {
    auto plan = Traversal(graph).V({3}).Out("link").Count().Build().TakeValue();
    SimCluster c(cfg, graph);
    return c.Run(plan, ts).TakeValue().rows[0][0].as_int();
  };
  int64_t before_gc = degree(now_ts);

  size_t versions_before =
      graph->partition(graph->PartitionOf(3)).tel().num_edge_versions();
  txn.CompactAll(now_ts);
  size_t versions_after =
      graph->partition(graph->PartitionOf(3)).tel().num_edge_versions();
  EXPECT_LT(versions_after, versions_before) << "GC must reclaim dead versions";
  EXPECT_EQ(degree(now_ts), before_gc) << "GC must not change visible state";
}

TEST(IntegrationTest, ManyConcurrentQueriesDeterministic) {
  auto schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = 1024;
  opt.num_edges = 8192;
  opt.seed = 12;
  auto graph = GeneratePowerLawGraph(opt, schema, 8).TakeValue();
  PropKeyId weight = schema->PropKey("weight");

  auto run_batch = [&] {
    ClusterConfig cfg;
    cfg.num_nodes = 2;
    cfg.workers_per_node = 4;
    SimCluster cluster(cfg, graph);
    std::vector<uint64_t> ids;
    for (VertexId s = 0; s < 24; ++s) {
      auto plan = Traversal(graph)
                      .V({s})
                      .RepeatOut("link", 2, true)
                      .Project({Operand::VertexIdOp(), Operand::Property(weight)})
                      .OrderByLimit({{1, false}, {0, true}}, 5)
                      .Build()
                      .TakeValue();
      ids.push_back(cluster.Submit(plan, s * 100));
    }
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    std::vector<std::pair<std::vector<Row>, double>> out;
    for (uint64_t id : ids) {
      out.emplace_back(cluster.result(id).rows, cluster.result(id).LatencyMicros());
    }
    return out;
  };

  auto a = run_batch();
  auto b = run_batch();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "query " << i;
    EXPECT_DOUBLE_EQ(a[i].second, b[i].second) << "query " << i;
  }
}

TEST(IntegrationTest, MemosStayCleanUnderSustainedLoad) {
  auto schema = std::make_shared<Schema>();
  auto graph = GenerateUniformGraph(256, 2048, 8, schema, 4).TakeValue();
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.workers_per_node = 4;
  SimCluster cluster(cfg, graph);
  for (int round = 0; round < 20; ++round) {
    auto plan = Traversal(graph)
                    .V({static_cast<VertexId>(round)})
                    .RepeatOut("link", 2, true)
                    .Count()
                    .Build()
                    .TakeValue();
    ASSERT_TRUE(cluster.Run(plan).ok());
  }
  for (PartitionId p = 0; p < 4; ++p) {
    EXPECT_EQ(cluster.memo(p).size(), 0u)
        << "partition " << p << " leaked memo state";
  }
}

TEST(IntegrationTest, LdbcMixedWorkloadSnapshotConsistency) {
  // Run the mixed workload, then re-execute one IC at an early LCT and at
  // the final LCT: the early snapshot must be unaffected by the update
  // stream that followed it.
  auto data = GenerateSnb(SnbConfig::Tiny(120), 8).TakeValue();
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 4;

  SnbParams p;
  p.person = data->PersonId(3);
  auto make_plan = [&] {
    return BuildInteractiveShort(3, *data, p).TakeValue();  // friends list
  };

  SimCluster cluster(cfg, data->graph);
  TransactionManager txn(&cluster);
  Timestamp early = txn.ReadTimestamp();
  auto run_at = [&](Timestamp ts) {
    SimCluster c(cfg, data->graph);
    return c.Run(make_plan(), ts).TakeValue().rows;
  };
  auto early_rows = run_at(early);

  DriverConfig dcfg;
  dcfg.tcr = 0.5;
  dcfg.duration_s = 0.05;
  dcfg.include_complex = false;
  dcfg.include_short = false;  // updates only
  RunMixedWorkload(&cluster, &txn, *data, dcfg);
  ASSERT_GT(txn.committed(), 0u);

  EXPECT_EQ(run_at(early), early_rows)
      << "early snapshot changed after the update stream";
}

}  // namespace
}  // namespace graphdance
