// Tests for the streaming ingest pipeline and its snapshot-isolation battery
// (DESIGN.md §15): timestamped update batches applied to a live cluster while
// queries run concurrently at snapshot timestamps, standing queries
// re-emitting deltas STINGER-style, and the freshness differential oracle
// that anchors it all. The battery proves:
//   1. Snapshot identity: a query submitted at read_ts = T inside a live
//      streaming cell returns rows identical to a from-scratch run on the
//      graph materialized at T — across {async, bsp, hybrid} engines and
//      tie-break seeds (the freshness oracle matrix).
//   2. Standing identity: every standing query's cumulative emission (its
//      deltas folded from empty) equals its current rows equals the final
//      materialized snapshot.
//   3. Off means off: a cluster that never ingests carries no stream section
//      in its metrics and no stream histograms, and attaching an inert
//      ingestor perturbs neither the schedule nor the trace.
//   4. Atomicity under chaos: a worker crash mid-batch defers the whole
//      batch (retry past restart) — no reader ever observes a torn batch,
//      and the snapshot-isolation checker stays silent.
//   5. Replay: `;stream=1` round-trips through the replay-token codec.
//   6. Compaction safety: a pinned snapshot reader can never be overtaken by
//      version compaction (Debug: assert death; Release: watermark clamp).
//   7. Phased ownership: rt::ThreadCluster interleaves with direct batch
//      application between cluster lifetimes, honoring the shared-nothing
//      TEL ownership contract.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/invariants.h"
#include "check/oracle.h"
#include "graph/generators.h"
#include "graph/tel.h"
#include "query/gremlin.h"
#include "rt/thread_cluster.h"
#include "runtime/sim_cluster.h"
#include "stream/stream.h"
#include "stream/stream_oracle.h"

namespace graphdance {
namespace {

using check::CanonicalRows;
using check::CheckHarness;
using check::DifferentialOptions;
using check::DifferentialReport;
using check::FormatReplayToken;
using check::ParseReplayToken;
using check::ReplaySpec;
using stream::ApplyBatchToGraph;
using stream::ComputeStreamReference;
using stream::MakeStreamScenario;
using stream::RunStreamCell;
using stream::RunStreamDifferential;
using stream::StandingQuerySpec;
using stream::StreamIngestor;
using stream::StreamOp;
using stream::StreamOpKind;
using stream::StreamReference;
using stream::StreamScenario;
using stream::UpdateBatch;

// --- shared workload helpers (same idiom as qos_test / spill_test) ----------

struct TestGraph {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  LabelId link;
  PropKeyId weight;
};

TestGraph MakeGraph(uint32_t partitions, uint64_t nv = 1024, uint64_t ne = 8192,
                    uint64_t seed = 11) {
  TestGraph tg;
  tg.schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = nv;
  opt.num_edges = ne;
  opt.seed = seed;
  opt.weight_range = 10'000;
  auto result = GeneratePowerLawGraph(opt, tg.schema, partitions);
  EXPECT_TRUE(result.ok());
  tg.graph = result.TakeValue();
  tg.link = tg.schema->EdgeLabel("link");
  tg.weight = tg.schema->PropKey("weight");
  return tg;
}

ClusterConfig BaseConfig(EngineKind engine = EngineKind::kAsync) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  cfg.engine = engine;
  cfg.progress_timeout_ns = 20'000'000;
  return cfg;
}

std::shared_ptr<const Plan> CountPlan(const TestGraph& tg, VertexId start,
                                      int k) {
  auto plan = Traversal(tg.graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
                  .Count()
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.TakeValue();
}

std::shared_ptr<const Plan> TopKPlan(const TestGraph& tg, VertexId start, int k,
                                     size_t limit = 10) {
  auto plan = Traversal(tg.graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
                  .Project({Operand::VertexIdOp(), Operand::Property(tg.weight)})
                  .OrderByLimit({{1, false}, {0, true}}, limit)
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.TakeValue();
}

StreamOp AddEdgeOp(VertexId src, VertexId dst, LabelId label,
                   int64_t weight = 1) {
  StreamOp op;
  op.kind = StreamOpKind::kAddEdge;
  op.src = src;
  op.dst = dst;
  op.label = label;
  op.value = Value(weight);
  return op;
}

StreamOp DeleteEdgeOp(VertexId src, VertexId dst, LabelId label) {
  StreamOp op;
  op.kind = StreamOpKind::kDeleteEdge;
  op.src = src;
  op.dst = dst;
  op.label = label;
  return op;
}

/// A small hand-built schedule: batch b (commit_ts = (b+1)*1000) hangs
/// `fanout` fresh out-edges off `hub`, and from the second batch on also
/// deletes one edge streamed by the previous batch.
std::vector<UpdateBatch> HubBatches(const TestGraph& tg, VertexId hub,
                                    size_t num_batches, size_t fanout) {
  std::vector<UpdateBatch> batches;
  VertexId next = 2'000'000;  // fresh ids, disjoint from the generated graph
  for (size_t b = 0; b < num_batches; ++b) {
    UpdateBatch batch;
    batch.commit_ts = static_cast<Timestamp>((b + 1) * 1000);
    batch.not_before = static_cast<SimTime>((b + 1) * 500'000);
    for (size_t i = 0; i < fanout; ++i) {
      StreamOp v;
      v.kind = StreamOpKind::kAddVertex;
      v.src = next;
      batch.ops.push_back(v);
      batch.ops.push_back(AddEdgeOp(hub, next, tg.link));
      ++next;
    }
    if (b > 0) {
      // Delete the first edge the previous batch added (ids are sequential).
      VertexId victim = 2'000'000 + static_cast<VertexId>((b - 1) * fanout);
      batch.ops.push_back(DeleteEdgeOp(hub, victim, tg.link));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

/// Reference rows for `plan-shape` at snapshot `ts`: a fresh copy of the
/// same base graph with every batch of commit_ts <= ts applied directly,
/// queried alone on a pinned-schedule cluster.
std::vector<Row> HubReferenceRows(uint32_t partitions, VertexId hub, int k,
                                  const std::vector<UpdateBatch>& batches,
                                  Timestamp ts) {
  TestGraph ref = MakeGraph(partitions);
  for (const UpdateBatch& b : batches) {
    if (b.commit_ts <= ts) ApplyBatchToGraph(*ref.graph, b);
  }
  SimCluster cluster(BaseConfig(), ref.graph);
  uint64_t id = cluster.Submit(CountPlan(ref, hub, k), /*at=*/0, ts);
  EXPECT_TRUE(cluster.RunToCompletion().ok());
  return CanonicalRows(cluster.result(id).rows);
}

// --- the freshness differential oracle ---------------------------------------

TEST(StreamOracleTest, SnapshotQueriesMatchMaterializedReferences) {
  // The tentpole gate in miniature: every engine x a few tie-break seeds,
  // each cell's per-commit snapshot queries diffed row-for-row against
  // from-scratch materializations, every checker (incl. snapshot-isolation)
  // attached. The CLI runs the same matrix at >= 32 seeds.
  StreamScenario s = MakeStreamScenario(stream::kDefaultStreamScenarioSeed);
  DifferentialOptions opt;
  opt.num_seeds = 3;
  auto report = RunStreamDifferential(s, opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok()) << report.value().Summary();
  EXPECT_EQ(report.value().trips, 0u);
  EXPECT_EQ(report.value().mismatches, 0u);
  EXPECT_EQ(report.value().cells, 3u * 3u);  // {async,bsp,hybrid} x 3 seeds
}

TEST(StreamOracleTest, SecondScenarioSeedAlsoGreen) {
  // The scenario generator itself is part of the trusted base; a second
  // workload seed guards against a green matrix that only holds for one
  // lucky batch schedule.
  StreamScenario s = MakeStreamScenario(/*seed=*/71, /*num_batches=*/4,
                                        /*ops_per_batch=*/48);
  DifferentialOptions opt;
  opt.num_seeds = 2;
  auto report = RunStreamDifferential(s, opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok()) << report.value().Summary();
}

TEST(StreamOracleTest, SingleCellRunsStandingAndSnapshotChecks) {
  StreamScenario s = MakeStreamScenario(stream::kDefaultStreamScenarioSeed);
  auto reference = ComputeStreamReference(s);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (const char* mode : {"async", "bsp", "hybrid"}) {
    ReplaySpec spec;
    spec.mode = mode;
    spec.tiebreak_seed = 1;
    spec.stream = true;
    DifferentialOptions opt;
    auto cell = RunStreamCell(s, reference.value(), spec, opt);
    ASSERT_TRUE(cell.ok()) << cell.status().ToString();
    EXPECT_TRUE(cell.value().ok()) << mode << ": " << cell.value().detail;
    EXPECT_GT(cell.value().queries, 0u);
  }
}

// --- standing queries: cumulative emission identity --------------------------

TEST(StandingQueryTest, CumulativeEmissionEqualsFinalSnapshot) {
  TestGraph tg = MakeGraph(4);
  auto batches = HubBatches(tg, /*hub=*/1, /*num_batches=*/4, /*fanout=*/6);
  const Timestamp final_ts = batches.back().commit_ts;

  ClusterConfig cfg = BaseConfig();
  SimCluster cluster(cfg, tg.graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());

  StreamIngestor::Options opt;
  opt.compact_every_batches = 2;
  StreamIngestor ingestor(&cluster, opt);
  cluster.AttachStreamStats(&ingestor.stats());
  for (const UpdateBatch& b : batches) ingestor.EnqueueBatch(b);
  size_t q = ingestor.AddStandingQuery({CountPlan(tg, 1, 1), 0});
  ingestor.Start();
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  ASSERT_TRUE(ingestor.Drained());
  EXPECT_EQ(ingestor.last_commit_ts(), final_ts);
  EXPECT_EQ(harness->trip_count(), 0u) << harness->Summary();

  const auto& sq = ingestor.standing(q);
  EXPECT_EQ(sq.last_run_ts, final_ts);
  EXPECT_FALSE(sq.in_flight);
  EXPECT_GE(sq.deltas.size(), 1u);
  // Deltas folded from empty reproduce the current rows exactly...
  EXPECT_EQ(ingestor.CumulativeRows(q), sq.rows);
  // ...and the current rows equal a from-scratch run at the final snapshot.
  EXPECT_EQ(sq.rows, HubReferenceRows(4, 1, 1, batches, final_ts));
  EXPECT_GE(ingestor.stats().standing_runs, 1u);
  EXPECT_EQ(ingestor.stats().batches_applied, batches.size());
}

TEST(StandingQueryTest, DeltasActuallyRetractOnEdgeDeletes) {
  // Batches 2.. delete a previously-streamed hub edge, so the standing
  // count-query's value changes and at least one delta must carry a
  // retraction (guards against a vacuous all-additions implementation).
  TestGraph tg = MakeGraph(4);
  auto batches = HubBatches(tg, /*hub=*/1, /*num_batches=*/3, /*fanout=*/4);

  SimCluster cluster(BaseConfig(), tg.graph);
  StreamIngestor ingestor(&cluster);
  for (const UpdateBatch& b : batches) ingestor.EnqueueBatch(b);
  size_t q = ingestor.AddStandingQuery({CountPlan(tg, 1, 1), 0});
  ingestor.Start();
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  ASSERT_TRUE(ingestor.Drained());

  uint64_t retracted = 0;
  for (const auto& d : ingestor.standing(q).deltas) retracted += d.retracted.size();
  EXPECT_GT(retracted, 0u);
  EXPECT_EQ(ingestor.stats().rows_retracted, retracted);
  EXPECT_EQ(ingestor.CumulativeRows(q), ingestor.standing(q).rows);
}

// --- off means off: no stream section, no schedule perturbation --------------

TEST(StreamOffTest, NonStreamingClusterCarriesNoStreamSection) {
  TestGraph tg = MakeGraph(4);
  auto plans = {TopKPlan(tg, 1, 3), CountPlan(tg, 5, 2), TopKPlan(tg, 17, 2, 5)};

  ClusterConfig cfg = BaseConfig();
  cfg.trace = true;
  SimCluster cluster(cfg, tg.graph);
  for (const auto& p : plans) cluster.Submit(p, 0);
  ASSERT_TRUE(cluster.RunToCompletion().ok());

  std::string metrics = cluster.MetricsSnapshot().ToString();
  // Streaming disabled == the seed snapshot surface: no stream section, no
  // stream histograms — golden snapshots from pre-stream builds keep
  // matching byte-for-byte.
  EXPECT_EQ(metrics.find("stream:"), std::string::npos);
  EXPECT_EQ(metrics.find("stream-batch-lag"), std::string::npos);
  EXPECT_EQ(metrics.find("stream-staleness"), std::string::npos);
}

TEST(StreamOffTest, InertIngestorIsScheduleAndTraceNeutral) {
  // Constructing an ingestor and attaching its stats without ever enqueueing
  // a batch is pure observation: the trace and every non-stream metric must
  // be byte-identical to a run that never heard of streaming.
  TestGraph plain_tg = MakeGraph(4);
  TestGraph inert_tg = MakeGraph(4);
  auto run = [](const TestGraph& tg, bool attach_inert_ingestor) {
    ClusterConfig cfg;
    cfg.num_nodes = 2;
    cfg.workers_per_node = 2;
    cfg.engine = EngineKind::kAsync;
    cfg.progress_timeout_ns = 20'000'000;
    cfg.trace = true;
    SimCluster cluster(cfg, tg.graph);
    std::unique_ptr<StreamIngestor> ingestor;
    if (attach_inert_ingestor) {
      ingestor = std::make_unique<StreamIngestor>(&cluster);
      cluster.AttachStreamStats(&ingestor->stats());
    }
    cluster.Submit(TopKPlan(tg, 1, 3), 0);
    cluster.Submit(CountPlan(tg, 5, 2), 0);
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    return std::make_pair(cluster.MetricsSnapshot().ToString(),
                          cluster.tracer().ToJson());
  };

  auto [plain_metrics, plain_trace] = run(plain_tg, false);
  auto [inert_metrics, inert_trace] = run(inert_tg, true);
  EXPECT_EQ(plain_trace, inert_trace);
  // The attached (all-zero) stream section is the only permitted delta.
  EXPECT_EQ(plain_metrics.find("stream:"), std::string::npos);
  EXPECT_NE(inert_metrics.find("stream:"), std::string::npos);
  std::string inert_without_section =
      inert_metrics.substr(0, inert_metrics.find("stream:"));
  EXPECT_EQ(plain_metrics.substr(0, inert_without_section.size()),
            inert_without_section);
}

// --- chaos: a crash mid-batch never tears a batch ----------------------------

TEST(StreamChaosTest, CrashMidIngestDefersWholeBatchAtomically) {
  TestGraph tg = MakeGraph(4);
  auto batches = HubBatches(tg, /*hub=*/1, /*num_batches=*/4, /*fanout=*/8);

  ClusterConfig cfg = BaseConfig();
  // Crash a worker across the first batch's apply window; restart well
  // before the retry backoff expires twice.
  cfg.fault.CrashWorker(/*worker=*/1, /*at=*/450'000, /*restart_after=*/300'000);
  SimCluster cluster(cfg, tg.graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());

  StreamIngestor ingestor(&cluster);
  cluster.AttachStreamStats(&ingestor.stats());
  for (const UpdateBatch& b : batches) ingestor.EnqueueBatch(b);

  // At every commit, race a snapshot query at exactly that timestamp.
  std::vector<std::pair<Timestamp, uint64_t>> snapshots;
  ingestor.SetOnBatchCommitted([&](Timestamp ts, SimTime at) {
    ingestor.PinReader(ts);
    snapshots.emplace_back(ts, cluster.Submit(CountPlan(tg, 1, 1), at, ts));
  });
  ingestor.Start();
  ASSERT_TRUE(cluster.RunToCompletion().ok());

  // The crash deferred at least one partition group — and with it the whole
  // batch — yet every batch still committed, exactly once, in order.
  EXPECT_GE(ingestor.stats().batch_retries, 1u);
  ASSERT_TRUE(ingestor.Drained());
  EXPECT_EQ(ingestor.stats().batches_applied, batches.size());
  EXPECT_EQ(harness->trip_count(), 0u) << harness->Summary();

  // All-or-nothing visibility: each racing snapshot equals the from-scratch
  // materialization at its timestamp. A torn batch could not produce these
  // rows at every commit point.
  ASSERT_EQ(snapshots.size(), batches.size());
  for (const auto& [ts, id] : snapshots) {
    const QueryResult& r = cluster.result(id);
    ASSERT_TRUE(r.done && !r.failed && !r.timed_out);
    EXPECT_EQ(CanonicalRows(r.rows), HubReferenceRows(4, 1, 1, batches, ts))
        << "torn snapshot at ts=" << ts;
    ingestor.UnpinReader(ts);
  }
}

TEST(StreamChaosTest, FaultedDifferentialMatrixStaysGreen) {
  // The oracle's own chaos gate: crash + restart inside the ingest window on
  // every async cell. Explicit failures (timed-out queries) are legal;
  // silent mismatches and isolation trips are not.
  StreamScenario s = MakeStreamScenario(stream::kDefaultStreamScenarioSeed,
                                        /*num_batches=*/4, /*ops_per_batch=*/48);
  DifferentialOptions opt;
  opt.num_seeds = 2;
  opt.fault_active = true;
  opt.fault.CrashWorker(/*worker=*/2, /*at=*/700'000, /*restart_after=*/400'000);
  auto report = RunStreamDifferential(s, opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().ok()) << report.value().Summary();
  EXPECT_EQ(report.value().trips, 0u);
}

// --- replay tokens -----------------------------------------------------------

TEST(StreamReplayTest, StreamFlagRoundTripsThroughToken) {
  ReplaySpec spec;
  spec.mode = "bsp";
  spec.tiebreak_seed = 5;
  spec.stream = true;
  std::string token = FormatReplayToken(spec);
  EXPECT_NE(token.find(";stream=1"), std::string::npos);

  auto parsed = ParseReplayToken(token);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().stream);
  EXPECT_EQ(parsed.value().mode, "bsp");
  EXPECT_EQ(parsed.value().tiebreak_seed, 5u);
  EXPECT_EQ(FormatReplayToken(parsed.value()), token);
}

TEST(StreamReplayTest, LegacyTokensStayStreamFreeAndByteIdentical) {
  // Pre-stream tokens carry no `;stream=` key; they must parse with the flag
  // off and re-format to the identical byte string (append-only codec).
  ReplaySpec legacy;
  legacy.mode = "async";
  legacy.tiebreak_seed = 3;
  std::string token = FormatReplayToken(legacy);
  EXPECT_EQ(token.find("stream"), std::string::npos);
  auto parsed = ParseReplayToken(token);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed.value().stream);
  EXPECT_EQ(FormatReplayToken(parsed.value()), token);
}

// --- compaction vs pinned snapshot readers -----------------------------------

#ifndef NDEBUG
TEST(CompactionPinDeathTest, WatermarkOvertakingAPinDies) {
  // Satellite 4: the latent hazard. A compaction watermark that overtakes a
  // pinned snapshot reader would free versions the reader still needs; in
  // Debug the TEL refuses outright.
  TransactionalEdgeLog tel;
  tel.AddEdge(/*anchor=*/1, /*elabel=*/0, Direction::kOut, /*other=*/2,
              /*ts=*/1);
  tel.DeleteEdge(1, 0, Direction::kOut, 2, /*ts=*/7);
  tel.PinSnapshot(/*ts=*/5);
  EXPECT_DEATH(tel.Compact(/*watermark=*/10),
               "Compact watermark overtakes a pinned snapshot reader");
  tel.UnpinSnapshot(5);
}
#else
TEST(CompactionPinGuardTest, ReleaseBuildClampsWatermarkToOldestPin) {
  // Same hazard, Release semantics: the watermark silently clamps to the
  // oldest pin, so the pinned reader's versions survive.
  TransactionalEdgeLog tel;
  tel.AddEdge(1, 0, Direction::kOut, 2, /*ts=*/1);
  tel.DeleteEdge(1, 0, Direction::kOut, 2, /*ts=*/7);  // dead at ts >= 7
  tel.PinSnapshot(/*ts=*/5);
  tel.Compact(/*watermark=*/10);  // clamped to 5: the version is live there
  size_t seen = 0;
  tel.ForEachEdge(1, 0, Direction::kOut, /*ts=*/5,
                  [&](VertexId, const Value&) { ++seen; });
  EXPECT_EQ(seen, 1u);
  tel.UnpinSnapshot(5);
  // With the pin gone the same compaction reclaims the dead version.
  tel.Compact(10);
  seen = 0;
  tel.ForEachEdge(1, 0, Direction::kOut, 5,
                  [&](VertexId, const Value&) { ++seen; });
  EXPECT_EQ(seen, 0u);
}
#endif

TEST(CompactionPinTest, CompactAtThePinIsLegalAndVisibilityPreserving) {
  TransactionalEdgeLog tel;
  tel.AddEdge(1, 0, Direction::kOut, 2, /*ts=*/1);
  tel.DeleteEdge(1, 0, Direction::kOut, 2, /*ts=*/3);  // dead by ts=5
  tel.AddEdge(1, 0, Direction::kOut, 3, /*ts=*/4);     // live at ts=5
  tel.PinSnapshot(5);
  const uint64_t epoch = tel.compaction_epoch();
  tel.Compact(tel.MinPinnedTs());
  EXPECT_GT(tel.compaction_epoch(), epoch);
  std::vector<VertexId> seen;
  tel.ForEachEdge(1, 0, Direction::kOut, 5,
                  [&](VertexId dst, const Value&) { seen.push_back(dst); });
  EXPECT_EQ(seen, (std::vector<VertexId>{3}));
  EXPECT_EQ(tel.num_edge_versions(), 1u);  // the dead version is gone
  tel.UnpinSnapshot(5);
}

// --- phased streaming on the thread runtime ----------------------------------

TEST(ThreadClusterStreamTest, PhasedBatchesBetweenRunsHonorOwnership) {
  // The rt runtime's shared-nothing contract forbids off-thread TEL writes
  // while workers are live; between RunToCompletion() lifetimes the TELs are
  // released and the driver may apply batches directly. Snapshot reads at
  // pre-batch timestamps must be unaffected; reads at the commit ts see the
  // whole batch.
  TestGraph tg = MakeGraph(4);
  auto batches = HubBatches(tg, /*hub=*/1, /*num_batches=*/2, /*fanout=*/5);

  rt::ThreadClusterConfig cfg;
  cfg.num_threads = 2;
  auto count_at = [&](Timestamp ts) {
    rt::ThreadCluster cluster(cfg, tg.graph);
    uint64_t id = cluster.Submit(CountPlan(tg, 1, 1), ts);
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    return CanonicalRows(cluster.result(id).rows);
  };

  std::vector<Row> base = count_at(500);
  ApplyBatchToGraph(*tg.graph, batches[0]);  // commit_ts = 1000
  EXPECT_EQ(count_at(999), base);  // pre-commit snapshot: batch invisible
  std::vector<Row> after_one = count_at(1000);
  EXPECT_NE(after_one, base);  // the whole batch is visible at its ts
  ApplyBatchToGraph(*tg.graph, batches[1]);  // commit_ts = 2000
  EXPECT_EQ(count_at(1999), after_one);
  // Cross-runtime freshness: the thread runtime at ts agrees with the
  // from-scratch materialization queried on the simulator.
  EXPECT_EQ(count_at(2000), HubReferenceRows(4, 1, 1, batches, 2000));
}

// --- observability -----------------------------------------------------------

TEST(StreamMetricsTest, SnapshotCarriesStreamSectionAndHistograms) {
  TestGraph tg = MakeGraph(4);
  auto batches = HubBatches(tg, /*hub=*/1, /*num_batches=*/3, /*fanout=*/4);

  SimCluster cluster(BaseConfig(), tg.graph);
  StreamIngestor ingestor(&cluster);
  cluster.AttachStreamStats(&ingestor.stats());
  for (const UpdateBatch& b : batches) ingestor.EnqueueBatch(b);
  ingestor.AddStandingQuery({CountPlan(tg, 1, 1), 0});
  ingestor.Start();
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  ASSERT_TRUE(ingestor.Drained());

  const obs::StreamSnapshot& st = ingestor.stats();
  EXPECT_EQ(st.batches_scheduled, batches.size());
  EXPECT_EQ(st.batches_applied, batches.size());
  EXPECT_GT(st.ops_applied, 0u);
  EXPECT_GT(st.edges_added, 0u);
  EXPECT_GT(st.edges_deleted, 0u);
  EXPECT_GT(st.vertices_added, 0u);
  EXPECT_EQ(st.standing_queries, 1u);
  EXPECT_EQ(st.last_commit_ts, batches.back().commit_ts);

  std::string metrics = cluster.MetricsSnapshot().ToString();
  EXPECT_NE(metrics.find("stream:"), std::string::npos);
  EXPECT_NE(metrics.find("stream-batch-lag"), std::string::npos);
  EXPECT_NE(metrics.find("stream-staleness"), std::string::npos);
}

TEST(StreamMetricsTest, StreamSnapshotMergeAddsCountersAndMaxesLct) {
  obs::StreamSnapshot a;
  a.batches_applied = 3;
  a.ops_applied = 10;
  a.last_commit_ts = 3000;
  obs::StreamSnapshot b;
  b.batches_applied = 2;
  b.ops_applied = 7;
  b.rows_emitted = 4;
  b.last_commit_ts = 2000;
  a.Merge(b);
  EXPECT_EQ(a.batches_applied, 5u);
  EXPECT_EQ(a.ops_applied, 17u);
  EXPECT_EQ(a.rows_emitted, 4u);
  EXPECT_EQ(a.last_commit_ts, 3000u);
}

}  // namespace
}  // namespace graphdance
