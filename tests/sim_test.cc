// Tests for the discrete-event simulation kernel (virtual-time event queue,
// cost model arithmetic) and runtime deadline semantics.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "graph/generators.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"

namespace graphdance {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(300, [&](SimTime) { order.push_back(3); });
  q.Schedule(100, [&](SimTime) { order.push_back(1); });
  q.Schedule(200, [&](SimTime) { order.push_back(2); });
  q.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 300u);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(42, [&order, i](SimTime) { order.push_back(i); });
  }
  q.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsMayScheduleFurtherEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void(SimTime)> chain = [&](SimTime t) {
    ++fired;
    if (fired < 10) q.Schedule(t + 10, chain);
  };
  q.Schedule(0, chain);
  q.RunUntilEmpty();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(q.now(), 90u);
}

#ifdef NDEBUG
TEST(EventQueueTest, PastScheduleClampsToNow) {
  // Scheduling into the past used to rewind now(), breaking virtual-time
  // monotonicity for every later event. Release builds clamp to now();
  // debug builds assert (see EventQueueDeathTest below).
  EventQueue q;
  std::vector<SimTime> fire_times;
  q.Schedule(1000, [&](SimTime t) {
    fire_times.push_back(t);
    q.Schedule(10, [&](SimTime t2) { fire_times.push_back(t2); });  // past!
    q.Schedule(2000, [&](SimTime t2) { fire_times.push_back(t2); });
  });
  q.RunUntilEmpty();
  EXPECT_EQ(fire_times, (std::vector<SimTime>{1000, 1000, 2000}));
  EXPECT_EQ(q.now(), 2000u);  // the clock never ran backwards
}
#else
TEST(EventQueueDeathTest, PastScheduleAsserts) {
  EventQueue q;
  q.Schedule(1000, [&](SimTime) { q.Schedule(10, [](SimTime) {}); });
  EXPECT_DEATH(q.RunUntilEmpty(), "past time");
}
#endif

TEST(EventQueueTest, RunBudgetStopsEarly) {
  EventQueue q;
  for (int i = 0; i < 100; ++i) q.Schedule(i, [](SimTime) {});
  EXPECT_EQ(q.RunUntilEmpty(10), 10u);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.size(), 90u);
}

TEST(CostModelTest, TransmitScalesWithBandwidth) {
  CostModel fast;
  fast.bandwidth_gbps = 200.0;
  CostModel slow = fast;
  slow.bandwidth_gbps = 25.0;
  // 8x less bandwidth -> 8x the transmit time.
  EXPECT_EQ(slow.TransmitNs(100'000), 8 * fast.TransmitNs(100'000));
  // 200 Gbps = 25 bytes/ns: 100 KB ~ 4000 ns.
  EXPECT_EQ(fast.TransmitNs(100'000), 4000u);
}

TEST(CostModelTest, EveryKindHasACost) {
  CostModel cost;
  for (int k = 0; k < static_cast<int>(CostKind::kNumKinds); ++k) {
    EXPECT_GT(cost.Of(static_cast<CostKind>(k)), 0u) << "kind " << k;
  }
}

// ---- deadlines ------------------------------------------------------------------

struct DeadlineFixture {
  std::shared_ptr<Schema> schema = std::make_shared<Schema>();
  std::shared_ptr<PartitionedGraph> graph;
  ClusterConfig cfg;

  DeadlineFixture() {
    PowerLawGraphOptions opt;
    opt.num_vertices = 4096;
    opt.num_edges = 32768;
    opt.seed = 9;
    cfg.num_nodes = 2;
    cfg.workers_per_node = 2;
    graph = GeneratePowerLawGraph(opt, schema, cfg.num_partitions()).TakeValue();
  }

  std::shared_ptr<const Plan> BigQuery() {
    return Traversal(graph)
        .V({0})
        .RepeatOut("link", 4, true)
        .Count()
        .Build()
        .TakeValue();
  }
};

TEST(DeadlineTest, TightDeadlineAbortsQuery) {
  DeadlineFixture f;
  SimCluster cluster(f.cfg, f.graph);
  uint64_t id = cluster.Submit(f.BigQuery(), 0, kMaxTimestamp - 1,
                               /*deadline_ns=*/50'000);  // 50 us budget
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  const QueryResult& r = cluster.result(id);
  EXPECT_TRUE(r.done);
  EXPECT_TRUE(r.timed_out);
  EXPECT_NEAR(r.LatencyMicros(), 50.0, 1.0);
}

TEST(DeadlineTest, GenerousDeadlineCompletesNormally) {
  DeadlineFixture f;
  SimCluster cluster(f.cfg, f.graph);
  uint64_t id = cluster.Submit(f.BigQuery(), 0, kMaxTimestamp - 1,
                               /*deadline_ns=*/60'000'000'000ULL);
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  const QueryResult& r = cluster.result(id);
  EXPECT_TRUE(r.done);
  EXPECT_FALSE(r.timed_out);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_GT(r.rows[0][0].as_int(), 0);
}

TEST(DeadlineTest, AbortedQueryFreesItsMemos) {
  DeadlineFixture f;
  SimCluster cluster(f.cfg, f.graph);
  cluster.Submit(f.BigQuery(), 0, kMaxTimestamp - 1, 50'000);
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  for (PartitionId p = 0; p < f.cfg.num_partitions(); ++p) {
    EXPECT_EQ(cluster.memo(p).size(), 0u) << "partition " << p;
  }
}

TEST(DeadlineTest, OtherQueriesUnaffectedByAbort) {
  DeadlineFixture f;
  SimCluster cluster(f.cfg, f.graph);
  uint64_t doomed = cluster.Submit(f.BigQuery(), 0, kMaxTimestamp - 1, 50'000);
  auto small = Traversal(f.graph).V({1}).Out("link").Count().Build().TakeValue();
  uint64_t fine = cluster.Submit(small, 0);
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  EXPECT_TRUE(cluster.result(doomed).timed_out);
  EXPECT_FALSE(cluster.result(fine).timed_out);

  // The surviving query's answer matches an uncontended run.
  SimCluster clean(f.cfg, f.graph);
  auto expect =
      clean.Run(Traversal(f.graph).V({1}).Out("link").Count().Build().TakeValue());
  ASSERT_TRUE(expect.ok());
  EXPECT_EQ(cluster.result(fine).rows, expect.value().rows);
}

TEST(DeadlineTest, TimedOutStreamingQueryKeepsPartialRows) {
  DeadlineFixture f;
  // A streaming plan (terminal Emit, no blocking top-k) delivers rows to the
  // coordinator as they are found, so a deadline abort leaves the prefix that
  // already arrived — unlike OrderByLimit, which materializes only at the end.
  auto streaming = Traversal(f.graph)
                       .V({0})
                       .RepeatOut("link", 3, true)
                       .Project({Operand::VertexIdOp()})
                       .Emit()
                       .Build()
                       .TakeValue();
  SimCluster full(f.cfg, f.graph);
  auto complete = full.Run(streaming, kMaxTimestamp - 1);
  ASSERT_TRUE(complete.ok());
  std::set<int64_t> all;
  for (const Row& row : complete.value().rows) all.insert(row[0].as_int());

  SimCluster cluster(f.cfg, f.graph);
  uint64_t id = cluster.Submit(streaming, 0, kMaxTimestamp - 1,
                               /*deadline_ns=*/60'000);
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  const QueryResult& r = cluster.result(id);
  EXPECT_TRUE(r.done);
  EXPECT_TRUE(r.timed_out);
  // Some rows streamed back before the deadline and survive the abort...
  EXPECT_FALSE(r.rows.empty());
  // ...but strictly fewer than the complete answer, and every one is valid.
  EXPECT_LT(r.rows.size(), all.size());
  for (const Row& row : r.rows) {
    EXPECT_TRUE(all.count(row[0].as_int()) > 0)
        << "bogus partial row " << row[0].as_int();
  }
}

}  // namespace
}  // namespace graphdance
