// Tests for the extended features: label scans + the IndexLookUpStrategy
// rewrite, result-limit early termination, path tracking, fault injection
// into termination detection, and a randomized cross-engine plan fuzzer.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "graph/generators.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"

namespace graphdance {
namespace {

struct TestGraph {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  PropKeyId weight;
};

TestGraph MakeGraph(uint32_t parts, uint64_t nv = 1024, uint64_t ne = 8192,
                    uint64_t seed = 33) {
  TestGraph tg;
  tg.schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = nv;
  opt.num_edges = ne;
  opt.seed = seed;
  opt.weight_range = 50;  // small range so equality filters match many
  tg.graph = GeneratePowerLawGraph(opt, tg.schema, parts).TakeValue();
  tg.weight = tg.schema->PropKey("weight");
  return tg;
}

ClusterConfig Config(uint32_t nodes = 2, uint32_t wpn = 2) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.workers_per_node = wpn;
  return cfg;
}

std::vector<Row> SortedRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    for (size_t i = 0; i < a.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return rows;
}

// ---- label scan + IndexLookupStrategy ----------------------------------------

TEST(ScanTest, LabelScanVisitsAllVertices) {
  TestGraph tg = MakeGraph(4, 256, 512);
  auto plan = Traversal(tg.graph).VAll("node").Count().Build();
  ASSERT_TRUE(plan.ok());
  SimCluster cluster(Config(), tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().rows[0][0].as_int(), 256);
}

TEST(ScanTest, ScanPlusFilterMatchesIndexedLookup) {
  TestGraph tg = MakeGraph(4);
  // No index: scan + filter executes as written.
  auto scan_plan = Traversal(tg.graph)
                       .VAll("node")
                       .Has("weight", CmpOp::kEq, Value(int64_t{7}))
                       .Count()
                       .Build();
  ASSERT_TRUE(scan_plan.ok());
  SimCluster c1(Config(), tg.graph);
  auto scanned = c1.Run(scan_plan.TakeValue());
  ASSERT_TRUE(scanned.ok());

  int64_t expected = 0;
  for (VertexId v = 0; v < 1024; ++v) {
    const Value* w = tg.graph->PropertyOf(v, tg.weight);
    if (w != nullptr && w->as_int() == 7) ++expected;
  }
  EXPECT_GT(expected, 0);
  EXPECT_EQ(scanned.value().rows[0][0].as_int(), expected);
}

TEST(ScanTest, IndexLookupStrategyRewritesScan) {
  TestGraph tg = MakeGraph(4);
  LabelId node = tg.schema->VertexLabel("node");
  tg.graph->BuildIndex(node, tg.weight);

  auto plan = Traversal(tg.graph)
                  .VAll("node")
                  .Has("weight", CmpOp::kEq, Value(int64_t{7}))
                  .Count()
                  .Build();
  ASSERT_TRUE(plan.ok());
  // The first step must have become an index probe.
  EXPECT_NE(plan.value()->step(0).Describe().find("by-index"), std::string::npos)
      << plan.value()->Describe();

  SimCluster cluster(Config(), tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());
  int64_t expected = 0;
  for (VertexId v = 0; v < 1024; ++v) {
    const Value* w = tg.graph->PropertyOf(v, tg.weight);
    if (w != nullptr && w->as_int() == 7) ++expected;
  }
  EXPECT_EQ(res.value().rows[0][0].as_int(), expected);
}

TEST(ScanTest, StrategyReducesWorkDone) {
  TestGraph tg = MakeGraph(4, 4096, 8192);
  LabelId node = tg.schema->VertexLabel("node");

  auto build = [&] {
    return Traversal(tg.graph)
        .VAll("node")
        .Has("weight", CmpOp::kEq, Value(int64_t{3}))
        .Count()
        .Build()
        .TakeValue();
  };
  // Without index: full scan.
  SimCluster c1(Config(), tg.graph);
  ASSERT_TRUE(c1.Run(build()).ok());
  uint64_t scan_edges = c1.ChargedCount(CostKind::kPerEdge);

  tg.graph->BuildIndex(node, tg.weight);
  SimCluster c2(Config(), tg.graph);
  ASSERT_TRUE(c2.Run(build()).ok());
  uint64_t index_edges = c2.ChargedCount(CostKind::kPerEdge);

  EXPECT_LT(index_edges * 10, scan_edges)
      << "index lookup should touch far less data than the scan";
}

TEST(ScanTest, StrategyKeepsRemainingPredicates) {
  TestGraph tg = MakeGraph(4);
  LabelId node = tg.schema->VertexLabel("node");
  tg.graph->BuildIndex(node, tg.weight);
  // Two predicates: the equality is absorbed, the range check must remain.
  auto plan = Traversal(tg.graph)
                  .VAll("node")
                  .Has("weight", CmpOp::kEq, Value(int64_t{7}))
                  .Where([&] {
                    Predicate p;
                    p.lhs = Operand::VertexIdOp();
                    p.op = CmpOp::kLt;
                    p.rhs = Operand::Const(Value(int64_t{512}));
                    return p;
                  }())
                  .Count()
                  .Build();
  ASSERT_TRUE(plan.ok());
  SimCluster cluster(Config(), tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());
  int64_t expected = 0;
  for (VertexId v = 0; v < 512; ++v) {
    const Value* w = tg.graph->PropertyOf(v, tg.weight);
    if (w != nullptr && w->as_int() == 7) ++expected;
  }
  EXPECT_EQ(res.value().rows[0][0].as_int(), expected);
}

// ---- result-limit early termination --------------------------------------------

TEST(EarlyTerminationTest, LimitCapsRows) {
  TestGraph tg = MakeGraph(4, 2048, 16384);
  auto plan = Traversal(tg.graph)
                  .V({1})
                  .RepeatOut("link", 3, true)
                  .Emit({Operand::VertexIdOp()}, /*limit=*/25)
                  .Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value()->result_limit(), 25u);
  SimCluster cluster(Config(), tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().rows.size(), 25u);
}

TEST(EarlyTerminationTest, CancellationSavesWork) {
  TestGraph tg = MakeGraph(8, 8192, 65536);
  auto limited = Traversal(tg.graph)
                     .V({1})
                     .RepeatOut("link", 3, true)
                     .Emit({Operand::VertexIdOp()}, 10)
                     .Build()
                     .TakeValue();
  auto unlimited = Traversal(tg.graph)
                       .V({1})
                       .RepeatOut("link", 3, true)
                       .Emit({Operand::VertexIdOp()})
                       .Build()
                       .TakeValue();
  SimCluster c1(Config(2, 4), tg.graph);
  SimCluster c2(Config(2, 4), tg.graph);
  auto r1 = c1.Run(limited);
  auto r2 = c2.Run(unlimited);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_LT(r1.value().LatencyMicros(), r2.value().LatencyMicros());
  EXPECT_LT(c1.TotalTasksExecuted(), c2.TotalTasksExecuted());
}

TEST(EarlyTerminationTest, BspTruncatesAtLimit) {
  TestGraph tg = MakeGraph(4, 512, 4096);
  auto plan = Traversal(tg.graph)
                  .V({1})
                  .RepeatOut("link", 2, true)
                  .Emit({Operand::VertexIdOp()}, 5)
                  .Build();
  ASSERT_TRUE(plan.ok());
  ClusterConfig cfg = Config();
  cfg.engine = EngineKind::kBsp;
  SimCluster cluster(cfg, tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().rows.size(), 5u);
}

// ---- path tracking ----------------------------------------------------------------

TEST(PathTest, TrackedPathsAreRealWalks) {
  TestGraph tg = MakeGraph(4, 256, 2048);
  auto plan = Traversal(tg.graph)
                  .V({3})
                  .Out("link")
                  .TrackPath()
                  .Out("link")
                  .TrackPath()
                  .Emit({Operand::PathOp()})
                  .Build();
  ASSERT_TRUE(plan.ok());
  SimCluster cluster(Config(), tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());
  ASSERT_GT(res.value().rows.size(), 0u);
  for (const Row& row : res.value().rows) {
    const std::string& path = row[0].as_string();
    // Parse "a->b->c" and verify each consecutive pair is an edge.
    std::vector<VertexId> hops;
    size_t pos = 0;
    while (pos != std::string::npos) {
      size_t next = path.find("->", pos);
      hops.push_back(std::stoull(path.substr(pos, next - pos)));
      pos = next == std::string::npos ? next : next + 2;
    }
    ASSERT_EQ(hops.size(), 3u) << path;
    EXPECT_EQ(hops[0], 3u);
    LabelId link = tg.schema->EdgeLabel("link");
    for (size_t i = 0; i + 1 < hops.size(); ++i) {
      bool edge = false;
      tg.graph->ForEachNeighbor(hops[i], link, Direction::kOut,
                                [&](VertexId d, const Value&) {
                                  if (d == hops[i + 1]) edge = true;
                                });
      EXPECT_TRUE(edge) << "missing edge in path " << path;
    }
  }
}

TEST(PathTest, PathCountMatchesWalkCount) {
  TestGraph tg = MakeGraph(2, 128, 512);
  auto plan = Traversal(tg.graph)
                  .V({5})
                  .Out("link")
                  .TrackPath()
                  .Out("link")
                  .TrackPath()
                  .Emit({Operand::PathOp()})
                  .Build();
  ASSERT_TRUE(plan.ok());
  SimCluster cluster(Config(1, 2), tg.graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());

  // Oracle: number of 2-edge walks from 5.
  LabelId link = tg.schema->EdgeLabel("link");
  int64_t walks = 0;
  tg.graph->ForEachNeighbor(5, link, Direction::kOut, [&](VertexId m, const Value&) {
    tg.graph->ForEachNeighbor(m, link, Direction::kOut,
                              [&](VertexId, const Value&) { ++walks; });
  });
  EXPECT_EQ(static_cast<int64_t>(res.value().rows.size()), walks);
}

// ---- fault injection -----------------------------------------------------------

TEST(FaultInjectionTest, DroppedMessageIsDetectedNotMiscompleted) {
  TestGraph tg = MakeGraph(8, 1024, 8192);
  ClusterConfig cfg = Config(4, 2);
  cfg.fault_drop_remote_message = 50;  // drop the 50th remote message
  SimCluster cluster(cfg, tg.graph);
  auto plan = Traversal(tg.graph)
                  .V({1})
                  .RepeatOut("link", 3, true)
                  .Count()
                  .Build();
  ASSERT_TRUE(plan.ok());
  uint64_t id = cluster.Submit(plan.TakeValue());
  Status s = cluster.RunToCompletion();
  // Lost weight (or a lost collect) must surface as a detected failure:
  // either the run errors out, or the query is left visibly unfinished.
  // It must never claim completion with wrong results silently.
  if (s.ok()) {
    EXPECT_TRUE(cluster.result(id).done);
    // If the dropped message was not weight-bearing for this query (e.g.
    // a cleanup control message), the result must still be correct.
    SimCluster clean(Config(4, 2), tg.graph);
    auto expect = clean.Run(Traversal(tg.graph)
                                .V({1})
                                .RepeatOut("link", 3, true)
                                .Count()
                                .Build()
                                .TakeValue());
    ASSERT_TRUE(expect.ok());
    EXPECT_EQ(cluster.result(id).rows, expect.value().rows);
  } else {
    EXPECT_EQ(s.code(), StatusCode::kInternal);
  }
}

TEST(FaultInjectionTest, EveryEarlyDropDetected) {
  // Sweep the first handful of remote messages: each drop must either be
  // detected or harmless, never a silent wrong answer.
  TestGraph tg = MakeGraph(4, 256, 2048);
  auto make_plan = [&] {
    return Traversal(tg.graph).V({2}).RepeatOut("link", 2, true).Count().Build().TakeValue();
  };
  SimCluster clean(Config(2, 2), tg.graph);
  auto expect = clean.Run(make_plan());
  ASSERT_TRUE(expect.ok());

  for (uint64_t nth = 1; nth <= 12; ++nth) {
    ClusterConfig cfg = Config(2, 2);
    cfg.fault_drop_remote_message = nth;
    SimCluster cluster(cfg, tg.graph);
    uint64_t id = cluster.Submit(make_plan());
    Status s = cluster.RunToCompletion();
    if (s.ok() && cluster.result(id).done && !cluster.result(id).rows.empty()) {
      EXPECT_EQ(cluster.result(id).rows, expect.value().rows) << "drop #" << nth;
    } else {
      EXPECT_FALSE(s.ok()) << "drop #" << nth << " should be detected";
    }
  }
}

// ---- randomized cross-engine fuzzing --------------------------------------------

class PlanFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanFuzzTest, EnginesAgreeOnRandomPlans) {
  uint64_t seed = 1000 + GetParam();
  Rng rng(seed);
  TestGraph tg = MakeGraph(4, 256 + rng.Below(512), 2048 + rng.Below(4096), seed);

  // Random chain: V(starts) then 1-4 random ops, then a random terminal.
  Traversal t(tg.graph);
  std::vector<VertexId> starts;
  uint64_t nstarts = 1 + rng.Below(3);
  for (uint64_t i = 0; i < nstarts; ++i) {
    starts.push_back(rng.Below(tg.graph->stats().num_vertices));
  }
  t.V(starts);
  uint64_t ops = 1 + rng.Below(4);
  bool expanded = false;
  for (uint64_t i = 0; i < ops; ++i) {
    switch (rng.Below(4)) {
      case 0:
        t.Out("link");
        expanded = true;
        break;
      case 1:
        t.Has("weight", rng.Chance(0.5) ? CmpOp::kGe : CmpOp::kLt,
              Value(static_cast<int64_t>(rng.Below(50))));
        break;
      case 2:
        t.Dedup();
        break;
      case 3:
        t.Project({Operand::VertexIdOp(), Operand::Property(tg.weight)});
        break;
    }
  }
  if (!expanded) t.Out("link");
  switch (rng.Below(3)) {
    case 0:
      t.Count();
      break;
    case 1:
      t.GroupCount(Operand::VertexIdOp());
      break;
    case 2:
      t.Project({Operand::VertexIdOp()});
      t.Emit();
      break;
  }
  auto plan = t.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  std::vector<Row> reference;
  bool first = true;
  for (EngineKind engine : {EngineKind::kAsync, EngineKind::kBsp,
                            EngineKind::kShared, EngineKind::kGaiaSim,
                            EngineKind::kBanyanSim}) {
    ClusterConfig cfg = Config(2, 2);
    cfg.engine = engine;
    SimCluster cluster(cfg, tg.graph);
    auto res = cluster.Run(plan.value());
    ASSERT_TRUE(res.ok()) << EngineKindName(engine) << ": "
                          << res.status().ToString();
    std::vector<Row> rows = SortedRows(res.value().rows);
    if (first) {
      reference = rows;
      first = false;
    } else {
      EXPECT_EQ(rows, reference) << "engine " << EngineKindName(engine)
                                 << " diverged on seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanFuzzTest, ::testing::Range(0, 32));

}  // namespace
}  // namespace graphdance
