// Traverser bulking: serde/merge unit tests plus the on/off equivalence
// suite — every engine must produce identical rows with bulking enabled and
// disabled, on traversal, aggregate, join, and LDBC workloads, because
// bulking is a pure compression of equivalent traversers (weights sum in
// Z_2^64, multiplicities add) and must never change observable results.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "graph/generators.h"
#include "ldbc/driver.h"
#include "ldbc/reference.h"
#include "ldbc/snb_generator.h"
#include "ldbc/snb_queries.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"

namespace graphdance {
namespace {

// ---- unit: merge semantics ---------------------------------------------------

Traverser MakeTraverser(VertexId v = 7, uint16_t step = 3, uint16_t hop = 2) {
  Traverser t;
  t.vertex = v;
  t.step = step;
  t.hop = hop;
  t.scope = 5;
  t.weight = 0x1234;
  t.vars.push_back(Value(int64_t{42}));
  t.vars.push_back(Value("abc"));
  return t;
}

TEST(BulkMergeTest, SameSiteRequiresAllSiteFields) {
  Traverser a = MakeTraverser();
  EXPECT_TRUE(a.SameSite(MakeTraverser()));

  Traverser b = MakeTraverser(8);
  EXPECT_FALSE(a.SameSite(b));
  b = MakeTraverser(7, 4);
  EXPECT_FALSE(a.SameSite(b));
  b = MakeTraverser(7, 3, 1);
  EXPECT_FALSE(a.SameSite(b));
  b = MakeTraverser();
  b.vars[0] = Value(int64_t{43});
  EXPECT_FALSE(a.SameSite(b));
  b = MakeTraverser();
  b.path.push_back(11);
  EXPECT_FALSE(a.SameSite(b));
  // Weight and bulk are NOT part of the site: they are what gets merged.
  b = MakeTraverser();
  b.weight = 999;
  b.bulk = 12;
  EXPECT_TRUE(a.SameSite(b));
}

TEST(BulkMergeTest, MergeSumsWeightWrappingAndAddsBulk) {
  Traverser a = MakeTraverser();
  a.weight = ~uint64_t{0};  // -1 in Z_2^64
  a.bulk = 3;
  Traverser b = MakeTraverser();
  b.weight = 5;
  b.bulk = 4;
  ASSERT_TRUE(a.MergeFrom(b));
  EXPECT_EQ(a.weight, uint64_t{4});  // wrapped
  EXPECT_EQ(a.bulk, 7u);
  EXPECT_EQ(a.SiteHash(), b.SiteHash());
}

TEST(BulkMergeTest, MergeRefusesBulkOverflow) {
  Traverser a = MakeTraverser();
  a.bulk = 0xffffffff;
  Traverser b = MakeTraverser();
  b.bulk = 1;
  uint64_t w = a.weight;
  EXPECT_FALSE(a.MergeFrom(b));
  EXPECT_EQ(a.bulk, 0xffffffffu);  // untouched on refusal
  EXPECT_EQ(a.weight, w);
}

TEST(BulkMergeTest, PayloadMergeMatchesObjectMerge) {
  Traverser a = MakeTraverser();
  a.weight = 100;
  a.bulk = 2;
  Traverser b = MakeTraverser();
  b.weight = 42;
  b.bulk = 5;

  ByteWriter wa(a.WireSize());
  a.Serialize(&wa);
  std::vector<uint8_t> pa = wa.Take();
  ByteWriter wb(b.WireSize());
  b.Serialize(&wb);
  std::vector<uint8_t> pb = wb.Take();

  ASSERT_TRUE(Traverser::MergePayloads(pa, pb));
  ByteReader reader(pa.data(), pa.size());
  Traverser merged = Traverser::Deserialize(&reader);
  EXPECT_EQ(merged.weight, uint64_t{142});
  EXPECT_EQ(merged.bulk, 7u);
  EXPECT_TRUE(merged.SameSite(a));
}

TEST(BulkMergeTest, PayloadMergeRefusesDifferentSites) {
  Traverser a = MakeTraverser();
  Traverser b = MakeTraverser(8);  // different vertex
  ByteWriter wa(a.WireSize());
  a.Serialize(&wa);
  std::vector<uint8_t> pa = wa.Take();
  ByteWriter wb(b.WireSize());
  b.Serialize(&wb);
  std::vector<uint8_t> pb = wb.Take();
  std::vector<uint8_t> before = pa;
  EXPECT_FALSE(Traverser::MergePayloads(pa, pb));
  EXPECT_EQ(pa, before);  // refused merges leave the carrier untouched

  // Different vars => different suffix => refuse.
  Traverser c = MakeTraverser();
  c.vars[0] = Value(int64_t{77});
  ByteWriter wc(c.WireSize());
  c.Serialize(&wc);
  std::vector<uint8_t> pc = wc.Take();
  EXPECT_FALSE(Traverser::MergePayloads(pa, pc));
}

TEST(BulkMergeTest, PayloadMergeRefusesBulkOverflow) {
  Traverser a = MakeTraverser();
  a.bulk = 0xfffffffe;
  Traverser b = MakeTraverser();
  b.bulk = 3;
  ByteWriter wa(a.WireSize());
  a.Serialize(&wa);
  std::vector<uint8_t> pa = wa.Take();
  ByteWriter wb(b.WireSize());
  b.Serialize(&wb);
  std::vector<uint8_t> pb = wb.Take();
  std::vector<uint8_t> before = pa;
  EXPECT_FALSE(Traverser::MergePayloads(pa, pb));
  EXPECT_EQ(pa, before);
}

// ---- equivalence: bulking on/off across engines and workloads ----------------

std::vector<Row> SortedRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    for (size_t i = 0; i < a.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return rows;
}

struct TestGraph {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  PropKeyId weight;
};

TestGraph SharedPowerLaw() {
  static TestGraph tg = [] {
    TestGraph g;
    g.schema = std::make_shared<Schema>();
    PowerLawGraphOptions opt;
    opt.num_vertices = 1024;
    opt.num_edges = 8192;
    opt.seed = 5;
    opt.weight_range = 10'000;
    g.graph = GeneratePowerLawGraph(opt, g.schema, 8).TakeValue();
    g.weight = g.schema->PropKey("weight");
    return g;
  }();
  return tg;
}

enum class Workload { kTopK, kCount, kPathCount, kGroupCount, kJoin };

std::shared_ptr<const Plan> BuildWorkload(const TestGraph& tg, Workload w) {
  switch (w) {
    case Workload::kTopK:
      return Traversal(tg.graph)
          .V({11})
          .RepeatOut("link", 3, /*dedup=*/true)
          .Project({Operand::VertexIdOp(), Operand::Property(tg.weight)})
          .OrderByLimit({{1, false}, {0, true}}, 10)
          .Build()
          .TakeValue();
    case Workload::kCount:
      return Traversal(tg.graph)
          .V({11})
          .RepeatOut("link", 3, /*dedup=*/true)
          .Count()
          .Build()
          .TakeValue();
    case Workload::kPathCount:
      // Multiplicity-preserving: no dedup, the count is the number of
      // 2-step walks — the workload where bulk multiplicities do the work.
      return Traversal(tg.graph)
          .V({11})
          .RepeatOut("link", 2, /*dedup=*/false)
          .Count()
          .Build()
          .TakeValue();
    case Workload::kGroupCount:
      return Traversal(tg.graph)
          .V({11})
          .Out("link")
          .Out("link")
          .GroupCount(Operand::VertexIdOp())
          .Build()
          .TakeValue();
    case Workload::kJoin: {
      Traversal fwd(tg.graph);
      fwd.V({1}).Out("link");
      Traversal bwd(tg.graph);
      bwd.V({2}).In("link");
      return Traversal::Join(std::move(fwd), Operand::VertexIdOp(),
                             std::move(bwd), Operand::VertexIdOp())
          .Count()
          .Build()
          .TakeValue();
    }
  }
  return nullptr;
}

class BulkingEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<EngineKind, Workload>> {};

TEST_P(BulkingEquivalenceTest, RowsIdenticalOnAndOff) {
  TestGraph tg = SharedPowerLaw();
  auto [engine, workload] = GetParam();
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 4;
  cfg.engine = engine;

  cfg.traverser_bulking = true;
  SimCluster on(cfg, tg.graph);
  auto ron = on.Run(BuildWorkload(tg, workload));
  ASSERT_TRUE(ron.ok()) << ron.status().ToString();

  cfg.traverser_bulking = false;
  SimCluster off(cfg, tg.graph);
  auto roff = off.Run(BuildWorkload(tg, workload));
  ASSERT_TRUE(roff.ok()) << roff.status().ToString();

  EXPECT_EQ(SortedRows(ron.value().rows), SortedRows(roff.value().rows));

  // Compression must never inflate traffic: with bulking on, the traverser
  // message count is bounded by the bulking-off run.
  auto tb = [](const obs::MetricsSnapshot& s) {
    return s.net.messages_by_kind[static_cast<int>(MessageKind::kTraverserBatch)];
  };
  EXPECT_LE(tb(on.MetricsSnapshot()), tb(off.MetricsSnapshot()));
}

INSTANTIATE_TEST_SUITE_P(
    EnginesByWorkloads, BulkingEquivalenceTest,
    ::testing::Combine(::testing::Values(EngineKind::kAsync, EngineKind::kBsp,
                                         EngineKind::kShared,
                                         EngineKind::kGaiaSim,
                                         EngineKind::kBanyanSim),
                       ::testing::Values(Workload::kTopK, Workload::kCount,
                                         Workload::kPathCount,
                                         Workload::kGroupCount, Workload::kJoin)),
    [](const auto& info) -> std::string {
      std::string e;
      switch (std::get<0>(info.param)) {
        case EngineKind::kAsync: e = "async"; break;
        case EngineKind::kBsp: e = "bsp"; break;
        case EngineKind::kShared: e = "shared"; break;
        case EngineKind::kGaiaSim: e = "gaia"; break;
        case EngineKind::kBanyanSim: e = "banyan"; break;
      }
      switch (std::get<1>(info.param)) {
        case Workload::kTopK: e += "_topk"; break;
        case Workload::kCount: e += "_count"; break;
        case Workload::kPathCount: e += "_pathcount"; break;
        case Workload::kGroupCount: e += "_groupcount"; break;
        case Workload::kJoin: e += "_join"; break;
      }
      return e;
    });

TEST(BulkingTest, AsyncPathCountActuallyMerges) {
  // Guards against the optimization silently turning itself off: on the
  // multiplicity workload the async engine must report merges and a strictly
  // smaller traverser-batch message count.
  TestGraph tg = SharedPowerLaw();
  auto plan = BuildWorkload(tg, Workload::kPathCount);
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 4;

  cfg.traverser_bulking = true;
  SimCluster on(cfg, tg.graph);
  ASSERT_TRUE(on.Run(plan).ok());
  obs::MetricsSnapshot son = on.MetricsSnapshot();

  cfg.traverser_bulking = false;
  SimCluster off(cfg, tg.graph);
  ASSERT_TRUE(off.Run(plan).ok());
  obs::MetricsSnapshot soff = off.MetricsSnapshot();

  EXPECT_GT(son.bulk_merges, 0u);
  EXPECT_GT(son.traversers_bulked, 0u);
  EXPECT_EQ(soff.bulk_merges, 0u);
  auto tb = [](const obs::MetricsSnapshot& s) {
    return s.net.messages_by_kind[static_cast<int>(MessageKind::kTraverserBatch)];
  };
  EXPECT_LT(tb(son), tb(soff));
  EXPECT_LT(son.tasks_executed, soff.tasks_executed);
}

TEST(BulkingTest, LdbcInteractiveRowsIdenticalOnAndOff) {
  SnbConfig snb_cfg = SnbConfig::Tiny(200);
  auto data = GenerateSnb(snb_cfg, /*num_partitions=*/8).TakeValue();
  SnbParamGen gen(*data, 1007);
  SnbParams params = gen.Next();
  for (int number : {1, 2, 5, 9, 13}) {
    auto plan = BuildInteractiveComplex(number, *data, params);
    ASSERT_TRUE(plan.ok()) << "IC" << number;
    std::shared_ptr<const Plan> p = plan.TakeValue();
    ClusterConfig cfg;
    cfg.num_nodes = 2;
    cfg.workers_per_node = 4;

    cfg.traverser_bulking = true;
    SimCluster on(cfg, data->graph);
    auto ron = on.Run(p);
    ASSERT_TRUE(ron.ok()) << "IC" << number << ": " << ron.status().ToString();

    cfg.traverser_bulking = false;
    SimCluster off(cfg, data->graph);
    auto roff = off.Run(p);
    ASSERT_TRUE(roff.ok()) << "IC" << number << ": " << roff.status().ToString();

    EXPECT_EQ(ron.value().rows, roff.value().rows) << "IC" << number;
  }
}

}  // namespace
}  // namespace graphdance
