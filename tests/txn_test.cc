// Tests for transactional processing (paper §IV-C): MV2PL write locking,
// snapshot visibility via the LCT, read-only queries never blocking, and
// crash recovery truncating uncommitted TEL versions.

#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"
#include "txn/txn_manager.h"

namespace graphdance {
namespace {

struct Fixture {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  std::unique_ptr<SimCluster> cluster;
  std::unique_ptr<TransactionManager> txn;
  LabelId link;
  LabelId node;

  Fixture() {
    schema = std::make_shared<Schema>();
    auto g = GenerateUniformGraph(64, 256, 9, schema, 4);
    EXPECT_TRUE(g.ok());
    graph = g.TakeValue();
    link = schema->EdgeLabel("link");
    node = schema->VertexLabel("node");
    ClusterConfig cfg;
    cfg.num_nodes = 1;
    cfg.workers_per_node = 4;
    cluster = std::make_unique<SimCluster>(cfg, graph);
    txn = std::make_unique<TransactionManager>(cluster.get());
  }

  int64_t OutDegree(VertexId v, Timestamp ts) {
    auto plan = Traversal(graph).V({v}).Out("link").Count().Build();
    EXPECT_TRUE(plan.ok());
    ClusterConfig cfg;
    cfg.num_nodes = 1;
    cfg.workers_per_node = 4;
    SimCluster fresh(cfg, graph);
    auto res = fresh.Run(plan.TakeValue(), ts);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.value().rows[0][0].as_int();
  }
};

TEST(TxnTest, CommitMakesEdgeVisible) {
  Fixture f;
  int64_t before = f.OutDegree(1, f.txn->ReadTimestamp());

  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 2).ok());
  auto ts = f.txn->Commit(t);
  ASSERT_TRUE(ts.ok());

  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before + 1);
  EXPECT_EQ(f.txn->committed(), 1u);
}

TEST(TxnTest, UncommittedWritesInvisible) {
  Fixture f;
  int64_t before = f.OutDegree(1, f.txn->ReadTimestamp());
  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 3).ok());
  // Buffered, not committed: read-only queries at the LCT see nothing.
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before);
  f.txn->Abort(t);
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before);
  EXPECT_EQ(f.txn->aborted(), 1u);
}

TEST(TxnTest, SnapshotIsolationAcrossCommits) {
  Fixture f;
  Timestamp old_ts = f.txn->ReadTimestamp();
  int64_t before = f.OutDegree(1, old_ts);

  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 4).ok());
  ASSERT_TRUE(f.txn->Commit(t).ok());

  // A reader holding the old snapshot still sees the old degree; a fresh
  // reader sees the new edge.
  EXPECT_EQ(f.OutDegree(1, old_ts), before);
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before + 1);
}

TEST(TxnTest, WriteWriteConflictAborts) {
  Fixture f;
  auto t1 = f.txn->Begin();
  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->SetProperty(t1, 5, 0, Value(int64_t{1})).ok());
  Status s = f.txn->SetProperty(t2, 5, 0, Value(int64_t{2}));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(f.txn->aborted(), 1u);
  // t1 can still commit.
  EXPECT_TRUE(f.txn->Commit(t1).ok());
}

TEST(TxnTest, LocksReleasedAfterCommit) {
  Fixture f;
  auto t1 = f.txn->Begin();
  ASSERT_TRUE(f.txn->SetProperty(t1, 7, 0, Value(int64_t{1})).ok());
  ASSERT_TRUE(f.txn->Commit(t1).ok());

  auto t2 = f.txn->Begin();
  EXPECT_TRUE(f.txn->SetProperty(t2, 7, 0, Value(int64_t{2})).ok());
  EXPECT_TRUE(f.txn->Commit(t2).ok());
}

TEST(TxnTest, DeleteEdgeVersioned) {
  Fixture f;
  auto t1 = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t1, 10, f.link, 20).ok());
  ASSERT_TRUE(f.txn->Commit(t1).ok());
  Timestamp with_edge = f.txn->ReadTimestamp();
  int64_t deg = f.OutDegree(10, with_edge);

  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->DeleteEdge(t2, 10, f.link, 20).ok());
  ASSERT_TRUE(f.txn->Commit(t2).ok());

  EXPECT_EQ(f.OutDegree(10, with_edge), deg);  // old snapshot keeps it
  EXPECT_EQ(f.OutDegree(10, f.txn->ReadTimestamp()), deg - 1);
}

TEST(TxnTest, PropertyVersions) {
  Fixture f;
  PropKeyId key = f.schema->PropKey("status");
  auto t1 = f.txn->Begin();
  ASSERT_TRUE(f.txn->SetProperty(t1, 3, key, Value("v1")).ok());
  ASSERT_TRUE(f.txn->Commit(t1).ok());
  Timestamp ts1 = f.txn->ReadTimestamp();

  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->SetProperty(t2, 3, key, Value("v2")).ok());
  ASSERT_TRUE(f.txn->Commit(t2).ok());

  PartitionId p = f.graph->PartitionOf(3);
  EXPECT_EQ(*f.graph->partition(p).PropertyOf(3, key, ts1), Value("v1"));
  EXPECT_EQ(*f.graph->partition(p).PropertyOf(3, key, f.txn->ReadTimestamp()),
            Value("v2"));
}

TEST(TxnTest, NewVertexVisibleAfterCommit) {
  Fixture f;
  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddVertex(t, 5000, f.node).ok());
  ASSERT_TRUE(f.txn->AddEdge(t, 5000, f.link, 1).ok());
  ASSERT_TRUE(f.txn->Commit(t).ok());

  PartitionId p = f.graph->PartitionOf(5000);
  EXPECT_TRUE(f.graph->partition(p).HasVertex(5000, f.txn->ReadTimestamp()));
  EXPECT_EQ(f.OutDegree(5000, f.txn->ReadTimestamp()), 1);
}

TEST(TxnTest, CrashRecoveryUndoesPartialCommit) {
  Fixture f;
  int64_t before = f.OutDegree(1, f.txn->ReadTimestamp());

  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 6).ok());
  f.txn->CrashDuringCommit(t);

  // The partial commit sits in the TEL with ts > LCT: invisible to readers.
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before);
  // ...but physically present until recovery scrubs it.
  f.txn->SimulateCrashAndRecover();
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before);
  // Future commits still work and become visible.
  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t2, 1, f.link, 7).ok());
  ASSERT_TRUE(f.txn->Commit(t2).ok());
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before + 1);
}

TEST(TxnTest, RecoveryPreservesCommitted) {
  Fixture f;
  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 2, f.link, 9).ok());
  ASSERT_TRUE(f.txn->Commit(t).ok());
  int64_t after_commit = f.OutDegree(2, f.txn->ReadTimestamp());

  f.txn->SimulateCrashAndRecover();
  EXPECT_EQ(f.OutDegree(2, f.txn->ReadTimestamp()), after_commit);
}

TEST(TxnTest, CrashDuringCommitWithQueriesInFlight) {
  Fixture f;
  int64_t before = f.OutDegree(1, f.txn->ReadTimestamp());
  auto built = Traversal(f.graph).V({1}).Out("link").Count().Build();
  ASSERT_TRUE(built.ok());
  std::shared_ptr<const Plan> plan = built.TakeValue();

  // A query already submitted (but not yet run) when the commit tears.
  uint64_t q1 = f.cluster->Submit(plan, 0, f.txn->ReadTimestamp());

  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 21).ok());
  f.txn->CrashDuringCommit(t);

  // Submitted after the torn commit, before recovery: the partial versions
  // sit in the TEL with ts > LCT and must stay invisible.
  uint64_t q2 = f.cluster->Submit(plan, 0, f.txn->ReadTimestamp());

  ASSERT_TRUE(f.cluster->RunToCompletion().ok());
  ASSERT_TRUE(f.cluster->result(q1).done);
  ASSERT_TRUE(f.cluster->result(q2).done);
  EXPECT_EQ(f.cluster->result(q1).rows[0][0].as_int(), before);
  EXPECT_EQ(f.cluster->result(q2).rows[0][0].as_int(), before);
}

TEST(TxnTest, RecoveryInterleavedWithQueriesKeepsSnapshots) {
  Fixture f;
  int64_t before = f.OutDegree(3, f.txn->ReadTimestamp());
  auto built = Traversal(f.graph).V({3}).Out("link").Count().Build();
  ASSERT_TRUE(built.ok());
  std::shared_ptr<const Plan> plan = built.TakeValue();

  // Committed work, then a torn commit, then crash recovery — with queries
  // submitted at every intermediate snapshot and all run afterwards.
  auto t1 = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t1, 3, f.link, 30).ok());
  ASSERT_TRUE(f.txn->Commit(t1).ok());
  Timestamp committed_ts = f.txn->ReadTimestamp();
  uint64_t q_committed = f.cluster->Submit(plan, 0, committed_ts);

  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t2, 3, f.link, 31).ok());
  f.txn->CrashDuringCommit(t2);
  uint64_t q_torn = f.cluster->Submit(plan, 0, f.txn->ReadTimestamp());

  f.txn->SimulateCrashAndRecover();
  uint64_t q_recovered = f.cluster->Submit(plan, 0, f.txn->ReadTimestamp());

  ASSERT_TRUE(f.cluster->RunToCompletion().ok());
  // Recovery scrubbed the torn commit but preserved the committed edge; every
  // snapshot sees exactly the committed state.
  EXPECT_EQ(f.cluster->result(q_committed).rows[0][0].as_int(), before + 1);
  EXPECT_EQ(f.cluster->result(q_torn).rows[0][0].as_int(), before + 1);
  EXPECT_EQ(f.cluster->result(q_recovered).rows[0][0].as_int(), before + 1);

  // And the manager is healthy: a fresh commit lands and is visible.
  auto t3 = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t3, 3, f.link, 32).ok());
  ASSERT_TRUE(f.txn->Commit(t3).ok());
  EXPECT_EQ(f.OutDegree(3, f.txn->ReadTimestamp()), before + 2);
}

TEST(TxnTest, LctMonotone) {
  Fixture f;
  Timestamp prev = f.txn->ReadTimestamp();
  for (int i = 0; i < 5; ++i) {
    auto t = f.txn->Begin();
    ASSERT_TRUE(f.txn->SetProperty(t, 11, 0, Value(int64_t{i})).ok());
    ASSERT_TRUE(f.txn->Commit(t).ok());
    EXPECT_GT(f.txn->ReadTimestamp(), prev);
    prev = f.txn->ReadTimestamp();
  }
}

TEST(TxnTest, UnknownTransactionRejected) {
  Fixture f;
  EXPECT_FALSE(f.txn->AddEdge(999, 1, f.link, 2).ok());
  EXPECT_FALSE(f.txn->Commit(999).ok());
}

}  // namespace
}  // namespace graphdance
