// Tests for transactional processing (paper §IV-C): MV2PL write locking,
// snapshot visibility via the LCT, read-only queries never blocking, and
// crash recovery truncating uncommitted TEL versions.

#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"
#include "txn/txn_manager.h"

namespace graphdance {
namespace {

struct Fixture {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  std::unique_ptr<SimCluster> cluster;
  std::unique_ptr<TransactionManager> txn;
  LabelId link;
  LabelId node;

  Fixture() {
    schema = std::make_shared<Schema>();
    auto g = GenerateUniformGraph(64, 256, 9, schema, 4);
    EXPECT_TRUE(g.ok());
    graph = g.TakeValue();
    link = schema->EdgeLabel("link");
    node = schema->VertexLabel("node");
    ClusterConfig cfg;
    cfg.num_nodes = 1;
    cfg.workers_per_node = 4;
    cluster = std::make_unique<SimCluster>(cfg, graph);
    txn = std::make_unique<TransactionManager>(cluster.get());
  }

  int64_t OutDegree(VertexId v, Timestamp ts) {
    auto plan = Traversal(graph).V({v}).Out("link").Count().Build();
    EXPECT_TRUE(plan.ok());
    ClusterConfig cfg;
    cfg.num_nodes = 1;
    cfg.workers_per_node = 4;
    SimCluster fresh(cfg, graph);
    auto res = fresh.Run(plan.TakeValue(), ts);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.value().rows[0][0].as_int();
  }
};

TEST(TxnTest, CommitMakesEdgeVisible) {
  Fixture f;
  int64_t before = f.OutDegree(1, f.txn->ReadTimestamp());

  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 2).ok());
  auto ts = f.txn->Commit(t);
  ASSERT_TRUE(ts.ok());

  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before + 1);
  EXPECT_EQ(f.txn->committed(), 1u);
}

TEST(TxnTest, UncommittedWritesInvisible) {
  Fixture f;
  int64_t before = f.OutDegree(1, f.txn->ReadTimestamp());
  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 3).ok());
  // Buffered, not committed: read-only queries at the LCT see nothing.
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before);
  f.txn->Abort(t);
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before);
  EXPECT_EQ(f.txn->aborted(), 1u);
}

TEST(TxnTest, SnapshotIsolationAcrossCommits) {
  Fixture f;
  Timestamp old_ts = f.txn->ReadTimestamp();
  int64_t before = f.OutDegree(1, old_ts);

  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 4).ok());
  ASSERT_TRUE(f.txn->Commit(t).ok());

  // A reader holding the old snapshot still sees the old degree; a fresh
  // reader sees the new edge.
  EXPECT_EQ(f.OutDegree(1, old_ts), before);
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before + 1);
}

TEST(TxnTest, WriteWriteConflictAborts) {
  Fixture f;
  auto t1 = f.txn->Begin();
  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->SetProperty(t1, 5, 0, Value(int64_t{1})).ok());
  Status s = f.txn->SetProperty(t2, 5, 0, Value(int64_t{2}));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(f.txn->aborted(), 1u);
  // t1 can still commit.
  EXPECT_TRUE(f.txn->Commit(t1).ok());
}

TEST(TxnTest, LocksReleasedAfterCommit) {
  Fixture f;
  auto t1 = f.txn->Begin();
  ASSERT_TRUE(f.txn->SetProperty(t1, 7, 0, Value(int64_t{1})).ok());
  ASSERT_TRUE(f.txn->Commit(t1).ok());

  auto t2 = f.txn->Begin();
  EXPECT_TRUE(f.txn->SetProperty(t2, 7, 0, Value(int64_t{2})).ok());
  EXPECT_TRUE(f.txn->Commit(t2).ok());
}

TEST(TxnTest, DeleteEdgeVersioned) {
  Fixture f;
  auto t1 = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t1, 10, f.link, 20).ok());
  ASSERT_TRUE(f.txn->Commit(t1).ok());
  Timestamp with_edge = f.txn->ReadTimestamp();
  int64_t deg = f.OutDegree(10, with_edge);

  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->DeleteEdge(t2, 10, f.link, 20).ok());
  ASSERT_TRUE(f.txn->Commit(t2).ok());

  EXPECT_EQ(f.OutDegree(10, with_edge), deg);  // old snapshot keeps it
  EXPECT_EQ(f.OutDegree(10, f.txn->ReadTimestamp()), deg - 1);
}

TEST(TxnTest, PropertyVersions) {
  Fixture f;
  PropKeyId key = f.schema->PropKey("status");
  auto t1 = f.txn->Begin();
  ASSERT_TRUE(f.txn->SetProperty(t1, 3, key, Value("v1")).ok());
  ASSERT_TRUE(f.txn->Commit(t1).ok());
  Timestamp ts1 = f.txn->ReadTimestamp();

  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->SetProperty(t2, 3, key, Value("v2")).ok());
  ASSERT_TRUE(f.txn->Commit(t2).ok());

  PartitionId p = f.graph->PartitionOf(3);
  EXPECT_EQ(*f.graph->partition(p).PropertyOf(3, key, ts1), Value("v1"));
  EXPECT_EQ(*f.graph->partition(p).PropertyOf(3, key, f.txn->ReadTimestamp()),
            Value("v2"));
}

TEST(TxnTest, NewVertexVisibleAfterCommit) {
  Fixture f;
  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddVertex(t, 5000, f.node).ok());
  ASSERT_TRUE(f.txn->AddEdge(t, 5000, f.link, 1).ok());
  ASSERT_TRUE(f.txn->Commit(t).ok());

  PartitionId p = f.graph->PartitionOf(5000);
  EXPECT_TRUE(f.graph->partition(p).HasVertex(5000, f.txn->ReadTimestamp()));
  EXPECT_EQ(f.OutDegree(5000, f.txn->ReadTimestamp()), 1);
}

TEST(TxnTest, CrashRecoveryUndoesPartialCommit) {
  Fixture f;
  int64_t before = f.OutDegree(1, f.txn->ReadTimestamp());

  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 6).ok());
  f.txn->CrashDuringCommit(t);

  // The partial commit sits in the TEL with ts > LCT: invisible to readers.
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before);
  // ...but physically present until recovery scrubs it.
  f.txn->SimulateCrashAndRecover();
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before);
  // Future commits still work and become visible.
  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t2, 1, f.link, 7).ok());
  ASSERT_TRUE(f.txn->Commit(t2).ok());
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before + 1);
}

TEST(TxnTest, RecoveryPreservesCommitted) {
  Fixture f;
  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 2, f.link, 9).ok());
  ASSERT_TRUE(f.txn->Commit(t).ok());
  int64_t after_commit = f.OutDegree(2, f.txn->ReadTimestamp());

  f.txn->SimulateCrashAndRecover();
  EXPECT_EQ(f.OutDegree(2, f.txn->ReadTimestamp()), after_commit);
}

TEST(TxnTest, LctMonotone) {
  Fixture f;
  Timestamp prev = f.txn->ReadTimestamp();
  for (int i = 0; i < 5; ++i) {
    auto t = f.txn->Begin();
    ASSERT_TRUE(f.txn->SetProperty(t, 11, 0, Value(int64_t{i})).ok());
    ASSERT_TRUE(f.txn->Commit(t).ok());
    EXPECT_GT(f.txn->ReadTimestamp(), prev);
    prev = f.txn->ReadTimestamp();
  }
}

TEST(TxnTest, UnknownTransactionRejected) {
  Fixture f;
  EXPECT_FALSE(f.txn->AddEdge(999, 1, f.link, 2).ok());
  EXPECT_FALSE(f.txn->Commit(999).ok());
}

}  // namespace
}  // namespace graphdance
