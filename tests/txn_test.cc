// Tests for transactional processing (paper §IV-C): MV2PL write locking,
// snapshot visibility via the LCT, read-only queries never blocking, and
// crash recovery truncating uncommitted TEL versions — plus the distributed
// multi-partition commit protocol (DESIGN.md §16): two-round OCC commit,
// no-wait conflicts, crash-during-{prepare,commit,apply} all-or-nothing
// visibility, LCT contiguity, lock release on recovery, the metrics
// off-switch, the serializability oracle (including its planted-corruption
// non-vacuity checks) and the `;txn=` replay-token codec.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/oracle.h"
#include "check/txn_oracle.h"
#include "graph/generators.h"
#include "ldbc/snb_generator.h"
#include "ldbc/snb_queries.h"
#include "ldbc/snb_updates.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"
#include "txn/dist_txn.h"
#include "txn/txn_manager.h"

namespace graphdance {
namespace {

using check::FormatReplayToken;
using check::MakeTxnScenario;
using check::ParseReplayToken;
using check::ReplaySpec;
using check::RunTxnCell;
using check::RunTxnDifferential;
using check::TxnDifferentialOptions;
using check::TxnScenario;

struct Fixture {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  std::unique_ptr<SimCluster> cluster;
  std::unique_ptr<TransactionManager> txn;
  LabelId link;
  LabelId node;

  Fixture() {
    schema = std::make_shared<Schema>();
    auto g = GenerateUniformGraph(64, 256, 9, schema, 4);
    EXPECT_TRUE(g.ok());
    graph = g.TakeValue();
    link = schema->EdgeLabel("link");
    node = schema->VertexLabel("node");
    ClusterConfig cfg;
    cfg.num_nodes = 1;
    cfg.workers_per_node = 4;
    cluster = std::make_unique<SimCluster>(cfg, graph);
    txn = std::make_unique<TransactionManager>(cluster.get());
  }

  int64_t OutDegree(VertexId v, Timestamp ts) {
    auto plan = Traversal(graph).V({v}).Out("link").Count().Build();
    EXPECT_TRUE(plan.ok());
    ClusterConfig cfg;
    cfg.num_nodes = 1;
    cfg.workers_per_node = 4;
    SimCluster fresh(cfg, graph);
    auto res = fresh.Run(plan.TakeValue(), ts);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.value().rows[0][0].as_int();
  }
};

TEST(TxnTest, CommitMakesEdgeVisible) {
  Fixture f;
  int64_t before = f.OutDegree(1, f.txn->ReadTimestamp());

  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 2).ok());
  auto ts = f.txn->Commit(t);
  ASSERT_TRUE(ts.ok());

  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before + 1);
  EXPECT_EQ(f.txn->committed(), 1u);
}

TEST(TxnTest, UncommittedWritesInvisible) {
  Fixture f;
  int64_t before = f.OutDegree(1, f.txn->ReadTimestamp());
  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 3).ok());
  // Buffered, not committed: read-only queries at the LCT see nothing.
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before);
  f.txn->Abort(t);
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before);
  EXPECT_EQ(f.txn->aborted(), 1u);
}

TEST(TxnTest, SnapshotIsolationAcrossCommits) {
  Fixture f;
  Timestamp old_ts = f.txn->ReadTimestamp();
  int64_t before = f.OutDegree(1, old_ts);

  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 4).ok());
  ASSERT_TRUE(f.txn->Commit(t).ok());

  // A reader holding the old snapshot still sees the old degree; a fresh
  // reader sees the new edge.
  EXPECT_EQ(f.OutDegree(1, old_ts), before);
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before + 1);
}

TEST(TxnTest, WriteWriteConflictAborts) {
  Fixture f;
  auto t1 = f.txn->Begin();
  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->SetProperty(t1, 5, 0, Value(int64_t{1})).ok());
  Status s = f.txn->SetProperty(t2, 5, 0, Value(int64_t{2}));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(f.txn->aborted(), 1u);
  // t1 can still commit.
  EXPECT_TRUE(f.txn->Commit(t1).ok());
}

TEST(TxnTest, LocksReleasedAfterCommit) {
  Fixture f;
  auto t1 = f.txn->Begin();
  ASSERT_TRUE(f.txn->SetProperty(t1, 7, 0, Value(int64_t{1})).ok());
  ASSERT_TRUE(f.txn->Commit(t1).ok());

  auto t2 = f.txn->Begin();
  EXPECT_TRUE(f.txn->SetProperty(t2, 7, 0, Value(int64_t{2})).ok());
  EXPECT_TRUE(f.txn->Commit(t2).ok());
}

TEST(TxnTest, DeleteEdgeVersioned) {
  Fixture f;
  auto t1 = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t1, 10, f.link, 20).ok());
  ASSERT_TRUE(f.txn->Commit(t1).ok());
  Timestamp with_edge = f.txn->ReadTimestamp();
  int64_t deg = f.OutDegree(10, with_edge);

  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->DeleteEdge(t2, 10, f.link, 20).ok());
  ASSERT_TRUE(f.txn->Commit(t2).ok());

  EXPECT_EQ(f.OutDegree(10, with_edge), deg);  // old snapshot keeps it
  EXPECT_EQ(f.OutDegree(10, f.txn->ReadTimestamp()), deg - 1);
}

TEST(TxnTest, PropertyVersions) {
  Fixture f;
  PropKeyId key = f.schema->PropKey("status");
  auto t1 = f.txn->Begin();
  ASSERT_TRUE(f.txn->SetProperty(t1, 3, key, Value("v1")).ok());
  ASSERT_TRUE(f.txn->Commit(t1).ok());
  Timestamp ts1 = f.txn->ReadTimestamp();

  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->SetProperty(t2, 3, key, Value("v2")).ok());
  ASSERT_TRUE(f.txn->Commit(t2).ok());

  PartitionId p = f.graph->PartitionOf(3);
  EXPECT_EQ(*f.graph->partition(p).PropertyOf(3, key, ts1), Value("v1"));
  EXPECT_EQ(*f.graph->partition(p).PropertyOf(3, key, f.txn->ReadTimestamp()),
            Value("v2"));
}

TEST(TxnTest, NewVertexVisibleAfterCommit) {
  Fixture f;
  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddVertex(t, 5000, f.node).ok());
  ASSERT_TRUE(f.txn->AddEdge(t, 5000, f.link, 1).ok());
  ASSERT_TRUE(f.txn->Commit(t).ok());

  PartitionId p = f.graph->PartitionOf(5000);
  EXPECT_TRUE(f.graph->partition(p).HasVertex(5000, f.txn->ReadTimestamp()));
  EXPECT_EQ(f.OutDegree(5000, f.txn->ReadTimestamp()), 1);
}

TEST(TxnTest, CrashRecoveryUndoesPartialCommit) {
  Fixture f;
  int64_t before = f.OutDegree(1, f.txn->ReadTimestamp());

  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 6).ok());
  f.txn->CrashDuringCommit(t);

  // The partial commit sits in the TEL with ts > LCT: invisible to readers.
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before);
  // ...but physically present until recovery scrubs it.
  f.txn->SimulateCrashAndRecover();
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before);
  // Future commits still work and become visible.
  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t2, 1, f.link, 7).ok());
  ASSERT_TRUE(f.txn->Commit(t2).ok());
  EXPECT_EQ(f.OutDegree(1, f.txn->ReadTimestamp()), before + 1);
}

TEST(TxnTest, RecoveryPreservesCommitted) {
  Fixture f;
  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 2, f.link, 9).ok());
  ASSERT_TRUE(f.txn->Commit(t).ok());
  int64_t after_commit = f.OutDegree(2, f.txn->ReadTimestamp());

  f.txn->SimulateCrashAndRecover();
  EXPECT_EQ(f.OutDegree(2, f.txn->ReadTimestamp()), after_commit);
}

TEST(TxnTest, CrashDuringCommitWithQueriesInFlight) {
  Fixture f;
  int64_t before = f.OutDegree(1, f.txn->ReadTimestamp());
  auto built = Traversal(f.graph).V({1}).Out("link").Count().Build();
  ASSERT_TRUE(built.ok());
  std::shared_ptr<const Plan> plan = built.TakeValue();

  // A query already submitted (but not yet run) when the commit tears.
  uint64_t q1 = f.cluster->Submit(plan, 0, f.txn->ReadTimestamp());

  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t, 1, f.link, 21).ok());
  f.txn->CrashDuringCommit(t);

  // Submitted after the torn commit, before recovery: the partial versions
  // sit in the TEL with ts > LCT and must stay invisible.
  uint64_t q2 = f.cluster->Submit(plan, 0, f.txn->ReadTimestamp());

  ASSERT_TRUE(f.cluster->RunToCompletion().ok());
  ASSERT_TRUE(f.cluster->result(q1).done);
  ASSERT_TRUE(f.cluster->result(q2).done);
  EXPECT_EQ(f.cluster->result(q1).rows[0][0].as_int(), before);
  EXPECT_EQ(f.cluster->result(q2).rows[0][0].as_int(), before);
}

TEST(TxnTest, RecoveryInterleavedWithQueriesKeepsSnapshots) {
  Fixture f;
  int64_t before = f.OutDegree(3, f.txn->ReadTimestamp());
  auto built = Traversal(f.graph).V({3}).Out("link").Count().Build();
  ASSERT_TRUE(built.ok());
  std::shared_ptr<const Plan> plan = built.TakeValue();

  // Committed work, then a torn commit, then crash recovery — with queries
  // submitted at every intermediate snapshot and all run afterwards.
  auto t1 = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t1, 3, f.link, 30).ok());
  ASSERT_TRUE(f.txn->Commit(t1).ok());
  Timestamp committed_ts = f.txn->ReadTimestamp();
  uint64_t q_committed = f.cluster->Submit(plan, 0, committed_ts);

  auto t2 = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t2, 3, f.link, 31).ok());
  f.txn->CrashDuringCommit(t2);
  uint64_t q_torn = f.cluster->Submit(plan, 0, f.txn->ReadTimestamp());

  f.txn->SimulateCrashAndRecover();
  uint64_t q_recovered = f.cluster->Submit(plan, 0, f.txn->ReadTimestamp());

  ASSERT_TRUE(f.cluster->RunToCompletion().ok());
  // Recovery scrubbed the torn commit but preserved the committed edge; every
  // snapshot sees exactly the committed state.
  EXPECT_EQ(f.cluster->result(q_committed).rows[0][0].as_int(), before + 1);
  EXPECT_EQ(f.cluster->result(q_torn).rows[0][0].as_int(), before + 1);
  EXPECT_EQ(f.cluster->result(q_recovered).rows[0][0].as_int(), before + 1);

  // And the manager is healthy: a fresh commit lands and is visible.
  auto t3 = f.txn->Begin();
  ASSERT_TRUE(f.txn->AddEdge(t3, 3, f.link, 32).ok());
  ASSERT_TRUE(f.txn->Commit(t3).ok());
  EXPECT_EQ(f.OutDegree(3, f.txn->ReadTimestamp()), before + 2);
}

TEST(TxnTest, LctMonotone) {
  Fixture f;
  Timestamp prev = f.txn->ReadTimestamp();
  for (int i = 0; i < 5; ++i) {
    auto t = f.txn->Begin();
    ASSERT_TRUE(f.txn->SetProperty(t, 11, 0, Value(int64_t{i})).ok());
    ASSERT_TRUE(f.txn->Commit(t).ok());
    EXPECT_GT(f.txn->ReadTimestamp(), prev);
    prev = f.txn->ReadTimestamp();
  }
}

TEST(TxnTest, UnknownTransactionRejected) {
  Fixture f;
  EXPECT_FALSE(f.txn->AddEdge(999, 1, f.link, 2).ok());
  EXPECT_FALSE(f.txn->Commit(999).ok());
}

TEST(TxnTest, CrashRecoveryReleasesLockTable) {
  // Regression: MV2PL locks are volatile state and must not survive a crash.
  // A writer that died mid-transaction may never block a post-recovery
  // writer on the same anchor.
  Fixture f;
  auto t = f.txn->Begin();
  ASSERT_TRUE(f.txn->SetProperty(t, 5, 0, Value(int64_t{1})).ok());

  f.txn->SimulateCrashAndRecover();

  auto t2 = f.txn->Begin();
  EXPECT_TRUE(f.txn->SetProperty(t2, 5, 0, Value(int64_t{2})).ok());
  EXPECT_TRUE(f.txn->Commit(t2).ok());
  PartitionId p = f.graph->PartitionOf(5);
  EXPECT_EQ(*f.graph->partition(p).PropertyOf(5, 0, f.txn->ReadTimestamp()),
            Value(int64_t{2}));
}

// --- distributed multi-partition transactions (DESIGN.md §16) ----------------

struct DistFixture {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  std::unique_ptr<SimCluster> cluster;
  LabelId link;

  explicit DistFixture(bool arm_faults = false) {
    schema = std::make_shared<Schema>();
    auto g = GenerateUniformGraph(64, 256, 9, schema, 4);
    EXPECT_TRUE(g.ok());
    graph = g.TakeValue();
    link = schema->EdgeLabel("link");
    ClusterConfig cfg;
    cfg.num_nodes = 1;
    cfg.workers_per_node = 4;
    if (arm_faults) {
      // Chaos tests inject crashes; the fault machinery (epoch fences,
      // crashed-delivery drops) must be active for those to behave. The
      // unreachable scripted delay arms it without touching any schedule.
      cfg.fault.DelayNth(~0ull, 1);
    }
    cluster = std::make_unique<SimCluster>(cfg, graph);
  }

  // First vertex owned by a different partition than `a`.
  VertexId CrossPartitionPeer(VertexId a) {
    for (VertexId v = 1; v < 64; ++v) {
      if (v != a && graph->PartitionOf(v) != graph->PartitionOf(a)) return v;
    }
    ADD_FAILURE() << "graph has a single partition";
    return a;
  }

  // First vertex owned by neither a's nor b's partition.
  VertexId ThirdPartitionVertex(VertexId a, VertexId b) {
    for (VertexId v = 1; v < 64; ++v) {
      if (graph->PartitionOf(v) != graph->PartitionOf(a) &&
          graph->PartitionOf(v) != graph->PartitionOf(b)) {
        return v;
      }
    }
    ADD_FAILURE() << "graph has fewer than three partitions";
    return a;
  }

  int64_t Degree(VertexId v, Timestamp ts, bool out) {
    Traversal t(graph);
    t.V({v});
    if (out) {
      t.Out("link");
    } else {
      t.In("link");
    }
    t.Count();
    auto plan = t.Build();
    EXPECT_TRUE(plan.ok());
    ClusterConfig cfg;
    cfg.num_nodes = 1;
    cfg.workers_per_node = 4;
    SimCluster fresh(cfg, graph);
    auto res = fresh.Run(plan.TakeValue(), ts);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.value().rows[0][0].as_int();
  }
};

TEST(DistTxnTest, CommitAtomicAcrossPartitions) {
  DistFixture f;
  DistTxnManager mgr(f.cluster.get());
  VertexId a = 1;
  VertexId b = f.CrossPartitionPeer(a);
  int64_t out_before = f.Degree(a, mgr.ReadTimestamp(), true);
  int64_t in_before = f.Degree(b, mgr.ReadTimestamp(), false);

  auto t = mgr.Begin();
  ASSERT_TRUE(mgr.AddEdge(t, a, f.link, b).ok());
  std::optional<Result<Timestamp>> done;
  mgr.CommitAsync(t,
                  [&](Result<Timestamp> r, SimTime) { done = std::move(r); });
  ASSERT_TRUE(f.cluster->RunToCompletion().ok());

  ASSERT_TRUE(done.has_value());
  ASSERT_TRUE(done->ok()) << done->status().ToString();
  EXPECT_GE(mgr.ReadTimestamp(), done->value());
  // Both halves — the out-half at a's partition and the in-half at b's —
  // became visible together at the advanced LCT.
  EXPECT_EQ(f.Degree(a, mgr.ReadTimestamp(), true), out_before + 1);
  EXPECT_EQ(f.Degree(b, mgr.ReadTimestamp(), false), in_before + 1);
  EXPECT_EQ(mgr.committed(), 1u);
  EXPECT_EQ(mgr.active(), 0u);
  EXPECT_EQ(mgr.LocksHeld(), 0u);
}

TEST(DistTxnTest, ConcurrentConflictingCommitsFirstCommitterWins) {
  DistFixture f;
  DistTxnManager mgr(f.cluster.get());
  PropKeyId key = f.schema->PropKey("status");
  auto t1 = mgr.Begin();
  auto t2 = mgr.Begin();
  // Both buffer lock-free (OCC): the conflict surfaces at prepare, no-wait.
  ASSERT_TRUE(mgr.SetProperty(t1, 5, key, Value(int64_t{1})).ok());
  ASSERT_TRUE(mgr.SetProperty(t2, 5, key, Value(int64_t{2})).ok());

  int commits = 0;
  int aborts = 0;
  auto done = [&](Result<Timestamp> r, SimTime) {
    if (r.ok()) {
      commits++;
    } else {
      aborts++;
    }
  };
  f.cluster->ScheduleAt(1000, [&](SimTime) {
    mgr.CommitAsync(t1, done);
    mgr.CommitAsync(t2, done);
  });
  ASSERT_TRUE(f.cluster->RunToCompletion().ok());

  // Exactly one wins; the loser's snapshot is stale from the winner's commit
  // on, so its retries exhaust and it finally aborts — nobody ever blocks.
  EXPECT_EQ(commits, 1);
  EXPECT_EQ(aborts, 1);
  EXPECT_EQ(mgr.stats().committed, 1u);
  EXPECT_EQ(mgr.stats().aborted, 1u);
  EXPECT_GT(mgr.stats().retried, 0u);
  EXPECT_GT(mgr.stats().conflicts_locked + mgr.stats().validation_failed, 0u);
  EXPECT_EQ(mgr.active(), 0u);
  EXPECT_EQ(mgr.LocksHeld(), 0u);
}

TEST(DistTxnTest, CrashDuringPrepareRetriesAndCommits) {
  DistFixture f(/*arm_faults=*/true);
  DistTxnManager::Options o;
  o.crash_phase = DistTxnManager::CrashPhase::kPrepare;
  o.crash_nth = 1;
  DistTxnManager mgr(f.cluster.get(), o);
  VertexId a = 1;
  VertexId b = f.CrossPartitionPeer(a);
  int64_t out_before = f.Degree(a, mgr.ReadTimestamp(), true);
  int64_t in_before = f.Degree(b, mgr.ReadTimestamp(), false);

  auto t = mgr.Begin();
  ASSERT_TRUE(mgr.AddEdge(t, a, f.link, b).ok());
  std::optional<Result<Timestamp>> done;
  mgr.CommitAsync(t,
                  [&](Result<Timestamp> r, SimTime) { done = std::move(r); });
  ASSERT_TRUE(f.cluster->RunToCompletion().ok());

  // The first participant died with the prepare on the wire: the vote never
  // came, the round timed out, and the retry found the clean restarted
  // incarnation. No version advanced meanwhile, so the same snapshot wins.
  ASSERT_TRUE(done.has_value());
  ASSERT_TRUE(done->ok()) << done->status().ToString();
  EXPECT_GE(mgr.stats().retried, 1u);
  EXPECT_EQ(mgr.committed(), 1u);
  EXPECT_EQ(f.Degree(a, mgr.ReadTimestamp(), true), out_before + 1);
  EXPECT_EQ(f.Degree(b, mgr.ReadTimestamp(), false), in_before + 1);
  EXPECT_EQ(mgr.LocksHeld(), 0u);
}

TEST(DistTxnTest, PhasedCrashDuringCommitTornThenRecovered) {
  DistFixture f;
  DistTxnManager::Options o;
  o.crash_phase = DistTxnManager::CrashPhase::kCommit;
  o.crash_nth = 1;
  DistTxnManager mgr(f.graph.get(), o);
  VertexId a = 1;
  VertexId b = f.CrossPartitionPeer(a);
  int64_t out_before = f.Degree(a, mgr.ReadTimestamp(), true);
  int64_t in_before = f.Degree(b, mgr.ReadTimestamp(), false);

  auto t = mgr.Begin();
  ASSERT_TRUE(mgr.AddEdge(t, a, f.link, b).ok());
  auto r = mgr.CommitDirect(t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Timestamp ts = r.value();

  // Decided but nothing applied: the LCT is held back, so neither half is
  // visible to any reader, and the surviving participant still holds claims.
  EXPECT_TRUE(mgr.HasTorn());
  EXPECT_LT(mgr.ReadTimestamp(), ts);
  EXPECT_EQ(f.Degree(a, mgr.ReadTimestamp(), true), out_before);
  EXPECT_EQ(f.Degree(b, mgr.ReadTimestamp(), false), in_before);
  EXPECT_GT(mgr.LocksHeld(), 0u);

  mgr.RecoverDirect();
  EXPECT_FALSE(mgr.HasTorn());
  EXPECT_GE(mgr.ReadTimestamp(), ts);
  EXPECT_EQ(mgr.LocksHeld(), 0u);
  EXPECT_EQ(mgr.committed(), 1u);
  EXPECT_EQ(f.Degree(a, mgr.ReadTimestamp(), true), out_before + 1);
  EXPECT_EQ(f.Degree(b, mgr.ReadTimestamp(), false), in_before + 1);
}

TEST(DistTxnTest, PhasedCrashDuringApplyAllOrNothing) {
  DistFixture f;
  DistTxnManager::Options o;
  o.crash_phase = DistTxnManager::CrashPhase::kApply;
  o.crash_nth = 2;  // first partition applied, second crashed, third pending
  DistTxnManager mgr(f.graph.get(), o);
  VertexId a = 1;
  VertexId b = f.CrossPartitionPeer(a);
  VertexId c = f.ThirdPartitionVertex(a, b);
  PropKeyId key = f.schema->PropKey("status");
  int64_t out_before = f.Degree(a, mgr.ReadTimestamp(), true);
  int64_t in_before = f.Degree(b, mgr.ReadTimestamp(), false);

  auto t = mgr.Begin();
  ASSERT_TRUE(mgr.AddEdge(t, a, f.link, b).ok());
  ASSERT_TRUE(mgr.SetProperty(t, c, key, Value(int64_t{7})).ok());
  auto r = mgr.CommitDirect(t);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Timestamp ts = r.value();

  // A strict prefix of the partitions applied, but the applied part carries
  // ts > LCT: all-or-nothing at every reader, never a partial write set.
  EXPECT_TRUE(mgr.HasTorn());
  EXPECT_LT(mgr.ReadTimestamp(), ts);
  EXPECT_EQ(f.Degree(a, mgr.ReadTimestamp(), true), out_before);
  EXPECT_EQ(f.Degree(b, mgr.ReadTimestamp(), false), in_before);
  EXPECT_EQ(f.graph->partition(f.graph->PartitionOf(c))
                .PropertyOf(c, key, mgr.ReadTimestamp()),
            nullptr);
  // The never-reached partition still parks the claim (the crashed one lost
  // its volatile table with the worker).
  EXPECT_GT(mgr.LocksHeld(), 0u);

  mgr.RecoverDirect();
  // Redo from the durable decision record completed the missing partitions.
  EXPECT_FALSE(mgr.HasTorn());
  EXPECT_GE(mgr.ReadTimestamp(), ts);
  EXPECT_EQ(mgr.LocksHeld(), 0u);
  EXPECT_EQ(f.Degree(a, mgr.ReadTimestamp(), true), out_before + 1);
  EXPECT_EQ(f.Degree(b, mgr.ReadTimestamp(), false), in_before + 1);
  const Value* pv = f.graph->partition(f.graph->PartitionOf(c))
                        .PropertyOf(c, key, mgr.ReadTimestamp());
  ASSERT_NE(pv, nullptr);
  EXPECT_EQ(*pv, Value(int64_t{7}));
}

TEST(DistTxnTest, LctStopsAtTornPrefixThenCatchesUp) {
  DistFixture f;
  DistTxnManager::Options o;
  o.crash_phase = DistTxnManager::CrashPhase::kCommit;
  o.crash_nth = 1;  // only the first decision tears
  DistTxnManager mgr(f.graph.get(), o);
  VertexId a = 1;
  VertexId b = f.CrossPartitionPeer(a);
  // Disjoint anchor pair for the second transaction.
  VertexId c = 0;
  VertexId d = 0;
  for (VertexId v = 2; v < 64 && d == 0; ++v) {
    if (v == a || v == b) continue;
    if (c == 0) {
      c = v;
    } else if (f.graph->PartitionOf(v) != f.graph->PartitionOf(c)) {
      d = v;
    }
  }
  ASSERT_NE(d, 0u);
  int64_t c_before = f.Degree(c, 0, true);

  auto t1 = mgr.Begin();
  ASSERT_TRUE(mgr.AddEdge(t1, a, f.link, b).ok());
  auto r1 = mgr.CommitDirect(t1);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(mgr.HasTorn());
  EXPECT_EQ(mgr.ReadTimestamp(), 0u);

  // A later, non-conflicting transaction decides and applies fully — but the
  // LCT only covers the contiguous fully-applied prefix, so it too stays
  // invisible behind the torn hole.
  auto t2 = mgr.Begin();
  ASSERT_TRUE(mgr.AddEdge(t2, c, f.link, d).ok());
  auto r2 = mgr.CommitDirect(t2);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2.value(), r1.value());
  EXPECT_EQ(mgr.ReadTimestamp(), 0u);
  EXPECT_EQ(f.Degree(c, mgr.ReadTimestamp(), true), c_before);

  mgr.RecoverDirect();
  EXPECT_EQ(mgr.ReadTimestamp(), r2.value());
  EXPECT_EQ(f.Degree(c, mgr.ReadTimestamp(), true), c_before + 1);
  EXPECT_EQ(mgr.committed(), 2u);
}

TEST(DistTxnTest, RecoveryReleasesLocksAndDiscardsOpenTxns) {
  DistFixture f;
  DistTxnManager::Options o;
  o.crash_phase = DistTxnManager::CrashPhase::kApply;
  o.crash_nth = 2;
  DistTxnManager mgr(f.graph.get(), o);
  VertexId a = 1;
  VertexId b = f.CrossPartitionPeer(a);
  VertexId c = f.ThirdPartitionVertex(a, b);
  PropKeyId key = f.schema->PropKey("status");

  // Three partitions: #1 applies, #2 crashes (volatile table gone), #3 is
  // never reached — its claim is the stranded lock recovery must release.
  auto t1 = mgr.Begin();
  ASSERT_TRUE(mgr.AddEdge(t1, a, f.link, b).ok());
  ASSERT_TRUE(mgr.SetProperty(t1, c, key, Value(int64_t{7})).ok());
  auto r1 = mgr.CommitDirect(t1);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(mgr.HasTorn());
  EXPECT_GT(mgr.LocksHeldBy(t1), 0u);

  // An open transaction in flight when the crash hits simply dies with it.
  auto t2 = mgr.Begin();
  ASSERT_TRUE(mgr.AddEdge(t2, a, f.link, b).ok());

  mgr.SimulateCrashAndRecover();
  EXPECT_EQ(mgr.LocksHeld(), 0u);
  EXPECT_FALSE(mgr.HasTorn());
  EXPECT_EQ(mgr.active(), 0u);

  // The recovered lock table accepts fresh writers on the same anchors.
  auto t3 = mgr.Begin();
  ASSERT_TRUE(mgr.AddEdge(t3, a, f.link, b).ok());
  EXPECT_TRUE(mgr.CommitDirect(t3).ok());
  EXPECT_EQ(mgr.LocksHeld(), 0u);
}

// --- off means off: no txn section, no schedule perturbation -----------------

TEST(DistTxnOffTest, NonTransactionalClusterCarriesNoTxnSection) {
  DistFixture f;
  auto plan = Traversal(f.graph).V({1}).Out("link").Count().Build();
  ASSERT_TRUE(plan.ok());
  f.cluster->Submit(plan.TakeValue(), 0);
  ASSERT_TRUE(f.cluster->RunToCompletion().ok());

  std::string metrics = f.cluster->MetricsSnapshot().ToString();
  // Transactions off == the seed snapshot surface: golden snapshots from
  // pre-txn builds keep matching byte-for-byte.
  EXPECT_EQ(metrics.find("txn:"), std::string::npos);
  EXPECT_EQ(metrics.find("txn_protocol:"), std::string::npos);
}

TEST(DistTxnOffTest, InertManagerIsScheduleAndTraceNeutral) {
  // Constructing a manager and attaching its stats without ever opening a
  // transaction is pure observation: the trace and every non-txn metric must
  // be byte-identical to a run that never heard of distributed transactions.
  auto run = [](bool attach_inert_manager) {
    auto schema = std::make_shared<Schema>();
    auto g = GenerateUniformGraph(64, 256, 9, schema, 4);
    EXPECT_TRUE(g.ok());
    auto graph = g.TakeValue();
    ClusterConfig cfg;
    cfg.num_nodes = 1;
    cfg.workers_per_node = 4;
    cfg.trace = true;
    SimCluster cluster(cfg, graph);
    std::unique_ptr<DistTxnManager> mgr;
    if (attach_inert_manager) {
      mgr = std::make_unique<DistTxnManager>(&cluster);
    }
    auto p1 = Traversal(graph).V({1}).Out("link").Count().Build();
    auto p2 = Traversal(graph).V({5}).Out("link").Count().Build();
    EXPECT_TRUE(p1.ok() && p2.ok());
    cluster.Submit(p1.TakeValue(), 0);
    cluster.Submit(p2.TakeValue(), 0);
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    return std::make_pair(cluster.MetricsSnapshot().ToString(),
                          cluster.tracer().ToJson());
  };

  auto [plain_metrics, plain_trace] = run(false);
  auto [inert_metrics, inert_trace] = run(true);
  EXPECT_EQ(plain_trace, inert_trace);
  // The attached (all-zero) txn section is the only permitted delta.
  EXPECT_EQ(plain_metrics.find("txn:"), std::string::npos);
  EXPECT_NE(inert_metrics.find("txn:"), std::string::npos);
  std::string inert_without_section =
      inert_metrics.substr(0, inert_metrics.find("txn:"));
  EXPECT_EQ(plain_metrics.substr(0, inert_without_section.size()),
            inert_without_section);
}

// --- the serializability oracle ----------------------------------------------

TEST(TxnOracleTest, CleanMatrixStaysGreen) {
  TxnScenario s = MakeTxnScenario(check::kDefaultTxnScenarioSeed);
  TxnDifferentialOptions opt;
  opt.base.modes = {"async", "bsp"};
  opt.base.num_seeds = 2;
  opt.phases = {"", "commit"};
  auto report = RunTxnDifferential(s, opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const auto& r = report.value();
  EXPECT_TRUE(r.ok()) << r.Summary();
  EXPECT_EQ(r.base.trips, 0u);
  EXPECT_EQ(r.base.mismatches, 0u);
  EXPECT_EQ(r.partial_visibility_rows, 0u);
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.waves, 0u);
  // Non-vacuity: the chaos cells really tore transactions mid-commit.
  EXPECT_GT(r.crashes, 0u);
}

TEST(TxnOracleTest, ThreadsAndHybridCellsStayGreen) {
  TxnScenario s =
      MakeTxnScenario(check::kDefaultTxnScenarioSeed, /*num_updates=*/24);
  TxnDifferentialOptions opt;

  // Real-thread reads between phased commits, with apply-phase chaos: a torn
  // transaction must stay invisible to actual concurrent cores.
  ReplaySpec spec;
  spec.mode = "threads";
  spec.txn = true;
  spec.txn_phase = "apply";
  spec.tiebreak_seed = 1;
  auto threads_cell = RunTxnCell(s, spec, opt);
  ASSERT_TRUE(threads_cell.ok()) << threads_cell.status().ToString();
  EXPECT_TRUE(threads_cell.value().ok()) << threads_cell.value().base.detail;
  EXPECT_GT(threads_cell.value().committed, 0u);
  EXPECT_GT(threads_cell.value().crashes, 0u);

  spec.mode = "hybrid";
  spec.txn_phase = "";
  auto hybrid_cell = RunTxnCell(s, spec, opt);
  ASSERT_TRUE(hybrid_cell.ok()) << hybrid_cell.status().ToString();
  EXPECT_TRUE(hybrid_cell.value().ok()) << hybrid_cell.value().base.detail;
  EXPECT_GT(hybrid_cell.value().committed, 0u);
}

TEST(TxnOracleTest, CorruptVisibilityTripsTheComparison) {
  // Planted harness bug: the first wave comparison's observed rows are
  // mutated. A differential that stays green against this is vacuous.
  TxnScenario s =
      MakeTxnScenario(check::kDefaultTxnScenarioSeed, /*num_updates=*/16);
  TxnDifferentialOptions opt;
  opt.wave_every = 4;
  opt.corrupt_nth_visibility = 1;
  ReplaySpec spec;
  spec.mode = "bsp";
  spec.txn = true;
  auto cell = RunTxnCell(s, spec, opt);
  ASSERT_TRUE(cell.ok()) << cell.status().ToString();
  EXPECT_FALSE(cell.value().ok());
  EXPECT_GT(cell.value().base.mismatches, 0u);
  EXPECT_GT(cell.value().partial_visibility_rows, 0u);
}

TEST(TxnOracleTest, CorruptApplyTripsTheOracle) {
  // Planted protocol bug: the nth commit-apply payload silently loses its
  // last sub-op — a genuinely torn write inside an "committed" transaction.
  // Scenario built so the serial replay provably diverges: one knows-edge
  // between two persons in different partitions, read back from both ends by
  // IS3 (which traverses the out-halves). One of the two apply payloads ends
  // in an out-half, so one of nth={1,2} must trip the oracle.
  SnbConfig cfg = SnbConfig::Tiny(60);
  auto d4r = GenerateSnb(cfg, 4);
  ASSERT_TRUE(d4r.ok());
  auto d4 = d4r.TakeValue();
  uint64_t pa = 0;
  uint64_t pb = 1;
  while (pb < d4->config.num_persons &&
         d4->graph->PartitionOf(d4->PersonId(pb)) ==
             d4->graph->PartitionOf(d4->PersonId(pa))) {
    pb++;
  }
  ASSERT_LT(pb, d4->config.num_persons);

  TxnScenario s;
  s.dataset = [cfg](uint32_t np) -> std::shared_ptr<SnbDataset> {
    auto r = GenerateSnb(cfg, np);
    return r.ok() ? r.TakeValue() : nullptr;
  };
  s.plans = [pa, pb](const SnbDataset& d) {
    std::vector<std::shared_ptr<const Plan>> plans;
    SnbParams p;
    p.person = d.PersonId(pa);
    auto r1 = BuildInteractiveShort(3, d, p);
    if (r1.ok()) plans.push_back(r1.TakeValue());
    p.person = d.PersonId(pb);
    auto r2 = BuildInteractiveShort(3, d, p);
    if (r2.ok()) plans.push_back(r2.TakeValue());
    return plans;
  };
  SnbUpdateTxn u;
  u.kind = SnbUpdateKind::kAddKnows;
  u.person = d4->PersonId(pa);
  u.person2 = d4->PersonId(pb);
  u.creation_date = static_cast<int64_t>(cfg.max_date + 10);
  s.updates = {u};

  TxnDifferentialOptions opt;
  opt.wave_every = 1;
  ReplaySpec spec;
  spec.mode = "bsp";
  spec.txn = true;

  // Control: the same scenario without the planted bug is green.
  auto clean = RunTxnCell(s, spec, opt);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(clean.value().ok()) << clean.value().base.detail;

  uint64_t mismatches = 0;
  for (uint64_t nth = 1; nth <= 2; ++nth) {
    opt.corrupt_nth_apply = nth;
    auto cell = RunTxnCell(s, spec, opt);
    ASSERT_TRUE(cell.ok()) << cell.status().ToString();
    mismatches += cell.value().base.mismatches;
  }
  EXPECT_GT(mismatches, 0u);
}

// --- replay tokens -----------------------------------------------------------

TEST(TxnReplayTest, TxnFlagAndPhaseRoundTripThroughToken) {
  ReplaySpec spec;
  spec.mode = "bsp";
  spec.tiebreak_seed = 5;
  spec.txn = true;
  spec.txn_phase = "commit";
  std::string token = FormatReplayToken(spec);
  EXPECT_NE(token.find(";txn=1"), std::string::npos);
  EXPECT_NE(token.find(";txnphase=commit"), std::string::npos);

  auto parsed = ParseReplayToken(token);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().txn);
  EXPECT_EQ(parsed.value().txn_phase, "commit");
  EXPECT_EQ(parsed.value().mode, "bsp");
  EXPECT_EQ(parsed.value().tiebreak_seed, 5u);
  EXPECT_EQ(FormatReplayToken(parsed.value()), token);
}

TEST(TxnReplayTest, ThreadsModeTokenRoundTrips) {
  // "threads" is a txn-only mode (real-thread reads between phased commits);
  // the codec must carry it for chaos-cell replay.
  ReplaySpec spec;
  spec.mode = "threads";
  spec.tiebreak_seed = 2;
  spec.txn = true;
  spec.txn_phase = "apply";
  std::string token = FormatReplayToken(spec);
  auto parsed = ParseReplayToken(token);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().mode, "threads");
  EXPECT_TRUE(parsed.value().txn);
  EXPECT_EQ(parsed.value().txn_phase, "apply");
  EXPECT_EQ(FormatReplayToken(parsed.value()), token);
}

TEST(TxnReplayTest, LegacyTokensStayTxnFreeAndByteIdentical) {
  // Pre-txn tokens carry no `;txn=` keys; they must parse with the flag off
  // and re-format to the identical byte string (append-only codec).
  ReplaySpec legacy;
  legacy.mode = "async";
  legacy.tiebreak_seed = 3;
  std::string token = FormatReplayToken(legacy);
  EXPECT_EQ(token.find("txn"), std::string::npos);
  auto parsed = ParseReplayToken(token);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed.value().txn);
  EXPECT_TRUE(parsed.value().txn_phase.empty());
  EXPECT_EQ(FormatReplayToken(parsed.value()), token);
}

}  // namespace
}  // namespace graphdance
