// Tests for the hybrid (PowerSwitch-style) engine chooser and the triangle
// counting pattern-matching plan.

#include <gtest/gtest.h>

#include <memory>

#include "analytics/analytics.h"
#include "graph/generators.h"
#include "query/gremlin.h"
#include "runtime/hybrid.h"
#include "runtime/sim_cluster.h"

namespace graphdance {
namespace {

struct TestGraph {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  PropKeyId weight;
};

TestGraph MakePowerLaw(uint32_t parts, uint64_t nv, uint64_t ne) {
  TestGraph tg;
  tg.schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = nv;
  opt.num_edges = ne;
  opt.seed = 44;
  tg.graph = GeneratePowerLawGraph(opt, tg.schema, parts).TakeValue();
  tg.weight = tg.schema->PropKey("weight");
  return tg;
}

std::shared_ptr<const Plan> KHop(const TestGraph& tg, VertexId start, int k) {
  return Traversal(tg.graph)
      .V({start})
      .RepeatOut("link", static_cast<uint16_t>(k), true)
      .Project({Operand::VertexIdOp(), Operand::Property(tg.weight)})
      .OrderByLimit({{1, false}, {0, true}}, 10)
      .Build()
      .TakeValue();
}

TEST(HybridTest, SmallQueriesStayAsync) {
  TestGraph tg = MakePowerLaw(4, 4096, 32768);
  auto plan = Traversal(tg.graph).V({1}).Out("link").Count().Build().TakeValue();
  HybridChoice choice = ChooseEngine(*plan, tg.graph->stats());
  EXPECT_EQ(choice.engine, EngineKind::kAsync);
  EXPECT_LT(choice.estimated_tasks, 1000.0);
}

TEST(HybridTest, HugeTraversalsGoBsp) {
  TestGraph tg = MakePowerLaw(4, 4096, 131072);  // dense: degree 32
  auto plan = KHop(tg, 1, 6);
  HybridChoice choice = ChooseEngine(*plan, tg.graph->stats(), /*num_workers=*/1);
  EXPECT_EQ(choice.engine, EngineKind::kBsp);
  EXPECT_GT(choice.estimated_tasks, static_cast<double>(4096 * 2));
}

TEST(HybridTest, EstimateGrowsWithHops) {
  TestGraph tg = MakePowerLaw(4, 4096, 32768);
  double prev = 0;
  for (int k = 1; k <= 4; ++k) {
    double est = EstimatePlanTasks(*KHop(tg, 1, k), tg.graph->stats());
    EXPECT_GT(est, prev) << "k=" << k;
    prev = est;
  }
}

TEST(HybridTest, ChoicePicksTheFasterEngineAtLowParallelism) {
  // At 1 worker the Fig. 9 crossover exists: small queries favour async,
  // whole-graph multi-hop favours BSP. Traverser bulking compresses async's
  // redundant frontier, so where the crossover sits depends on whether
  // bulking is on — the chooser must agree with the measured winner in both
  // modes.
  TestGraph tg = MakePowerLaw(1, 8192, 131072);
  auto measure = [&](const std::shared_ptr<const Plan>& plan, EngineKind engine,
                     bool bulking) {
    ClusterConfig cfg;
    cfg.num_nodes = 1;
    cfg.workers_per_node = 1;
    cfg.engine = engine;
    cfg.traverser_bulking = bulking;
    SimCluster cluster(cfg, tg.graph);
    return cluster.Run(plan).TakeValue().LatencyMicros();
  };

  auto small = KHop(tg, 7, 1);
  auto large = KHop(tg, 7, 4);

  EXPECT_EQ(ChooseEngine(*small, tg.graph->stats(), 1).engine, EngineKind::kAsync);
  EXPECT_LT(measure(small, EngineKind::kAsync, true),
            measure(small, EngineKind::kBsp, true));

  // Bulking off: the whole-graph 4-hop floods async with duplicate
  // traversers and BSP's barriers win (the classic Fig. 9 regime).
  HybridChoice off_choice = ChooseEngine(*large, tg.graph->stats(), 1,
                                         /*threshold_tasks=*/0.0,
                                         /*traverser_bulking=*/false);
  EXPECT_EQ(off_choice.engine, EngineKind::kBsp);
  EXPECT_LT(measure(large, EngineKind::kBsp, false),
            measure(large, EngineKind::kAsync, false));

  // Bulking on: the duplicate frontier collapses into bulk carriers and
  // async beats BSP on the very same plan — the chooser's boosted threshold
  // must track the moved crossover. (BSP timings ignore the flag: its
  // superstep path never bulks.)
  HybridChoice on_choice = ChooseEngine(*large, tg.graph->stats(), 1);
  EXPECT_EQ(on_choice.engine, EngineKind::kAsync);
  EXPECT_LT(measure(large, EngineKind::kAsync, true),
            measure(large, EngineKind::kBsp, true));
}

// ---- triangle counting -------------------------------------------------------

TEST(TriangleTest, MatchesReferenceOnUniformGraph) {
  auto schema = std::make_shared<Schema>();
  auto graph = GenerateUniformGraph(256, 3072, 6, schema, 8).TakeValue();
  LabelId node = schema->VertexLabel("node");
  LabelId link = schema->EdgeLabel("link");

  auto plan = BuildTriangleCountPlan(graph, "node", "link");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 4;
  SimCluster cluster(cfg, graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  int64_t expected = ReferenceTriangleCount(*graph, node, link);
  EXPECT_GT(expected, 0);
  ASSERT_EQ(res.value().rows.size(), 1u);
  EXPECT_EQ(res.value().rows[0][0].as_int(), expected);
}

TEST(TriangleTest, EnginesAgree) {
  auto schema = std::make_shared<Schema>();
  auto graph = GenerateUniformGraph(128, 1024, 6, schema, 4).TakeValue();
  auto make_plan = [&] {
    return BuildTriangleCountPlan(graph, "node", "link").TakeValue();
  };
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  SimCluster a(cfg, graph);
  auto ra = a.Run(make_plan());
  ASSERT_TRUE(ra.ok());

  ClusterConfig bcfg = cfg;
  bcfg.engine = EngineKind::kBsp;
  SimCluster b(bcfg, graph);
  auto rb = b.Run(make_plan());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.value().rows, rb.value().rows);
}

TEST(TriangleTest, TriangleFreeGraphCountsZero) {
  // A bipartite-ish two-layer graph has no directed triangles.
  auto schema = std::make_shared<Schema>();
  LabelId vl = schema->VertexLabel("node");
  LabelId el = schema->EdgeLabel("link");
  GraphBuilder b(schema, 2);
  for (VertexId v = 0; v < 20; ++v) b.AddVertex(v, vl);
  for (VertexId u = 0; u < 10; ++u) {
    for (VertexId w = 10; w < 20; ++w) b.AddEdge(u, w, el);
  }
  auto graph = b.Build().TakeValue();

  auto plan = BuildTriangleCountPlan(graph, "node", "link");
  ASSERT_TRUE(plan.ok());
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.workers_per_node = 2;
  SimCluster cluster(cfg, graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().rows[0][0].as_int(), 0);
  EXPECT_EQ(ReferenceTriangleCount(*graph, vl, el), 0);
}

}  // namespace
}  // namespace graphdance
