// Step-level unit tests through a mock StepContext: every step must
// conserve progression weight (sum of emitted weights + finished weight ==
// input weight, in Z_2^64 — the invariant behind Theorem 1), and its
// emissions must follow the step's documented semantics.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "graph/generators.h"
#include "pstm/memo.h"
#include "pstm/steps.h"
#include "pstm/weight.h"

namespace graphdance {
namespace {

/// Records every side effect of a step execution.
class MockStepContext : public StepContext {
 public:
  MockStepContext(std::shared_ptr<PartitionedGraph> graph, PartitionId partition)
      : graph_(std::move(graph)), partition_(partition), rng_(7) {}

  const PartitionStore& store() const override {
    return graph_->partition(partition_);
  }
  MemoTable& memo() override { return memo_; }
  const Partitioner& partitioner() const override {
    return graph_->partitioner();
  }
  const Schema& schema() const override { return graph_->schema(); }
  uint64_t query_id() const override { return 1; }
  Timestamp read_ts() const override { return kMaxTimestamp - 1; }
  Rng& rng() override { return rng_; }
  void Charge(CostKind kind, uint64_t count) override {
    charges[static_cast<int>(kind)] += count;
  }
  void Emit(Traverser t) override { emitted.push_back(std::move(t)); }
  void Finish(uint32_t scope, Weight w) override {
    finished_scope = scope;
    finished += w;
  }
  void EmitRow(Row row, uint32_t count) override {
    for (uint32_t i = 0; i < count; ++i) rows.push_back(row);
  }
  using StepContext::EmitRow;
  void SendCollect(uint32_t step_id, std::vector<uint8_t> payload) override {
    collects.emplace_back(step_id, std::move(payload));
  }

  /// The conservation check: emitted + finished == `input` (mod 2^64).
  void ExpectWeightConserved(Weight input) const {
    Weight sum = finished;
    for (const Traverser& t : emitted) sum += t.weight;
    EXPECT_EQ(sum, input) << "progression weight not conserved";
  }

  std::vector<Traverser> emitted;
  std::vector<Row> rows;
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> collects;
  Weight finished = 0;
  uint32_t finished_scope = 0;
  uint64_t charges[static_cast<int>(CostKind::kNumKinds)] = {0};

 private:
  std::shared_ptr<PartitionedGraph> graph_;
  PartitionId partition_;
  MemoTable memo_;
  Rng rng_;
};

struct Fixture {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  LabelId link;
  PropKeyId weight;

  Fixture() {
    schema = std::make_shared<Schema>();
    // Single partition so any vertex's adjacency is locally visible.
    graph = GenerateUniformGraph(64, 512, 3, schema, 1).TakeValue();
    link = schema->EdgeLabel("link");
    weight = schema->PropKey("weight");
  }

  Traverser At(VertexId v, Weight w = 0x123456789abcdefULL) {
    Traverser t;
    t.vertex = v;
    t.weight = w;
    return t;
  }
};

TEST(StepUnitTest, ExpandConservesWeightAcrossChildren) {
  Fixture f;
  MockStepContext ctx(f.graph, 0);
  ExpandStep step(f.link, Direction::kOut);
  step.set_next(5);
  Weight input = 0xdeadbeefULL;
  step.Execute(f.At(1, input), ctx);
  ctx.ExpectWeightConserved(input);
  uint64_t degree = f.graph->partition(0).Degree(1, f.link, Direction::kOut,
                                                 kMaxTimestamp - 1);
  EXPECT_EQ(ctx.emitted.size(), degree);
  for (const Traverser& t : ctx.emitted) {
    EXPECT_EQ(t.step, 5);
    EXPECT_EQ(t.hop, 1);
  }
}

TEST(StepUnitTest, ExpandFinishesWeightWhenNoNeighbors) {
  Fixture f;
  MockStepContext ctx(f.graph, 0);
  // An edge label with no edges at all.
  ExpandStep step(f.schema->EdgeLabel("ghost"), Direction::kOut);
  step.set_next(5);
  Weight input = 77;
  step.Execute(f.At(1, input), ctx);
  EXPECT_TRUE(ctx.emitted.empty());
  EXPECT_EQ(ctx.finished, input);
}

TEST(StepUnitTest, LoopExpandPrunesDuplicates) {
  Fixture f;
  MockStepContext ctx(f.graph, 0);
  ExpandStep step(f.link, Direction::kOut);
  step.set_loop(3, /*dedup=*/true);
  step.set_tee(9);

  Weight w1 = 1000, w2 = 2000;
  Traverser first = f.At(2, w1);
  first.hop = 1;
  step.Execute(std::move(first), ctx);
  size_t first_emissions = ctx.emitted.size();
  EXPECT_GT(first_emissions, 0u);  // tee at minimum
  ctx.ExpectWeightConserved(w1);

  // Same vertex again at a longer distance: pruned outright.
  Traverser dup = f.At(2, w2);
  dup.hop = 2;
  step.Execute(std::move(dup), ctx);
  EXPECT_EQ(ctx.emitted.size(), first_emissions);
  ctx.ExpectWeightConserved(w1 + w2);
}

TEST(StepUnitTest, LoopExpandImprovementReExpandsWithoutReTee) {
  Fixture f;
  MockStepContext ctx(f.graph, 0);
  ExpandStep step(f.link, Direction::kOut);
  step.set_loop(4, true);
  step.set_tee(9);

  Traverser far = f.At(3, 10);
  far.hop = 3;
  step.Execute(std::move(far), ctx);
  size_t tees_before = 0;
  for (const Traverser& t : ctx.emitted) tees_before += (t.step == 9);
  EXPECT_EQ(tees_before, 1u);

  // Shorter path arrives later: re-expansion happens, but no second tee
  // (Fig. 4c blue traverser).
  Traverser near = f.At(3, 20);
  near.hop = 1;
  step.Execute(std::move(near), ctx);
  size_t tees_after = 0;
  for (const Traverser& t : ctx.emitted) tees_after += (t.step == 9);
  EXPECT_EQ(tees_after, 1u);
  ctx.ExpectWeightConserved(30);
}

TEST(StepUnitTest, FilterPassAndFail) {
  Fixture f;
  MockStepContext ctx(f.graph, 0);
  Predicate pred;
  pred.lhs = Operand::VertexIdOp();
  pred.op = CmpOp::kLt;
  pred.rhs = Operand::Const(Value(int64_t{10}));
  FilterStep step({pred});
  step.set_next(2);

  step.Execute(f.At(5, 100), ctx);
  ASSERT_EQ(ctx.emitted.size(), 1u);
  EXPECT_EQ(ctx.emitted[0].weight, 100u);

  step.Execute(f.At(50, 200), ctx);
  EXPECT_EQ(ctx.emitted.size(), 1u);
  EXPECT_EQ(ctx.finished, 200u);
}

TEST(StepUnitTest, DedupPassesFirstOnly) {
  Fixture f;
  MockStepContext ctx(f.graph, 0);
  DedupStep step(Operand::VertexIdOp());
  step.set_next(3);
  step.Execute(f.At(4, 10), ctx);
  step.Execute(f.At(4, 20), ctx);
  step.Execute(f.At(6, 30), ctx);
  EXPECT_EQ(ctx.emitted.size(), 2u);
  EXPECT_EQ(ctx.finished, 20u);
  ctx.ExpectWeightConserved(60);
}

TEST(StepUnitTest, JoinProbeEmitsCrossProducts) {
  Fixture f;
  MockStepContext ctx(f.graph, 0);
  JoinProbeStep left(true, Operand::VertexIdOp());
  JoinProbeStep right(false, Operand::VertexIdOp());
  left.set_memo_step(0);
  right.set_memo_step(0);
  left.set_next(7);
  right.set_next(7);

  // Two left instances at key vertex 9, then one right instance: the right
  // probe matches both buffered lefts.
  Traverser l1 = f.At(9, 100);
  l1.vars.push_back(Value("L1"));
  left.Execute(std::move(l1), ctx);
  Traverser l2 = f.At(9, 200);
  l2.vars.push_back(Value("L2"));
  left.Execute(std::move(l2), ctx);
  EXPECT_EQ(ctx.emitted.size(), 0u);  // no right side yet
  EXPECT_EQ(ctx.finished, 300u);      // buffered copies hold no weight

  Traverser r = f.At(9, 400);
  r.vars.push_back(Value("R"));
  right.Execute(std::move(r), ctx);
  EXPECT_EQ(ctx.emitted.size(), 2u);
  Weight out = 0;
  for (const Traverser& t : ctx.emitted) {
    out += t.weight;
    ASSERT_EQ(t.vars.size(), 2u);
    EXPECT_EQ(t.vars[1], Value("R"));  // left vars ++ right vars
  }
  EXPECT_EQ(out, 400u);
}

TEST(StepUnitTest, GroupByAccumulatesAndFinalizes) {
  Fixture f;
  MockStepContext ctx(f.graph, 0);
  GroupByStep step(Operand::VertexIdOp(), Operand::Const(Value(int64_t{1})),
                   AggFunc::kCount);
  step.set_next(4);
  step.Execute(f.At(1, 10), ctx);
  step.Execute(f.At(1, 20), ctx);
  step.Execute(f.At(2, 30), ctx);
  EXPECT_EQ(ctx.finished, 60u);
  EXPECT_TRUE(ctx.emitted.empty());

  step.OnFinalize(ctx);
  ASSERT_EQ(ctx.emitted.size(), 2u);  // two groups
  for (const Traverser& t : ctx.emitted) {
    ASSERT_EQ(t.vars.size(), 2u);
    int64_t key = t.vars[0].as_int();
    int64_t count = t.vars[1].as_int();
    EXPECT_EQ(count, key == 1 ? 2 : 1);
  }
}

TEST(StepUnitTest, OrderByLimitKeepsLocalTopK) {
  Fixture f;
  MockStepContext ctx(f.graph, 0);
  OrderByLimitStep step({{0, false}}, 3);
  for (int64_t v : {5, 1, 9, 7, 3}) {
    Traverser t = f.At(1, 10);
    t.vars.push_back(Value(v));
    step.Execute(std::move(t), ctx);
  }
  EXPECT_EQ(ctx.finished, 50u);

  step.OnFinalize(ctx);
  ASSERT_EQ(ctx.collects.size(), 1u);
  ByteReader reader(ctx.collects[0].second.data(), ctx.collects[0].second.size());
  CollectMergeState state;
  step.OnCollect(&reader, &state);
  ASSERT_EQ(state.rows.size(), 3u);  // capped at k
  EXPECT_EQ(state.rows[0][0], Value(int64_t{9}));
  EXPECT_EQ(state.rows[1][0], Value(int64_t{7}));
  EXPECT_EQ(state.rows[2][0], Value(int64_t{5}));

  std::vector<Row> out;
  std::vector<Traverser> conts;
  step.OnCollectComplete(state, &out, &conts);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(conts.empty());
}

TEST(StepUnitTest, ScalarAggMergeAcrossPartitions) {
  Fixture f;
  ScalarAggStep step(Operand::Var(0), AggFunc::kSum);
  CollectMergeState state;
  // Two partitions' partial states.
  for (int part = 0; part < 2; ++part) {
    MockStepContext ctx(f.graph, 0);
    for (int i = 1; i <= 3; ++i) {
      Traverser t = f.At(1, 1);
      t.vars.push_back(Value(int64_t{i * (part + 1)}));
      step.Execute(std::move(t), ctx);
    }
    step.OnFinalize(ctx);
    ASSERT_EQ(ctx.collects.size(), 1u);
    ByteReader reader(ctx.collects[0].second.data(), ctx.collects[0].second.size());
    step.OnCollect(&reader, &state);
  }
  std::vector<Row> rows;
  std::vector<Traverser> conts;
  step.OnCollectComplete(state, &rows, &conts);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][0].ToDouble(), 6.0 + 12.0);  // 1+2+3 + 2+4+6
}

TEST(StepUnitTest, ScalarAggWithNextEmitsContinuation) {
  Fixture f;
  ScalarAggStep step(Operand::Var(0), AggFunc::kCount);
  step.set_next(8);
  CollectMergeState state;
  state.agg.Update(Value(int64_t{1}));
  std::vector<Row> rows;
  std::vector<Traverser> conts;
  step.OnCollectComplete(state, &rows, &conts);
  EXPECT_TRUE(rows.empty());
  ASSERT_EQ(conts.size(), 1u);
  EXPECT_EQ(conts[0].step, 8);
  EXPECT_EQ(conts[0].vars[0], Value(int64_t{1}));
}

TEST(StepUnitTest, EmitProducesRowAndFinishes) {
  Fixture f;
  MockStepContext ctx(f.graph, 0);
  EmitStep step({Operand::VertexIdOp()});
  step.Execute(f.At(42, 123), ctx);
  ASSERT_EQ(ctx.rows.size(), 1u);
  EXPECT_EQ(ctx.rows[0][0], Value(int64_t{42}));
  EXPECT_EQ(ctx.finished, 123u);
}

TEST(StepUnitTest, EdgeFilterAppliesDuringExpand) {
  // Build a tiny graph with edge properties to filter on.
  auto schema = std::make_shared<Schema>();
  LabelId vl = schema->VertexLabel("v");
  LabelId el = schema->EdgeLabel("e");
  GraphBuilder b(schema, 1);
  for (VertexId v = 0; v < 4; ++v) b.AddVertex(v, vl);
  b.AddEdge(0, 1, el, Value(int64_t{5}));
  b.AddEdge(0, 2, el, Value(int64_t{15}));
  b.AddEdge(0, 3, el, Value(int64_t{25}));
  auto graph = b.Build().TakeValue();

  MockStepContext ctx(graph, 0);
  ExpandStep step(el, Direction::kOut);
  step.set_next(1);
  step.set_edge_prop_filter(CmpOp::kGt, Value(int64_t{10}));
  step.set_capture_edge_prop(true);
  Traverser t;
  t.vertex = 0;
  t.weight = 100;
  step.Execute(std::move(t), ctx);
  ASSERT_EQ(ctx.emitted.size(), 2u);
  for (const Traverser& child : ctx.emitted) {
    EXPECT_GT(child.vars[0].as_int(), 10);
  }
  ctx.ExpectWeightConserved(100);
}

}  // namespace
}  // namespace graphdance
