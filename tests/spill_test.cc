// Tests for the cost-modelled spill tier (DESIGN.md §12): a simulated
// storage device (seek + sequential-bandwidth cost model) under the memo
// table and the worker task queues. When a worker crosses its qos memory
// budget the spill manager parks cold memoranda and deep task-queue
// suffixes on the tier (charging virtual write time), faults them back on
// access (charging read time), and escalates pressure
// normal -> spilling -> last-resort-abort only when the tier is exhausted.
// The battery proves four things end to end:
//   1. Off means off: with qos.spill.enabled == false (or qos off entirely)
//      the metrics snapshot and trace are byte-identical to a pre-spill
//      build, including under an active fault schedule.
//   2. Spilling never changes answers: every query that runs under memory
//      pressure returns rows identical to an unpressured serial run, and
//      the full differential matrix stays row-identical to the reference.
//   3. Spilling absorbs pressure that would otherwise abort: a memo budget
//      that aborts the hungriest query without the tier completes every
//      query with it — and when the tier itself fills up, the last-resort
//      abort path still fires instead of hanging.
//   4. Nothing leaks: the resource-ledger checker audits both spill ledgers
//      (written == read + dropped + parked) through crashes and aborts.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/invariants.h"
#include "check/oracle.h"
#include "graph/generators.h"
#include "qos/qos.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"
#include "sim/storage_model.h"

namespace graphdance {
namespace {

using check::CheckHarness;
using check::DifferentialOptions;
using check::DifferentialReport;
using check::ReplaySpec;
using check::RunDifferential;

// --- shared workload helpers (same idiom as qos_test / check_test) ----------

struct TestGraph {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  LabelId link;
  PropKeyId weight;
};

TestGraph MakeGraph(uint32_t partitions, uint64_t nv = 1024, uint64_t ne = 8192,
                    uint64_t seed = 11) {
  TestGraph tg;
  tg.schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = nv;
  opt.num_edges = ne;
  opt.seed = seed;
  opt.weight_range = 10'000;
  auto result = GeneratePowerLawGraph(opt, tg.schema, partitions);
  EXPECT_TRUE(result.ok());
  tg.graph = result.TakeValue();
  tg.link = tg.schema->EdgeLabel("link");
  tg.weight = tg.schema->PropKey("weight");
  return tg;
}

ClusterConfig BaseConfig(EngineKind engine = EngineKind::kAsync) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  cfg.engine = engine;
  cfg.progress_timeout_ns = 20'000'000;
  return cfg;
}

/// Aggressive spill knobs. With enabled=false none of this may be
/// observable; with enabled=true it forces early, frequent eviction.
void CrankSpillKnobs(ClusterConfig& cfg) {
  cfg.qos.spill.memo_spill_watermark = 0.5;
  cfg.qos.spill.memo_low_watermark = 0.25;
  cfg.qos.spill.task_spill_watermark = 0.75;
  cfg.qos.spill.task_low_watermark = 0.25;
  cfg.qos.spill.task_reload_batch = 4;
  cfg.qos.spill.capacity_bytes = 1ull << 20;
}

std::shared_ptr<const Plan> TopKPlan(const TestGraph& tg, VertexId start, int k,
                                     size_t limit = 10) {
  auto plan = Traversal(tg.graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
                  .Project({Operand::VertexIdOp(), Operand::Property(tg.weight)})
                  .OrderByLimit({{1, false}, {0, true}}, limit)
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.TakeValue();
}

std::shared_ptr<const Plan> CountPlan(const TestGraph& tg, VertexId start,
                                      int k) {
  auto plan = Traversal(tg.graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
                  .Count()
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.TakeValue();
}

std::vector<std::shared_ptr<const Plan>> OverlapPlans(const TestGraph& tg) {
  return {TopKPlan(tg, 1, 3),  CountPlan(tg, 5, 2), TopKPlan(tg, 17, 2, 5),
          TopKPlan(tg, 9, 3),  CountPlan(tg, 2, 3), TopKPlan(tg, 33, 2, 7)};
}

/// Unpressured serial reference: each plan alone on a fresh pinned-schedule
/// async cluster. The bar every spilled run must clear row-for-row.
std::vector<std::vector<Row>> SerialReference(
    const TestGraph& tg, const std::vector<std::shared_ptr<const Plan>>& plans) {
  std::vector<std::vector<Row>> out;
  for (const auto& p : plans) {
    SimCluster cluster(BaseConfig(), tg.graph);
    auto r = cluster.Run(p);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    out.push_back(check::CanonicalRows(r.value().rows));
  }
  return out;
}

// --- the storage cost model --------------------------------------------------

TEST(StorageModelTest, CostsAreSeekPlusSequentialTransfer) {
  StorageModel m;
  // A zero-byte op is pure seek, and writes seek slower than reads.
  EXPECT_EQ(m.WriteNs(0), m.write_seek_ns);
  EXPECT_EQ(m.ReadNs(0), m.read_seek_ns);
  EXPECT_GT(m.write_seek_ns, m.read_seek_ns);
  // Transfer is linear in bytes: doubling the payload doubles the
  // bandwidth-bound component exactly.
  SimTime one = m.TransferNs(StorageKind::kSpillRead, 1 << 20);
  SimTime two = m.TransferNs(StorageKind::kSpillRead, 2 << 20);
  EXPECT_GT(one, 0u);
  EXPECT_EQ(two, 2 * one);
  // Asymmetric bandwidth: the same payload costs more to write than to read.
  EXPECT_GT(m.TransferNs(StorageKind::kSpillWrite, 1 << 20), one);
  // OpNs composes the two pieces with nothing hidden.
  EXPECT_EQ(m.OpNs(StorageKind::kSpillRead, 4096),
            m.SeekNs(StorageKind::kSpillRead) +
                m.TransferNs(StorageKind::kSpillRead, 4096));
}

// --- off means off: byte-identical snapshots and traces ---------------------

TEST(SpillOffTest, DisabledSpillLeavesGovernedRunByteIdentical) {
  TestGraph tg = MakeGraph(4);
  auto plans = OverlapPlans(tg);

  auto run = [&](const ClusterConfig& cfg) {
    SimCluster cluster(cfg, tg.graph);
    for (const auto& p : plans) cluster.Submit(p, 0);
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    return std::make_pair(cluster.MetricsSnapshot().ToString(),
                          cluster.tracer().ToJson());
  };

  // Baseline: governance on (real queueing and budgets), spill off.
  ClusterConfig governed = BaseConfig();
  governed.trace = true;
  governed.qos.enabled = true;
  governed.qos.max_concurrent_queries = 2;
  governed.qos.max_queued_queries = 64;
  governed.qos.link_credit_bytes = 8192;
  governed.qos.sender_stall_bytes = 4096;

  // Every spill knob cranked to aggressive values — but enabled=false, so
  // none of it may perturb the schedule, the metrics or the trace.
  ClusterConfig knobs = governed;
  knobs.qos.spill.enabled = false;
  CrankSpillKnobs(knobs);

  auto [governed_metrics, governed_trace] = run(governed);
  auto [knob_metrics, knob_trace] = run(knobs);
  EXPECT_EQ(governed_metrics, knob_metrics);
  EXPECT_EQ(governed_trace, knob_trace);
  // The spill sections are gated separately from the qos sections: absent
  // whenever the manager is off, so pre-spill golden snapshots keep matching.
  EXPECT_EQ(governed_metrics.find("spill_memo:"), std::string::npos);
  EXPECT_EQ(governed_metrics.find("spill_tasks:"), std::string::npos);
  EXPECT_EQ(governed_metrics.find("spill_pressure:"), std::string::npos);
}

TEST(SpillOffTest, UngovernedRunIgnoresSpillEvenWhenEnabledUnderFaults) {
  // The spill manager rides on the qos subsystem: with qos.enabled == false
  // even spill.enabled = true must be inert — including under an active
  // fault schedule, where crash cleanup touches the spill ledgers.
  TestGraph tg = MakeGraph(4);
  auto plans = OverlapPlans(tg);

  auto run = [&](const ClusterConfig& cfg) {
    SimCluster cluster(cfg, tg.graph);
    for (const auto& p : plans) cluster.Submit(p, 0);
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    return std::make_pair(cluster.MetricsSnapshot().ToString(),
                          cluster.tracer().ToJson());
  };

  ClusterConfig plain = BaseConfig();
  plain.trace = true;
  plain.fault.CrashWorker(/*worker=*/1, /*at=*/50'000,
                          /*restart_after=*/400'000);
  plain.fault.dup_prob = 0.02;
  plain.fault.seed = 77;

  ClusterConfig knobs = plain;
  knobs.qos.spill.enabled = true;  // qos off => spill_active_ stays false
  CrankSpillKnobs(knobs);

  auto [plain_metrics, plain_trace] = run(plain);
  auto [knob_metrics, knob_trace] = run(knobs);
  EXPECT_EQ(plain_metrics, knob_metrics);
  EXPECT_EQ(plain_trace, knob_trace);
  EXPECT_EQ(plain_metrics.find("spill_"), std::string::npos);
}

// --- spilling absorbs memory pressure ---------------------------------------

TEST(SpillPressureTest, TightMemoBudgetSpillsInsteadOfAborting) {
  // The same budget that makes BudgetTest.MemoBudgetAbortsTheHungriestQuery
  // abort at least one query: with the spill tier on, cold memoranda park on
  // the device instead and every query completes with reference-identical
  // rows — paying virtual I/O time, not answers.
  TestGraph tg = MakeGraph(4);
  auto plans = OverlapPlans(tg);
  std::vector<std::vector<Row>> reference = SerialReference(tg, plans);

  ClusterConfig cfg = BaseConfig();
  cfg.qos.enabled = true;
  cfg.qos.worker_memo_budget_bytes = 512;  // aborts without the tier
  cfg.qos.memo_check_interval = 1;
  cfg.qos.spill.enabled = true;
  cfg.qos.spill.memo_spill_watermark = 0.5;
  cfg.qos.spill.memo_low_watermark = 0.25;
  SimCluster cluster(cfg, tg.graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());
  std::vector<uint64_t> ids;
  for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
  ASSERT_TRUE(cluster.RunToCompletion().ok());

  for (size_t i = 0; i < ids.size(); ++i) {
    const QueryResult& r = cluster.result(ids[i]);
    EXPECT_TRUE(r.done);
    EXPECT_FALSE(r.failed) << r.failure_reason;
    EXPECT_FALSE(r.resource_exhausted);
    EXPECT_EQ(check::CanonicalRows(r.rows), reference[i])
        << "plan " << i << " diverged under memory pressure";
  }

  obs::MetricsSnapshot s = cluster.MetricsSnapshot();
  EXPECT_TRUE(s.spill_enabled);
  EXPECT_EQ(s.qos.memo_aborts, 0u);
  // The tier actually engaged: records were evicted and faulted back.
  EXPECT_GT(s.qos.spill_memo_bytes_written, 0u);
  EXPECT_GT(s.qos.spill_memo_records, 0u);
  EXPECT_GT(s.qos.spill_memo_faults, 0u);
  EXPECT_GT(s.qos.spill_peak_bytes, 0u);
  EXPECT_GT(s.qos.spill_pressure_transitions, 0u);
  EXPECT_EQ(s.qos.spill_last_resort, 0u);
  // Spill ledger closed at drained quiescence: everything written either
  // faulted back in or was dropped with its completed query.
  EXPECT_EQ(s.qos.spill_memo_bytes_written,
            s.qos.spill_memo_bytes_read + s.qos.spill_memo_bytes_dropped);
  EXPECT_NE(s.ToString().find("spill_memo:"), std::string::npos);
  EXPECT_EQ(harness->trip_count(), 0u) << harness->trips()[0].what;
}

TEST(SpillPressureTest, TaskQueueSuffixSpillsAndReloads) {
  // Remote-dominated workload (same shape as the qos task-budget test): a
  // burst of delivered frames overruns the per-worker task budget. With the
  // tier on, the deepest queued suffix parks instead of deferring ingestion
  // forever, then reloads in batches as the queue drains.
  TestGraph tg;
  tg.schema = std::make_shared<Schema>();
  auto g = GenerateUniformGraph(4096, 32768, 13, tg.schema, 16);
  ASSERT_TRUE(g.ok());
  tg.graph = g.TakeValue();
  tg.link = tg.schema->EdgeLabel("link");
  tg.weight = tg.schema->PropKey("weight");
  std::vector<std::shared_ptr<const Plan>> plans;
  for (int q = 0; q < 8; ++q) {
    std::vector<VertexId> starts;
    for (VertexId v = 0; v < 64; ++v) starts.push_back(q * 64 + v);
    auto plan = Traversal(tg.graph)
                    .V(starts)
                    .RepeatOut("link", 2, /*dedup=*/true)
                    .Count()
                    .Build();
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans.push_back(plan.TakeValue());
  }
  std::vector<std::vector<Row>> reference;
  for (const auto& p : plans) {
    ClusterConfig ref = BaseConfig();
    ref.num_nodes = 8;
    SimCluster cluster(ref, tg.graph);
    auto r = cluster.Run(p);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    reference.push_back(check::CanonicalRows(r.value().rows));
  }

  ClusterConfig cfg = BaseConfig();
  cfg.num_nodes = 8;
  cfg.qos.enabled = true;
  cfg.qos.worker_task_budget_bytes = 4096;
  cfg.qos.spill.enabled = true;
  cfg.qos.spill.task_spill_watermark = 1.0;
  cfg.qos.spill.task_low_watermark = 0.5;
  SimCluster cluster(cfg, tg.graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());
  std::vector<uint64_t> ids;
  for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
  ASSERT_TRUE(cluster.RunToCompletion().ok());

  for (size_t i = 0; i < ids.size(); ++i) {
    const QueryResult& r = cluster.result(ids[i]);
    EXPECT_TRUE(r.done);
    EXPECT_FALSE(r.failed) << r.failure_reason;
    EXPECT_EQ(check::CanonicalRows(r.rows), reference[i]) << "plan " << i;
  }

  obs::MetricsSnapshot s = cluster.MetricsSnapshot();
  EXPECT_GT(s.qos.spill_task_bytes_written, 0u);
  // No crash in this run: every parked task reloaded and executed.
  EXPECT_EQ(s.qos.spill_task_bytes_dropped, 0u);
  EXPECT_EQ(s.qos.spill_task_bytes_read, s.qos.spill_task_bytes_written);
  EXPECT_EQ(harness->trip_count(), 0u) << harness->trips()[0].what;
}

TEST(SpillPressureTest, ExhaustedTierFallsBackToLastResortAbort) {
  // A tier too small to absorb the working set: the pressure state machine
  // escalates to last-resort and the pre-spill abort path fires — bounded
  // memory still wins over completing every query, and the ledgers must
  // balance through the aborts.
  TestGraph tg = MakeGraph(4);
  auto plans = OverlapPlans(tg);

  ClusterConfig cfg = BaseConfig();
  cfg.qos.enabled = true;
  cfg.qos.worker_memo_budget_bytes = 512;
  cfg.qos.memo_check_interval = 1;
  cfg.qos.spill.enabled = true;
  cfg.qos.spill.memo_spill_watermark = 0.5;
  cfg.qos.spill.memo_low_watermark = 0.25;
  cfg.qos.spill.capacity_bytes = 64;  // the tier fills almost immediately
  SimCluster cluster(cfg, tg.graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());
  std::vector<uint64_t> ids;
  for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
  ASSERT_TRUE(cluster.RunToCompletion().ok());

  size_t aborted = 0;
  for (uint64_t id : ids) {
    const QueryResult& r = cluster.result(id);
    EXPECT_TRUE(r.done);
    if (r.resource_exhausted) {
      ++aborted;
      EXPECT_NE(r.failure_reason.find("memo budget exceeded"),
                std::string::npos)
          << r.failure_reason;
    }
  }
  EXPECT_GE(aborted, 1u);

  obs::MetricsSnapshot s = cluster.MetricsSnapshot();
  EXPECT_GE(s.qos.memo_aborts, 1u);
  EXPECT_GE(s.qos.spill_last_resort, 1u);
  EXPECT_EQ(harness->trip_count(), 0u) << harness->trips()[0].what;
}

// --- spilling never changes answers -----------------------------------------

TEST(SpillDifferentialTest, SpilledMatrixMatchesReference) {
  // The full oracle matrix — {async, bsp, hybrid} x tie-break seeds — under
  // the spill stress config (memo budget tight enough to force evictions and
  // fault-ins in every async cell). Every cell must stay row-identical to
  // the unpressured single-worker reference with zero checker trips: weight
  // conservation holds across spill and reload.
  DifferentialOptions opt;
  opt.num_seeds = 4;
  opt.jitter_ns = 1000;
  opt.spill = true;
  auto rep = RunDifferential(check::MakeDefaultCheckWorkload(), opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  const DifferentialReport& r = rep.value();
  EXPECT_EQ(r.cells, 3u * 4u);
  EXPECT_EQ(r.trips, 0u) << r.Summary();
  EXPECT_EQ(r.mismatches, 0u) << r.Summary();
  EXPECT_EQ(r.explicit_failures, 0u) << r.Summary();
  EXPECT_TRUE(r.ok()) << r.Summary();
}

// --- replay token ------------------------------------------------------------

TEST(SpillReplayTokenTest, SpillFlagRoundTripsAndStaysBackCompatible) {
  ReplaySpec spec;
  spec.mode = "async";
  spec.tiebreak_seed = 9;
  spec.spill = true;
  std::string token = check::FormatReplayToken(spec);
  EXPECT_NE(token.find(";spill=1"), std::string::npos) << token;
  auto parsed = check::ParseReplayToken(token);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().spill);
  EXPECT_EQ(parsed.value().mode, "async");
  EXPECT_EQ(parsed.value().tiebreak_seed, 9u);

  // A token minted without spill carries no spill key and parses to
  // spill=false — old bug-report tokens keep replaying the exact same cell.
  spec.spill = false;
  spec.qos = true;
  std::string legacy = check::FormatReplayToken(spec);
  EXPECT_EQ(legacy.find("spill"), std::string::npos) << legacy;
  auto reparsed = check::ParseReplayToken(legacy);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_FALSE(reparsed.value().spill);
  EXPECT_TRUE(reparsed.value().qos);
}

// --- diagnostics -------------------------------------------------------------

TEST(SpillDiagnosticsTest, StuckReportShowsResidencyAndPressure) {
  // Exhaust the event budget mid-pressure: the stuck-cluster report must
  // attribute memory per worker — resident vs spilled bytes and the
  // pressure state — so an operator can see where the memory went.
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = BaseConfig();
  cfg.qos.enabled = true;
  cfg.qos.worker_memo_budget_bytes = 512;
  cfg.qos.memo_check_interval = 1;
  cfg.qos.spill.enabled = true;
  cfg.qos.spill.memo_spill_watermark = 0.5;
  cfg.qos.spill.memo_low_watermark = 0.25;
  SimCluster cluster(cfg, tg.graph);
  for (const auto& p : OverlapPlans(tg)) cluster.Submit(p, 0);
  Status st = cluster.RunToCompletion(/*max_events=*/200);
  ASSERT_FALSE(st.ok());
  std::string msg = st.ToString();
  EXPECT_NE(msg.find("event budget exhausted"), std::string::npos) << msg;
  EXPECT_NE(msg.find("B resident, spilled "), std::string::npos) << msg;
  EXPECT_NE(msg.find(", pressure "), std::string::npos) << msg;
}

}  // namespace
}  // namespace graphdance
