// Tests for the check subsystem (DESIGN.md §10): runtime invariant checkers
// evaluated inside SimCluster, schedule-space exploration in the event queue
// (seeded tie-break permutation + bounded latency jitter), the differential
// oracle comparing every engine x explored schedule against a single-worker
// reference, and the (fault schedule, seed) shrinker with its one-line replay
// token. Includes the mutation smoke test: a deliberately corrupted weight
// merge must trip the conservation checker (guards against a vacuously green
// harness), and the pinned-schedule regression: with exploration off, a
// fixed-seed run stays byte-identical snapshot- and trace-wise.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "check/oracle.h"
#include "check/shrink.h"
#include "common/random.h"
#include "graph/generators.h"
#include "ldbc/driver.h"
#include "ldbc/snb_generator.h"
#include "ldbc/snb_queries.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"
#include "sim/event_queue.h"

namespace graphdance {
namespace {

using check::CheckHarness;
using check::DifferentialOptions;
using check::DifferentialReport;
using check::ReplaySpec;
using check::RunCell;
using check::RunDifferential;
using check::ShrinkResult;
using check::WorkloadFactory;
using check::WorkloadInstance;

// --- shared workload helpers (same idiom as chaos_test) ---------------------

struct TestGraph {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  LabelId link;
  PropKeyId weight;
};

TestGraph MakeGraph(uint32_t partitions, uint64_t nv = 1024, uint64_t ne = 8192,
                    uint64_t seed = 11) {
  TestGraph tg;
  tg.schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = nv;
  opt.num_edges = ne;
  opt.seed = seed;
  opt.weight_range = 10'000;
  auto result = GeneratePowerLawGraph(opt, tg.schema, partitions);
  EXPECT_TRUE(result.ok());
  tg.graph = result.TakeValue();
  tg.link = tg.schema->EdgeLabel("link");
  tg.weight = tg.schema->PropKey("weight");
  return tg;
}

ClusterConfig CheckConfig(EngineKind engine = EngineKind::kAsync) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  cfg.engine = engine;
  cfg.progress_timeout_ns = 20'000'000;
  return cfg;
}

std::shared_ptr<const Plan> TopKPlan(const TestGraph& tg, VertexId start, int k,
                                     size_t limit = 10) {
  auto plan = Traversal(tg.graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
                  .Project({Operand::VertexIdOp(), Operand::Property(tg.weight)})
                  .OrderByLimit({{1, false}, {0, true}}, limit)
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.TakeValue();
}

std::shared_ptr<const Plan> CountPlan(const TestGraph& tg, VertexId start,
                                      int k) {
  auto plan = Traversal(tg.graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
                  .Count()
                  .Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return plan.TakeValue();
}

std::vector<std::shared_ptr<const Plan>> StandardPlans(const TestGraph& tg) {
  return {TopKPlan(tg, 1, 3), CountPlan(tg, 5, 2), TopKPlan(tg, 17, 2, 5)};
}

/// Fault-free pinned-schedule reference rows for `plans` under `cfg`'s engine.
std::vector<std::vector<Row>> CleanReference(
    const TestGraph& tg, ClusterConfig cfg,
    const std::vector<std::shared_ptr<const Plan>>& plans) {
  cfg.fault = FaultPlan{};
  cfg.explore = ScheduleExploration{};
  SimCluster cluster(cfg, tg.graph);
  std::vector<uint64_t> ids;
  for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
  EXPECT_TRUE(cluster.RunToCompletion().ok());
  std::vector<std::vector<Row>> out;
  for (uint64_t id : ids) {
    out.push_back(check::CanonicalRows(cluster.result(id).rows));
  }
  return out;
}

// --- schedule-space exploration: EventQueue unit tests ----------------------

TEST(EventQueueExploreTest, DefaultPinsInsertionOrderOnTies) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.Schedule(100, [&order, i](SimTime) { order.push_back(i); });
  }
  q.RunUntilEmpty();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
  EXPECT_FALSE(q.exploration().Active());
}

std::vector<int> TieOrderUnderSeed(uint64_t seed, int n = 32) {
  EventQueue q;
  ScheduleExploration ex;
  ex.tiebreak_seed = seed;
  q.ConfigureExploration(ex);
  std::vector<int> order;
  for (int i = 0; i < n; ++i) {
    q.Schedule(100, [&order, i](SimTime) { order.push_back(i); });
  }
  q.RunUntilEmpty();
  return order;
}

TEST(EventQueueExploreTest, SeededTieBreakIsAPermutationDistinctPerSeed) {
  std::vector<int> pinned = TieOrderUnderSeed(0);
  std::vector<int> a = TieOrderUnderSeed(5);
  std::vector<int> b = TieOrderUnderSeed(9);
  // Deterministic: the same seed replays the same interleaving.
  EXPECT_EQ(a, TieOrderUnderSeed(5));
  EXPECT_EQ(b, TieOrderUnderSeed(9));
  // Distinct legal interleavings: each order is a permutation of the same
  // event set, and different seeds give different orders.
  for (std::vector<int> order : {pinned, a, b}) {
    std::sort(order.begin(), order.end());
    for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
  }
  EXPECT_NE(a, pinned);
  EXPECT_NE(b, pinned);
  EXPECT_NE(a, b);
}

TEST(EventQueueExploreTest, JitterIsBoundedSeededAndMonotone) {
  auto fire_times = [](uint64_t seed) {
    EventQueue q;
    ScheduleExploration ex;
    ex.tiebreak_seed = seed;
    ex.jitter_ns = 500;
    q.ConfigureExploration(ex);
    std::vector<SimTime> times;
    for (int i = 0; i < 64; ++i) {
      q.Schedule(1000 + 10 * static_cast<SimTime>(i),
                 [&times](SimTime at) { times.push_back(at); });
    }
    q.RunUntilEmpty();
    return times;
  };
  std::vector<SimTime> times = fire_times(3);
  ASSERT_EQ(times.size(), 64u);
  SimTime prev = 0;
  for (size_t i = 0; i < times.size(); ++i) {
    // Jitter only ever adds: every event fires within [when, when + jitter]
    // of SOME event's schedule time, and the clock is monotone.
    EXPECT_GE(times[i], 1000u);
    EXPECT_LE(times[i], 1000 + 10 * 63 + 500u);
    EXPECT_GE(times[i], prev);
    prev = times[i];
  }
  EXPECT_EQ(times, fire_times(3));   // seeded: bit-for-bit reproducible
  EXPECT_NE(times, fire_times(11));  // and seed-sensitive
}

// --- replay tokens ----------------------------------------------------------

TEST(ReplayTokenTest, RoundTripsEveryField) {
  ReplaySpec spec;
  spec.mode = "hybrid";
  spec.tiebreak_seed = 0xdeadbeef;
  spec.jitter_ns = 1234;
  spec.fault.seed = 77;
  spec.fault.drop_prob = 0.0005;
  spec.fault.dup_prob = 0.02;
  spec.fault.delay_prob = 0.125;
  spec.fault.delay_ns = 150'000;
  spec.fault.DropNth(3);
  spec.fault.DuplicateNth(5);
  spec.fault.DelayNth(7, 90'000);
  spec.fault.CrashWorker(2, 10'000, 300'000);
  spec.fault.DegradeLink(0, 5'000'000, 8.5);

  std::string token = check::FormatReplayToken(spec);
  EXPECT_EQ(token.rfind("gdchk1;", 0), 0u) << token;
  auto parsed = check::ParseReplayToken(token);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ReplaySpec& back = parsed.value();
  EXPECT_EQ(back.mode, spec.mode);
  EXPECT_EQ(back.tiebreak_seed, spec.tiebreak_seed);
  EXPECT_EQ(back.jitter_ns, spec.jitter_ns);
  EXPECT_EQ(back.fault.seed, spec.fault.seed);
  EXPECT_EQ(back.fault.drop_prob, spec.fault.drop_prob);
  EXPECT_EQ(back.fault.dup_prob, spec.fault.dup_prob);
  EXPECT_EQ(back.fault.delay_prob, spec.fault.delay_prob);
  EXPECT_EQ(back.fault.delay_ns, spec.fault.delay_ns);
  ASSERT_EQ(back.fault.scripted.size(), spec.fault.scripted.size());
  for (size_t i = 0; i < spec.fault.scripted.size(); ++i) {
    const FaultEvent& want = spec.fault.scripted[i];
    const FaultEvent& got = back.fault.scripted[i];
    EXPECT_EQ(got.kind, want.kind) << "event " << i;
    EXPECT_EQ(got.nth, want.nth);
    EXPECT_EQ(got.extra_delay_ns, want.extra_delay_ns);
    EXPECT_EQ(got.worker, want.worker);
    EXPECT_EQ(got.at, want.at);
    EXPECT_EQ(got.duration_ns, want.duration_ns);
    EXPECT_EQ(got.factor, want.factor);
  }
  // Format is a fixed point: reformatting the parse gives the same token.
  EXPECT_EQ(check::FormatReplayToken(back), token);
}

TEST(ReplayTokenTest, RejectsGarbage) {
  EXPECT_FALSE(check::ParseReplayToken("").ok());
  EXPECT_FALSE(check::ParseReplayToken("bogus").ok());
  EXPECT_FALSE(check::ParseReplayToken("gdchk9;mode=async;seed=0").ok());
}

// --- invariant checkers on clean runs ---------------------------------------

TEST(CheckerTest, CleanRunsTripNothingAcrossEnginesAndBulking) {
  TestGraph tg = MakeGraph(4);
  const EngineKind engines[] = {EngineKind::kAsync, EngineKind::kShared,
                                EngineKind::kGaiaSim, EngineKind::kBanyanSim};
  for (EngineKind engine : engines) {
    for (bool bulking : {true, false}) {
      for (bool coalescing : {true, false}) {
        SCOPED_TRACE(std::string(EngineKindName(engine)) +
                     " bulking=" + (bulking ? "on" : "off") +
                     " coalescing=" + (coalescing ? "on" : "off"));
        ClusterConfig cfg = CheckConfig(engine);
        cfg.traverser_bulking = bulking;
        cfg.weight_coalescing = coalescing;
        std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
        SimCluster cluster(cfg, tg.graph);
        cluster.AttachChecker(harness.get());
        std::vector<uint64_t> ids;
        for (const auto& p : StandardPlans(tg)) {
          ids.push_back(cluster.Submit(p, 0));
        }
        ASSERT_TRUE(cluster.RunToCompletion().ok());
        for (uint64_t id : ids) EXPECT_TRUE(cluster.result(id).done);
        EXPECT_EQ(harness->trip_count(), 0u) << harness->Summary();
        obs::MetricsSnapshot snap = cluster.MetricsSnapshot();
        EXPECT_TRUE(snap.checker_attached);
        EXPECT_EQ(snap.checker_trips, 0u);
      }
    }
  }
}

TEST(CheckerTest, BspEngineRunsCleanUnderCheckers) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = CheckConfig(EngineKind::kBsp);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  SimCluster cluster(cfg, tg.graph);
  cluster.AttachChecker(harness.get());
  std::vector<uint64_t> ids;
  for (const auto& p : StandardPlans(tg)) ids.push_back(cluster.Submit(p, 0));
  ASSERT_TRUE(cluster.RunToCompletion().ok());
  for (uint64_t id : ids) EXPECT_TRUE(cluster.result(id).done);
  EXPECT_EQ(harness->trip_count(), 0u) << harness->Summary();
}

TEST(CheckerTest, FaultedRunsStayCleanUnderAllCheckers) {
  // Faults exercise the recovery machinery (retries, epoch fencing, seq
  // dedup, row ledgers); none of it may violate an invariant. Explicitly
  // failed / timed-out queries are legal; trips are not.
  TestGraph tg = MakeGraph(4);
  ClusterConfig base = CheckConfig(EngineKind::kAsync);
  std::vector<std::shared_ptr<const Plan>> plans = StandardPlans(tg);
  std::vector<std::vector<Row>> ref = CleanReference(tg, base, plans);

  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ClusterConfig cfg = base;
    Rng mix(seed * 2654435761ULL);
    cfg.fault.seed = mix.Next();
    cfg.fault.dup_prob = 0.03;
    cfg.fault.delay_prob = 0.03;
    cfg.fault.delay_ns = 50'000;
    if (seed % 2 == 0) cfg.fault.drop_prob = 0.001;
    if (seed % 3 == 0) {
      cfg.fault.CrashWorker(static_cast<uint32_t>(mix.Below(4)),
                            /*at=*/10'000 + mix.Below(50'000),
                            /*restart_after=*/200'000);
    }
    std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
    SimCluster cluster(cfg, tg.graph);
    cluster.AttachChecker(harness.get());
    std::vector<uint64_t> ids;
    for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
    Status s = cluster.RunToCompletion(/*max_events=*/200'000'000ULL);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(harness->trip_count(), 0u) << harness->Summary();
    for (size_t i = 0; i < ids.size(); ++i) {
      const QueryResult& r = cluster.result(ids[i]);
      ASSERT_TRUE(r.done);
      if (r.failed || r.timed_out) continue;  // explicit, never silent
      EXPECT_EQ(check::CanonicalRows(r.rows), ref[i]);
    }
  }
}

TEST(CheckerTest, AttachingCheckersIsScheduleNeutral) {
  // The harness is pure observation: an attached checker must not perturb
  // the event schedule, the metrics, or the answers. The only allowed
  // difference in the snapshot rendering is the checker section itself.
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = CheckConfig(EngineKind::kAsync);
  cfg.trace = true;
  auto plan = TopKPlan(tg, 1, 3);

  SimCluster plain(cfg, tg.graph);
  uint64_t pq = plain.Submit(plan, 0);
  ASSERT_TRUE(plain.RunToCompletion().ok());

  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  SimCluster checked(cfg, tg.graph);
  checked.AttachChecker(harness.get());
  uint64_t cq = checked.Submit(plan, 0);
  ASSERT_TRUE(checked.RunToCompletion().ok());
  EXPECT_EQ(harness->trip_count(), 0u) << harness->Summary();

  EXPECT_EQ(plain.quiescent_time(), checked.quiescent_time());
  EXPECT_EQ(plain.result(pq).complete_time, checked.result(cq).complete_time);
  EXPECT_EQ(plain.result(pq).rows, checked.result(cq).rows);
  EXPECT_EQ(plain.tracer().ToJson(), checked.tracer().ToJson());

  // Snapshot strings agree once the checker's own section is removed.
  std::string with = checked.MetricsSnapshot().ToString();
  std::string without = plain.MetricsSnapshot().ToString();
  size_t pos = with.find("checker: ");
  ASSERT_NE(pos, std::string::npos);
  with.erase(pos, with.find('\n', pos) - pos + 1);
  EXPECT_EQ(with, without);
  EXPECT_EQ(without.find("checker: "), std::string::npos);
}

// --- pinned default schedule (regression) -----------------------------------

TEST(PinnedScheduleTest, FixedSeedRunsAreByteIdentical) {
  // With exploration off, two identically configured runs must agree
  // byte-for-byte on the metrics snapshot and the trace — the determinism
  // contract every fixed-seed test in this repo leans on.
  TestGraph tg = MakeGraph(4);
  auto run = [&tg](ScheduleExploration explore) {
    ClusterConfig cfg = CheckConfig(EngineKind::kAsync);
    cfg.trace = true;
    cfg.explore = explore;
    SimCluster cluster(cfg, tg.graph);
    for (const auto& p : StandardPlans(tg)) cluster.Submit(p, 0);
    EXPECT_TRUE(cluster.RunToCompletion().ok());
    return std::make_pair(cluster.MetricsSnapshot().ToString(),
                          cluster.tracer().ToJson());
  };
  auto first = run(ScheduleExploration{});
  auto second = run(ScheduleExploration{});
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);

  // An explicit all-zero exploration struct IS the pinned schedule: the knob
  // being present must not change the ordering (Active() is false).
  ScheduleExploration zeros;
  zeros.tiebreak_seed = 0;
  zeros.jitter_ns = 0;
  EXPECT_FALSE(zeros.Active());
  auto explicit_zeros = run(zeros);
  EXPECT_EQ(first.first, explicit_zeros.first);
  EXPECT_EQ(first.second, explicit_zeros.second);
}

TEST(PinnedScheduleTest, ExplorationChangesScheduleButNeverAnswers) {
  TestGraph tg = MakeGraph(4);
  ClusterConfig base = CheckConfig(EngineKind::kAsync);
  std::vector<std::shared_ptr<const Plan>> plans = StandardPlans(tg);
  std::vector<std::vector<Row>> ref = CleanReference(tg, base, plans);

  SimCluster pinned(base, tg.graph);
  for (const auto& p : plans) pinned.Submit(p, 0);
  ASSERT_TRUE(pinned.RunToCompletion().ok());
  SimTime pinned_quiescent = pinned.quiescent_time();

  int different_schedules = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ClusterConfig cfg = base;
    cfg.explore.tiebreak_seed = seed;
    cfg.explore.jitter_ns = 2000;
    std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
    SimCluster cluster(cfg, tg.graph);
    cluster.AttachChecker(harness.get());
    std::vector<uint64_t> ids;
    for (const auto& p : plans) ids.push_back(cluster.Submit(p, 0));
    ASSERT_TRUE(cluster.RunToCompletion().ok());
    EXPECT_EQ(harness->trip_count(), 0u) << harness->Summary();
    for (size_t i = 0; i < ids.size(); ++i) {
      const QueryResult& r = cluster.result(ids[i]);
      ASSERT_TRUE(r.done && !r.failed);
      EXPECT_EQ(check::CanonicalRows(r.rows), ref[i])
          << "exploration changed an answer";
    }
    if (cluster.quiescent_time() != pinned_quiescent) ++different_schedules;

    // The same seed replays the same interleaving bit-for-bit.
    std::unique_ptr<CheckHarness> replay_harness = CheckHarness::WithAllCheckers();
    SimCluster replay(cfg, tg.graph);
    replay.AttachChecker(replay_harness.get());
    for (const auto& p : plans) replay.Submit(p, 0);
    ASSERT_TRUE(replay.RunToCompletion().ok());
    EXPECT_EQ(replay.MetricsSnapshot().ToString(),
              cluster.MetricsSnapshot().ToString());
  }
  // Jitter stretches virtual time, so the explored schedules are genuinely
  // distinct from the pinned one (not merely relabeled).
  EXPECT_GT(different_schedules, 0);
}

// --- mutation smoke test ----------------------------------------------------

TEST(CheckerTest, CorruptedWeightMergeTripsConservationChecker) {
  // A planted bug: the first coalescing weight merge is corrupted by +1.
  // The weight-conservation checker must trip, the query must never complete
  // cleanly (its scope can no longer reach kUnitWeight), and the snapshot
  // must surface the trip. Proves the checkers can actually fail.
  TestGraph tg = MakeGraph(4);
  ClusterConfig cfg = CheckConfig(EngineKind::kAsync);
  auto plan = TopKPlan(tg, 1, 3);

  // Sanity: the identical run without corruption is clean.
  {
    std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
    SimCluster cluster(cfg, tg.graph);
    cluster.AttachChecker(harness.get());
    cluster.Submit(plan, 0);
    ASSERT_TRUE(cluster.RunToCompletion().ok());
    ASSERT_EQ(harness->trip_count(), 0u) << harness->Summary();
  }

  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  harness->CorruptNthWeightMerge(1);
  SimCluster cluster(cfg, tg.graph);
  cluster.AttachChecker(harness.get());
  uint64_t q = cluster.Submit(plan, 0);
  Status s = cluster.RunToCompletion();
  EXPECT_FALSE(s.ok()) << "corrupted weight still completed the query";
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_FALSE(cluster.result(q).done);

  EXPECT_GT(harness->trip_count(), 0u);
  auto it = harness->TripsByChecker().find("weight-conservation");
  ASSERT_NE(it, harness->TripsByChecker().end())
      << "the conservation checker missed the planted corruption:\n"
      << harness->Summary();
  EXPECT_GT(it->second, 0u);
  ASSERT_FALSE(harness->trips().empty());
  EXPECT_EQ(harness->trips()[0].checker, "weight-conservation");

  obs::MetricsSnapshot snap = cluster.MetricsSnapshot();
  EXPECT_TRUE(snap.checker_attached);
  EXPECT_GT(snap.checker_trips, 0u);
  EXPECT_NE(snap.ToString().find("checker: "), std::string::npos);
}

// --- differential oracle ----------------------------------------------------

TEST(DifferentialOracleTest, ReferenceIsCleanAndComplete) {
  WorkloadFactory factory = check::MakeDefaultCheckWorkload();
  auto ref = check::ComputeReference(factory);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  ASSERT_EQ(ref.value().size(), factory(1).plans.size());
  // The workload mixes top-k and count plans; every plan yields rows.
  for (const auto& rows : ref.value()) EXPECT_FALSE(rows.empty());
}

TEST(DifferentialOracleTest, CleanMatrixMatchesReferenceEverywhere) {
  DifferentialOptions opt;
  opt.num_seeds = 4;
  opt.jitter_ns = 1000;
  auto rep = RunDifferential(check::MakeDefaultCheckWorkload(), opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  const DifferentialReport& r = rep.value();
  EXPECT_EQ(r.cells, 3u * 4u);  // {async, bsp, hybrid} x 4 seeds
  EXPECT_EQ(r.queries, r.cells * 5u);
  EXPECT_EQ(r.trips, 0u) << r.Summary();
  EXPECT_EQ(r.mismatches, 0u) << r.Summary();
  EXPECT_EQ(r.explicit_failures, 0u);  // fault-free: nothing may fail
  EXPECT_TRUE(r.ok());
}

TEST(DifferentialOracleTest, FaultedMatrixIsNeverSilentlyWrong) {
  DifferentialOptions opt;
  opt.num_seeds = 4;
  opt.jitter_ns = 1000;
  opt.fault_active = true;
  opt.fault.seed = 77;
  opt.fault.dup_prob = 0.02;
  opt.fault.delay_prob = 0.02;
  opt.fault.drop_prob = 0.0005;
  auto rep = RunDifferential(check::MakeDefaultCheckWorkload(), opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  // Explicit failures are legal under faults; trips and silent mismatches
  // are not.
  EXPECT_TRUE(rep.value().ok()) << rep.value().Summary();
  EXPECT_EQ(rep.value().trips, 0u);
  EXPECT_EQ(rep.value().mismatches, 0u);
}

TEST(DifferentialOracleTest, PlantedCorruptionIsCaughtWithAReplayToken) {
  WorkloadFactory factory = check::MakeDefaultCheckWorkload();
  DifferentialOptions opt;
  opt.modes = {"async"};
  opt.num_seeds = 1;
  opt.corrupt_nth_merge = 1;
  auto rep = RunDifferential(factory, opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  ASSERT_FALSE(rep.value().ok())
      << "the matrix missed a corrupted weight merge";
  ASSERT_FALSE(rep.value().failures.empty());
  const check::DifferentialFailure& failure = rep.value().failures[0];
  EXPECT_FALSE(failure.what.empty());

  // The failure's replay token reproduces the failing cell on its own.
  auto spec = check::ParseReplayToken(failure.token);
  ASSERT_TRUE(spec.ok()) << failure.token;
  auto ref = check::ComputeReference(factory);
  ASSERT_TRUE(ref.ok());
  auto cell = RunCell(factory, ref.value(), spec.value(), opt);
  ASSERT_TRUE(cell.ok()) << cell.status().ToString();
  EXPECT_FALSE(cell.value().ok()) << "replay token did not reproduce";
  EXPECT_FALSE(cell.value().detail.empty());
}

// --- shrinker ---------------------------------------------------------------

TEST(ShrinkTest, SyntheticPredicateShrinksToTheRelevantFault) {
  // The failure needs exactly two ingredients: the scripted DropNth(9) and a
  // nonzero dup_prob. Everything else — five other scripted events, two
  // other probability knobs, jitter, the tie-break seed — is noise the
  // shrinker must strip.
  ReplaySpec failing;
  failing.mode = "async";
  failing.tiebreak_seed = 42;
  failing.jitter_ns = 500;
  failing.fault.drop_prob = 0.01;
  failing.fault.dup_prob = 0.02;
  failing.fault.delay_prob = 0.03;
  failing.fault.DropNth(3);
  failing.fault.DuplicateNth(5);
  failing.fault.DelayNth(7, 1000);
  failing.fault.DropNth(9);  // the culprit
  failing.fault.CrashWorker(1, 5'000, 100'000);
  failing.fault.DegradeLink(0, 1'000, 2.0);

  auto fails = [](const ReplaySpec& spec) {
    bool has_drop9 = false;
    for (const FaultEvent& e : spec.fault.scripted) {
      if (e.kind == FaultKind::kDropNthRemote && e.nth == 9) has_drop9 = true;
    }
    return has_drop9 && spec.fault.dup_prob > 0.0;
  };

  ShrinkResult result = check::Shrink(failing, fails);
  EXPECT_TRUE(result.reproduced);
  EXPECT_LE(result.evaluations, 256);
  ASSERT_EQ(result.minimal.fault.scripted.size(), 1u);
  EXPECT_EQ(result.minimal.fault.scripted[0].kind, FaultKind::kDropNthRemote);
  EXPECT_EQ(result.minimal.fault.scripted[0].nth, 9u);
  EXPECT_GT(result.minimal.fault.dup_prob, 0.0);  // load-bearing: kept
  EXPECT_EQ(result.minimal.fault.drop_prob, 0.0);
  EXPECT_EQ(result.minimal.fault.delay_prob, 0.0);
  EXPECT_EQ(result.minimal.jitter_ns, 0u);
  EXPECT_EQ(result.minimal.tiebreak_seed, 0u);
  // The minimal spec still fails, and its token round-trips to it.
  EXPECT_TRUE(fails(result.minimal));
  auto parsed = check::ParseReplayToken(result.token);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(fails(parsed.value()));
}

TEST(ShrinkTest, NonFailingSpecIsReportedNotShrunk) {
  ReplaySpec passing;
  passing.fault.DropNth(3);
  auto fails = [](const ReplaySpec&) { return false; };
  ShrinkResult result = check::Shrink(passing, fails);
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(result.evaluations, 1);
  EXPECT_EQ(result.minimal.fault.scripted.size(), 1u);
}

TEST(ShrinkTest, PlantedFailureShrinksAndReplaysFromToken) {
  // End-to-end: a real failing (fault schedule, seed) pair — the failure
  // planted by the corrupt-merge hook — bisects down to the clean minimal
  // spec (the corruption fails under ANY schedule), and the emitted replay
  // token reproduces the failure from scratch.
  auto factory = [](uint32_t partitions) {
    TestGraph tg = MakeGraph(partitions, 256, 1024, 7);
    WorkloadInstance wl;
    wl.graph = tg.graph;
    wl.plans = {TopKPlan(tg, 1, 2, 5), CountPlan(tg, 5, 2)};
    return wl;
  };
  auto ref = check::ComputeReference(factory);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  DifferentialOptions opt;
  opt.corrupt_nth_merge = 1;
  auto fails = [&](const ReplaySpec& spec) {
    auto cell = RunCell(factory, ref.value(), spec, opt);
    return cell.ok() && !cell.value().ok();
  };

  ReplaySpec failing;
  failing.mode = "async";
  failing.tiebreak_seed = 9;
  failing.jitter_ns = 500;
  failing.fault.dup_prob = 0.01;
  failing.fault.DuplicateNth(4);
  failing.fault.DelayNth(3, 50'000);
  ASSERT_TRUE(fails(failing)) << "the planted corruption did not fail";

  ShrinkResult result = check::Shrink(failing, fails, /*budget=*/64);
  EXPECT_TRUE(result.reproduced);
  // The corruption fails under every schedule, so everything shrinks away.
  EXPECT_TRUE(result.minimal.fault.scripted.empty());
  EXPECT_EQ(result.minimal.fault.dup_prob, 0.0);
  EXPECT_EQ(result.minimal.jitter_ns, 0u);
  EXPECT_EQ(result.minimal.tiebreak_seed, 0u);

  // One-line replay token -> parse -> reproduce.
  auto parsed = check::ParseReplayToken(result.token);
  ASSERT_TRUE(parsed.ok()) << result.token;
  EXPECT_TRUE(fails(parsed.value())) << "token " << result.token
                                     << " did not reproduce the failure";
}

// --- acceptance matrix: 64 seeds x 3 engines on a faulted LDBC workload -----

WorkloadFactory LdbcCheckWorkload() {
  // Cached per partition count: RunDifferential regenerates the workload for
  // every cell, and SNB generation dominates otherwise. The SNB generator
  // assigns global ids independent of partitioning, so parameters drawn from
  // one instance select the same logical entities in every instance.
  auto cache = std::make_shared<std::map<uint32_t, WorkloadInstance>>();
  return [cache](uint32_t partitions) {
    auto it = cache->find(partitions);
    if (it != cache->end()) return it->second;
    SnbConfig scfg = SnbConfig::Tiny(50);
    auto data = GenerateSnb(scfg, partitions).TakeValue();
    SnbParamGen gen(*data, /*seed=*/1234);
    SnbParams params = gen.Next();
    WorkloadInstance wl;
    wl.graph = data->graph;
    for (int is : {1, 2, 3}) {
      auto plan = BuildInteractiveShort(is, *data, params);
      EXPECT_TRUE(plan.ok()) << plan.status().ToString();
      wl.plans.push_back(plan.TakeValue());
    }
    auto ic2 = BuildInteractiveComplex(2, *data, params);
    EXPECT_TRUE(ic2.ok()) << ic2.status().ToString();
    wl.plans.push_back(ic2.TakeValue());
    (*cache)[partitions] = wl;
    return wl;
  };
}

TEST(AcceptanceMatrixTest, SixtyFourSeedsThreeEnginesFaultedLdbc) {
  // The PR's acceptance bar: >= 64 distinct tie-break seeds x {async, bsp,
  // hybrid} on a faulted LDBC workload, every invariant checker attached —
  // zero trips, and every normally completed query row-identical to the
  // single-worker reference.
  DifferentialOptions opt;
  opt.num_seeds = 64;
  opt.jitter_ns = 2000;
  opt.fault_active = true;
  opt.fault.seed = 77;
  opt.fault.dup_prob = 0.02;
  opt.fault.delay_prob = 0.02;
  opt.fault.drop_prob = 0.0005;
  auto rep = RunDifferential(LdbcCheckWorkload(), opt);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  const DifferentialReport& r = rep.value();
  EXPECT_EQ(r.cells, 3u * 64u);
  EXPECT_EQ(r.queries, r.cells * 4u);
  EXPECT_EQ(r.trips, 0u) << r.Summary();
  EXPECT_EQ(r.mismatches, 0u) << r.Summary();
  EXPECT_TRUE(r.ok()) << r.Summary();
  // The summary is the human-facing artifact the CLI prints; it must report
  // the full matrix.
  EXPECT_NE(r.Summary().find("192"), std::string::npos) << r.Summary();
}

}  // namespace
}  // namespace graphdance
