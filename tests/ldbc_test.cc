// LDBC SNB substrate tests: generator structure, every IC and IS query
// checked against single-threaded reference oracles on the async engine
// (parameterized across query numbers and starting persons), cross-engine
// agreement for representative queries, and the mixed-workload driver.

#include <gtest/gtest.h>

#include <memory>

#include "ldbc/driver.h"
#include "ldbc/reference.h"
#include "ldbc/snb_generator.h"
#include "ldbc/snb_queries.h"
#include "runtime/sim_cluster.h"
#include "txn/txn_manager.h"

namespace graphdance {
namespace {

std::shared_ptr<SnbDataset> SharedDataset() {
  static std::shared_ptr<SnbDataset> dataset = [] {
    SnbConfig cfg = SnbConfig::Tiny(250);
    auto r = GenerateSnb(cfg, /*num_partitions=*/8);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.TakeValue();
  }();
  return dataset;
}

ClusterConfig AsyncConfig() {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 4;
  return cfg;
}

SnbParams ParamsFor(const SnbDataset& data, uint64_t which) {
  SnbParamGen gen(data, 1000 + which);
  return gen.Next();
}

std::vector<Row> SortedRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    for (size_t i = 0; i < a.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  return rows;
}

// ---- generator -----------------------------------------------------------------

TEST(SnbGeneratorTest, StructuralCounts) {
  auto data = SharedDataset();
  EXPECT_GT(data->num_posts, 100u);
  EXPECT_GT(data->num_comments, 100u);
  EXPECT_GT(data->graph->stats().num_edges, data->graph->stats().num_vertices);
  // knows must exist in both directions.
  const auto& s = data->snb;
  VertexId p0 = data->PersonId(0);
  std::vector<VertexId> out, in;
  data->graph->ForEachNeighbor(p0, s.knows, Direction::kOut,
                               [&](VertexId d, const Value&) { out.push_back(d); });
  data->graph->ForEachNeighbor(p0, s.knows, Direction::kIn,
                               [&](VertexId d, const Value&) { in.push_back(d); });
  EXPECT_EQ(SortedRows({}), SortedRows({}));  // trivial; keep sets equal below
  std::sort(out.begin(), out.end());
  std::sort(in.begin(), in.end());
  EXPECT_EQ(out, in) << "knows must be symmetric";
}

TEST(SnbGeneratorTest, DeterministicBySeed) {
  SnbConfig cfg = SnbConfig::Tiny(100);
  auto a = GenerateSnb(cfg, 4).TakeValue();
  auto b = GenerateSnb(cfg, 4).TakeValue();
  EXPECT_EQ(a->graph->stats().num_edges, b->graph->stats().num_edges);
  EXPECT_EQ(a->num_posts, b->num_posts);
  EXPECT_EQ(a->num_comments, b->num_comments);
}

TEST(SnbGeneratorTest, EveryPersonHasProfile) {
  auto data = SharedDataset();
  for (uint64_t i = 0; i < data->config.num_persons; i += 17) {
    VertexId p = data->PersonId(i);
    EXPECT_NE(data->graph->PropertyOf(p, data->snb.first_name), nullptr);
    EXPECT_NE(data->graph->PropertyOf(p, data->snb.creation_date), nullptr);
  }
}

TEST(SnbGeneratorTest, MessagesHaveCreators) {
  auto data = SharedDataset();
  for (uint64_t i = 0; i < data->num_posts; i += 29) {
    size_t creators = 0;
    data->graph->ForEachNeighbor(data->PostId(i), data->snb.has_creator,
                                 Direction::kOut,
                                 [&](VertexId, const Value&) { ++creators; });
    EXPECT_EQ(creators, 1u) << "post " << i;
  }
}

// ---- per-query oracle comparison (parameterized sweep) ---------------------------

class IcOracleTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IcOracleTest, AsyncMatchesReference) {
  auto data = SharedDataset();
  int number = std::get<0>(GetParam());
  SnbParams params = ParamsFor(*data, std::get<1>(GetParam()));
  auto plan = BuildInteractiveComplex(number, *data, params);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  SimCluster cluster(AsyncConfig(), data->graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  std::vector<Row> expected = ReferenceInteractiveComplex(number, *data, params);
  EXPECT_EQ(res.value().rows, expected) << "IC" << number;
}

INSTANTIATE_TEST_SUITE_P(
    AllIcQueries, IcOracleTest,
    ::testing::Combine(::testing::Range(1, kNumInteractiveComplex + 1),
                       ::testing::Values(0, 1, 2, 3, 4)),
    [](const auto& info) {
      return "IC" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

class IsOracleTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IsOracleTest, AsyncMatchesReference) {
  auto data = SharedDataset();
  int number = std::get<0>(GetParam());
  SnbParams params = ParamsFor(*data, 50 + std::get<1>(GetParam()));
  auto plan = BuildInteractiveShort(number, *data, params);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  SimCluster cluster(AsyncConfig(), data->graph);
  auto res = cluster.Run(plan.TakeValue());
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  std::vector<Row> expected = ReferenceInteractiveShort(number, *data, params);
  // IS5/IS6 emit in arbitrary arrival order; compare as multisets.
  EXPECT_EQ(SortedRows(res.value().rows), SortedRows(expected)) << "IS" << number;
}

INSTANTIATE_TEST_SUITE_P(
    AllIsQueries, IsOracleTest,
    ::testing::Combine(::testing::Range(1, kNumInteractiveShort + 1),
                       ::testing::Values(0, 1)),
    [](const auto& info) {
      return "IS" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// ---- cross-engine agreement -------------------------------------------------------

class IcEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(IcEngineTest, MatchesReferenceOnRepresentativeQueries) {
  auto data = SharedDataset();
  for (int number : {1, 2, 5, 6, 10, 13}) {
    SnbParams params = ParamsFor(*data, 7);
    auto plan = BuildInteractiveComplex(number, *data, params);
    ASSERT_TRUE(plan.ok());
    ClusterConfig cfg = AsyncConfig();
    cfg.engine = GetParam();
    SimCluster cluster(cfg, data->graph);
    auto res = cluster.Run(plan.TakeValue());
    ASSERT_TRUE(res.ok()) << "IC" << number << ": " << res.status().ToString();
    EXPECT_EQ(res.value().rows, ReferenceInteractiveComplex(number, *data, params))
        << "IC" << number << " on " << EngineKindName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, IcEngineTest,
                         ::testing::Values(EngineKind::kBsp, EngineKind::kShared,
                                           EngineKind::kGaiaSim,
                                           EngineKind::kBanyanSim),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case EngineKind::kBsp:
                               return "bsp";
                             case EngineKind::kShared:
                               return "shared";
                             case EngineKind::kGaiaSim:
                               return "gaia";
                             default:
                               return "banyan";
                           }
                         });

// ---- mixed workload driver ---------------------------------------------------------

TEST(DriverTest, MixedWorkloadCompletes) {
  auto data = SharedDataset();
  ClusterConfig cfg = AsyncConfig();
  SimCluster cluster(cfg, data->graph);
  TransactionManager txn(&cluster);
  DriverConfig dcfg;
  dcfg.tcr = 0.3;
  dcfg.duration_s = 0.2;
  DriverReport report = RunMixedWorkload(&cluster, &txn, *data, dcfg);

  EXPECT_GT(report.total_operations, 10u);
  EXPECT_TRUE(report.kept_up);
  EXPECT_GT(report.AvgLatencyMicros("IS"), 0.0);
  EXPECT_GT(report.AvgLatencyMicros("IC"), 0.0);
  EXPECT_GT(txn.committed(), 0u);
}

TEST(DriverTest, LowerTcrMeansMoreOperations) {
  auto data = SharedDataset();
  DriverConfig fast;
  fast.tcr = 1.0;
  fast.duration_s = 0.05;
  fast.include_updates = false;
  DriverConfig slow = fast;
  slow.tcr = 4.0;

  SimCluster c1(AsyncConfig(), data->graph);
  SimCluster c2(AsyncConfig(), data->graph);
  DriverReport r1 = RunMixedWorkload(&c1, nullptr, *data, fast);
  DriverReport r2 = RunMixedWorkload(&c2, nullptr, *data, slow);
  EXPECT_GT(r1.total_operations, 2 * r2.total_operations);
}

TEST(DriverTest, UpdatesVisibleToLaterQueries) {
  // A fresh tiny dataset so the update stream measurably changes degrees.
  SnbConfig cfg = SnbConfig::Tiny(60);
  auto data = GenerateSnb(cfg, 4).TakeValue();
  ClusterConfig ccfg;
  ccfg.num_nodes = 1;
  ccfg.workers_per_node = 4;
  SimCluster cluster(ccfg, data->graph);
  TransactionManager txn(&cluster);

  auto t = txn.Begin();
  ASSERT_TRUE(txn.AddEdge(t, data->PersonId(0), data->snb.knows,
                          data->PersonId(1), Value(int64_t{2500}))
                  .ok());
  ASSERT_TRUE(txn.AddEdge(t, data->PersonId(1), data->snb.knows,
                          data->PersonId(0), Value(int64_t{2500}))
                  .ok());
  ASSERT_TRUE(txn.Commit(t).ok());

  SnbParams p;
  p.person = data->PersonId(0);
  auto plan = BuildInteractiveShort(3, *data, p);  // friends of person 0
  ASSERT_TRUE(plan.ok());
  auto res = cluster.Run(plan.TakeValue(), txn.ReadTimestamp());
  ASSERT_TRUE(res.ok());
  bool found = false;
  for (const Row& row : res.value().rows) {
    if (row[1].as_int() == static_cast<int64_t>(data->PersonId(1))) found = true;
  }
  EXPECT_TRUE(found) << "committed friendship must be visible";
}

}  // namespace
}  // namespace graphdance
