// Unit tests for the PSTM model pieces: progression-weight arithmetic
// (Theorem 1 invariants), traverser serialization, memoranda semantics,
// plan scope assignment and validation, and row ordering.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "pstm/memo.h"
#include "pstm/plan.h"
#include "pstm/steps.h"
#include "pstm/traverser.h"
#include "pstm/weight.h"

namespace graphdance {
namespace {

// ---- weights ----------------------------------------------------------------

TEST(WeightTest, SplitSumsToTotal) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    Weight total = rng.Next();
    size_t n = 1 + rng.Below(20);
    std::vector<Weight> shares = SplitWeight(total, n, &rng);
    ASSERT_EQ(shares.size(), n);
    Weight sum = 0;
    for (Weight s : shares) sum += s;
    EXPECT_EQ(sum, total);
  }
}

TEST(WeightTest, SplitterMatchesInvariant) {
  Rng rng(13);
  WeightSplitter split(kUnitWeight, &rng);
  Weight sum = 0;
  for (int i = 0; i < 9; ++i) sum += split.Take();
  sum += split.TakeLast();
  EXPECT_EQ(sum, kUnitWeight);
  EXPECT_EQ(split.remaining(), 0u);
}

TEST(WeightTest, RecursiveSplittingPreservesUnit) {
  // Simulate a traversal tree: repeatedly split a random leaf; the sum of
  // all leaves must always be the unit weight (the paper's invariant).
  Rng rng(17);
  std::vector<Weight> leaves = {kUnitWeight};
  for (int i = 0; i < 500; ++i) {
    size_t pick = rng.Below(leaves.size());
    Weight w = leaves[pick];
    leaves.erase(leaves.begin() + pick);
    size_t n = 1 + rng.Below(4);
    for (Weight s : SplitWeight(w, n, &rng)) leaves.push_back(s);
    Weight sum = 0;
    for (Weight leaf : leaves) sum += leaf;
    ASSERT_EQ(sum, kUnitWeight) << "after " << i << " splits";
  }
}

#ifdef NDEBUG
TEST(WeightTest, SplitZeroSharesReturnsEmpty) {
  // n == 0 used to write shares[n - 1] out of bounds. Release builds now
  // return no shares; debug builds assert (see WeightDeathTest below).
  Rng rng(23);
  EXPECT_TRUE(SplitWeight(kUnitWeight, 0, &rng).empty());
}
#else
TEST(WeightDeathTest, SplitZeroSharesAsserts) {
  Rng rng(23);
  EXPECT_DEATH(SplitWeight(kUnitWeight, 0, &rng), "zero shares");
}
#endif

TEST(WeightTest, PartialSumRarelyUnit) {
  // A strict subset of shares should essentially never sum to the unit
  // (Theorem 1's false-positive bound). With 64-bit weights this must not
  // occur in a small sample.
  Rng rng(19);
  int false_positives = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Weight> shares = SplitWeight(kUnitWeight, 10, &rng);
    Weight sum = 0;
    for (size_t i = 0; i + 1 < shares.size(); ++i) {
      sum += shares[i];
      if (sum == kUnitWeight) ++false_positives;
    }
  }
  EXPECT_EQ(false_positives, 0);
}

// ---- traverser serde ----------------------------------------------------------

TEST(TraverserTest, SerializeRoundTrip) {
  Traverser t;
  t.vertex = 123456789;
  t.step = 7;
  t.hop = 3;
  t.scope = 2;
  t.weight = 0xdeadbeefcafef00dULL;
  t.bulk = 17;
  t.vars.push_back(Value(int64_t{42}));
  t.vars.push_back(Value("hello"));
  t.path = {1, 2, 3};

  ByteWriter w;
  t.Serialize(&w);
  ByteReader r(w.data(), w.size());
  Traverser back = Traverser::Deserialize(&r);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(back.vertex, t.vertex);
  EXPECT_EQ(back.step, t.step);
  EXPECT_EQ(back.hop, t.hop);
  EXPECT_EQ(back.scope, t.scope);
  EXPECT_EQ(back.weight, t.weight);
  EXPECT_EQ(back.bulk, 17u);
  ASSERT_EQ(back.vars.size(), 2u);
  EXPECT_EQ(back.vars[0], Value(int64_t{42}));
  EXPECT_EQ(back.vars[1], Value("hello"));
  EXPECT_EQ(back.path, t.path);
}

TEST(TraverserTest, SerializeManyVarsRoundTrip) {
  // The vars count is a u16 on the wire; >255 used to truncate as a raw u8.
  Traverser t;
  t.vertex = 5;
  for (int i = 0; i < 300; ++i) t.vars.push_back(Value(int64_t{i}));
  ByteWriter w;
  t.Serialize(&w);
  EXPECT_EQ(t.WireSize(), w.size());
  ByteReader r(w.data(), w.size());
  Traverser back = Traverser::Deserialize(&r);
  EXPECT_TRUE(r.AtEnd());
  ASSERT_EQ(back.vars.size(), 300u);
  EXPECT_EQ(back.vars[299], Value(int64_t{299}));
}

TEST(TraverserTest, WireSizeMatchesSerialized) {
  Traverser t;
  t.vars.push_back(Value(3.5));
  t.vars.push_back(Value("abcdef"));
  t.path = {9, 8};
  ByteWriter w;
  t.Serialize(&w);
  EXPECT_EQ(t.WireSize(), w.size());
}

// ---- memoranda ----------------------------------------------------------------

TEST(MemoTest, DistanceMemoPrunesNonImproving) {
  DistanceMemo memo;
  EXPECT_TRUE(memo.TryImprove(5, 3));
  EXPECT_FALSE(memo.TryImprove(5, 3));  // equal distance: pruned
  EXPECT_FALSE(memo.TryImprove(5, 4));  // longer: pruned
  EXPECT_TRUE(memo.TryImprove(5, 2));   // shorter: improves
  EXPECT_EQ(*memo.Lookup(5), 2);
  EXPECT_EQ(memo.Lookup(6), nullptr);
}

TEST(MemoTest, DedupMemoFirstSight) {
  DedupMemo memo;
  EXPECT_TRUE(memo.FirstSight(Value(int64_t{1})));
  EXPECT_FALSE(memo.FirstSight(Value(int64_t{1})));
  EXPECT_TRUE(memo.FirstSight(Value("1")));  // different type, different key
  EXPECT_EQ(memo.size(), 2u);
}

TEST(MemoTest, JoinMemoProbe) {
  JoinMemo memo;
  JoinEntry e;
  e.vertex = 9;
  memo.Side(true, Value(int64_t{7})).push_back(e);
  const auto* left = memo.Probe(true, Value(int64_t{7}));
  ASSERT_NE(left, nullptr);
  EXPECT_EQ((*left)[0].vertex, 9u);
  EXPECT_EQ(memo.Probe(false, Value(int64_t{7})), nullptr);
}

TEST(MemoTest, AggStateAllFunctions) {
  AggState agg;
  for (int v : {5, 1, 9, 3}) agg.Update(Value(int64_t{v}));
  EXPECT_EQ(agg.Finish(AggFunc::kCount), Value(int64_t{4}));
  EXPECT_EQ(agg.Finish(AggFunc::kSum), Value(18.0));
  EXPECT_EQ(agg.Finish(AggFunc::kMin), Value(int64_t{1}));
  EXPECT_EQ(agg.Finish(AggFunc::kMax), Value(int64_t{9}));
  EXPECT_EQ(agg.Finish(AggFunc::kAvg), Value(4.5));
}

TEST(MemoTest, AggStateMerge) {
  AggState a, b;
  a.Update(Value(int64_t{2}));
  b.Update(Value(int64_t{10}));
  b.Update(Value(int64_t{-1}));
  a.Merge(b);
  EXPECT_EQ(a.Finish(AggFunc::kCount), Value(int64_t{3}));
  EXPECT_EQ(a.Finish(AggFunc::kMin), Value(int64_t{-1}));
  EXPECT_EQ(a.Finish(AggFunc::kMax), Value(int64_t{10}));
}

TEST(MemoTest, MemoTableQueryLifetime) {
  MemoTable table;
  table.GetOrCreate<DedupMemo>(1, 0).FirstSight(Value(int64_t{5}));
  table.GetOrCreate<DedupMemo>(2, 0).FirstSight(Value(int64_t{5}));
  EXPECT_EQ(table.size(), 2u);
  table.ClearQuery(1);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ((table.Find<DedupMemo>(1, 0)), nullptr);
  EXPECT_NE((table.Find<DedupMemo>(2, 0)), nullptr);
}

TEST(MemoTest, MemoTableDistinctSteps) {
  MemoTable table;
  auto& a = table.GetOrCreate<DedupMemo>(1, 0);
  auto& b = table.GetOrCreate<DedupMemo>(1, 1);
  EXPECT_NE(&a, &b);
  auto& a2 = table.GetOrCreate<DedupMemo>(1, 0);
  EXPECT_EQ(&a, &a2);
}

TEST(MemoTest, KeyPackingDoesNotAliasAcrossQueries) {
  // The original key packed (query << 20) | step: a step id at or above 2^20
  // bled into the query bits, so (query=1, step=2^20+5) collided with
  // (query=2, step=5) — and ClearQuery, matching on `>> 20`, could erase or
  // miss other queries' memoranda. The full 32/32 split keeps them distinct.
  MemoTable table;
  constexpr uint32_t kAliasStep = (1u << 20) + 5;
  auto& a = table.GetOrCreate<DedupMemo>(1, kAliasStep);
  auto& b = table.GetOrCreate<DedupMemo>(2, 5);
  EXPECT_NE(&a, &b);  // the old packing mapped both to the same slot
  EXPECT_EQ(table.size(), 2u);
  a.FirstSight(Value(int64_t{42}));
  table.ClearQuery(2);  // must not touch query 1's records
  EXPECT_EQ(table.size(), 1u);
  auto* survivor = table.Find<DedupMemo>(1, kAliasStep);
  ASSERT_NE(survivor, nullptr);
  EXPECT_FALSE(survivor->FirstSight(Value(int64_t{42})));  // state intact
  EXPECT_EQ((table.Find<DedupMemo>(2, 5)), nullptr);
}

TEST(MemoTest, StatsCountLookupsAndLifetime) {
  MemoTable table;
  table.GetOrCreate<DedupMemo>(1, 0);  // miss + created
  table.GetOrCreate<DedupMemo>(1, 0);  // hit
  table.Find<DedupMemo>(1, 0);         // hit
  table.Find<DedupMemo>(9, 9);         // miss
  table.GetOrCreate<DedupMemo>(2, 0);  // miss + created
  table.ClearQuery(1);
  table.Clear();
  EXPECT_EQ(table.stats().hits, 2u);
  EXPECT_EQ(table.stats().misses, 3u);
  EXPECT_EQ(table.stats().created, 2u);
  EXPECT_EQ(table.stats().cleared, 2u);  // one by ClearQuery, one by Clear
}

// ---- rows ---------------------------------------------------------------------

TEST(RowTest, RowLessRespectsSpecs) {
  Row a = {Value(int64_t{1}), Value(int64_t{100})};
  Row b = {Value(int64_t{2}), Value(int64_t{50})};
  // Descending by col 1: a (100) before b (50).
  std::vector<SortSpec> by_weight_desc = {{1, false}, {0, true}};
  EXPECT_TRUE(RowLess(a, b, by_weight_desc));
  EXPECT_FALSE(RowLess(b, a, by_weight_desc));
  // Tie on col 1 -> ascending col 0 breaks it.
  Row c = {Value(int64_t{0}), Value(int64_t{50})};
  EXPECT_TRUE(RowLess(c, b, by_weight_desc));
}

TEST(RowTest, SerializeRoundTrip) {
  Row row = {Value(int64_t{1}), Value("x"), Value(2.5)};
  ByteWriter w;
  SerializeRow(row, &w);
  ByteReader r(w.data(), w.size());
  EXPECT_EQ(DeserializeRow(&r), row);
}

TEST(RowTest, AggStateSerde) {
  AggState agg;
  agg.Update(Value(int64_t{3}));
  agg.Update(Value(int64_t{8}));
  ByteWriter w;
  SerializeAggState(agg, &w);
  ByteReader r(w.data(), w.size());
  AggState back = DeserializeAggState(&r);
  EXPECT_EQ(back.count, 2);
  EXPECT_DOUBLE_EQ(back.sum, 11.0);
  EXPECT_EQ(back.min, Value(int64_t{3}));
  EXPECT_EQ(back.max, Value(int64_t{8}));
}

// ---- plan scopes ----------------------------------------------------------------

TEST(PlanTest, LinearPlanSingleScope) {
  Plan plan;
  auto* a = plan.Add(std::make_unique<IndexLookupStep>(std::vector<VertexId>{1}));
  auto* b = plan.Add(std::make_unique<ExpandStep>(0, Direction::kOut));
  auto* c = plan.Add(std::make_unique<EmitStep>(std::vector<Operand>{}));
  a->set_next(b->id());
  b->set_next(c->id());
  plan.AddRoot(a->id());
  ASSERT_TRUE(plan.Finalize().ok());
  EXPECT_EQ(plan.num_scopes(), 1u);
  EXPECT_EQ(plan.scope_closer(0), kNoStep);
  EXPECT_EQ(plan.step(c->id()).scope(), 0u);
}

TEST(PlanTest, BlockingStepOpensNewScope) {
  Plan plan;
  auto* a = plan.Add(std::make_unique<IndexLookupStep>(std::vector<VertexId>{1}));
  auto* g = plan.Add(std::make_unique<GroupByStep>(
      Operand::VertexIdOp(), Operand::Const(Value(int64_t{1})), AggFunc::kCount));
  auto* e = plan.Add(std::make_unique<EmitStep>(std::vector<Operand>{}));
  a->set_next(g->id());
  g->set_next(e->id());
  plan.AddRoot(a->id());
  ASSERT_TRUE(plan.Finalize().ok());
  EXPECT_EQ(plan.num_scopes(), 2u);
  EXPECT_EQ(plan.step(g->id()).scope(), 0u);
  EXPECT_EQ(plan.step(e->id()).scope(), 1u);
  EXPECT_EQ(plan.scope_closer(0), g->id());
  EXPECT_EQ(plan.scope_closer(1), kNoStep);
}

TEST(PlanTest, TeeTargetSharesScope) {
  Plan plan;
  auto* a = plan.Add(std::make_unique<IndexLookupStep>(std::vector<VertexId>{1}));
  auto* x = plan.Add(std::make_unique<ExpandStep>(0, Direction::kOut));
  x->set_loop(3, true);
  auto* k = plan.Add(std::make_unique<OrderByLimitStep>(
      std::vector<SortSpec>{{0, true}}, 10));
  a->set_next(x->id());
  x->set_tee(k->id());
  plan.AddRoot(a->id());
  ASSERT_TRUE(plan.Finalize().ok());
  EXPECT_EQ(plan.step(k->id()).scope(), 0u);
  EXPECT_EQ(plan.scope_closer(0), k->id());
}

TEST(PlanTest, RejectsEmptyRoots) {
  Plan plan;
  plan.Add(std::make_unique<EmitStep>(std::vector<Operand>{}));
  EXPECT_FALSE(plan.Finalize().ok());
}

TEST(PlanTest, RejectsTwoBlockersInOneScope) {
  // Two pipelines each ending in a blocking step would put two blockers in
  // scope 0, which the finalize protocol cannot serve.
  Plan bad;
  auto* r = bad.Add(std::make_unique<IndexLookupStep>(std::vector<VertexId>{1}));
  auto* s1 = bad.Add(std::make_unique<ScalarAggStep>(
      Operand::Const(Value(int64_t{1})), AggFunc::kCount));
  auto* s2 = bad.Add(std::make_unique<ScalarAggStep>(
      Operand::Const(Value(int64_t{1})), AggFunc::kCount));
  r->set_next(s1->id());
  bad.AddRoot(r->id());
  bad.AddRoot(s2->id());
  EXPECT_FALSE(bad.Finalize().ok());
}

TEST(PlanTest, DescribeListsSteps) {
  Plan plan;
  auto* a = plan.Add(std::make_unique<IndexLookupStep>(std::vector<VertexId>{1, 2}));
  auto* e = plan.Add(std::make_unique<EmitStep>(std::vector<Operand>{}));
  a->set_next(e->id());
  plan.AddRoot(a->id());
  ASSERT_TRUE(plan.Finalize().ok());
  std::string desc = plan.Describe();
  EXPECT_NE(desc.find("IndexLookup"), std::string::npos);
  EXPECT_NE(desc.find("Emit"), std::string::npos);
}

}  // namespace
}  // namespace graphdance
