// Tests for the Gremlin-style DSL (compilation, wiring, error handling,
// filter-fusion strategy) and the cost-based join planner
// (JoinSelectionStrategy) including executed path-pattern plans.

#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.h"
#include "query/gremlin.h"
#include "query/planner.h"
#include "runtime/sim_cluster.h"

namespace graphdance {
namespace {

struct TestGraph {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
};

TestGraph MakeGraph(uint32_t parts = 4) {
  TestGraph tg;
  tg.schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = 512;
  opt.num_edges = 4096;
  opt.seed = 21;
  tg.graph = GeneratePowerLawGraph(opt, tg.schema, parts).TakeValue();
  return tg;
}

// ---- DSL compilation ---------------------------------------------------------

TEST(DslTest, SimpleChainCompiles) {
  TestGraph tg = MakeGraph();
  auto plan = Traversal(tg.graph).V({1}).Out("link").Values("weight").Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // V -> Expand -> Project -> implicit Emit.
  EXPECT_EQ(plan.value()->num_steps(), 4u);
  EXPECT_EQ(plan.value()->num_scopes(), 1u);
}

TEST(DslTest, FilterFusionMergesAdjacentFilters) {
  TestGraph tg = MakeGraph();
  auto plan = Traversal(tg.graph)
                  .V({1})
                  .Out("link")
                  .Has("weight", CmpOp::kGe, Value(int64_t{10}))
                  .Has("weight", CmpOp::kLe, Value(int64_t{100}))
                  .Has("weight", CmpOp::kNe, Value(int64_t{50}))
                  .Build();
  ASSERT_TRUE(plan.ok());
  // V, Expand, ONE fused Filter, Emit.
  EXPECT_EQ(plan.value()->num_steps(), 4u);
  int filters = 0;
  for (size_t i = 0; i < plan.value()->num_steps(); ++i) {
    if (plan.value()->step(i).kind() == StepKind::kFilter) ++filters;
  }
  EXPECT_EQ(filters, 1);
}

TEST(DslTest, RepeatOutGetsTerminalEmit) {
  TestGraph tg = MakeGraph();
  auto plan = Traversal(tg.graph).V({1}).RepeatOut("link", 2).Build();
  ASSERT_TRUE(plan.ok());
  // The dangling tee gets an Emit target.
  const Plan& p = *plan.value();
  EXPECT_EQ(p.step(p.num_steps() - 1).kind(), StepKind::kEmit);
}

TEST(DslTest, GroupByTerminalGetsEmit) {
  TestGraph tg = MakeGraph();
  auto plan = Traversal(tg.graph)
                  .V({1})
                  .Out("link")
                  .GroupCount(Operand::VertexIdOp())
                  .Build();
  ASSERT_TRUE(plan.ok());
  const Plan& p = *plan.value();
  EXPECT_EQ(p.step(p.num_steps() - 1).kind(), StepKind::kEmit);
  EXPECT_EQ(p.num_scopes(), 2u);
}

TEST(DslTest, ErrorsPropagate) {
  TestGraph tg = MakeGraph();
  // Out before V.
  Traversal t1(tg.graph);
  t1.Out("link");
  EXPECT_FALSE(t1.Build().ok());
  // Double V.
  Traversal t2(tg.graph);
  t2.V({1}).V({2});
  EXPECT_FALSE(t2.Build().ok());
  // GroupBy on a property operand.
  Traversal t3(tg.graph);
  t3.V({1}).GroupBy(Operand::Property(0), Operand::Const(Value(int64_t{1})),
                    AggFunc::kCount);
  EXPECT_FALSE(t3.Build().ok());
  // CaptureEdgeProp without expand.
  Traversal t4(tg.graph);
  t4.V({1}).CaptureEdgeProp();
  EXPECT_FALSE(t4.Build().ok());
  // TeeOnImprove without RepeatOut.
  Traversal t5(tg.graph);
  t5.V({1}).Out("link").TeeOnImprove();
  EXPECT_FALSE(t5.Build().ok());
  // Empty traversal.
  Traversal t6(tg.graph);
  EXPECT_FALSE(t6.Build().ok());
}

TEST(DslTest, AppendAfterTerminalFails) {
  TestGraph tg = MakeGraph();
  Traversal t(tg.graph);
  t.V({1}).Count();
  // ScalarAgg is terminal-capable but still open for continuation...
  auto plan = t.Build();
  EXPECT_TRUE(plan.ok());
}

// ---- join planner -------------------------------------------------------------

TEST(PlannerTest, ChoosesInteriorSplitForAnchoredEnds) {
  GraphStats stats;
  stats.num_vertices = 1000;
  Schema schema;
  LabelId e = schema.EdgeLabel("e");
  stats.vertices_per_label[0] = 1000;
  stats.edges_per_label[e] = 10'000;  // fanout 10 both ways
  stats.edge_src_label[e] = 0;
  stats.edge_dst_label[e] = 0;

  PathPattern pattern;
  for (int i = 0; i < 4; ++i) pattern.hops.push_back({"e", Direction::kOut});
  // Both anchors single vertices: expanding 4 hops one way costs ~10^4;
  // splitting 2+2 costs ~2*10^2.
  JoinPlanChoice choice = ChooseJoinSplit(stats, schema, pattern, 1.0, 1.0);
  EXPECT_TRUE(choice.use_join);
  EXPECT_EQ(choice.split, 2u);
}

TEST(PlannerTest, PureForwardWhenFarAnchorHuge) {
  GraphStats stats;
  stats.num_vertices = 1000;
  Schema schema;
  LabelId e = schema.EdgeLabel("e");
  stats.vertices_per_label[0] = 1000;
  stats.edges_per_label[e] = 2'000;  // fanout 2
  stats.edge_src_label[e] = 0;
  stats.edge_dst_label[e] = 0;

  PathPattern pattern;
  pattern.hops.push_back({"e", Direction::kOut});
  // B anchored at 10000 vertices: backward expansion is hopeless.
  JoinPlanChoice choice = ChooseJoinSplit(stats, schema, pattern, 1.0, 10'000.0);
  EXPECT_FALSE(choice.use_join);
  EXPECT_EQ(choice.split, pattern.hops.size());
}

TEST(PlannerTest, JoinPlanExecutesAndMatchesUnidirectional) {
  TestGraph tg = MakeGraph(4);
  PathPattern pattern;
  pattern.hops.push_back({"link", Direction::kOut});
  pattern.hops.push_back({"link", Direction::kOut});

  VertexId a = 3, b = 17;
  // Forced interior split (join plan).
  JoinPlanChoice join_choice;
  join_choice.split = 1;
  join_choice.use_join = true;
  auto jt = BuildPathQuery(tg.graph, {a}, {b}, pattern, join_choice);
  ASSERT_TRUE(jt.ok()) << jt.status().ToString();
  auto jplan = jt.TakeValue().Count().Build();
  ASSERT_TRUE(jplan.ok());

  // Forced pure forward.
  JoinPlanChoice fwd_choice;
  fwd_choice.split = 2;
  fwd_choice.use_join = false;
  auto ft = BuildPathQuery(tg.graph, {a}, {b}, pattern, fwd_choice);
  ASSERT_TRUE(ft.ok());
  auto fplan = ft.TakeValue().Count().Build();
  ASSERT_TRUE(fplan.ok());

  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  SimCluster c1(cfg, tg.graph);
  SimCluster c2(cfg, tg.graph);
  auto r1 = c1.Run(jplan.TakeValue());
  auto r2 = c2.Run(fplan.TakeValue());
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1.value().rows, r2.value().rows)
      << "join plan and unidirectional plan must count the same paths";
}

TEST(PlannerTest, RejectsMultiFarAnchorUnidirectional) {
  TestGraph tg = MakeGraph(2);
  PathPattern pattern;
  pattern.hops.push_back({"link", Direction::kOut});
  JoinPlanChoice choice;
  choice.split = 1;
  choice.use_join = false;
  auto t = BuildPathQuery(tg.graph, {1}, {2, 3}, pattern, choice);
  EXPECT_FALSE(t.ok());
}

TEST(PlannerTest, UnknownEdgeLabelFanoutZero) {
  GraphStats stats;
  Schema schema;
  PathPattern pattern;
  pattern.hops.push_back({"ghost", Direction::kOut});
  JoinPlanChoice choice = ChooseJoinSplit(stats, schema, pattern, 1.0, 1.0);
  // Still yields a valid split without crashing.
  EXPECT_LE(choice.split, pattern.hops.size());
}

}  // namespace
}  // namespace graphdance
