// Unit tests for the foundation library: Status/Result, Value, serde,
// Rng determinism, MPSC queue, SmallVector and the latency recorder.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/histogram.h"
#include "common/mpsc_queue.h"
#include "common/random.h"
#include "common/serde.h"
#include "common/small_vector.h"
#include "common/status.h"
#include "common/value.h"

namespace graphdance {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("vertex 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: vertex 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kAborted), "Aborted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTimeout), "Timeout");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, TakeValueMoves) {
  Result<std::string> r(std::string("payload"));
  std::string s = r.TakeValue();
  EXPECT_EQ(s, "payload");
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(int64_t{-5}).as_int(), -5);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("abc").as_string(), "abc");
}

TEST(ValueTest, CrossTypeOrdering) {
  // null < bool < numeric < string.
  EXPECT_LT(Value(), Value(false));
  EXPECT_LT(Value(true), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{5}), Value("a"));
}

TEST(ValueTest, NumericComparesAcrossIntAndDouble) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{2}), Value(2.5));
  EXPECT_LT(Value(1.5), Value(int64_t{2}));
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value("same"), Value("same"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{77}).Hash(), Value(int64_t{77}).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
}

TEST(ValueTest, SerializeRoundTrip) {
  std::vector<Value> values = {Value(), Value(true), Value(int64_t{-123456789}),
                               Value(3.14159), Value("hello world")};
  ByteWriter w;
  for (const Value& v : values) v.Serialize(&w);
  ByteReader r(w.data(), w.size());
  for (const Value& v : values) {
    Value back = Value::Deserialize(&r);
    EXPECT_EQ(back, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(ValueTest, ToDoubleAndToInt) {
  EXPECT_DOUBLE_EQ(Value(int64_t{4}).ToDouble(), 4.0);
  EXPECT_EQ(Value(4.9).ToInt(), 4);
  EXPECT_EQ(Value().ToInt(), 0);
  EXPECT_EQ(Value(true).ToInt(), 1);
}

TEST(SerdeTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.WriteU8(200);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  w.WriteI64(-42);
  w.WriteDouble(1.25);
  w.WriteString("serde");

  ByteReader r(w.data(), w.size());
  EXPECT_EQ(r.ReadU8(), 200);
  EXPECT_EQ(r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_DOUBLE_EQ(r.ReadDouble(), 1.25);
  EXPECT_EQ(r.ReadString(), "serde");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, EmptyString) {
  ByteWriter w;
  w.WriteString("");
  ByteReader r(w.data(), w.size());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, RangeBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(HashTest, Mix64IsInjectiveOnSmallSample) {
  std::vector<uint64_t> hashes;
  for (uint64_t i = 0; i < 1000; ++i) hashes.push_back(Mix64(i));
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::unique(hashes.begin(), hashes.end()), hashes.end());
}

TEST(MpscQueueTest, SingleThreadPushDrain) {
  MpscQueue<int> q;
  q.Push(1);
  q.Push(2);
  std::vector<int> out;
  EXPECT_EQ(q.DrainInto(&out), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.DrainInto(&out), 0u);
}

TEST(MpscQueueTest, MultiProducer) {
  MpscQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kProducers; ++t) {
    threads.emplace_back([&q, t] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(t * kPerProducer + i);
    });
  }
  for (auto& t : threads) t.join();
  std::vector<int> out;
  q.DrainInto(&out);
  EXPECT_EQ(out.size(), static_cast<size_t>(kProducers * kPerProducer));
}

TEST(MpscQueueTest, WaitDrainTimesOut) {
  MpscQueue<int> q;
  std::vector<int> out;
  EXPECT_EQ(q.WaitDrainInto(&out, std::chrono::microseconds(500)), 0u);
}

TEST(MpscQueueTest, CloseWakesWaiter) {
  MpscQueue<int> q;
  std::thread waiter([&q] {
    std::vector<int> out;
    q.WaitDrainInto(&out, std::chrono::seconds(10));
  });
  q.Close();
  waiter.join();
  EXPECT_TRUE(q.closed());
}

TEST(SmallVectorTest, StaysInline) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, SpillsToHeap) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, CopyAndMove) {
  SmallVector<std::string, 2> v;
  v.push_back("a");
  v.push_back("b");
  v.push_back("c");  // spilled

  SmallVector<std::string, 2> copy = v;
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy[2], "c");

  SmallVector<std::string, 2> moved = std::move(v);
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved[0], "a");
}

TEST(SmallVectorTest, EqualityAndClear) {
  SmallVector<int, 3> a{1, 2, 3};
  SmallVector<int, 3> b{1, 2, 3};
  EXPECT_TRUE(a == b);
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(a == b);
}

TEST(SmallVectorTest, PopBackAndResize) {
  SmallVector<int, 2> v{5, 6, 7};
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 6);
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], 0);
}

TEST(LatencyRecorderTest, AvgAndPercentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.Record(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(rec.Avg(), 50.5);
  EXPECT_DOUBLE_EQ(rec.Min(), 1.0);
  EXPECT_DOUBLE_EQ(rec.Max(), 100.0);
  EXPECT_NEAR(rec.P99(), 99.0, 1.0);
  EXPECT_NEAR(rec.P50(), 50.0, 1.0);
}

TEST(LatencyRecorderTest, EmptyIsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.Avg(), 0.0);
  EXPECT_EQ(rec.P99(), 0.0);
}

TEST(LatencyRecorderTest, Merge) {
  LatencyRecorder a, b;
  a.Record(1.0);
  b.Record(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Avg(), 2.0);
}

}  // namespace
}  // namespace graphdance
