// Unit tests for the partitioned property graph: schema interning, hash
// partitioning, CSR construction, property access, secondary indexes, the
// transactional edge log (TEL) and the synthetic generators.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/partitioner.h"
#include "graph/schema.h"
#include "graph/tel.h"

namespace graphdance {
namespace {

std::shared_ptr<PartitionedGraph> MakeTriangleGraph(uint32_t parts) {
  auto schema = std::make_shared<Schema>();
  LabelId person = schema->VertexLabel("person");
  LabelId knows = schema->EdgeLabel("knows");
  PropKeyId name = schema->PropKey("name");

  GraphBuilder b(schema, parts);
  b.AddVertex(1, person, {{name, Value("alice")}});
  b.AddVertex(2, person, {{name, Value("bob")}});
  b.AddVertex(3, person, {{name, Value("carol")}});
  b.AddEdge(1, 2, knows, Value(int64_t{2010}));
  b.AddEdge(2, 3, knows, Value(int64_t{2011}));
  b.AddEdge(3, 1, knows, Value(int64_t{2012}));
  auto result = b.Build();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.TakeValue();
}

TEST(SchemaTest, InterningIsStable) {
  Schema schema;
  LabelId a = schema.VertexLabel("person");
  LabelId b = schema.VertexLabel("person");
  EXPECT_EQ(a, b);
  EXPECT_EQ(schema.VertexLabelName(a), "person");
  EXPECT_NE(schema.VertexLabel("post"), a);
  EXPECT_EQ(schema.num_vertex_labels(), 2u);
}

TEST(SchemaTest, FindWithoutIntern) {
  Schema schema;
  EXPECT_EQ(schema.FindVertexLabel("ghost"), kInvalidLabel);
  schema.VertexLabel("ghost");
  EXPECT_NE(schema.FindVertexLabel("ghost"), kInvalidLabel);
  EXPECT_EQ(schema.FindPropKey("nope"), kInvalidPropKey);
}

TEST(PartitionerTest, CoversAllPartitions) {
  Partitioner p(8);
  std::set<PartitionId> seen;
  for (VertexId v = 0; v < 1000; ++v) seen.insert(p.Of(v));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(PartitionerTest, Deterministic) {
  Partitioner a(16), b(16);
  for (VertexId v = 0; v < 100; ++v) EXPECT_EQ(a.Of(v), b.Of(v));
}

TEST(PartitionerTest, RoughlyBalanced) {
  Partitioner p(4);
  std::unordered_map<PartitionId, int> counts;
  constexpr int kN = 40000;
  for (VertexId v = 0; v < kN; ++v) counts[p.Of(v)]++;
  for (const auto& [part, count] : counts) {
    EXPECT_GT(count, kN / 4 * 0.9) << "partition " << part;
    EXPECT_LT(count, kN / 4 * 1.1) << "partition " << part;
  }
}

TEST(GraphBuilderTest, BuildsTriangle) {
  auto g = MakeTriangleGraph(4);
  EXPECT_EQ(g->stats().num_vertices, 3u);
  EXPECT_EQ(g->stats().num_edges, 3u);
  EXPECT_TRUE(g->HasVertex(1));
  EXPECT_TRUE(g->HasVertex(3));
  EXPECT_FALSE(g->HasVertex(99));
}

TEST(GraphBuilderTest, RejectsDuplicateVertex) {
  auto schema = std::make_shared<Schema>();
  LabelId l = schema->VertexLabel("v");
  GraphBuilder b(schema, 2);
  b.AddVertex(1, l);
  b.AddVertex(1, l);
  auto result = b.Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
}

TEST(GraphBuilderTest, RejectsDanglingEdge) {
  auto schema = std::make_shared<Schema>();
  LabelId l = schema->VertexLabel("v");
  LabelId e = schema->EdgeLabel("e");
  GraphBuilder b(schema, 2);
  b.AddVertex(1, l);
  b.AddEdge(1, 2, e);
  auto result = b.Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(GraphTest, OutAndInNeighbors) {
  auto g = MakeTriangleGraph(3);
  LabelId knows = g->mutable_schema().EdgeLabel("knows");

  std::vector<VertexId> out;
  g->ForEachNeighbor(1, knows, Direction::kOut,
                     [&](VertexId dst, const Value&) { out.push_back(dst); });
  EXPECT_EQ(out, (std::vector<VertexId>{2}));

  std::vector<VertexId> in;
  g->ForEachNeighbor(1, knows, Direction::kIn,
                     [&](VertexId dst, const Value&) { in.push_back(dst); });
  EXPECT_EQ(in, (std::vector<VertexId>{3}));

  std::vector<VertexId> both;
  g->ForEachNeighbor(1, knows, Direction::kBoth,
                     [&](VertexId dst, const Value&) { both.push_back(dst); });
  EXPECT_EQ(both.size(), 2u);
}

TEST(GraphTest, EdgePropertiesPreserved) {
  auto g = MakeTriangleGraph(2);
  LabelId knows = g->mutable_schema().EdgeLabel("knows");
  Value prop;
  g->ForEachNeighbor(1, knows, Direction::kOut,
                     [&](VertexId, const Value& p) { prop = p; });
  EXPECT_EQ(prop, Value(int64_t{2010}));
}

TEST(GraphTest, VertexProperties) {
  auto g = MakeTriangleGraph(2);
  PropKeyId name = g->mutable_schema().PropKey("name");
  const Value* v = g->PropertyOf(2, name);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, Value("bob"));
  EXPECT_EQ(g->PropertyOf(2, g->mutable_schema().PropKey("missing")), nullptr);
}

TEST(GraphTest, LabelsAndVertexEnumeration) {
  auto g = MakeTriangleGraph(2);
  LabelId person = g->mutable_schema().VertexLabel("person");
  EXPECT_EQ(g->LabelOf(1), person);
  auto people = g->VerticesWithLabel(person);
  std::set<VertexId> ids(people.begin(), people.end());
  EXPECT_EQ(ids, (std::set<VertexId>{1, 2, 3}));
}

TEST(GraphTest, SecondaryIndexLookup) {
  auto g = MakeTriangleGraph(4);
  LabelId person = g->mutable_schema().VertexLabel("person");
  PropKeyId name = g->mutable_schema().PropKey("name");
  g->BuildIndex(person, name);

  bool found = false;
  for (uint32_t p = 0; p < g->num_partitions(); ++p) {
    const auto* hits = g->partition(p).IndexLookup(person, name, Value("carol"));
    if (hits != nullptr) {
      EXPECT_EQ(hits->size(), 1u);
      EXPECT_EQ((*hits)[0], 3u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GraphTest, PartitionAssignmentMatchesPartitioner) {
  auto g = MakeTriangleGraph(4);
  for (VertexId v = 1; v <= 3; ++v) {
    PartitionId p = g->PartitionOf(v);
    EXPECT_TRUE(g->partition(p).LocalIndex(v).has_value());
    for (uint32_t q = 0; q < g->num_partitions(); ++q) {
      if (q != p) {
        EXPECT_FALSE(g->partition(q).LocalIndex(v).has_value());
      }
    }
  }
}

// ---- TEL -------------------------------------------------------------------

TEST(TelTest, EdgeVisibility) {
  TransactionalEdgeLog tel;
  tel.AddEdge(1, 0, Direction::kOut, 2, /*ts=*/10);

  int count = 0;
  tel.ForEachEdge(1, 0, Direction::kOut, /*ts=*/9,
                  [&](VertexId, const Value&) { ++count; });
  EXPECT_EQ(count, 0);

  tel.ForEachEdge(1, 0, Direction::kOut, /*ts=*/10,
                  [&](VertexId, const Value&) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(TelTest, DeleteHidesEdgeAfterTs) {
  TransactionalEdgeLog tel;
  tel.AddEdge(1, 0, Direction::kOut, 2, 10);
  EXPECT_TRUE(tel.DeleteEdge(1, 0, Direction::kOut, 2, 20));

  int at15 = 0, at25 = 0;
  tel.ForEachEdge(1, 0, Direction::kOut, 15, [&](VertexId, const Value&) { ++at15; });
  tel.ForEachEdge(1, 0, Direction::kOut, 25, [&](VertexId, const Value&) { ++at25; });
  EXPECT_EQ(at15, 1);
  EXPECT_EQ(at25, 0);
}

TEST(TelTest, DeleteMissingEdgeReturnsFalse) {
  TransactionalEdgeLog tel;
  EXPECT_FALSE(tel.DeleteEdge(1, 0, Direction::kOut, 2, 5));
}

TEST(TelTest, VertexVisibilityAndProperties) {
  TransactionalEdgeLog tel;
  tel.AddVertex(7, /*label=*/3, /*ts=*/100);
  EXPECT_FALSE(tel.HasVertex(7, 99));
  EXPECT_TRUE(tel.HasVertex(7, 100));

  tel.SetProperty(7, /*key=*/0, Value("v1"), 100);
  tel.SetProperty(7, /*key=*/0, Value("v2"), 200);
  EXPECT_EQ(*tel.GetProperty(7, 0, 150), Value("v1"));
  EXPECT_EQ(*tel.GetProperty(7, 0, 250), Value("v2"));
  EXPECT_EQ(tel.GetProperty(7, 1, 250), nullptr);
}

TEST(TelTest, RecoveryTruncatesUncommitted) {
  TransactionalEdgeLog tel;
  tel.AddVertex(1, 0, 10);
  tel.AddEdge(1, 0, Direction::kOut, 2, 10);
  tel.AddEdge(1, 0, Direction::kOut, 3, 50);   // after LCT: dropped
  tel.DeleteEdge(1, 0, Direction::kOut, 2, 60);  // after LCT: undone
  tel.SetProperty(1, 0, Value("keep"), 10);
  tel.SetProperty(1, 0, Value("drop"), 70);

  tel.TruncateAfter(/*lct=*/30);

  std::vector<VertexId> dsts;
  tel.ForEachEdge(1, 0, Direction::kOut, 30,
                  [&](VertexId d, const Value&) { dsts.push_back(d); });
  EXPECT_EQ(dsts, (std::vector<VertexId>{2}));
  EXPECT_EQ(*tel.GetProperty(1, 0, 100), Value("keep"));
}

TEST(TelTest, IntegratedWithPartitionStore) {
  auto g = MakeTriangleGraph(1);
  LabelId knows = g->mutable_schema().EdgeLabel("knows");
  auto& part = g->partition(0);

  // Static: 1 -> 2. Add a dynamic edge 1 -> 3 at ts=5.
  part.tel().AddEdge(1, knows, Direction::kOut, 3, 5);

  std::vector<VertexId> at0, at10;
  part.ForEachNeighbor(1, knows, Direction::kOut, 0,
                       [&](VertexId d, const Value&) { at0.push_back(d); });
  part.ForEachNeighbor(1, knows, Direction::kOut, 10,
                       [&](VertexId d, const Value&) { at10.push_back(d); });
  EXPECT_EQ(at0, (std::vector<VertexId>{2}));
  EXPECT_EQ(at10, (std::vector<VertexId>{2, 3}));
  EXPECT_EQ(part.Degree(1, knows, Direction::kOut, 10), 2u);
}

TEST(TelTest, CompactDropsDeadVersions) {
  TransactionalEdgeLog tel;
  tel.AddEdge(1, 0, Direction::kOut, 2, 10);
  tel.AddEdge(1, 0, Direction::kOut, 3, 20);
  tel.DeleteEdge(1, 0, Direction::kOut, 2, 30);  // dead to readers >= 30
  tel.SetProperty(1, 0, Value("v1"), 5);
  tel.SetProperty(1, 0, Value("v2"), 15);
  tel.SetProperty(1, 0, Value("v3"), 90);

  EXPECT_EQ(tel.num_edge_versions(), 2u);
  tel.Compact(/*watermark=*/50);
  EXPECT_EQ(tel.num_edge_versions(), 1u);

  // Post-compaction reads at/above the watermark are unchanged.
  std::vector<VertexId> dsts;
  tel.ForEachEdge(1, 0, Direction::kOut, 60,
                  [&](VertexId d, const Value&) { dsts.push_back(d); });
  EXPECT_EQ(dsts, (std::vector<VertexId>{3}));
  EXPECT_EQ(*tel.GetProperty(1, 0, 60), Value("v2"));
  EXPECT_EQ(*tel.GetProperty(1, 0, 95), Value("v3"));
}

TEST(TelTest, CompactRemovesDeletedVertices) {
  TransactionalEdgeLog tel;
  tel.AddVertex(7, 1, 10);
  tel.AddVertex(8, 1, 10);
  EXPECT_TRUE(tel.DeleteVertex(7, 20));
  EXPECT_FALSE(tel.HasVertex(7, 25));
  EXPECT_TRUE(tel.HasVertex(7, 15));

  tel.Compact(5);  // nothing dead at ts 5 yet
  EXPECT_EQ(tel.num_vertices(), 2u);
  tel.Compact(50);  // vertex 7 dead to every reader >= 50
  EXPECT_EQ(tel.num_vertices(), 1u);
  EXPECT_TRUE(tel.HasVertex(8, 60));
}

TEST(TelTest, CompactPreservesPropertyFloor) {
  TransactionalEdgeLog tel;
  for (int i = 1; i <= 10; ++i) {
    tel.SetProperty(4, 2, Value(int64_t{i}), static_cast<Timestamp>(i * 10));
  }
  tel.Compact(55);
  // Reader at the watermark still sees the version from ts=50.
  EXPECT_EQ(*tel.GetProperty(4, 2, 55), Value(int64_t{5}));
  EXPECT_EQ(*tel.GetProperty(4, 2, 100), Value(int64_t{10}));
}

TEST(TelTest, ArenaPreservesAppendOrderAcrossBlocks) {
  // Chains grow through multiple capacity-doubling blocks; scan order must
  // stay append order (the deterministic scheduler depends on it).
  TransactionalEdgeLog tel;
  const int n = 50;  // spans several blocks (4 + 8 + 16 + 32)
  for (int i = 0; i < n; ++i) {
    tel.AddEdge(1, 0, Direction::kOut, static_cast<VertexId>(100 + i), 10);
    // Interleave another vertex and label so blocks from different chains
    // alternate inside the shared arena.
    tel.AddEdge(2, 0, Direction::kOut, static_cast<VertexId>(500 + i), 10);
    tel.AddEdge(1, 1, Direction::kIn, static_cast<VertexId>(900 + i), 10);
  }
  std::vector<VertexId> dsts;
  tel.ForEachEdge(1, 0, Direction::kOut, 20,
                  [&](VertexId d, const Value&) { dsts.push_back(d); });
  ASSERT_EQ(dsts.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(dsts[i], static_cast<VertexId>(100 + i));
  EXPECT_EQ(tel.num_edge_versions(), static_cast<size_t>(3 * n));
}

TEST(TelTest, CompactBumpsEpochAndPreservesOrder) {
  TransactionalEdgeLog tel;
  for (int i = 0; i < 20; ++i) {
    tel.AddEdge(1, 0, Direction::kOut, static_cast<VertexId>(100 + i), 10);
  }
  tel.DeleteEdge(1, 0, Direction::kOut, 103, 30);
  tel.DeleteEdge(1, 0, Direction::kOut, 110, 30);
  EXPECT_EQ(tel.compaction_epoch(), 0u);
  tel.Compact(/*watermark=*/40);
  EXPECT_EQ(tel.compaction_epoch(), 1u);
  EXPECT_EQ(tel.num_edge_versions(), 18u);

  std::vector<VertexId> dsts;
  tel.ForEachEdge(1, 0, Direction::kOut, 50,
                  [&](VertexId d, const Value&) { dsts.push_back(d); });
  std::vector<VertexId> expect;
  for (int i = 0; i < 20; ++i) {
    if (i != 3 && i != 10) expect.push_back(static_cast<VertexId>(100 + i));
  }
  EXPECT_EQ(dsts, expect);

  // The rebuilt arena stays appendable: new edges land after survivors.
  tel.AddEdge(1, 0, Direction::kOut, 999, 60);
  dsts.clear();
  tel.ForEachEdge(1, 0, Direction::kOut, 70,
                  [&](VertexId d, const Value&) { dsts.push_back(d); });
  expect.push_back(999);
  EXPECT_EQ(dsts, expect);
}

TEST(TelTest, TruncateRewritesChainsInPlaceAndStaysAppendable) {
  TransactionalEdgeLog tel;
  tel.AddVertex(1, 0, 10);
  for (int i = 0; i < 12; ++i) {
    // Edges at alternating committed/uncommitted timestamps.
    Timestamp ts = (i % 2 == 0) ? 10 : 50;
    tel.AddEdge(1, 0, Direction::kOut, static_cast<VertexId>(100 + i), ts);
  }
  tel.TruncateAfter(/*lct=*/30);  // drops the 6 ts=50 edges

  std::vector<VertexId> dsts;
  tel.ForEachEdge(1, 0, Direction::kOut, 30,
                  [&](VertexId d, const Value&) { dsts.push_back(d); });
  std::vector<VertexId> expect;
  for (int i = 0; i < 12; i += 2) expect.push_back(static_cast<VertexId>(100 + i));
  EXPECT_EQ(dsts, expect);
  EXPECT_EQ(tel.num_edge_versions(), 6u);

  // Appends after recovery continue the surviving chain in order.
  tel.AddEdge(1, 0, Direction::kOut, 777, 35);
  dsts.clear();
  tel.ForEachEdge(1, 0, Direction::kOut, 40,
                  [&](VertexId d, const Value&) { dsts.push_back(d); });
  expect.push_back(777);
  EXPECT_EQ(dsts, expect);
}

// ---- generators --------------------------------------------------------------

TEST(GeneratorTest, PowerLawDeterministicAndSized) {
  auto schema1 = std::make_shared<Schema>();
  auto schema2 = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = 1024;
  opt.num_edges = 8192;
  opt.seed = 7;
  auto g1 = GeneratePowerLawGraph(opt, schema1, 4).TakeValue();
  auto g2 = GeneratePowerLawGraph(opt, schema2, 4).TakeValue();
  EXPECT_EQ(g1->stats().num_vertices, 1024u);
  EXPECT_EQ(g1->stats().num_edges, 8192u);

  // Determinism: same seed gives identical degree for sampled vertices.
  LabelId link1 = schema1->EdgeLabel("link");
  LabelId link2 = schema2->EdgeLabel("link");
  for (VertexId v = 0; v < 50; ++v) {
    EXPECT_EQ(g1->partition(g1->PartitionOf(v)).Degree(v, link1, Direction::kOut, 0),
              g2->partition(g2->PartitionOf(v)).Degree(v, link2, Direction::kOut, 0));
  }
}

TEST(GeneratorTest, PowerLawIsSkewed) {
  auto schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = 4096;
  opt.num_edges = 32768;
  auto g = GeneratePowerLawGraph(opt, schema, 2).TakeValue();
  LabelId link = schema->EdgeLabel("link");

  uint64_t max_deg = 0;
  for (VertexId v = 0; v < opt.num_vertices; ++v) {
    max_deg = std::max(
        max_deg, g->partition(g->PartitionOf(v)).Degree(v, link, Direction::kOut, 0));
  }
  double avg = static_cast<double>(opt.num_edges) / opt.num_vertices;
  EXPECT_GT(static_cast<double>(max_deg), avg * 10)
      << "power-law graph should have hubs";
}

TEST(GeneratorTest, VerticesHaveWeightProperty) {
  auto schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = 256;
  opt.num_edges = 1024;
  auto g = GeneratePowerLawGraph(opt, schema, 2).TakeValue();
  PropKeyId weight = schema->PropKey("weight");
  for (VertexId v = 0; v < 256; ++v) {
    const Value* w = g->PropertyOf(v, weight);
    ASSERT_NE(w, nullptr);
    EXPECT_GE(w->as_int(), 0);
    EXPECT_LT(w->as_int(), opt.weight_range);
  }
}

TEST(GeneratorTest, UniformGraphSized) {
  auto schema = std::make_shared<Schema>();
  auto g = GenerateUniformGraph(500, 2000, 3, schema, 4).TakeValue();
  EXPECT_EQ(g->stats().num_vertices, 500u);
  EXPECT_EQ(g->stats().num_edges, 2000u);
}

TEST(GeneratorTest, PresetsExist) {
  auto schema = std::make_shared<Schema>();
  auto lj = GeneratePreset("lj-sim", 0.05, schema, 2);
  ASSERT_TRUE(lj.ok());
  EXPECT_GT(lj.value()->stats().num_edges, lj.value()->stats().num_vertices * 5);

  auto bad = GeneratePreset("nope", 1.0, std::make_shared<Schema>(), 2);
  EXPECT_FALSE(bad.ok());
}

TEST(GeneratorTest, StatsDegreeEstimates) {
  auto schema = std::make_shared<Schema>();
  auto g = GenerateUniformGraph(1000, 9000, 3, schema, 2).TakeValue();
  LabelId link = schema->EdgeLabel("link");
  EXPECT_NEAR(g->stats().AvgOutDegree(link), 9.0, 0.5);
  EXPECT_NEAR(g->stats().AvgInDegree(link), 9.0, 0.5);
}

}  // namespace
}  // namespace graphdance
