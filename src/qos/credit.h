#ifndef GRAPHDANCE_QOS_CREDIT_H_
#define GRAPHDANCE_QOS_CREDIT_H_

#include <cassert>
#include <cstdint>

namespace graphdance {
namespace qos {

/// Sender-side credit balance of one directed inter-node link.
///
/// The conservation invariant `available + outstanding == granted` holds by
/// construction: Consume moves credits from available to outstanding, Return
/// moves them back, and nothing else touches the balance. Hardened like
/// ByteReader (DESIGN.md §10): protocol violations — consuming more than
/// CanSend allows, returning more than is outstanding — assert in Debug
/// builds and clamp fail-safe in release builds, latching `saturated()` so
/// the resource-ledger checker can flag the run instead of the arithmetic
/// wrapping.
class CreditMeter {
 public:
  CreditMeter() = default;
  explicit CreditMeter(uint64_t granted)
      : granted_(granted), available_(granted) {}

  uint64_t granted() const { return granted_; }
  uint64_t available() const { return available_; }
  uint64_t outstanding() const { return outstanding_; }
  bool saturated() const { return saturated_; }

  /// True when a buffer of `bytes` may flush now: either the available
  /// credits cover it, or the link is fully idle (available == granted) and
  /// the flush overdrafts the whole window. The overdraft case keeps a
  /// single buffer larger than the window live — it consumes every credit,
  /// flushes whole, and the link stays blocked until those credits return.
  bool CanSend(uint64_t bytes) const {
    return available_ >= bytes || available_ == granted_;
  }

  /// Consumes up to `bytes` credits and returns the amount actually taken
  /// (== `bytes` except in the overdraft case, where the whole remaining
  /// window is taken instead).
  uint64_t Consume(uint64_t bytes) {
    assert(CanSend(bytes) && "CreditMeter overdraw");
    if (!CanSend(bytes)) saturated_ = true;  // release: clamp to available
    uint64_t take = bytes < available_ ? bytes : available_;
    available_ -= take;
    outstanding_ += take;
    return take;
  }

  /// Returns `bytes` previously consumed credits to the window.
  void Return(uint64_t bytes) {
    assert(bytes <= outstanding_ && "CreditMeter return exceeds outstanding");
    if (bytes > outstanding_) {  // release: clamp, never overflow the window
      bytes = outstanding_;
      saturated_ = true;
    }
    outstanding_ -= bytes;
    available_ += bytes;
  }

 private:
  uint64_t granted_ = 0;
  uint64_t available_ = 0;
  uint64_t outstanding_ = 0;
  bool saturated_ = false;
};

}  // namespace qos
}  // namespace graphdance

#endif  // GRAPHDANCE_QOS_CREDIT_H_
