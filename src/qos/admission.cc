#include "qos/admission.h"

#include <algorithm>

namespace graphdance {
namespace qos {

AdmissionController::AdmissionController(const QosConfig& cfg) : cfg_(cfg) {
  uint32_t n = cfg_.num_classes();
  queues_.resize(n);
  pass_.assign(n, 0);
  stride_.resize(n);
  for (uint32_t c = 0; c < n; ++c) stride_[c] = kStrideScale / cfg_.weight_of(c);
}

uint32_t AdmissionController::PickClass() const {
  uint32_t best = kNoClass;
  for (uint32_t c = 0; c < queues_.size(); ++c) {
    if (queues_[c].empty()) continue;
    if (best == kNoClass || pass_[c] < pass_[best]) best = c;
  }
  return best;
}

void AdmissionController::Admit(uint32_t cls) {
  ++running_;
  ++stats_.admitted;
  pass_[cls] += stride_[cls];
}

AdmissionController::Decision AdmissionController::OnSubmit(
    uint64_t id, uint32_t client_class, SimTime now, SimTime deadline_ns) {
  ++stats_.submitted;
  uint32_t cls = std::min<uint32_t>(client_class, cfg_.num_classes() - 1);
  if (running_ < cfg_.max_concurrent_queries && queued_ == 0) {
    Admit(cls);
    return Decision::kAdmit;
  }
  if (queued_ >= cfg_.max_queued_queries) {
    ++stats_.shed_queue_full;
    return Decision::kShed;
  }
  queues_[cls].push_back(Pending{id, now, deadline_ns});
  ++queued_;
  stats_.peak_queued = std::max(stats_.peak_queued, queued_);
  return Decision::kQueue;
}

void AdmissionController::OnComplete(SimTime now, std::vector<uint64_t>* admit,
                                     std::vector<uint64_t>* shed) {
  if (running_ > 0) --running_;
  ++stats_.completed;
  while (running_ < cfg_.max_concurrent_queries && queued_ > 0) {
    uint32_t cls = PickClass();
    if (cls == kNoClass) break;
    Pending p = queues_[cls].front();
    queues_[cls].pop_front();
    --queued_;
    if (DeadlineExpired(p, now)) {
      // Its wait already blew the deadline: shedding it now is strictly
      // better than burning a slot on an answer nobody is waiting for.
      ++stats_.shed_deadline;
      if (shed != nullptr) shed->push_back(p.id);
      continue;
    }
    Admit(cls);
    if (admit != nullptr) admit->push_back(p.id);
  }
}

bool AdmissionController::Cancel(uint64_t id) {
  for (auto& q : queues_) {
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (it->id != id) continue;
      q.erase(it);
      --queued_;
      ++stats_.cancelled;
      return true;
    }
  }
  return false;
}

bool AdmissionController::ForceAdmit(uint64_t id, SimTime now) {
  for (uint32_t c = 0; c < queues_.size(); ++c) {
    auto& q = queues_[c];
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (it->id != id) continue;
      Pending p = *it;
      q.erase(it);
      --queued_;
      if (DeadlineExpired(p, now)) {
        ++stats_.shed_deadline;
        return false;
      }
      Admit(c);
      return true;
    }
  }
  return false;
}

void AdmissionController::OnCompleteNoDequeue() {
  if (running_ > 0) --running_;
  ++stats_.completed;
}

}  // namespace qos
}  // namespace graphdance
