#ifndef GRAPHDANCE_QOS_QOS_H_
#define GRAPHDANCE_QOS_QOS_H_

#include <cstdint>
#include <vector>

namespace graphdance {
namespace qos {

/// Resource-governance knobs (DESIGN.md §11). Three cooperating mechanisms:
/// admission control (queries queue behind a concurrency limit and shed past
/// a backlog limit), credit-based flow control on inter-node links (senders
/// hold tier-1 buffers until the receiving node returns credits), and
/// per-worker budgets on queued traverser-task bytes and memo-table bytes.
///
/// Default-disabled: with `enabled == false` the cluster takes none of the
/// governance branches and the event schedule stays byte-identical to a
/// build without the subsystem.
/// Spill-manager policy (DESIGN.md §12). When enabled (and qos is enabled),
/// a worker crossing its memo budget first evicts cold memoranda — and, when
/// its queued task bytes cross the task budget, deep task-queue suffixes —
/// to the simulated storage tier instead of immediately aborting the
/// hungriest query. Aborts remain as the last resort when the tier itself is
/// exhausted or eviction cannot relieve pressure.
///
/// Default-disabled: with `enabled == false` the spill branches are never
/// taken and the event schedule stays byte-identical to a build without the
/// subsystem (even when qos itself is on).
struct SpillConfig {
  bool enabled = false;

  /// Fraction of `worker_memo_budget_bytes` at which the sweep starts
  /// evicting cold memoranda (pressure enters kSpilling).
  double memo_spill_watermark = 0.75;
  /// Eviction target: spill until resident memo bytes fall to this fraction
  /// of the budget (hysteresis; avoids re-entering the sweep every interval).
  double memo_low_watermark = 0.50;

  /// Fraction of `worker_task_budget_bytes` at which inbox ingestion spills
  /// the deepest queued task suffix instead of deferring (backpressure is
  /// replaced by storage-priced absorption until the tier fills).
  double task_spill_watermark = 1.0;
  /// Reload target: fault spilled tasks back in once queued bytes fall to
  /// this fraction of the task budget.
  double task_low_watermark = 0.50;
  /// Spilled tasks reloaded per worker-quantum (bounds reload burstiness).
  uint32_t task_reload_batch = 32;

  /// Capacity of the per-worker simulated spill device. Exhaustion is the
  /// last-resort condition: a worker that cannot evict falls back to
  /// aborting the hungriest query, exactly like the spill-off budget sweep.
  uint64_t capacity_bytes = 1ull << 30;  // 1 GiB
};

struct QosConfig {
  bool enabled = false;

  // --- admission control -------------------------------------------------
  /// Queries running concurrently before arrivals start queueing.
  uint32_t max_concurrent_queries = 8;
  /// Queued queries tolerated before arrivals are shed (kResourceExhausted).
  uint32_t max_queued_queries = 64;
  /// Weighted fairness across client classes (stride scheduling): class `c`
  /// is admitted from the backlog in proportion to `class_weights[c]`.
  /// Queries with a class id past the end of the vector use the last entry;
  /// an empty vector means one class of weight 1.
  std::vector<uint32_t> class_weights = {1};

  // --- per-worker budgets ------------------------------------------------
  /// Budget on a worker's queued traverser-task bytes. An over-budget worker
  /// defers inbox ingestion (draining its queue first), which in turn stops
  /// returning link credits upstream — backpressure, not loss.
  uint64_t worker_task_budget_bytes = 4u << 20;  // 4 MiB
  /// Budget on a partition's live memo-table bytes. Checked every
  /// `memo_check_interval` executed tasks; when exceeded, the query holding
  /// the most memo bytes on that partition is aborted resource-exhausted.
  uint64_t worker_memo_budget_bytes = 64u << 20;  // 64 MiB
  uint32_t memo_check_interval = 64;

  // --- spill-to-storage policy (DESIGN.md §12) ---------------------------
  /// Graceful-degradation alternative to budget aborts; only consulted when
  /// `enabled` is also true.
  SpillConfig spill;

  // --- credit-based link flow control ------------------------------------
  /// Credit window per directed (src node, dst node) link. A tier-1 buffer
  /// flush consumes credits for its bytes; each carried message returns its
  /// share when the receiver ingests (or drops) it.
  uint64_t link_credit_bytes = 64u << 10;  // 64 KiB
  /// Once a worker is holding at least this many bytes in credit-blocked
  /// send buffers, it pauses task execution (it keeps ingesting its inbox so
  /// it still returns credits to ITS producers — see DESIGN.md §11 on why
  /// that escape hatch is what makes stall cycles deadlock-free).
  uint64_t sender_stall_bytes = 32u << 10;  // 32 KiB (4x the flush threshold)

  uint32_t num_classes() const {
    return class_weights.empty() ? 1u
                                 : static_cast<uint32_t>(class_weights.size());
  }
  uint32_t weight_of(uint32_t cls) const {
    if (class_weights.empty()) return 1;
    if (cls >= class_weights.size()) cls = class_weights.size() - 1;
    return class_weights[cls] == 0 ? 1 : class_weights[cls];
  }
};

}  // namespace qos
}  // namespace graphdance

#endif  // GRAPHDANCE_QOS_QOS_H_
