#ifndef GRAPHDANCE_QOS_ADMISSION_H_
#define GRAPHDANCE_QOS_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "qos/qos.h"
#include "sim/event_queue.h"

namespace graphdance {
namespace qos {

/// Admission-ledger counters. Conservation at any instant:
///   submitted == admitted + shed() + cancelled + queued
/// (the resource-ledger checker cross-checks this against an independent
/// event mirror at quiescence).
struct AdmissionStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed_queue_full = 0;  // arrival found the backlog at max_queued
  uint64_t shed_deadline = 0;    // backlog wait exceeded the deadline at pop
  uint64_t cancelled = 0;        // removed from the queue externally
  uint64_t completed = 0;        // admitted queries that finished
  uint64_t peak_queued = 0;

  uint64_t shed() const { return shed_queue_full + shed_deadline; }
};

/// Weighted-fair admission controller (DESIGN.md §11). Pure bookkeeping —
/// it never touches the cluster, so property tests drive it directly.
///
/// Arrivals admit immediately while a concurrency slot is free and nobody
/// is queued, park in a per-class FIFO otherwise, and shed once the backlog
/// reaches `max_queued_queries`. Each completion pops the backlog with
/// stride scheduling: the non-empty class with the lowest pass value wins
/// (ties break to the lowest class id, so the schedule is deterministic),
/// and its pass advances by K / weight — over a saturated run class c is
/// admitted in proportion to class_weights[c]. A popped query whose backlog
/// wait already exceeds its deadline is shed, never admitted.
class AdmissionController {
 public:
  enum class Decision : uint8_t { kAdmit, kQueue, kShed };

  explicit AdmissionController(const QosConfig& cfg);

  /// A query arrives at `now` (deadline_ns 0 = none). kAdmit means it holds
  /// a running slot on return.
  Decision OnSubmit(uint64_t id, uint32_t client_class, SimTime now,
                    SimTime deadline_ns);

  /// An admitted query finished; frees its slot and pops the backlog.
  /// Fair picks whose deadline still holds land in `admit` (slots permitting,
  /// at most one per completion); deadline-expired pops land in `shed`.
  void OnComplete(SimTime now, std::vector<uint64_t>* admit,
                  std::vector<uint64_t>* shed);

  /// Removes a still-queued query (e.g. its deadline timer fired while it
  /// waited). Returns false when `id` is not queued.
  bool Cancel(uint64_t id);

  /// Serial-driver support (BSP runs its backlog in submission order): admit
  /// one specific queued query out of band at `now`. Returns false — and
  /// sheds the query — when its backlog wait already exceeds its deadline.
  bool ForceAdmit(uint64_t id, SimTime now);
  /// Serial-driver support: a ForceAdmit'ed query finished; frees its slot
  /// without popping the fair queue.
  void OnCompleteNoDequeue();

  uint64_t queued() const { return queued_; }
  uint64_t running() const { return running_; }
  const AdmissionStats& stats() const { return stats_; }

 private:
  struct Pending {
    uint64_t id = 0;
    SimTime submit = 0;
    SimTime deadline_ns = 0;
  };

  /// Non-empty class with the minimum pass value (tie: lowest class id);
  /// kNoClass when the whole backlog is empty.
  uint32_t PickClass() const;
  void Admit(uint32_t cls);
  bool DeadlineExpired(const Pending& p, SimTime now) const {
    return p.deadline_ns > 0 && now - p.submit > p.deadline_ns;
  }

  static constexpr uint32_t kNoClass = UINT32_MAX;
  static constexpr uint64_t kStrideScale = 1u << 20;

  QosConfig cfg_;
  std::vector<std::deque<Pending>> queues_;  // one FIFO per client class
  std::vector<uint64_t> pass_;               // stride-scheduler state
  std::vector<uint64_t> stride_;             // kStrideScale / weight
  uint64_t queued_ = 0;
  uint64_t running_ = 0;
  AdmissionStats stats_;
};

}  // namespace qos
}  // namespace graphdance

#endif  // GRAPHDANCE_QOS_ADMISSION_H_
