#ifndef GRAPHDANCE_RT_THREAD_CLUSTER_H_
#define GRAPHDANCE_RT_THREAD_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/flat_map.h"
#include "common/mpsc_queue.h"
#include "common/pool.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "pstm/memo.h"
#include "pstm/plan.h"
#include "pstm/traverser.h"
#include "pstm/weight.h"
#include "runtime/query.h"

namespace graphdance {
namespace rt {

/// Configuration of a real-thread PSTM cluster. Deliberately a small subset
/// of ClusterConfig: the knobs that exist here mean exactly what they mean
/// in the simulator; everything virtual-time (cost model, fault injection,
/// QoS) has no real-thread counterpart yet.
struct ThreadClusterConfig {
  /// Worker threads to spawn. Partition p is owned by thread p % num_threads
  /// (shared-nothing: only the owner ever touches the partition's store,
  /// memo table, or TEL).
  uint32_t num_threads = 1;
  /// Per-destination send-buffer flush threshold (paper's tier-1 combining).
  size_t flush_threshold_bytes = 8192;
  /// Tasks executed per scheduling quantum before re-draining the inbox.
  uint32_t quantum_tasks = 128;
  /// Send-side + queue-side traverser bulking (multiplicity merging).
  bool traverser_bulking = true;
  /// Shortest-trajectory-first task ordering (hop-bucketed queues).
  bool shortest_first_scheduling = true;
  /// Coalesce finished weights per (query, scope) before reporting.
  bool weight_coalescing = true;
  /// Seed for all per-thread RNGs (weight splitting).
  uint64_t seed = 1;
  /// How long an idle worker parks in WaitDrainInto before re-checking for
  /// work and the stop flag.
  uint32_t idle_wait_us = 200;
};

/// A real multi-threaded PSTM runtime: the same plans, steps, traversers,
/// memo tables and weight-based termination detection as SimCluster, but
/// executed by N OS threads on actual cores instead of a discrete-event
/// simulation (DESIGN.md §14).
///
/// Shared-nothing architecture: each thread owns the partitions p with
/// p % num_threads == thread id, plus those partitions' memo tables and
/// scratch pools. Threads communicate exclusively through per-thread MPSC
/// inboxes carrying the same Message structs as the simulated transport,
/// with the same zero-copy traverser serde and send-side bulking.
///
/// Usage (single-shot):
///   ThreadCluster cluster(cfg, graph);
///   uint64_t q = cluster.Submit(plan);
///   cluster.RunToCompletion();     // spawns, executes, joins
///   const QueryResult& r = cluster.result(q);
///
/// All Submit() calls must precede RunToCompletion(); the cluster is not
/// reusable after the run (mirrors the BSP driver's submission model).
///
/// Interaction with distributed write transactions (DESIGN.md §16): the
/// cluster never mutates the graph, so transactional reads on real threads
/// follow a phased-ownership contract — the commit protocol's apply phase
/// (txn::DistTxnManager::CommitDirect / RecoverDirect) runs to quiescence
/// first, then a fresh ThreadCluster is constructed over the shared graph
/// and every query is submitted at a `read_ts` no later than the manager's
/// LCT. Versions stamped above the LCT are exactly the not-yet-fully-applied
/// (possibly torn) transactions, and the multi-version stores make them
/// invisible at that snapshot, so worker threads racing each other can never
/// observe a partial write set; the txn serializability oracle's "threads"
/// cells (check/txn_oracle.cc) drive precisely this sequence.
class ThreadCluster {
 public:
  ThreadCluster(ThreadClusterConfig config,
                std::shared_ptr<PartitionedGraph> graph);
  ~ThreadCluster();
  ThreadCluster(const ThreadCluster&) = delete;
  ThreadCluster& operator=(const ThreadCluster&) = delete;

  /// Registers a query for the next RunToCompletion(). `read_ts` is the
  /// snapshot timestamp (defaults to "read everything").
  uint64_t Submit(std::shared_ptr<const Plan> plan,
                  Timestamp read_ts = kMaxTimestamp - 1);

  /// Spawns the worker threads, runs every submitted query to completion,
  /// and joins. Fails with kInternal if the run exceeds `timeout_ms` of wall
  /// time without every query completing (termination detection lost weight
  /// — should never happen).
  Status RunToCompletion(uint64_t timeout_ms = 120'000);

  /// Convenience: submit one query and run it to completion.
  Result<QueryResult> Run(std::shared_ptr<const Plan> plan,
                          Timestamp read_ts = kMaxTimestamp - 1);

  const QueryResult& result(uint64_t query_id) const;

  /// Folded per-thread counters in the same shape the simulator reports
  /// (num_nodes = 1; one "worker" per thread). Query latencies are wall-time
  /// nanoseconds since the run started, not virtual time.
  obs::MetricsSnapshot MetricsSnapshot() const;

  uint64_t TotalTasksExecuted() const;

  uint32_t OwnerOf(PartitionId p) const { return p % config_.num_threads; }
  const ThreadClusterConfig& config() const { return config_; }
  const PartitionedGraph& graph() const { return *graph_; }

 private:
  friend class RtExecContext;

  struct Task {
    uint64_t query = 0;
    PartitionId partition = 0;
    Traverser trav;
    // Site hash carried from the send side (0 = not a bulking candidate).
    uint64_t site = 0;
  };

  /// Per-destination-thread send buffer (the simulator's tier-1 TLC buffer,
  /// minus virtual-time accounting). Flushed as one PushBatch so the
  /// receiver sees the buffered order exactly — the FIFO-per-producer
  /// guarantee of MpscQueue is what keeps result rows ahead of the weight
  /// report that accounts for them.
  struct SendBuf {
    std::vector<Message> msgs;
    size_t bytes = 0;
    // Traverser-bulking merge index: site hash -> index into msgs. A hash
    // hit is confirmed byte-for-byte before merging; cleared on flush.
    FlatMap<uint64_t, uint32_t> merge_index;
  };

  struct TaskBucket {
    std::deque<Task> q;
    uint64_t base = 0;  // absolute position of q.front()
    FlatMap<uint64_t, uint64_t> index;  // site -> absolute queued position
  };

  /// One worker thread's whole world. Everything in here is touched only by
  /// the owning thread between spawn and join; cross-thread traffic enters
  /// through `inbox` only. Padded to a cache line so neighbouring workers'
  /// hot counters never false-share.
  struct alignas(64) WorkerThread {
    uint32_t id = 0;
    MpscQueue<Message> inbox;
    std::vector<Message> inbox_scratch;
    std::vector<TaskBucket> tasks;
    uint32_t first_bucket = 0;
    size_t num_tasks = 0;
    std::vector<SendBuf> out;  // one per peer thread
    // Coalesced finished weights: WeightKey(query, scope) -> weight.
    std::unordered_map<uint64_t, Weight> pending_weights;
    Rng rng{0};
    StepScratch scratch;
    // Per-thread free lists (the pools are single-threaded by contract).
    BufferPool payload_pool;
    ObjectPool<Traverser> trav_pool;
    // --- per-thread metrics, folded into one snapshot after join ---
    obs::WorkerMetrics metrics;
    uint64_t tasks_executed = 0;
    uint64_t messages_by_kind[static_cast<int>(MessageKind::kNumKinds)] = {0};
    uint64_t local_pushes = 0;    // same-thread traverser handoffs
    uint64_t remote_sends = 0;    // messages shipped through a peer inbox
    std::vector<uint64_t> pair_messages;  // per destination thread
    std::thread thread;
  };

  struct QueryState {
    uint64_t id = 0;
    std::shared_ptr<const Plan> plan;
    uint32_t coordinator = 0;            // owning thread of the coordinator
    PartitionId coordinator_partition = 0;
    Timestamp read_ts = 0;
    // --- coordinator-thread-only state below ---
    uint32_t scope = 0;
    Weight acc = 0;
    bool collecting = false;
    CollectMergeState collect;
    uint32_t replies_expected = 0;
    QueryResult result;
    /// Published completion flag. Remote threads read it (relaxed) to skip
    /// tasks of limit-cancelled queries early; correctness never depends on
    /// timely visibility — the coordinator alone mutates `result`.
    std::atomic<bool> done{false};
  };

  // --- worker thread body ---
  void ThreadMain(WorkerThread& w);
  /// Drains + handles every currently queued inbox message. Returns the
  /// number handled.
  size_t DrainInbox(WorkerThread& w, bool wait);
  void HandleMessage(WorkerThread& w, Message&& msg);
  void ExecuteTask(WorkerThread& w, Task&& task);
  void RunFinalize(WorkerThread& w, const Message& msg);
  void PushTask(WorkerThread& w, Task&& task);
  bool HasTask(const WorkerThread& w) const { return w.num_tasks > 0; }
  Task PopTask(WorkerThread& w);

  // --- query lifecycle (coordinator-thread-only) ---
  void StartQuery(WorkerThread& w, QueryState& qs);
  void HandleWeight(WorkerThread& w, QueryState& qs, uint32_t scope, Weight wt);
  void ScopeComplete(WorkerThread& w, QueryState& qs);
  void HandleCollectReply(WorkerThread& w, QueryState& qs, const Message& msg);
  void MaybeCancelOnLimit(WorkerThread& w, QueryState& qs);
  void CompleteQuery(WorkerThread& w, QueryState& qs);

  // --- transport ---
  void EmitTraverser(WorkerThread& w, QueryState& qs, PartitionId current,
                     Traverser&& t);
  void SendTraverser(WorkerThread& w, uint64_t query, PartitionId partition,
                     Traverser&& t);
  /// Buffers one message toward its destination thread (send-side bulking,
  /// threshold flush). Never bypasses the buffer: per-destination ordering
  /// is the rows-before-weights correctness invariant.
  void Send(WorkerThread& w, Message&& msg);
  void FlushBuffer(WorkerThread& w, uint32_t dst);
  void FlushWeights(WorkerThread& w);
  void FlushAll(WorkerThread& w);

  uint64_t NowNanos() const;

  ThreadClusterConfig config_;
  std::shared_ptr<PartitionedGraph> graph_;
  std::vector<MemoTable> memos_;  // one per partition, owner-thread-only
  std::vector<std::unique_ptr<WorkerThread>> workers_;
  // Built entirely by Submit() before the threads spawn; structurally
  // immutable during the run (threads mutate only their own entries' fields).
  std::unordered_map<uint64_t, QueryState> queries_;
  std::vector<std::vector<uint64_t>> coordinated_;  // per thread, submit order
  uint64_t next_query_id_ = 1;
  bool ran_ = false;

  // Atomic coordinator ledger: outstanding queries. Decremented by the
  // coordinator thread that completes each query; the main thread waits on
  // the condition variable until it reaches zero, then raises stop_.
  std::atomic<uint64_t> pending_queries_{0};
  std::atomic<bool> stop_{false};
  // Exit-drain barrier: threads that have flushed their send buffers after
  // observing stop_. A thread exits only when every thread has flushed and
  // its own inbox is empty, so no message is abandoned in a send buffer or
  // an inbox (memo-clear controls included).
  std::atomic<uint32_t> drained_threads_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::chrono::steady_clock::time_point run_start_;
};

}  // namespace rt
}  // namespace graphdance

#endif  // GRAPHDANCE_RT_THREAD_CLUSTER_H_
