#include "rt/thread_cluster.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/hash.h"
#include "common/logging.h"
#include "common/serde.h"
#include "pstm/steps.h"
#include "pstm/weight.h"

namespace graphdance {
namespace rt {

// ---------------------------------------------------------------------------
// RtExecContext
// ---------------------------------------------------------------------------

/// StepContext bound to (thread, partition, query) for one task or finalize.
/// The real-thread sibling of the simulator's ExecContext: identical routing,
/// weight and row semantics, no virtual-time accounting (wall time is real
/// here). Everything it touches is thread-local except the coordinator-only
/// inline handoffs, which only happen when this thread IS the coordinator.
class RtExecContext final : public StepContext {
 public:
  enum class Mode {
    kAsync,     // live asynchronous execution
    kFinalize,  // OnFinalize: emissions buffered for weight assignment
  };

  RtExecContext(ThreadCluster* cluster, ThreadCluster::WorkerThread* worker,
                ThreadCluster::QueryState* qs, PartitionId partition, Mode mode)
      : cluster_(cluster),
        worker_(worker),
        qs_(qs),
        partition_(partition),
        mode_(mode) {
    set_scratch(&worker_->scratch);
  }

  const PartitionStore& store() const override {
    return cluster_->graph_->partition(partition_);
  }
  MemoTable& memo() override { return cluster_->memos_[partition_]; }
  const Partitioner& partitioner() const override {
    return cluster_->graph_->partitioner();
  }
  const Schema& schema() const override { return cluster_->graph_->schema(); }
  uint64_t query_id() const override { return qs_->id; }
  Timestamp read_ts() const override { return qs_->read_ts; }
  Rng& rng() override { return worker_->rng; }

  // Wall time is real: there is no cost model to charge.
  void Charge(CostKind kind, uint64_t count) override {
    (void)kind;
    (void)count;
  }
  using StepContext::Charge;

  void CountTraverser(StepKind kind) override {
    worker_->metrics.steps_in[static_cast<uint32_t>(kind)]++;
  }

  void Emit(Traverser t) override {
    if (mode_ == Mode::kAsync) {
      cluster_->EmitTraverser(*worker_, *qs_, partition_, std::move(t));
    } else {
      emitted_.push_back(std::move(t));
    }
  }

  void Finish(uint32_t scope, Weight w) override {
    worker_->metrics.weight_finishes++;
    if (cluster_->config_.weight_coalescing) {
      worker_->pending_weights[WeightKey(qs_->id, scope)] += w;
      return;
    }
    worker_->metrics.weight_reports++;
    if (qs_->coordinator == worker_->id) {
      cluster_->HandleWeight(*worker_, *qs_, scope, w);
      return;
    }
    Message m;
    m.kind = MessageKind::kWeightReport;
    m.src_worker = worker_->id;
    m.dst_worker = qs_->coordinator;
    m.query_id = qs_->id;
    m.scope_id = scope;
    m.weight = w;
    cluster_->Send(*worker_, std::move(m));
  }

  void EmitRow(Row row, uint32_t count) override {
    if (count == 0) return;
    if (qs_->coordinator == worker_->id) {
      // Coordinator-local rows never cross an inbox; the coordinator thread
      // is the only mutator of its queries' results.
      for (uint32_t i = 1; i < count; ++i) qs_->result.rows.push_back(row);
      qs_->result.rows.push_back(std::move(row));
      cluster_->MaybeCancelOnLimit(*worker_, *qs_);
      return;
    }
    ByteWriter out(worker_->payload_pool.Acquire(), 64);
    SerializeRow(row, &out);
    Message m;
    m.kind = MessageKind::kResultRow;
    m.src_worker = worker_->id;
    m.dst_worker = qs_->coordinator;
    m.query_id = qs_->id;
    // tag carries the bulk multiplicity; the coordinator expands it.
    m.tag = count;
    m.payload = out.Take();
    cluster_->Send(*worker_, std::move(m));
  }

  void SendCollect(uint32_t step_id, std::vector<uint8_t> payload) override {
    Message m;
    m.kind = MessageKind::kCollectReply;
    m.src_worker = worker_->id;
    m.dst_worker = qs_->coordinator;
    m.query_id = qs_->id;
    m.tag = step_id;
    m.payload = std::move(payload);
    if (qs_->coordinator == worker_->id) {
      cluster_->HandleCollectReply(*worker_, *qs_, m);
      worker_->payload_pool.Release(std::move(m.payload));
    } else {
      cluster_->Send(*worker_, std::move(m));
    }
  }

  std::vector<Traverser>& emitted() { return emitted_; }

 private:
  ThreadCluster* cluster_;
  ThreadCluster::WorkerThread* worker_;
  ThreadCluster::QueryState* qs_;
  PartitionId partition_;
  Mode mode_;
  std::vector<Traverser> emitted_;
};

// ---------------------------------------------------------------------------
// ThreadCluster
// ---------------------------------------------------------------------------

ThreadCluster::ThreadCluster(ThreadClusterConfig config,
                             std::shared_ptr<PartitionedGraph> graph)
    : config_(config), graph_(std::move(graph)) {
  if (config_.num_threads == 0) config_.num_threads = 1;
  memos_.resize(graph_->num_partitions());
  coordinated_.resize(config_.num_threads);
  workers_.reserve(config_.num_threads);
  for (uint32_t i = 0; i < config_.num_threads; ++i) {
    auto w = std::make_unique<WorkerThread>();
    w->id = i;
    w->rng = Rng(config_.seed * 0x9e3779b97f4a7c15ULL + i + 1);
    w->out.resize(config_.num_threads);
    w->pair_messages.assign(config_.num_threads, 0);
    workers_.push_back(std::move(w));
  }
}

ThreadCluster::~ThreadCluster() {
  // Defensive: if RunToCompletion was never reached (or threw before join),
  // make sure no thread outlives the cluster.
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    w->inbox.Close();
    if (w->thread.joinable()) w->thread.join();
  }
}

uint64_t ThreadCluster::Submit(std::shared_ptr<const Plan> plan,
                               Timestamp read_ts) {
  if (plan == nullptr || !plan->finalized()) {
    GD_ERROR("Submit requires a finalized plan");
    std::abort();
  }
  if (ran_) {
    GD_ERROR("ThreadCluster is single-shot: Submit before RunToCompletion");
    std::abort();
  }
  uint64_t id = next_query_id_++;
  QueryState& qs = queries_[id];
  qs.id = id;
  qs.plan = std::move(plan);
  // Same coordinator assignment as the simulator (worker id == partition id
  // there), so default root placement — and therefore row content — matches.
  qs.coordinator_partition =
      static_cast<PartitionId>(id % graph_->num_partitions());
  qs.coordinator = OwnerOf(qs.coordinator_partition);
  qs.read_ts = read_ts;
  qs.result.query_id = id;
  coordinated_[qs.coordinator].push_back(id);
  pending_queries_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Status ThreadCluster::RunToCompletion(uint64_t timeout_ms) {
  if (ran_) return Status::Internal("ThreadCluster is single-shot");
  ran_ = true;
  run_start_ = std::chrono::steady_clock::now();
  for (auto& w : workers_) {
    WorkerThread* wt = w.get();
    wt->thread = std::thread([this, wt] { ThreadMain(*wt); });
  }
  bool completed;
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    completed = done_cv_.wait_for(
        lock, std::chrono::milliseconds(timeout_ms), [this] {
          return pending_queries_.load(std::memory_order_acquire) == 0;
        });
  }
  stop_.store(true, std::memory_order_release);
  // Close wakes any worker parked in WaitDrainInto immediately; late sends
  // still enqueue (Close only affects waiting).
  for (auto& w : workers_) w->inbox.Close();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  if (!completed) {
    return Status::Internal("ThreadCluster run timed out: " +
                            std::to_string(pending_queries_.load()) +
                            " queries still pending (lost weight?)");
  }
  return Status::OK();
}

Result<QueryResult> ThreadCluster::Run(std::shared_ptr<const Plan> plan,
                                       Timestamp read_ts) {
  uint64_t id = Submit(std::move(plan), read_ts);
  Status st = RunToCompletion();
  if (!st.ok()) return st;
  return queries_.at(id).result;
}

const QueryResult& ThreadCluster::result(uint64_t query_id) const {
  return queries_.at(query_id).result;
}

uint64_t ThreadCluster::TotalTasksExecuted() const {
  uint64_t n = 0;
  for (const auto& w : workers_) n += w->tasks_executed;
  return n;
}

obs::MetricsSnapshot ThreadCluster::MetricsSnapshot() const {
  obs::MetricsRegistry reg;
  reg.Init(config_.num_threads, /*num_nodes=*/1);
  for (const auto& w : workers_) {
    reg.worker(w->id) = w->metrics;
    for (int k = 0; k < static_cast<int>(MessageKind::kNumKinds); ++k) {
      reg.net().messages_by_kind[k] += w->messages_by_kind[k];
    }
    // Every cross-thread message is a shared-memory delivery in this runtime.
    reg.net().local_messages += w->remote_sends;
    for (uint32_t dst = 0; dst < config_.num_threads; ++dst) {
      for (uint64_t i = 0; i < w->pair_messages[dst]; ++i) {
        reg.OnPairMessage(w->id, dst);
      }
    }
  }
  for (const auto& [id, qs] : queries_) {
    reg.OnQuerySubmitted();
    if (qs.result.done) {
      reg.OnQueryDone(qs.result.LatencyNanos(), qs.result.failed,
                      qs.result.timed_out);
    }
  }
  obs::MetricsSnapshot s = reg.Snapshot();
  for (const MemoTable& m : memos_) {
    const MemoTable::Stats& ms = m.stats();
    s.memo_hits += ms.hits;
    s.memo_misses += ms.misses;
    s.memo_created += ms.created;
    s.memo_cleared += ms.cleared;
  }
  s.tasks_executed = TotalTasksExecuted();
  return s;
}

uint64_t ThreadCluster::NowNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - run_start_)
          .count());
}

// ---------------------------------------------------------------------------
// Worker thread body
// ---------------------------------------------------------------------------

void ThreadCluster::ThreadMain(WorkerThread& w) {
  // Shared-nothing enforcement (debug builds): this thread owns its
  // partitions' TELs for the whole run.
  for (PartitionId p = w.id; p < graph_->num_partitions();
       p += config_.num_threads) {
    graph_->partition(p).ClaimOwnerThread();
  }
  for (uint64_t qid : coordinated_[w.id]) StartQuery(w, queries_.at(qid));

  bool flushed_for_exit = false;
  for (;;) {
    DrainInbox(w, /*wait=*/false);
    uint32_t executed = 0;
    while (HasTask(w) && executed < config_.quantum_tasks) {
      ExecuteTask(w, PopTask(w));
      ++executed;
    }
    if (HasTask(w)) continue;  // quantum expired: re-drain, keep going
    FlushAll(w);
    if (!w.inbox.Empty()) continue;
    if (stop_.load(std::memory_order_acquire)) {
      // Exit drain: flush once, then keep consuming until every thread has
      // flushed and this inbox is empty. After all queries completed no
      // handler generates new messages, so this converges.
      if (!flushed_for_exit) {
        flushed_for_exit = true;
        drained_threads_.fetch_add(1, std::memory_order_acq_rel);
      }
      if (drained_threads_.load(std::memory_order_acquire) ==
              config_.num_threads &&
          w.inbox.Empty()) {
        break;
      }
      DrainInbox(w, /*wait=*/true);
      continue;
    }
    DrainInbox(w, /*wait=*/true);
  }

  for (PartitionId p = w.id; p < graph_->num_partitions();
       p += config_.num_threads) {
    graph_->partition(p).ReleaseOwnerThread();
  }
}

size_t ThreadCluster::DrainInbox(WorkerThread& w, bool wait) {
  std::vector<Message> batch = std::move(w.inbox_scratch);
  batch.clear();
  size_t n =
      wait ? w.inbox.WaitDrainInto(&batch,
                                   std::chrono::microseconds(config_.idle_wait_us))
           : w.inbox.DrainInto(&batch);
  for (Message& m : batch) HandleMessage(w, std::move(m));
  batch.clear();
  w.inbox_scratch = std::move(batch);
  return n;
}

void ThreadCluster::HandleMessage(WorkerThread& w, Message&& msg) {
  auto qit = queries_.find(msg.query_id);
  if (qit == queries_.end()) return;
  QueryState& qs = qit->second;
  switch (msg.kind) {
    case MessageKind::kTraverserBatch: {
      ByteReader reader(msg.payload.data(), msg.payload.size());
      Traverser t = w.trav_pool.Acquire();
      Traverser::DeserializeInto(&reader, &t);
      Task task{msg.query_id, static_cast<PartitionId>(msg.tag), std::move(t),
                msg.trav_site};
      PushTask(w, std::move(task));
      break;
    }
    case MessageKind::kWeightReport:
      HandleWeight(w, qs, msg.scope_id, msg.weight);
      break;
    case MessageKind::kFinalize:
      RunFinalize(w, msg);
      break;
    case MessageKind::kCollectReply:
      HandleCollectReply(w, qs, msg);
      break;
    case MessageKind::kResultRow: {
      if (qs.result.done) break;  // a completed result is frozen
      ByteReader reader(msg.payload.data(), msg.payload.size());
      uint32_t nrows = msg.tag == 0 ? 1 : static_cast<uint32_t>(msg.tag);
      Row row = DeserializeRow(&reader);
      for (uint32_t i = 1; i < nrows; ++i) qs.result.rows.push_back(row);
      qs.result.rows.push_back(std::move(row));
      MaybeCancelOnLimit(w, qs);
      break;
    }
    case MessageKind::kControl:
      // Query-end memo fence: clear this thread's partitions.
      for (PartitionId p = w.id; p < graph_->num_partitions();
           p += config_.num_threads) {
        memos_[p].ClearQuery(msg.query_id);
      }
      break;
    default:
      break;
  }
  w.payload_pool.Release(std::move(msg.payload));
}

void ThreadCluster::ExecuteTask(WorkerThread& w, Task&& task) {
  auto qit = queries_.find(task.query);
  if (qit == queries_.end()) return;
  QueryState& qs = qit->second;
  // Advisory early-drop of limit-cancelled queries. Relaxed is enough: a
  // stale false just executes a task whose rows the frozen result ignores.
  if (qs.done.load(std::memory_order_relaxed)) {
    w.trav_pool.Release(std::move(task.trav));
    return;
  }
  RtExecContext ctx(this, &w, &qs, task.partition, RtExecContext::Mode::kAsync);
  qs.plan->step(task.trav.step).Execute(std::move(task.trav), ctx);
  ++w.tasks_executed;
}

void ThreadCluster::RunFinalize(WorkerThread& w, const Message& msg) {
  auto qit = queries_.find(msg.query_id);
  if (qit == queries_.end() || qit->second.result.done) return;
  QueryState& qs = qit->second;
  // tag packs (partition << 32) | closer-step so one worker thread can own
  // several partitions and finalize each separately.
  PartitionId partition = static_cast<PartitionId>(msg.tag >> 32);
  const Step& st = qs.plan->step(static_cast<uint16_t>(msg.tag & 0xffff));

  RtExecContext ctx(this, &w, &qs, partition, RtExecContext::Mode::kFinalize);
  st.OnFinalize(ctx);

  if (!st.NeedsCollect()) {
    // Continuation protocol: this partition's share of the next scope's unit
    // weight is distributed over the emissions; no emissions finishes it.
    uint32_t new_scope = st.scope() + 1;
    std::vector<Traverser>& emitted = ctx.emitted();
    if (emitted.empty()) {
      RtExecContext report_ctx(this, &w, &qs, partition,
                               RtExecContext::Mode::kAsync);
      report_ctx.Finish(new_scope, msg.weight);
    } else {
      std::vector<Weight> shares =
          SplitWeight(msg.weight, emitted.size(), &w.rng);
      for (size_t i = 0; i < emitted.size(); ++i) {
        Traverser t = std::move(emitted[i]);
        t.weight = shares[i];
        EmitTraverser(w, qs, partition, std::move(t));
      }
    }
  }
  FlushAll(w);
}

void ThreadCluster::PushTask(WorkerThread& w, Task&& task) {
  uint32_t bucket = config_.shortest_first_scheduling ? task.trav.hop : 0;
  if (bucket >= w.tasks.size()) w.tasks.resize(bucket + 1);
  TaskBucket& b = w.tasks[bucket];
  if (config_.traverser_bulking && task.site != 0) {
    // Receive-side bulking, identical to the simulator: O(1) site-hash probe,
    // confirmed field-by-field, absorbed task keeps the target's position.
    uint64_t h = HashCombine(
        task.site,
        Mix64(task.query ^ (static_cast<uint64_t>(task.partition) << 1)));
    uint64_t newpos = b.base + b.q.size();
    auto [pos, inserted] = b.index.TryEmplace(h, newpos);
    if (!inserted) {
      if (*pos >= b.base && *pos < b.base + b.q.size()) {
        Task& dst = b.q[*pos - b.base];
        if (dst.query == task.query && dst.partition == task.partition &&
            dst.trav.SameSite(task.trav) && dst.trav.MergeFrom(task.trav)) {
          w.metrics.bulk_merges++;
          w.metrics.traversers_bulked += task.trav.bulk;
          w.trav_pool.Release(std::move(task.trav));
          return;  // absorbed: nothing enqueued
        }
      }
      *pos = newpos;  // dispatched or unmergeable: track the newcomer
    }
  }
  b.q.push_back(std::move(task));
  if (bucket < w.first_bucket) w.first_bucket = bucket;
  ++w.num_tasks;
}

ThreadCluster::Task ThreadCluster::PopTask(WorkerThread& w) {
  while (w.tasks[w.first_bucket].q.empty()) ++w.first_bucket;
  TaskBucket& b = w.tasks[w.first_bucket];
  Task task = std::move(b.q.front());
  b.q.pop_front();
  ++b.base;
  if (b.q.empty() && !b.index.empty()) b.index.Clear();
  --w.num_tasks;
  return task;
}

// ---------------------------------------------------------------------------
// Query lifecycle (runs on the query's coordinator thread only)
// ---------------------------------------------------------------------------

void ThreadCluster::StartQuery(WorkerThread& w, QueryState& qs) {
  const Plan& plan = *qs.plan;
  struct RootSpec {
    uint16_t step;
    PartitionId partition;
    VertexId vertex;
  };
  std::vector<RootSpec> roots;
  for (uint16_t r : plan.roots()) {
    const Step& step = plan.step(r);
    std::vector<VertexId> ids = step.RootVertices();
    if (!ids.empty()) {
      for (VertexId v : ids) {
        roots.push_back(RootSpec{r, graph_->PartitionOf(v), v});
      }
    } else if (step.BroadcastRoot()) {
      for (PartitionId p = 0; p < graph_->num_partitions(); ++p) {
        roots.push_back(RootSpec{r, p, kInvalidVertex});
      }
    } else {
      roots.push_back(RootSpec{r, qs.coordinator_partition, kInvalidVertex});
    }
  }
  if (roots.empty()) {
    CompleteQuery(w, qs);
    return;
  }
  std::vector<Weight> shares = SplitWeight(kUnitWeight, roots.size(), &w.rng);
  for (size_t i = 0; i < roots.size(); ++i) {
    Traverser t;
    t.vertex = roots[i].vertex;
    t.step = roots[i].step;
    t.scope = plan.step(roots[i].step).scope();
    t.weight = shares[i];
    SendTraverser(w, qs.id, roots[i].partition, std::move(t));
  }
  FlushAll(w);
}

void ThreadCluster::HandleWeight(WorkerThread& w, QueryState& qs,
                                 uint32_t scope, Weight wt) {
  if (qs.result.done) return;
  if (scope != qs.scope) {
    GD_WARN("weight report for unexpected scope");
    return;
  }
  qs.acc += wt;
  if (qs.acc == kUnitWeight) ScopeComplete(w, qs);
}

void ThreadCluster::ScopeComplete(WorkerThread& w, QueryState& qs) {
  const Plan& plan = *qs.plan;
  uint16_t closer = plan.scope_closer(qs.scope);
  if (closer == kNoStep) {
    CompleteQuery(w, qs);
    return;
  }
  const Step& st = plan.step(closer);
  qs.scope += 1;
  qs.acc = 0;

  const uint32_t num_partitions = graph_->num_partitions();
  std::vector<Weight> shares;
  if (st.NeedsCollect()) {
    qs.collecting = true;
    qs.collect = CollectMergeState{};
    qs.replies_expected = num_partitions;
  } else {
    // The next scope's unit weight is split per PARTITION (the simulator's
    // per-worker split is the same thing there: one partition per worker).
    shares = SplitWeight(kUnitWeight, num_partitions, &w.rng);
  }
  for (PartitionId p = 0; p < num_partitions; ++p) {
    Message m;
    m.kind = MessageKind::kFinalize;
    m.src_worker = w.id;
    m.dst_worker = OwnerOf(p);
    m.query_id = qs.id;
    m.scope_id = qs.scope;
    m.tag = (static_cast<uint64_t>(p) << 32) | closer;
    m.weight = st.NeedsCollect() ? 0 : shares[p];
    if (m.dst_worker == w.id) {
      RunFinalize(w, m);
    } else {
      Send(w, std::move(m));
    }
  }
  FlushAll(w);
}

void ThreadCluster::HandleCollectReply(WorkerThread& w, QueryState& qs,
                                       const Message& msg) {
  if (qs.result.done || !qs.collecting) return;
  const Step& st = qs.plan->step(static_cast<uint16_t>(msg.tag));
  ByteReader reader(msg.payload.data(), msg.payload.size());
  st.OnCollect(&reader, &qs.collect);
  if (++qs.collect.replies < qs.replies_expected) return;

  qs.collecting = false;
  std::vector<Traverser> continuations;
  st.OnCollectComplete(qs.collect, &qs.result.rows, &continuations);
  if (continuations.empty()) {
    CompleteQuery(w, qs);
    return;
  }
  std::vector<Weight> shares =
      SplitWeight(kUnitWeight, continuations.size(), &w.rng);
  for (size_t i = 0; i < continuations.size(); ++i) {
    Traverser t = std::move(continuations[i]);
    t.weight = shares[i];
    EmitTraverser(w, qs, qs.coordinator_partition, std::move(t));
  }
  FlushAll(w);
}

void ThreadCluster::MaybeCancelOnLimit(WorkerThread& w, QueryState& qs) {
  size_t limit = qs.plan->result_limit();
  if (limit == 0 || qs.result.done || qs.result.rows.size() < limit) return;
  qs.result.rows.resize(limit);
  CompleteQuery(w, qs);
}

void ThreadCluster::CompleteQuery(WorkerThread& w, QueryState& qs) {
  if (qs.result.done) return;
  qs.result.done = true;
  qs.result.complete_time = NowNanos();
  qs.done.store(true, std::memory_order_release);
  // Memoranda lifetime: this thread clears its own partitions directly; the
  // kControl fence below triggers every peer's clear (shared-nothing — no
  // thread touches another thread's memo tables).
  for (PartitionId p = w.id; p < graph_->num_partitions();
       p += config_.num_threads) {
    memos_[p].ClearQuery(qs.id);
  }
  for (uint32_t peer = 0; peer < config_.num_threads; ++peer) {
    if (peer == w.id) continue;
    Message m;
    m.kind = MessageKind::kControl;
    m.src_worker = w.id;
    m.dst_worker = peer;
    m.query_id = qs.id;
    Send(w, std::move(m));
  }
  // Push the fences out before announcing completion, so the main thread's
  // stop cannot observe pending==0 while controls sit in a send buffer.
  FlushAll(w);
  if (pending_queries_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    { std::lock_guard<std::mutex> lock(done_mu_); }
    done_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Routing / transport
// ---------------------------------------------------------------------------

void ThreadCluster::EmitTraverser(WorkerThread& w, QueryState& qs,
                                  PartitionId current, Traverser&& t) {
  const Step& target = qs.plan->step(t.step);
  t.scope = target.scope();
  PartitionId route = target.Route(t, graph_->partitioner());
  PartitionId p = route == kLocalRoute ? current : route;
  SendTraverser(w, qs.id, p, std::move(t));
}

void ThreadCluster::SendTraverser(WorkerThread& w, uint64_t query,
                                  PartitionId partition, Traverser&& t) {
  uint32_t dst = OwnerOf(partition);
  if (dst == w.id) {
    uint64_t site = config_.traverser_bulking ? t.SiteHash() : 0;
    Task task{query, partition, std::move(t), site};
    PushTask(w, std::move(task));
    w.local_pushes++;
    return;
  }
  ByteWriter out(w.payload_pool.Acquire(), t.WireSize() + 8);
  t.Serialize(&out);
  Message m;
  m.kind = MessageKind::kTraverserBatch;
  m.src_worker = w.id;
  m.dst_worker = dst;
  m.query_id = query;
  m.tag = partition;
  m.payload = out.Take();
  if (config_.traverser_bulking) m.trav_site = t.SiteHash();
  w.trav_pool.Release(std::move(t));
  Send(w, std::move(m));
}

void ThreadCluster::Send(WorkerThread& w, Message&& msg) {
  w.messages_by_kind[static_cast<int>(msg.kind)]++;
  w.pair_messages[msg.dst_worker]++;
  SendBuf& buf = w.out[msg.dst_worker];
  if (config_.traverser_bulking && msg.kind == MessageKind::kTraverserBatch &&
      msg.trav_site != 0) {
    // Send-side bulking: merge into a buffered same-site carrier. The hash
    // only gates a byte-exact payload comparison (Traverser::MergePayloads).
    uint32_t newidx = static_cast<uint32_t>(buf.msgs.size());
    auto [idx, inserted] = buf.merge_index.TryEmplace(msg.trav_site, newidx);
    if (!inserted) {
      Message& cand = buf.msgs[*idx];
      if (cand.query_id == msg.query_id && cand.dst_worker == msg.dst_worker &&
          cand.tag == msg.tag &&
          Traverser::MergePayloads(cand.payload, msg.payload)) {
        uint32_t absorbed_bulk;
        std::memcpy(&absorbed_bulk, msg.payload.data() + Traverser::kBulkOffset,
                    sizeof(absorbed_bulk));
        w.metrics.bulk_merges++;
        w.metrics.traversers_bulked += absorbed_bulk;
        // The absorbed message never reaches an inbox; retract its counters.
        w.messages_by_kind[static_cast<int>(msg.kind)]--;
        w.pair_messages[msg.dst_worker]--;
        w.payload_pool.Release(std::move(msg.payload));
        return;
      }
      *idx = newidx;
    }
  }
  buf.bytes += msg.WireSize();
  buf.msgs.push_back(std::move(msg));
  if (buf.bytes >= config_.flush_threshold_bytes) {
    uint32_t dst = buf.msgs.back().dst_worker;
    FlushBuffer(w, dst);
    FlushWeights(w);
  }
}

void ThreadCluster::FlushBuffer(WorkerThread& w, uint32_t dst) {
  SendBuf& buf = w.out[dst];
  if (buf.msgs.empty()) return;
  std::vector<Message> batch;
  batch.swap(buf.msgs);
  buf.bytes = 0;
  if (!buf.merge_index.empty()) buf.merge_index.Clear();
  w.remote_sends += batch.size();
  // One PushBatch per flush: the receiver sees the buffered order intact —
  // in particular, a query's result rows always precede the weight report
  // that accounts for them (the rows-before-weights invariant).
  workers_[dst]->inbox.PushBatch(batch.begin(), batch.end());
  batch.clear();
  buf.msgs = std::move(batch);  // keep the capacity for the next fill
}

void ThreadCluster::FlushWeights(WorkerThread& w) {
  if (w.pending_weights.empty()) return;
  auto pending = std::move(w.pending_weights);
  w.pending_weights.clear();
  for (const auto& [key, weight] : pending) {
    uint64_t query = WeightKeyQuery(key);
    uint32_t scope = WeightKeyScope(key);
    auto qit = queries_.find(query);
    if (qit == queries_.end()) continue;
    w.metrics.weight_reports++;
    QueryState& qs = qit->second;
    if (qs.coordinator == w.id) {
      HandleWeight(w, qs, scope, weight);
      continue;
    }
    Message m;
    m.kind = MessageKind::kWeightReport;
    m.src_worker = w.id;
    m.dst_worker = qs.coordinator;
    m.query_id = query;
    m.scope_id = scope;
    m.weight = weight;
    Send(w, std::move(m));
  }
}

void ThreadCluster::FlushAll(WorkerThread& w) {
  // Weights first (coalesced cells become messages behind any buffered rows),
  // then every buffer. Inline coordinator handling inside FlushWeights can
  // stage new weights/messages, so loop until everything is quiescent.
  for (;;) {
    FlushWeights(w);
    bool flushed_any = false;
    for (uint32_t dst = 0; dst < config_.num_threads; ++dst) {
      if (!w.out[dst].msgs.empty()) {
        FlushBuffer(w, dst);
        flushed_any = true;
      }
    }
    if (w.pending_weights.empty() && !flushed_any) return;
  }
}

}  // namespace rt
}  // namespace graphdance
