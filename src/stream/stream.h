#ifndef GRAPHDANCE_STREAM_STREAM_H_
#define GRAPHDANCE_STREAM_STREAM_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/value.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "obs/metrics.h"
#include "pstm/plan.h"
#include "runtime/sim_cluster.h"

namespace graphdance {
namespace stream {

/// One mutation of the streaming ingest pipeline (DESIGN.md §15). Edge ops
/// name both endpoints; the ingestor mirrors them into the two owning
/// partitions (an Out half-edge under `src`, an In half-edge under `dst`),
/// matching the TEL's half-edge contract.
enum class StreamOpKind : uint8_t {
  kAddVertex = 0,   // src = vertex id, label = vertex label
  kDeleteVertex,    // src = vertex id
  kAddEdge,         // src -> dst under `label`, optional `value` edge prop
  kDeleteEdge,      // first visible src -> dst under `label`
  kSetProp,         // src = vertex id, key/value = property version
};

struct StreamOp {
  StreamOpKind kind = StreamOpKind::kAddEdge;
  VertexId src = 0;
  VertexId dst = 0;
  LabelId label = 0;
  PropKeyId key = 0;
  Value value;
};

/// One atomic unit of ingest. Every op is written with `commit_ts` as its
/// version stamp, and the ingestor's last-commit timestamp (LCT) advances to
/// `commit_ts` only after ALL ops have been applied — so a reader whose
/// snapshot timestamp is taken from the LCT can never observe a torn batch:
/// either every op is visible (read_ts >= commit_ts, batch committed) or
/// none is (uncommitted versions carry stamps above every legal read_ts).
/// Batches must be enqueued in strictly increasing commit_ts order.
struct UpdateBatch {
  Timestamp commit_ts = 0;
  /// Earliest virtual time the batch may start applying (event-driven mode).
  SimTime not_before = 0;
  std::vector<StreamOp> ops;
};

/// A standing (continuous) query: re-evaluated at every batch commit,
/// STINGER-style, emitting the row *delta* against its previous evaluation.
struct StandingQuerySpec {
  std::shared_ptr<const Plan> plan;
  /// QoS fairness class of the re-evaluation queries (qos/qos.h
  /// class_weights) — the knob that arbitrates refresh traffic against
  /// interactive readers when admission control is on. Ignored when QoS is
  /// off.
  uint32_t client_class = 0;
};

/// One incremental emission: rows added and rows retracted at `ts`,
/// relative to the previous evaluation (multiset semantics, canonical
/// order). Folding all deltas in order reproduces the current rows exactly.
struct StandingDelta {
  Timestamp ts = 0;
  std::vector<Row> added;
  std::vector<Row> retracted;
};

struct StandingQueryState {
  StandingQuerySpec spec;
  /// Canonical rows as of the last completed evaluation.
  std::vector<Row> rows;
  std::vector<StandingDelta> deltas;
  Timestamp last_run_ts = 0;   // commit ts of the last completed evaluation
  bool in_flight = false;      // an evaluation is currently running
  /// Conflation: commits that land while an evaluation is in flight fold
  /// into one pending re-run at the newest timestamp instead of queueing.
  bool dirty = false;
  Timestamp dirty_ts = 0;
};

/// Streaming ingest pipeline: applies timestamped update batches to a live
/// cluster while queries run concurrently at snapshot timestamps, and keeps
/// standing queries fresh (DESIGN.md §15).
///
/// Two drive modes share all bookkeeping:
///
///  * Event-driven (async engine): Start() schedules each batch on the
///    cluster's event queue. Ops are grouped by owning partition and written
///    through SimCluster::ApplyAtPartition, charging the owner worker
///    virtual time per op — writers contend with readers for worker time
///    under the same deterministic schedule. A crashed owner defers its
///    group (retry with backoff) and the whole batch's commit with it.
///
///  * Phased (BSP engine, or rt::ThreadCluster between runs): the driver
///    alternates ApplyNextBatchDirect() — synchronous TEL writes, legal
///    because nothing else is running — with a wave of submissions and a
///    RunToCompletion(). The BSP engine forbids mid-run Submit, and the
///    thread runtime's shared-nothing ownership contract forbids off-thread
///    TEL writes while workers are live; between runs both are quiescent.
///
/// Snapshot discipline: readers take their snapshot timestamp from
/// last_commit_ts() (or from the OnBatchCommitted callback, which fires
/// exactly when a timestamp becomes safe). The ingestor pins in-flight read
/// timestamps in every partition TEL so version compaction can never
/// reclaim versions a live reader still needs.
class StreamIngestor {
 public:
  struct Options {
    /// Virtual time charged to the owning worker per applied op.
    uint64_t per_op_cost_ns = 200;
    /// Delay before re-trying a batch whose owner worker is crashed.
    uint64_t retry_backoff_ns = 100'000;
    /// Run TEL version compaction every N committed batches (0 = never).
    /// The watermark is the LCT clamped to the oldest pinned reader.
    uint32_t compact_every_batches = 0;
  };

  explicit StreamIngestor(SimCluster* cluster);
  StreamIngestor(SimCluster* cluster, Options opt);

  /// Queues a batch for ingest. Must be called in increasing commit_ts
  /// order, before Start() (event-driven) or the ApplyNextBatchDirect()
  /// loop (phased).
  void EnqueueBatch(UpdateBatch batch);

  /// Registers a standing query; returns its index. Event-driven mode
  /// launches evaluations automatically at every commit; phased mode
  /// launches them in LaunchStandingRuns().
  size_t AddStandingQuery(StandingQuerySpec spec);

  /// Fired at every batch commit (the instant `ts` becomes a safe snapshot
  /// timestamp). Event-driven mode: fired from the commit event; phased
  /// mode: fired from ApplyNextBatchDirect. Callbacks may Submit().
  void SetOnBatchCommitted(std::function<void(Timestamp ts, SimTime at)> fn) {
    on_batch_committed_ = std::move(fn);
  }

  /// Event-driven mode: schedules the first pending batch on the cluster's
  /// event queue. Async engine only (the BSP driver never drains foreign
  /// events between supersteps — use the phased loop instead).
  void Start();

  /// Phased mode: applies the next pending batch synchronously to the
  /// graph's TELs and commits it. Returns its commit_ts, or 0 when no
  /// batches remain. Caller must guarantee quiescence (no run in progress).
  Timestamp ApplyNextBatchDirect();

  /// Phased mode: submits one evaluation per registered standing query at
  /// the current LCT. Results are folded in by completion callbacks during
  /// the caller's next RunToCompletion().
  void LaunchStandingRuns(SimTime at);

  /// Pins/unpins a snapshot timestamp in every partition TEL on behalf of
  /// an external reader (e.g. a test-submitted snapshot query), so
  /// compaction cannot overtake it. Standing-query evaluations pin
  /// themselves. Pin before Submit, unpin when the result arrives.
  void PinReader(Timestamp ts);
  void UnpinReader(Timestamp ts);

  /// Highest fully-applied commit timestamp: the newest snapshot any reader
  /// may take. 0 until the first batch commits.
  Timestamp last_commit_ts() const { return lct_; }

  /// True once every enqueued batch has committed.
  bool Drained() const { return next_batch_ == batches_.size(); }

  size_t num_standing() const { return standing_.size(); }
  const StandingQueryState& standing(size_t i) const { return standing_[i]; }

  /// Folds a standing query's deltas from an empty multiset: the cumulative
  /// emission. Identical to `standing(i).rows` by construction; the
  /// freshness oracle checks that identity against the final snapshot.
  std::vector<Row> CumulativeRows(size_t i) const;

  /// Live counters, attachable to the cluster's MetricsSnapshot().
  const obs::StreamSnapshot& stats() const { return stats_; }

 private:
  /// One half of an op as seen by a single partition: edge ops are mirrored
  /// into an Out half (at the src owner) and an In half (at the dst owner);
  /// vertex ops carry kOut and ignore it. Pointers index into `batches_`,
  /// which is append-only before Start().
  struct HalfOp {
    const StreamOp* op;
    Direction half;
  };

  /// Ops of one batch bucketed by owning partition (edge ops mirrored).
  std::vector<std::vector<HalfOp>> GroupByPartition(const UpdateBatch& b) const;
  void CountOp(const StreamOp& op);

  // Event-driven machinery.
  void ScheduleBatch(size_t index, SimTime at);
  void ApplyBatchEventDriven(size_t index, SimTime at);
  void CommitBatch(size_t index, SimTime at, bool event_driven);
  void MaybeCompact(SimTime at);
  void LaunchStandingRun(size_t i, Timestamp ts, SimTime at);
  void OnStandingDone(size_t i, Timestamp ts, const QueryResult& r, SimTime at);

  SimCluster* cluster_;
  PartitionedGraph* graph_;
  Options opt_;
  std::vector<UpdateBatch> batches_;
  size_t next_batch_ = 0;  // first not-yet-committed batch
  Timestamp lct_ = 0;
  uint64_t committed_count_ = 0;
  std::vector<StandingQueryState> standing_;
  std::function<void(Timestamp, SimTime)> on_batch_committed_;
  /// Virtual time each commit fired (staleness = evaluation completion
  /// time minus the commit instant of the timestamp it evaluated).
  std::map<Timestamp, SimTime> commit_time_;
  obs::StreamSnapshot stats_;
};

/// Applies every op of `batch` directly to `graph`'s TELs at
/// `batch.commit_ts` (no cluster, no cost accounting). The materialization
/// primitive the freshness oracle builds reference graphs with; also the
/// backing for ApplyNextBatchDirect.
void ApplyBatchToGraph(PartitionedGraph& graph, const UpdateBatch& batch);

}  // namespace stream
}  // namespace graphdance

#endif  // GRAPHDANCE_STREAM_STREAM_H_
