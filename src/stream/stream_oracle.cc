#include "stream/stream_oracle.h"

#include <algorithm>
#include <map>
#include <utility>

#include "check/invariants.h"
#include "common/random.h"
#include "graph/generators.h"
#include "query/gremlin.h"
#include "runtime/config.h"
#include "runtime/hybrid.h"
#include "runtime/sim_cluster.h"

namespace graphdance {
namespace stream {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

/// Cell cluster shape, mirroring the base oracle's CellConfig (oracle.cc).
/// Streaming cells do not layer the QoS/spill stress configs: the stream
/// oracle isolates ingest-vs-reader interleavings.
ClusterConfig StreamCellConfig(const check::ReplaySpec& spec,
                               const check::DifferentialOptions& opt,
                               EngineKind engine) {
  ClusterConfig cfg;
  cfg.num_nodes = opt.num_nodes;
  cfg.workers_per_node = opt.workers_per_node;
  cfg.engine = engine;
  cfg.traverser_bulking = opt.traverser_bulking;
  cfg.progress_timeout_ns = 20'000'000;
  cfg.fault = spec.fault;
  cfg.explore.tiebreak_seed = spec.tiebreak_seed;
  cfg.explore.jitter_ns = spec.jitter_ns;
  return cfg;
}

/// Runs `plan_indices` of the scenario on one streaming cluster. Async
/// engines drive the event-driven ingest path; BSP drives the phased path.
Status RunStreamGroup(const StreamScenario& s, const StreamReference& ref,
                      const std::vector<size_t>& plan_indices,
                      EngineKind engine, const check::ReplaySpec& spec,
                      const check::DifferentialOptions& opt,
                      check::CellReport* report) {
  if (plan_indices.empty()) return Status::OK();
  uint32_t num_partitions = opt.num_nodes * opt.workers_per_node;
  std::shared_ptr<PartitionedGraph> graph = s.base_graph(num_partitions);
  if (graph == nullptr) return Status::Internal("scenario produced no graph");
  std::vector<std::shared_ptr<const Plan>> plans = s.plans(graph);
  ClusterConfig cfg = StreamCellConfig(spec, opt, engine);
  SimCluster cluster(cfg, graph);
  std::unique_ptr<check::CheckHarness> harness =
      check::CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());

  StreamIngestor::Options iopt;
  iopt.compact_every_batches = 2;  // live compaction is part of the test
  StreamIngestor ingestor(&cluster, iopt);
  cluster.AttachStreamStats(&ingestor.stats());
  for (const UpdateBatch& b : s.batches) ingestor.EnqueueBatch(b);
  for (size_t idx : plan_indices) {
    ingestor.AddStandingQuery(StandingQuerySpec{plans[idx], 0});
  }

  // ids[b][i] = snapshot query of plan_indices[i] at batch b's timestamp.
  std::vector<std::vector<uint64_t>> ids(s.batches.size());
  std::map<Timestamp, size_t> batch_of_ts;
  for (size_t b = 0; b < s.batches.size(); ++b) {
    batch_of_ts[s.batches[b].commit_ts] = b;
  }
  auto submit_snapshots = [&](Timestamp ts, SimTime at) {
    size_t b = batch_of_ts.at(ts);
    for (size_t idx : plan_indices) {
      // Pin the snapshot so live compaction cannot overtake this reader.
      ingestor.PinReader(ts);
      uint64_t id = cluster.Submit(plans[idx], at, ts);
      cluster.SetCompletionCallback(
          id, [&ingestor, ts](const QueryResult&, SimTime) {
            ingestor.UnpinReader(ts);
          });
      ids[b].push_back(id);
    }
  };

  Status run_status = Status::OK();
  if (engine == EngineKind::kBsp) {
    // Phased: apply a batch, submit the wave, run it to completion, repeat.
    for (;;) {
      Timestamp ts = ingestor.ApplyNextBatchDirect();
      if (ts == 0) break;
      submit_snapshots(ts, cluster.now());
      ingestor.LaunchStandingRuns(cluster.now());
      run_status = cluster.RunToCompletion(opt.max_events);
      if (!run_status.ok()) break;
    }
  } else {
    // Event-driven: ingest and queries interleave on one event queue.
    ingestor.SetOnBatchCommitted(submit_snapshots);
    ingestor.Start();
    run_status = cluster.RunToCompletion(opt.max_events);
  }
  if (!run_status.ok()) {
    report->mismatches++;
    if (report->detail.empty()) {
      report->detail = "run: " + run_status.ToString();
    }
  }
  report->trips += harness->trip_count();
  if (harness->trip_count() > 0 && report->detail.empty()) {
    report->detail = harness->trips().front().ToString();
  }
  if (!ingestor.Drained()) {
    report->mismatches++;
    if (report->detail.empty()) {
      report->detail = "ingest stalled: lct=" + U64(ingestor.last_commit_ts());
    }
  }

  // Snapshot identity: every query at ts T row-identical to the from-scratch
  // run on the graph materialized at T.
  for (size_t b = 0; b < ids.size(); ++b) {
    for (size_t i = 0; i < ids[b].size(); ++i) {
      report->queries++;
      const QueryResult& r = cluster.result(ids[b][i]);
      if (!r.done || r.failed || r.timed_out) {
        report->explicit_failures++;
        continue;
      }
      std::vector<Row> got = check::CanonicalRows(r.rows);
      if (got != ref.rows[b][plan_indices[i]]) {
        report->mismatches++;
        if (report->detail.empty()) {
          report->detail = "snapshot ts=" + U64(s.batches[b].commit_ts) +
                           " plan " + U64(plan_indices[i]) + ": got " +
                           U64(got.size()) + " rows, materialized reference " +
                           U64(ref.rows[b][plan_indices[i]].size());
        }
      }
    }
  }

  // Standing identity: cumulative emission == rows == final-snapshot rows.
  const Timestamp final_ts = s.batches.back().commit_ts;
  for (size_t i = 0; i < plan_indices.size(); ++i) {
    report->queries++;
    const StandingQueryState& sq = ingestor.standing(i);
    if (sq.last_run_ts != final_ts) {
      report->explicit_failures++;
      continue;
    }
    const std::vector<Row>& want = ref.rows.back()[plan_indices[i]];
    if (sq.rows != want) {
      report->mismatches++;
      if (report->detail.empty()) {
        report->detail = "standing plan " + U64(plan_indices[i]) + ": " +
                         U64(sq.rows.size()) + " rows vs final snapshot " +
                         U64(want.size());
      }
    }
    if (ingestor.CumulativeRows(i) != sq.rows) {
      report->mismatches++;
      if (report->detail.empty()) {
        report->detail = "standing plan " + U64(plan_indices[i]) +
                         ": cumulative delta emission diverged from its rows";
      }
    }
  }
  return Status::OK();
}

}  // namespace

StreamScenario MakeStreamScenario(uint64_t seed, size_t num_batches,
                                  size_t ops_per_batch) {
  StreamScenario s;
  s.base_graph = [](uint32_t num_partitions) {
    auto schema = std::make_shared<Schema>();
    PowerLawGraphOptions gopt;
    gopt.num_vertices = 1024;
    gopt.num_edges = 8192;
    gopt.seed = 11;
    gopt.weight_range = 10'000;
    auto g = GeneratePowerLawGraph(gopt, schema, num_partitions);
    return g.ok() ? g.TakeValue() : nullptr;
  };
  s.plans = [](const std::shared_ptr<PartitionedGraph>& graph) {
    std::vector<std::shared_ptr<const Plan>> plans;
    if (graph == nullptr) return plans;
    PropKeyId weight = graph->mutable_schema().PropKey("weight");
    auto topk = [&](VertexId start, uint16_t k, size_t limit) {
      auto plan =
          Traversal(graph)
              .V({start})
              .RepeatOut("link", k, /*dedup=*/true)
              .Project({Operand::VertexIdOp(), Operand::Property(weight)})
              .OrderByLimit({{1, false}, {0, true}}, limit)
              .Build();
      if (plan.ok()) plans.push_back(plan.TakeValue());
    };
    auto count = [&](VertexId start, uint16_t k) {
      auto plan = Traversal(graph)
                      .V({start})
                      .RepeatOut("link", k, /*dedup=*/true)
                      .Count()
                      .Build();
      if (plan.ok()) plans.push_back(plan.TakeValue());
    };
    topk(1, 3, 10);
    topk(17, 3, 5);
    count(5, 2);
    count(42, 3);
    topk(99, 2, 10);
    return plans;
  };

  // Deterministic batch schedule. Three order-sensitivity rules keep the
  // grouped-by-partition ingest path and the sequential materialize path
  // state-identical at every timestamp: (1) deletes only target edges
  // streamed in *earlier* batches, (2) at most one property write per
  // (vertex, key) per batch, (3) fresh vertex ids are never reused.
  Rng rng(seed);
  constexpr VertexId kBase = 1024;          // static vertex id space
  constexpr VertexId kFreshBase = 2'000'000;
  VertexId next_fresh = kFreshBase;
  std::vector<std::pair<VertexId, VertexId>> live;     // deletable edge pool
  const LabelId kNode = 0, kLink = 0;                  // generator label ids
  const PropKeyId kWeight = 0;                         // "weight" key id
  for (size_t b = 0; b < num_batches; ++b) {
    UpdateBatch batch;
    batch.commit_ts = static_cast<Timestamp>((b + 1) * 1000);
    batch.not_before = static_cast<SimTime>((b + 1) * 500'000);
    std::vector<std::pair<VertexId, VertexId>> added_this_batch;
    std::vector<VertexId> props_this_batch;
    for (size_t k = 0; k < ops_per_batch; ++k) {
      uint64_t roll = rng.Below(100);
      if (roll < 55) {
        StreamOp op;
        op.kind = StreamOpKind::kAddEdge;
        op.src = rng.Below(kBase);
        op.dst = rng.Below(kBase);
        op.label = kLink;
        batch.ops.push_back(op);
        added_this_batch.push_back({op.src, op.dst});
      } else if (roll < 70 && !live.empty()) {
        size_t pick = static_cast<size_t>(rng.Below(live.size()));
        StreamOp op;
        op.kind = StreamOpKind::kDeleteEdge;
        op.src = live[pick].first;
        op.dst = live[pick].second;
        op.label = kLink;
        batch.ops.push_back(op);
        live[pick] = live.back();
        live.pop_back();
      } else if (roll < 82) {
        VertexId fresh = next_fresh++;
        StreamOp av;
        av.kind = StreamOpKind::kAddVertex;
        av.src = fresh;
        av.label = kNode;
        batch.ops.push_back(av);
        StreamOp sp;
        sp.kind = StreamOpKind::kSetProp;
        sp.src = fresh;
        sp.key = kWeight;
        sp.value = Value(static_cast<int64_t>(rng.Below(10'000)));
        batch.ops.push_back(sp);
        StreamOp link;
        link.kind = StreamOpKind::kAddEdge;
        link.src = rng.Below(kBase);
        link.dst = fresh;
        link.label = kLink;
        batch.ops.push_back(link);
        added_this_batch.push_back({link.src, link.dst});
      } else {
        VertexId v = rng.Below(kBase);
        bool dup = false;
        for (VertexId seen : props_this_batch) dup = dup || seen == v;
        if (dup) continue;  // one write per (vertex, key) per batch
        props_this_batch.push_back(v);
        StreamOp op;
        op.kind = StreamOpKind::kSetProp;
        op.src = v;
        op.key = kWeight;
        op.value = Value(static_cast<int64_t>(rng.Below(10'000)));
        batch.ops.push_back(op);
      }
    }
    for (auto& e : added_this_batch) live.push_back(e);
    s.batches.push_back(std::move(batch));
  }
  return s;
}

std::shared_ptr<PartitionedGraph> MaterializeAt(const StreamScenario& s,
                                                uint32_t num_partitions,
                                                Timestamp ts) {
  std::shared_ptr<PartitionedGraph> g = s.base_graph(num_partitions);
  if (g == nullptr) return nullptr;
  for (const UpdateBatch& b : s.batches) {
    if (b.commit_ts > ts) break;
    ApplyBatchToGraph(*g, b);
  }
  return g;
}

Result<StreamReference> ComputeStreamReference(const StreamScenario& s) {
  if (s.batches.empty()) {
    return Status::Internal("stream scenario has no batches");
  }
  StreamReference ref;
  for (const UpdateBatch& b : s.batches) {
    std::shared_ptr<PartitionedGraph> g = MaterializeAt(s, 1, b.commit_ts);
    if (g == nullptr) return Status::Internal("scenario produced no graph");
    std::vector<std::shared_ptr<const Plan>> plans = s.plans(g);
    if (plans.empty()) return Status::Internal("scenario produced no plans");
    ClusterConfig cfg;
    cfg.num_nodes = 1;
    cfg.workers_per_node = 1;
    cfg.engine = EngineKind::kAsync;
    SimCluster cluster(cfg, g);
    std::unique_ptr<check::CheckHarness> harness =
        check::CheckHarness::WithAllCheckers();
    cluster.AttachChecker(harness.get());
    std::vector<uint64_t> ids;
    for (const auto& p : plans) {
      ids.push_back(cluster.Submit(p, /*at=*/0, b.commit_ts));
    }
    Status st = cluster.RunToCompletion();
    if (!st.ok()) return st;
    if (harness->trip_count() > 0) {
      return Status::Internal("invariant trip in the materialized reference: " +
                              harness->trips().front().ToString());
    }
    std::vector<std::vector<Row>> rows;
    for (uint64_t id : ids) {
      const QueryResult& r = cluster.result(id);
      if (!r.done || r.failed || r.timed_out) {
        return Status::Internal("materialized reference query " + U64(id) +
                                " did not complete cleanly");
      }
      rows.push_back(check::CanonicalRows(r.rows));
    }
    ref.ts.push_back(b.commit_ts);
    ref.rows.push_back(std::move(rows));
  }
  return ref;
}

Result<check::CellReport> RunStreamCell(const StreamScenario& s,
                                        const StreamReference& reference,
                                        const check::ReplaySpec& spec,
                                        const check::DifferentialOptions& opt) {
  if (reference.rows.size() != s.batches.size()) {
    return Status::Internal("scenario/reference batch count mismatch");
  }
  check::CellReport report;
  size_t num_plans = reference.rows.front().size();
  std::vector<size_t> all(num_plans);
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  Status st = Status::OK();
  if (spec.mode == "async") {
    st = RunStreamGroup(s, reference, all, EngineKind::kAsync, spec, opt,
                        &report);
  } else if (spec.mode == "bsp") {
    st = RunStreamGroup(s, reference, all, EngineKind::kBsp, spec, opt,
                        &report);
  } else if (spec.mode == "hybrid") {
    // Per-plan engine choice on a throwaway instance (the choice depends
    // only on plan shape and graph stats, both partition-independent).
    std::shared_ptr<PartitionedGraph> g =
        s.base_graph(opt.num_nodes * opt.workers_per_node);
    if (g == nullptr) return Status::Internal("scenario produced no graph");
    std::vector<std::shared_ptr<const Plan>> plans = s.plans(g);
    std::vector<size_t> async_group, bsp_group;
    uint32_t workers = opt.num_nodes * opt.workers_per_node;
    for (size_t i = 0; i < plans.size(); ++i) {
      HybridChoice choice =
          ChooseEngine(*plans[i], g->stats(), workers,
                       /*threshold_tasks=*/0.0, opt.traverser_bulking);
      (choice.engine == EngineKind::kBsp ? bsp_group : async_group)
          .push_back(i);
    }
    st = RunStreamGroup(s, reference, async_group, EngineKind::kAsync, spec,
                        opt, &report);
    if (st.ok()) {
      st = RunStreamGroup(s, reference, bsp_group, EngineKind::kBsp, spec, opt,
                          &report);
    }
  } else {
    return Status::InvalidArgument("unknown stream oracle mode: " + spec.mode);
  }
  if (!st.ok()) return st;
  return report;
}

Result<check::DifferentialReport> RunStreamDifferential(
    const StreamScenario& s, const check::DifferentialOptions& opt) {
  auto reference = ComputeStreamReference(s);
  if (!reference.ok()) return reference.status();
  check::DifferentialReport report;
  for (const std::string& mode : opt.modes) {
    for (uint64_t seed = 0; seed < opt.num_seeds; ++seed) {
      check::ReplaySpec spec;
      spec.mode = mode;
      spec.tiebreak_seed = seed;
      spec.jitter_ns = seed == 0 ? 0 : opt.jitter_ns;
      if (opt.fault_active) spec.fault = opt.fault;
      spec.stream = true;
      auto cell = RunStreamCell(s, reference.value(), spec, opt);
      if (!cell.ok()) return cell.status();
      report.cells++;
      report.queries += cell.value().queries;
      report.trips += cell.value().trips;
      report.mismatches += cell.value().mismatches;
      report.explicit_failures += cell.value().explicit_failures;
      if (!cell.value().ok()) {
        report.failures.push_back(check::DifferentialFailure{
            spec, check::FormatReplayToken(spec),
            "stream mode=" + mode + " seed=" + U64(seed) + ": " +
                cell.value().detail});
      }
    }
  }
  return report;
}

}  // namespace stream
}  // namespace graphdance
