#include "stream/stream.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "check/oracle.h"  // CanonicalRows
#include "runtime/config.h"

namespace graphdance {
namespace stream {

namespace {

bool RowLess(const Row& a, const Row& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  for (size_t i = 0; i < a.size(); ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return false;
}

bool RowEq(const Row& a, const Row& b) {
  return !RowLess(a, b) && !RowLess(b, a);
}

/// Multiset difference of two canonically sorted row vectors:
/// `added` = now - before, `retracted` = before - now.
void DiffRows(const std::vector<Row>& before, const std::vector<Row>& now,
              std::vector<Row>* added, std::vector<Row>* retracted) {
  size_t i = 0, j = 0;
  while (i < before.size() || j < now.size()) {
    if (i == before.size()) {
      added->push_back(now[j++]);
    } else if (j == now.size()) {
      retracted->push_back(before[i++]);
    } else if (RowEq(before[i], now[j])) {
      ++i;
      ++j;
    } else if (RowLess(before[i], now[j])) {
      retracted->push_back(before[i++]);
    } else {
      added->push_back(now[j++]);
    }
  }
}

/// Applies one half-op to the TEL of the partition owning its anchor.
void ApplyOpToTel(PartitionStore& store, const StreamOp& op, Timestamp ts,
                  Direction half) {
  switch (op.kind) {
    case StreamOpKind::kAddVertex:
      store.tel().AddVertex(op.src, op.label, ts);
      break;
    case StreamOpKind::kDeleteVertex:
      store.tel().DeleteVertex(op.src, ts);
      break;
    case StreamOpKind::kAddEdge:
      if (half == Direction::kOut) {
        store.tel().AddEdge(op.src, op.label, Direction::kOut, op.dst, ts,
                            op.value);
      } else {
        store.tel().AddEdge(op.dst, op.label, Direction::kIn, op.src, ts,
                            op.value);
      }
      break;
    case StreamOpKind::kDeleteEdge:
      if (half == Direction::kOut) {
        store.tel().DeleteEdge(op.src, op.label, Direction::kOut, op.dst, ts);
      } else {
        store.tel().DeleteEdge(op.dst, op.label, Direction::kIn, op.src, ts);
      }
      break;
    case StreamOpKind::kSetProp:
      store.tel().SetProperty(op.src, op.key, op.value, ts);
      break;
  }
}

}  // namespace

void ApplyBatchToGraph(PartitionedGraph& graph, const UpdateBatch& batch) {
  const Timestamp ts = batch.commit_ts;
  for (const StreamOp& op : batch.ops) {
    switch (op.kind) {
      case StreamOpKind::kAddEdge:
      case StreamOpKind::kDeleteEdge:
        ApplyOpToTel(graph.partition(graph.PartitionOf(op.src)), op, ts,
                     Direction::kOut);
        ApplyOpToTel(graph.partition(graph.PartitionOf(op.dst)), op, ts,
                     Direction::kIn);
        break;
      default:
        ApplyOpToTel(graph.partition(graph.PartitionOf(op.src)), op, ts,
                     Direction::kOut);
        break;
    }
  }
}

StreamIngestor::StreamIngestor(SimCluster* cluster)
    : StreamIngestor(cluster, Options()) {}

StreamIngestor::StreamIngestor(SimCluster* cluster, Options opt)
    : cluster_(cluster), graph_(&cluster->mutable_graph()), opt_(opt) {}

void StreamIngestor::EnqueueBatch(UpdateBatch batch) {
  assert(batches_.empty() || batch.commit_ts > batches_.back().commit_ts);
  stats_.batches_scheduled++;
  batches_.push_back(std::move(batch));
}

size_t StreamIngestor::AddStandingQuery(StandingQuerySpec spec) {
  StandingQueryState st;
  st.spec = std::move(spec);
  standing_.push_back(std::move(st));
  stats_.standing_queries++;
  return standing_.size() - 1;
}

void StreamIngestor::Start() {
  if (next_batch_ >= batches_.size()) return;
  ScheduleBatch(next_batch_, batches_[next_batch_].not_before);
}

void StreamIngestor::ScheduleBatch(size_t index, SimTime at) {
  cluster_->ScheduleAt(at,
                       [this, index](SimTime t) { ApplyBatchEventDriven(index, t); });
}

void StreamIngestor::ApplyBatchEventDriven(size_t index, SimTime at) {
  const UpdateBatch& b = batches_[index];
  std::vector<std::vector<HalfOp>> groups = GroupByPartition(b);
  // A crashed owner cannot accept writes; the whole batch (and its commit)
  // waits for the restart, preserving all-or-nothing visibility. Readers at
  // the current LCT are unaffected.
  for (PartitionId p = 0; p < groups.size(); ++p) {
    if (groups[p].empty()) continue;
    if (cluster_->ProbeWorkerCrashed(cluster_->WorkerOfPartition(p))) {
      stats_.batch_retries++;
      ScheduleBatch(index, at + opt_.retry_backoff_ns);
      return;
    }
  }
  const Timestamp ts = b.commit_ts;
  for (PartitionId p = 0; p < groups.size(); ++p) {
    if (groups[p].empty()) continue;
    const std::vector<HalfOp>& group = groups[p];
    cluster_->ApplyAtPartition(
        p, opt_.per_op_cost_ns * group.size(), [&group, ts](PartitionStore& s) {
          for (const HalfOp& h : group) ApplyOpToTel(s, *h.op, ts, h.half);
        });
  }
  CommitBatch(index, at, /*event_driven=*/true);
}

Timestamp StreamIngestor::ApplyNextBatchDirect() {
  if (next_batch_ >= batches_.size()) return 0;
  const size_t index = next_batch_;
  ApplyBatchToGraph(*graph_, batches_[index]);
  CommitBatch(index, cluster_->now(), /*event_driven=*/false);
  return batches_[index].commit_ts;
}

void StreamIngestor::CommitBatch(size_t index, SimTime at, bool event_driven) {
  const UpdateBatch& b = batches_[index];
  lct_ = b.commit_ts;
  next_batch_ = index + 1;
  committed_count_++;
  stats_.batches_applied++;
  stats_.ops_applied += b.ops.size();
  stats_.last_commit_ts = lct_;
  for (const StreamOp& op : b.ops) CountOp(op);
  commit_time_[b.commit_ts] = at;
  cluster_->metrics().latency("stream-batch-lag").Record(at >= b.not_before
                                                             ? at - b.not_before
                                                             : 0);
  MaybeCompact(at);
  if (event_driven) {
    for (size_t i = 0; i < standing_.size(); ++i) {
      StandingQueryState& sq = standing_[i];
      if (sq.in_flight) {
        // Conflation: fold this commit into one pending re-run at the
        // newest timestamp instead of queueing a run per commit.
        sq.dirty = true;
        sq.dirty_ts = lct_;
        stats_.standing_conflated++;
      } else {
        LaunchStandingRun(i, lct_, at);
      }
    }
  }
  if (on_batch_committed_) on_batch_committed_(lct_, at);
  if (event_driven && next_batch_ < batches_.size()) {
    ScheduleBatch(next_batch_,
                  std::max(at, batches_[next_batch_].not_before));
  }
}

void StreamIngestor::LaunchStandingRuns(SimTime at) {
  if (lct_ == 0) return;
  for (size_t i = 0; i < standing_.size(); ++i) {
    StandingQueryState& sq = standing_[i];
    if (sq.in_flight || sq.last_run_ts == lct_) continue;
    LaunchStandingRun(i, lct_, at);
  }
}

void StreamIngestor::LaunchStandingRun(size_t i, Timestamp ts, SimTime at) {
  StandingQueryState& sq = standing_[i];
  sq.in_flight = true;
  PinReader(ts);
  stats_.standing_runs++;
  uint64_t id = cluster_->Submit(sq.spec.plan, at, ts, /*deadline_ns=*/0,
                                 sq.spec.client_class);
  cluster_->SetCompletionCallback(
      id, [this, i, ts](const QueryResult& r, SimTime t) {
        OnStandingDone(i, ts, r, t);
      });
}

void StreamIngestor::OnStandingDone(size_t i, Timestamp ts,
                                    const QueryResult& r, SimTime at) {
  StandingQueryState& sq = standing_[i];
  sq.in_flight = false;
  UnpinReader(ts);
  const bool bsp = cluster_->config().engine == EngineKind::kBsp;
  if (!r.done || r.failed || r.timed_out) {
    // The evaluation died (e.g. retries exhausted under a fault plan).
    // Re-run so the standing view converges; BSP cannot Submit mid-run —
    // its phased driver re-launches between phases instead.
    if (!bsp) {
      LaunchStandingRun(i, sq.dirty ? sq.dirty_ts : ts, at);
      sq.dirty = false;
    }
    return;
  }
  std::vector<Row> now = check::CanonicalRows(r.rows);
  StandingDelta delta;
  delta.ts = ts;
  DiffRows(sq.rows, now, &delta.added, &delta.retracted);
  stats_.rows_emitted += delta.added.size();
  stats_.rows_retracted += delta.retracted.size();
  sq.rows = std::move(now);
  sq.last_run_ts = ts;
  sq.deltas.push_back(std::move(delta));
  auto it = commit_time_.find(ts);
  if (it != commit_time_.end() && at >= it->second) {
    cluster_->metrics().latency("stream-staleness").Record(at - it->second);
  }
  if (sq.dirty && !bsp) {
    Timestamp next_ts = sq.dirty_ts;
    sq.dirty = false;
    if (next_ts > ts) LaunchStandingRun(i, next_ts, at);
  }
}

void StreamIngestor::PinReader(Timestamp ts) {
  for (uint32_t p = 0; p < graph_->num_partitions(); ++p) {
    graph_->partition(p).tel().PinSnapshot(ts);
  }
}

void StreamIngestor::UnpinReader(Timestamp ts) {
  for (uint32_t p = 0; p < graph_->num_partitions(); ++p) {
    graph_->partition(p).tel().UnpinSnapshot(ts);
  }
}

void StreamIngestor::MaybeCompact(SimTime at) {
  if (opt_.compact_every_batches == 0 ||
      committed_count_ % opt_.compact_every_batches != 0) {
    return;
  }
  for (uint32_t p = 0; p < graph_->num_partitions(); ++p) {
    TransactionalEdgeLog& tel = graph_->partition(p).tel();
    // The watermark never overtakes a pinned reader: versions a live
    // snapshot still needs survive, compaction just reclaims less.
    Timestamp watermark = std::min(lct_, tel.MinPinnedTs());
    tel.Compact(watermark);
  }
  (void)at;
}

std::vector<Row> StreamIngestor::CumulativeRows(size_t i) const {
  std::vector<Row> acc;
  for (const StandingDelta& d : standing_[i].deltas) {
    for (const Row& r : d.added) acc.push_back(r);
    for (const Row& r : d.retracted) {
      // Remove one occurrence (multiset retraction).
      for (auto it = acc.begin(); it != acc.end(); ++it) {
        if (RowEq(*it, r)) {
          acc.erase(it);
          break;
        }
      }
    }
  }
  return check::CanonicalRows(std::move(acc));
}

std::vector<std::vector<StreamIngestor::HalfOp>> StreamIngestor::GroupByPartition(
    const UpdateBatch& b) const {
  std::vector<std::vector<HalfOp>> groups(graph_->num_partitions());
  for (const StreamOp& op : b.ops) {
    switch (op.kind) {
      case StreamOpKind::kAddEdge:
      case StreamOpKind::kDeleteEdge:
        groups[graph_->PartitionOf(op.src)].push_back({&op, Direction::kOut});
        groups[graph_->PartitionOf(op.dst)].push_back({&op, Direction::kIn});
        break;
      default:
        groups[graph_->PartitionOf(op.src)].push_back({&op, Direction::kOut});
        break;
    }
  }
  return groups;
}

void StreamIngestor::CountOp(const StreamOp& op) {
  switch (op.kind) {
    case StreamOpKind::kAddVertex:
      stats_.vertices_added++;
      break;
    case StreamOpKind::kDeleteVertex:
      break;
    case StreamOpKind::kAddEdge:
      stats_.edges_added++;
      break;
    case StreamOpKind::kDeleteEdge:
      stats_.edges_deleted++;
      break;
    case StreamOpKind::kSetProp:
      stats_.props_set++;
      break;
  }
}

}  // namespace stream
}  // namespace graphdance
