#ifndef GRAPHDANCE_STREAM_STREAM_ORACLE_H_
#define GRAPHDANCE_STREAM_STREAM_ORACLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "check/oracle.h"
#include "common/status.h"
#include "graph/graph.h"
#include "pstm/plan.h"
#include "stream/stream.h"

namespace graphdance {
namespace stream {

/// One deterministic streaming workload: a base-graph factory, a plan
/// builder, and a timestamped batch schedule. Graph and plans are factories
/// (not instances) because every cell — and every materialized reference —
/// needs its own private graph: streaming cells mutate it.
struct StreamScenario {
  std::function<std::shared_ptr<PartitionedGraph>(uint32_t num_partitions)>
      base_graph;
  std::function<std::vector<std::shared_ptr<const Plan>>(
      const std::shared_ptr<PartitionedGraph>&)>
      plans;
  std::vector<UpdateBatch> batches;
};

/// The default streaming scenario: the oracle's power-law graph and query
/// shapes plus `num_batches` update batches of `ops_per_batch` ops drawn
/// deterministically from `seed` — a mix of edge adds, deletes of
/// previously-streamed edges, fresh vertices and property writes, crafted so
/// that applying ops grouped-by-partition (the ingest path) and sequentially
/// (the materialize path) yields identical visible state at every timestamp.
StreamScenario MakeStreamScenario(uint64_t seed, size_t num_batches = 6,
                                  size_t ops_per_batch = 64);

/// The scenario seed every `;stream=1` replay token refers to (tokens encode
/// the schedule, not the workload — same convention as the base oracle).
inline constexpr uint64_t kDefaultStreamScenarioSeed = 11;

/// The scenario's graph materialized at `ts`: the base graph regenerated for
/// `num_partitions` with every batch of commit_ts <= ts applied directly.
std::shared_ptr<PartitionedGraph> MaterializeAt(const StreamScenario& s,
                                                uint32_t num_partitions,
                                                Timestamp ts);

/// Canonical reference rows for every (batch, plan) pair: each batch's
/// timestamp materialized from scratch and queried on a 1x1 async cluster at
/// read_ts = commit_ts. `rows[b][p]` is plan p's answer at batch b's
/// timestamp; a snapshot query in a live streaming cell must match it
/// row-for-row, and a standing query's cumulative emission must equal
/// `rows.back()[p]`.
struct StreamReference {
  std::vector<Timestamp> ts;                        // per batch
  std::vector<std::vector<std::vector<Row>>> rows;  // [batch][plan]
};

Result<StreamReference> ComputeStreamReference(const StreamScenario& s);

/// Runs one streaming cell: a live cluster under `spec` (engine mode,
/// tie-break seed, fault plan) with the ingestor applying the scenario's
/// batches while one snapshot query per plan runs at every commit timestamp
/// and every plan is also registered standing. Async mode drives the
/// event-driven ingest path (writes interleaved with reads on the event
/// queue); BSP mode drives the phased path. All invariant checkers —
/// including snapshot-isolation — are attached. Mismatches against
/// `reference` (snapshot rows, standing cumulative rows) and checker trips
/// land in the CellReport.
Result<check::CellReport> RunStreamCell(const StreamScenario& s,
                                        const StreamReference& reference,
                                        const check::ReplaySpec& spec,
                                        const check::DifferentialOptions& opt);

/// The full freshness-differential matrix: every mode x tie-break seed (with
/// `opt.fault` when fault_active), each cell diffed against the materialized
/// references. This is the oracle that anchors streaming correctness:
/// snapshot identity, standing cumulative identity, zero isolation trips.
Result<check::DifferentialReport> RunStreamDifferential(
    const StreamScenario& s, const check::DifferentialOptions& opt);

}  // namespace stream
}  // namespace graphdance

#endif  // GRAPHDANCE_STREAM_STREAM_ORACLE_H_
