#ifndef GRAPHDANCE_NET_MESSAGE_H_
#define GRAPHDANCE_NET_MESSAGE_H_

#include <cstdint>
#include <vector>

namespace graphdance {

/// Message classes exchanged between workers. `kWeightReport` is the
/// progress-tracking traffic singled out by the paper's Figure 11; all other
/// kinds count as "other messages".
enum class MessageKind : uint8_t {
  kTraverserBatch = 0,  // serialized traversers hopping to a remote partition
  kWeightReport,        // coalesced finished weight -> query coordinator
  kFinalize,            // coordinator -> workers: a scope completed
  kCollectReply,        // worker -> coordinator: partial aggregate payload
  kResultRow,           // worker -> coordinator: emitted result rows
  kControl,             // query lifecycle control (start/cleanup/txn ops)
  kNumKinds,
};

/// kControl messages whose `tag` is at or above this base carry the
/// distributed-transaction commit protocol (txn/dist_txn.h) instead of query
/// lifecycle control. Their query_id is synthetic (kTxnQueryIdBase + txn id),
/// so the runtime routes them to the attached txn handler before the
/// per-query lookup. Query control tags are small step/partition indices and
/// never reach this range.
inline constexpr uint64_t kTxnControlTagBase = 1ull << 20;
/// Synthetic query-id namespace for transaction-protocol messages: high
/// enough that real query ids (a small counter) can never collide.
inline constexpr uint64_t kTxnQueryIdBase = 1ull << 62;

inline const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kTraverserBatch:
      return "TraverserBatch";
    case MessageKind::kWeightReport:
      return "WeightReport";
    case MessageKind::kFinalize:
      return "Finalize";
    case MessageKind::kCollectReply:
      return "CollectReply";
    case MessageKind::kResultRow:
      return "ResultRow";
    case MessageKind::kControl:
      return "Control";
    default:
      return "?";
  }
}

/// One logical message between two workers. Cross-node messages are carried
/// inside frames by the two-tier I/O scheduler; same-node messages take the
/// shared-memory shortcut.
struct Message {
  MessageKind kind = MessageKind::kControl;
  uint32_t src_worker = 0;
  uint32_t dst_worker = 0;
  uint64_t query_id = 0;
  uint32_t scope_id = 0;
  uint64_t weight = 0;              // kWeightReport: coalesced finished weight
  uint64_t tag = 0;                 // kind-specific discriminator
  std::vector<uint8_t> payload;     // kind-specific serialized body

  // --- fault-recovery metadata (see DESIGN.md "Fault model & recovery") ---
  /// Sender / receiver incarnation epochs, stamped at send time. A worker's
  /// epoch increments on restart; a mismatch on delivery fences the message
  /// out (it belongs to a pre-crash incarnation).
  uint32_t src_epoch = 0;
  uint32_t dst_epoch = 0;
  /// Per-(src,dst) monotone sequence number for remote messages (0 = local /
  /// unsequenced). Duplicated deliveries carry the same seq and are
  /// suppressed at the receiver before they can corrupt weight accounting.
  uint64_t seq = 0;
  /// The query attempt this message belongs to; stale-attempt messages from
  /// an aborted attempt are fenced at the receiver.
  uint32_t attempt = 0;
  /// kWeightReport: result rows this worker sent remotely since its last
  /// report (the coordinator reconciles row arrival against this count
  /// before declaring a query complete, so a lost ResultRow stalls — and is
  /// then retried — instead of silently vanishing).
  uint32_t row_delta = 0;

  // --- traverser-bulking metadata (transient; never on the wire) ---
  /// kTraverserBatch: hash of the carried traverser's site key, used by the
  /// tier-1 send buffer to find merge candidates without re-deserializing.
  /// 0 = not a merge candidate.
  uint64_t trav_site = 0;
  /// Excludes this message from send-side merging. Set on fault-injected
  /// duplicate pairs: both copies share one seq, so folding either into a
  /// differently-sequenced carrier would defeat the receiver's duplicate
  /// suppression and double-count the weight.
  bool no_bulk = false;

  // --- qos flow-control metadata (transient; never on the wire) ---
  /// Link credits this message carries back to its (src node, dst node)
  /// meter, assigned when its tier-1 buffer flushes and returned exactly
  /// once at the message's terminal disposition — ingestion, fence/dedup
  /// drop, fault drop, or crash wipe. 0 when QoS is off, for local
  /// deliveries, and in kSyncSend mode (which bypasses tier buffers).
  uint32_t credit_bytes = 0;

  /// Approximate wire size used by the link model. The recovery metadata is
  /// accounted inside the fixed header budget (it fits in the same cacheline
  /// a real transport header would use), so fault-mode and fault-free runs
  /// charge identical virtual bytes.
  size_t WireSize() const { return 40 + payload.size(); }
};

}  // namespace graphdance

#endif  // GRAPHDANCE_NET_MESSAGE_H_
