#ifndef GRAPHDANCE_NET_MESSAGE_H_
#define GRAPHDANCE_NET_MESSAGE_H_

#include <cstdint>
#include <vector>

namespace graphdance {

/// Message classes exchanged between workers. `kWeightReport` is the
/// progress-tracking traffic singled out by the paper's Figure 11; all other
/// kinds count as "other messages".
enum class MessageKind : uint8_t {
  kTraverserBatch = 0,  // serialized traversers hopping to a remote partition
  kWeightReport,        // coalesced finished weight -> query coordinator
  kFinalize,            // coordinator -> workers: a scope completed
  kCollectReply,        // worker -> coordinator: partial aggregate payload
  kResultRow,           // worker -> coordinator: emitted result rows
  kControl,             // query lifecycle control (start/cleanup/txn ops)
  kNumKinds,
};

inline const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kTraverserBatch:
      return "TraverserBatch";
    case MessageKind::kWeightReport:
      return "WeightReport";
    case MessageKind::kFinalize:
      return "Finalize";
    case MessageKind::kCollectReply:
      return "CollectReply";
    case MessageKind::kResultRow:
      return "ResultRow";
    case MessageKind::kControl:
      return "Control";
    default:
      return "?";
  }
}

/// One logical message between two workers. Cross-node messages are carried
/// inside frames by the two-tier I/O scheduler; same-node messages take the
/// shared-memory shortcut.
struct Message {
  MessageKind kind = MessageKind::kControl;
  uint32_t src_worker = 0;
  uint32_t dst_worker = 0;
  uint64_t query_id = 0;
  uint32_t scope_id = 0;
  uint64_t weight = 0;              // kWeightReport: coalesced finished weight
  uint64_t tag = 0;                 // kind-specific discriminator
  std::vector<uint8_t> payload;     // kind-specific serialized body

  /// Approximate wire size used by the link model.
  size_t WireSize() const { return 40 + payload.size(); }
};

}  // namespace graphdance

#endif  // GRAPHDANCE_NET_MESSAGE_H_
