#include "ldbc/snb_updates.h"

#include "common/random.h"

namespace graphdance {

std::vector<SnbUpdateTxn> GenerateSnbUpdates(const SnbDataset& data,
                                             uint64_t seed, uint32_t count,
                                             uint32_t hot_persons) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x7475726e);
  uint64_t persons = data.config.num_persons;
  if (hot_persons == 0 || hot_persons > persons) {
    hot_persons = static_cast<uint32_t>(persons);
  }
  auto pick_person = [&]() -> uint64_t {
    return rng.Chance(0.5) ? rng.Below(hot_persons) : rng.Below(persons);
  };
  std::vector<SnbUpdateTxn> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SnbUpdateTxn u;
    u.person = data.PersonId(pick_person());
    u.creation_date = static_cast<int64_t>(
        data.config.max_date + 1 + rng.Below(365));
    switch (rng.Below(5)) {
      case 0:
        u.kind = SnbUpdateKind::kAddLike;
        u.message = rng.Chance(0.7) && data.num_posts > 0
                        ? data.PostId(rng.Below(data.num_posts))
                        : data.CommentId(rng.Below(
                              std::max<uint64_t>(1, data.num_comments)));
        break;
      case 1: {
        u.kind = SnbUpdateKind::kAddKnows;
        uint64_t other = pick_person();
        if (data.PersonId(other) == u.person) other = (other + 1) % persons;
        u.person2 = data.PersonId(other);
        break;
      }
      case 2:
        u.kind = SnbUpdateKind::kAddPost;
        u.forum = data.ForumId(rng.Below(std::max<uint64_t>(1, data.num_forums)));
        // Fresh id keyed to the update index: identical whatever order the
        // scheduler commits these in.
        u.new_vertex = data.PostId(data.num_posts + i);
        u.tag = data.TagId(rng.Below(std::max<uint64_t>(1, data.config.num_tags)));
        break;
      case 3:
        u.kind = SnbUpdateKind::kAddComment;
        u.message = data.PostId(rng.Below(std::max<uint64_t>(1, data.num_posts)));
        u.new_vertex = data.CommentId(data.num_comments + i);
        break;
      default:
        u.kind = SnbUpdateKind::kAddForumMember;
        u.forum = data.ForumId(rng.Below(std::max<uint64_t>(1, data.num_forums)));
        break;
    }
    out.push_back(u);
  }
  return out;
}

Status BufferSnbUpdate(DistTxnManager* mgr, DistTxnManager::TxnId txn,
                       const SnbDataset& data, const SnbUpdateTxn& u) {
  const SnbSchema& s = data.snb;
  Value date(u.creation_date);
  switch (u.kind) {
    case SnbUpdateKind::kAddLike:
      return mgr->AddEdge(txn, u.person, s.likes, u.message, date);
    case SnbUpdateKind::kAddKnows: {
      // The base generator stores knows both ways; updates do too.
      Status st = mgr->AddEdge(txn, u.person, s.knows, u.person2, date);
      if (!st.ok()) return st;
      return mgr->AddEdge(txn, u.person2, s.knows, u.person, date);
    }
    case SnbUpdateKind::kAddPost: {
      Status st = mgr->AddVertex(txn, u.new_vertex, s.post);
      if (!st.ok()) return st;
      st = mgr->SetProperty(txn, u.new_vertex, s.creation_date, date);
      if (!st.ok()) return st;
      st = mgr->AddEdge(txn, u.forum, s.container_of, u.new_vertex);
      if (!st.ok()) return st;
      st = mgr->AddEdge(txn, u.new_vertex, s.has_creator, u.person);
      if (!st.ok()) return st;
      return mgr->AddEdge(txn, u.new_vertex, s.has_tag, u.tag);
    }
    case SnbUpdateKind::kAddComment: {
      Status st = mgr->AddVertex(txn, u.new_vertex, s.comment);
      if (!st.ok()) return st;
      st = mgr->SetProperty(txn, u.new_vertex, s.creation_date, date);
      if (!st.ok()) return st;
      st = mgr->AddEdge(txn, u.new_vertex, s.reply_of, u.message);
      if (!st.ok()) return st;
      return mgr->AddEdge(txn, u.new_vertex, s.has_creator, u.person);
    }
    case SnbUpdateKind::kAddForumMember:
      return mgr->AddEdge(txn, u.forum, s.has_member, u.person, date);
  }
  return Status::OK();
}

}  // namespace graphdance
