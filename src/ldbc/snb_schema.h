#ifndef GRAPHDANCE_LDBC_SNB_SCHEMA_H_
#define GRAPHDANCE_LDBC_SNB_SCHEMA_H_

#include <memory>
#include <string>

#include "graph/schema.h"
#include "graph/types.h"

namespace graphdance {

/// The LDBC Social Network Benchmark schema: 8 vertex kinds and 15 edge
/// kinds, interned into a Schema. Vertex ids encode the entity kind in the
/// top byte so ids are globally unique and self-describing.
struct SnbSchema {
  // Vertex labels.
  LabelId person, forum, post, comment, tag, tag_class, place, organisation;
  // Edge labels.
  LabelId knows;          // person <-> person (stored in both directions)
  LabelId has_interest;   // person -> tag
  LabelId likes;          // person -> post/comment (creationDate prop)
  LabelId has_creator;    // post/comment -> person
  LabelId container_of;   // forum -> post
  LabelId has_member;     // forum -> person (joinDate prop)
  LabelId has_moderator;  // forum -> person
  LabelId reply_of;       // comment -> post/comment
  LabelId has_tag;        // post/comment/forum -> tag
  LabelId has_type;       // tag -> tagclass
  LabelId is_subclass_of; // tagclass -> tagclass
  LabelId is_located_in;  // person -> city, org -> country, message -> country
  LabelId is_part_of;     // city -> country -> continent
  LabelId study_at;       // person -> university (classYear prop)
  LabelId work_at;        // person -> company (workFrom prop)
  // Property keys.
  PropKeyId first_name, last_name, gender, birthday, creation_date, browser,
      location_ip, content, length, language, title, name, org_type, place_type;

  explicit SnbSchema(Schema* s) {
    person = s->VertexLabel("Person");
    forum = s->VertexLabel("Forum");
    post = s->VertexLabel("Post");
    comment = s->VertexLabel("Comment");
    tag = s->VertexLabel("Tag");
    tag_class = s->VertexLabel("TagClass");
    place = s->VertexLabel("Place");
    organisation = s->VertexLabel("Organisation");

    knows = s->EdgeLabel("knows");
    has_interest = s->EdgeLabel("hasInterest");
    likes = s->EdgeLabel("likes");
    has_creator = s->EdgeLabel("hasCreator");
    container_of = s->EdgeLabel("containerOf");
    has_member = s->EdgeLabel("hasMember");
    has_moderator = s->EdgeLabel("hasModerator");
    reply_of = s->EdgeLabel("replyOf");
    has_tag = s->EdgeLabel("hasTag");
    has_type = s->EdgeLabel("hasType");
    is_subclass_of = s->EdgeLabel("isSubclassOf");
    is_located_in = s->EdgeLabel("isLocatedIn");
    is_part_of = s->EdgeLabel("isPartOf");
    study_at = s->EdgeLabel("studyAt");
    work_at = s->EdgeLabel("workAt");

    first_name = s->PropKey("firstName");
    last_name = s->PropKey("lastName");
    gender = s->PropKey("gender");
    birthday = s->PropKey("birthday");
    creation_date = s->PropKey("creationDate");
    browser = s->PropKey("browserUsed");
    location_ip = s->PropKey("locationIP");
    content = s->PropKey("content");
    length = s->PropKey("length");
    language = s->PropKey("language");
    title = s->PropKey("title");
    name = s->PropKey("name");
    org_type = s->PropKey("orgType");
    place_type = s->PropKey("placeType");
  }
};

/// Entity-kind tags embedded in vertex ids (top byte).
enum class SnbKind : uint64_t {
  kPerson = 1,
  kForum = 2,
  kPost = 3,
  kComment = 4,
  kTag = 5,
  kTagClass = 6,
  kPlace = 7,
  kOrganisation = 8,
};

inline VertexId SnbId(SnbKind kind, uint64_t ordinal) {
  return (static_cast<uint64_t>(kind) << 40) | ordinal;
}
inline SnbKind SnbKindOf(VertexId id) { return static_cast<SnbKind>(id >> 40); }
inline uint64_t SnbOrdinal(VertexId id) { return id & ((1ULL << 40) - 1); }

}  // namespace graphdance

#endif  // GRAPHDANCE_LDBC_SNB_SCHEMA_H_
