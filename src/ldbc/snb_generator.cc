#include "ldbc/snb_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/random.h"

namespace graphdance {

namespace {

const char* kFirstNames[] = {
    "Jan",   "Emma",  "Liam",  "Olivia", "Noah",  "Ava",    "Wei",   "Yan",
    "Ahmed", "Fatima","Carlos","Maria",  "Ivan",  "Anna",   "Ken",   "Yuki",
    "Raj",   "Priya", "Omar",  "Layla",  "Hans",  "Greta",  "Jose",  "Lucia",
    "Pavel", "Elena", "Chen",  "Mei",    "Abdul", "Amina",  "David", "Sara",
    "Otto",  "Ida",   "Bruno", "Clara",  "Igor",  "Nina",   "Tariq", "Zara"};
const char* kLastNames[] = {
    "Smith",  "Mueller", "Garcia",  "Wang",  "Kumar",   "Tanaka", "Ivanov",
    "Silva",  "Kim",     "Hansen",  "Rossi", "Novak",   "Ali",    "Cohen",
    "Dubois", "Larsson", "Yamamoto","Chen",  "Johnson", "Brown",  "Lopez",
    "Murphy", "Schmidt", "Kowalski","Popov", "Sato",    "Singh",  "Haddad",
    "Berg",   "Moreno",  "Fischer", "Weber", "Costa",   "Petrov", "Nakamura",
    "OBrien", "Janssen", "Svensson","Abbas", "Keller",  "Dias",   "Vogel",
    "Araya",  "Koch",    "Lindgren","Takeda","Farah",   "Walsh",  "Blanc",
    "Romano", "Santos",  "Dimitrov","Eriksen","Okafor", "Nasser", "Quinn",
    "Weiss",  "Marino",  "Petit",   "Volkov"};
const char* kLanguages[] = {"en", "de", "zh", "es", "hi", "ar", "pt", "ru"};
const char* kBrowsers[] = {"Chrome", "Firefox", "Safari", "Edge", "Opera"};

/// Skewed pick in [0, n): squares a uniform draw so early ordinals (hubs)
/// are preferred, giving the power-law-ish degree skew of SNB's knows graph.
uint64_t SkewedPick(Rng* rng, uint64_t n) {
  double u = rng->NextDouble();
  return static_cast<uint64_t>(u * u * static_cast<double>(n)) % n;
}

}  // namespace

Result<std::shared_ptr<SnbDataset>> GenerateSnb(const SnbConfig& config,
                                                uint32_t num_partitions) {
  if (config.num_persons == 0) {
    return Status::InvalidArgument("num_persons must be > 0");
  }
  auto schema = std::make_shared<Schema>();
  SnbSchema snb(schema.get());
  GraphBuilder b(schema, num_partitions);
  Rng rng(config.seed);

  auto date = [&]() {
    return Value(rng.Range(config.min_date, config.max_date));
  };

  // --- places: continents -> countries -> cities ---------------------------
  const uint64_t kContinents = 6;
  for (uint64_t i = 0; i < kContinents; ++i) {
    b.AddVertex(SnbId(SnbKind::kPlace, i), snb.place,
                {{snb.name, Value("Continent" + std::to_string(i))},
                 {snb.place_type, Value("continent")}});
  }
  const uint64_t country_base = kContinents;
  for (uint64_t i = 0; i < config.num_countries; ++i) {
    VertexId id = SnbId(SnbKind::kPlace, country_base + i);
    b.AddVertex(id, snb.place,
                {{snb.name, Value("Country" + std::to_string(i))},
                 {snb.place_type, Value("country")}});
    b.AddEdge(id, SnbId(SnbKind::kPlace, i % kContinents), snb.is_part_of);
  }
  const uint64_t city_base = country_base + config.num_countries;
  for (uint64_t i = 0; i < config.num_cities; ++i) {
    VertexId id = SnbId(SnbKind::kPlace, city_base + i);
    b.AddVertex(id, snb.place,
                {{snb.name, Value("City" + std::to_string(i))},
                 {snb.place_type, Value("city")}});
    b.AddEdge(id, SnbId(SnbKind::kPlace, country_base + i % config.num_countries),
              snb.is_part_of);
  }
  auto city_id = [&](uint64_t i) { return SnbId(SnbKind::kPlace, city_base + i); };
  auto country_id = [&](uint64_t i) {
    return SnbId(SnbKind::kPlace, country_base + i);
  };

  // --- tag classes (tree) and tags ------------------------------------------
  for (uint64_t i = 0; i < config.num_tag_classes; ++i) {
    VertexId id = SnbId(SnbKind::kTagClass, i);
    b.AddVertex(id, snb.tag_class,
                {{snb.name, Value("TagClass" + std::to_string(i))}});
    if (i > 0) {
      b.AddEdge(id, SnbId(SnbKind::kTagClass, (i - 1) / 2), snb.is_subclass_of);
    }
  }
  for (uint64_t i = 0; i < config.num_tags; ++i) {
    VertexId id = SnbId(SnbKind::kTag, i);
    b.AddVertex(id, snb.tag, {{snb.name, Value("Tag" + std::to_string(i))}});
    b.AddEdge(id, SnbId(SnbKind::kTagClass, i % config.num_tag_classes),
              snb.has_type);
  }
  auto tag_id = [&](uint64_t i) { return SnbId(SnbKind::kTag, i); };

  // --- organisations ----------------------------------------------------------
  for (uint64_t i = 0; i < config.num_universities; ++i) {
    VertexId id = SnbId(SnbKind::kOrganisation, i);
    b.AddVertex(id, snb.organisation,
                {{snb.name, Value("University" + std::to_string(i))},
                 {snb.org_type, Value("university")}});
    b.AddEdge(id, country_id(i % config.num_countries), snb.is_located_in);
  }
  const uint64_t company_base = config.num_universities;
  for (uint64_t i = 0; i < config.num_companies; ++i) {
    VertexId id = SnbId(SnbKind::kOrganisation, company_base + i);
    b.AddVertex(id, snb.organisation,
                {{snb.name, Value("Company" + std::to_string(i))},
                 {snb.org_type, Value("company")}});
    b.AddEdge(id, country_id(i % config.num_countries), snb.is_located_in);
  }

  // --- persons -----------------------------------------------------------------
  const uint64_t np = config.num_persons;
  for (uint64_t i = 0; i < np; ++i) {
    VertexId id = SnbId(SnbKind::kPerson, i);
    b.AddVertex(
        id, snb.person,
        {{snb.first_name,
          Value(kFirstNames[rng.Below(std::size(kFirstNames))])},
         {snb.last_name, Value(kLastNames[rng.Below(std::size(kLastNames))])},
         {snb.gender, Value(rng.Chance(0.5) ? "male" : "female")},
         {snb.birthday, Value(rng.Range(1950 * 372, 2005 * 372))},
         {snb.creation_date, date()},
         {snb.browser, Value(kBrowsers[rng.Below(std::size(kBrowsers))])},
         {snb.location_ip, Value(int64_t(rng.Next() & 0xffffffffu))}});
    b.AddEdge(id, city_id(rng.Below(config.num_cities)), snb.is_located_in);
    uint64_t interests = 1 + rng.Below(5);
    for (uint64_t k = 0; k < interests; ++k) {
      b.AddEdge(id, tag_id(rng.Below(config.num_tags)), snb.has_interest);
    }
    if (rng.Chance(0.7)) {
      b.AddEdge(id, SnbId(SnbKind::kOrganisation, rng.Below(config.num_universities)),
                snb.study_at, Value(rng.Range(1970, 2020)));
    }
    if (rng.Chance(0.8)) {
      b.AddEdge(id,
                SnbId(SnbKind::kOrganisation,
                      company_base + rng.Below(config.num_companies)),
                snb.work_at, Value(rng.Range(1980, 2024)));
    }
  }

  // --- knows (undirected: both directed edges carry creationDate) -------------
  {
    std::unordered_set<uint64_t> pairs;
    uint64_t target = static_cast<uint64_t>(config.avg_friends * np / 2.0);
    uint64_t made = 0;
    while (made < target) {
      uint64_t a = SkewedPick(&rng, np);
      uint64_t c = rng.Below(np);
      if (a == c) continue;
      uint64_t key = std::min(a, c) * np + std::max(a, c);
      if (!pairs.insert(key).second) continue;
      Value d = date();
      b.AddEdge(SnbId(SnbKind::kPerson, a), SnbId(SnbKind::kPerson, c), snb.knows, d);
      b.AddEdge(SnbId(SnbKind::kPerson, c), SnbId(SnbKind::kPerson, a), snb.knows, d);
      ++made;
    }
  }

  // --- forums, posts, comments, likes ------------------------------------------
  uint64_t num_forums = std::max<uint64_t>(1, config.forums_per_person * np);
  uint64_t post_count = 0, comment_count = 0;
  std::vector<std::vector<uint64_t>> forum_members(num_forums);
  for (uint64_t f = 0; f < num_forums; ++f) {
    VertexId fid = SnbId(SnbKind::kForum, f);
    uint64_t moderator = SkewedPick(&rng, np);
    b.AddVertex(fid, snb.forum,
                {{snb.title, Value("Forum" + std::to_string(f))},
                 {snb.creation_date, date()}});
    b.AddEdge(fid, SnbId(SnbKind::kPerson, moderator), snb.has_moderator);
    b.AddEdge(fid, tag_id(rng.Below(config.num_tags)), snb.has_tag);

    uint64_t members = 1 + rng.Below(static_cast<uint64_t>(
                               2 * config.members_per_forum));
    forum_members[f].push_back(moderator);
    b.AddEdge(fid, SnbId(SnbKind::kPerson, moderator), snb.has_member, date());
    for (uint64_t m = 0; m < members; ++m) {
      uint64_t p = SkewedPick(&rng, np);
      forum_members[f].push_back(p);
      b.AddEdge(fid, SnbId(SnbKind::kPerson, p), snb.has_member, date());
    }
  }

  for (uint64_t f = 0; f < num_forums; ++f) {
    VertexId fid = SnbId(SnbKind::kForum, f);
    uint64_t posts = rng.Below(static_cast<uint64_t>(2 * config.posts_per_forum) + 1);
    for (uint64_t q = 0; q < posts; ++q) {
      uint64_t post_ord = post_count++;
      VertexId pid = SnbId(SnbKind::kPost, post_ord);
      int64_t post_date = rng.Range(config.min_date, config.max_date);
      uint64_t creator =
          forum_members[f][rng.Below(forum_members[f].size())];
      b.AddVertex(pid, snb.post,
                  {{snb.content, Value("post-content-" + std::to_string(post_ord))},
                   {snb.length, Value(rng.Range(10, 2000))},
                   {snb.creation_date, Value(post_date)},
                   {snb.language, Value(kLanguages[rng.Below(std::size(kLanguages))])},
                   {snb.browser, Value(kBrowsers[rng.Below(std::size(kBrowsers))])}});
      b.AddEdge(fid, pid, snb.container_of);
      b.AddEdge(pid, SnbId(SnbKind::kPerson, creator), snb.has_creator);
      b.AddEdge(pid, country_id(rng.Below(config.num_countries)), snb.is_located_in);
      uint64_t ntags = 1 + rng.Below(static_cast<uint64_t>(config.tags_per_message) + 1);
      for (uint64_t k = 0; k < ntags; ++k) {
        b.AddEdge(pid, tag_id(rng.Below(config.num_tags)), snb.has_tag);
      }
      // likes on the post
      uint64_t nlikes = rng.Below(static_cast<uint64_t>(2 * config.likes_per_message) + 1);
      for (uint64_t k = 0; k < nlikes; ++k) {
        b.AddEdge(SnbId(SnbKind::kPerson, SkewedPick(&rng, np)), pid, snb.likes,
                  Value(rng.Range(post_date, config.max_date)));
      }

      // comments (reply tree rooted at the post)
      uint64_t ncomments =
          rng.Below(static_cast<uint64_t>(2 * config.comments_per_post) + 1);
      std::vector<VertexId> thread = {pid};
      for (uint64_t k = 0; k < ncomments; ++k) {
        uint64_t com_ord = comment_count++;
        VertexId cid = SnbId(SnbKind::kComment, com_ord);
        int64_t cdate = rng.Range(post_date, config.max_date);
        uint64_t ccreator = SkewedPick(&rng, np);
        b.AddVertex(cid, snb.comment,
                    {{snb.content, Value("reply-" + std::to_string(com_ord))},
                     {snb.length, Value(rng.Range(5, 500))},
                     {snb.creation_date, Value(cdate)},
                     {snb.browser, Value(kBrowsers[rng.Below(std::size(kBrowsers))])}});
        b.AddEdge(cid, thread[rng.Below(thread.size())], snb.reply_of);
        b.AddEdge(cid, SnbId(SnbKind::kPerson, ccreator), snb.has_creator);
        if (rng.Chance(0.4)) {
          b.AddEdge(cid, tag_id(rng.Below(config.num_tags)), snb.has_tag);
        }
        uint64_t clikes = rng.Below(static_cast<uint64_t>(config.likes_per_message) + 1);
        for (uint64_t k2 = 0; k2 < clikes; ++k2) {
          b.AddEdge(SnbId(SnbKind::kPerson, SkewedPick(&rng, np)), cid, snb.likes,
                    Value(rng.Range(cdate, config.max_date)));
        }
        thread.push_back(cid);
      }
    }
  }

  auto built = b.Build();
  if (!built.ok()) return built.status();

  auto dataset = std::make_shared<SnbDataset>(
      SnbDataset{schema, built.TakeValue(), snb, config, num_forums, post_count,
                 comment_count});
  dataset->graph->BuildIndex(snb.person, snb.first_name);
  dataset->graph->BuildIndex(snb.tag, snb.name);
  return dataset;
}

}  // namespace graphdance
