#ifndef GRAPHDANCE_LDBC_SNB_UPDATES_H_
#define GRAPHDANCE_LDBC_SNB_UPDATES_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ldbc/snb_generator.h"
#include "txn/dist_txn.h"

namespace graphdance {

/// LDBC SNB interactive *update* operations (the insert side of the
/// interactive workload), generated deterministically against a base
/// SnbDataset. Each operation is one multi-partition write transaction —
/// e.g. INS6 (add post) touches the forum, the new post, the creator and a
/// tag, which hash to different partitions — and they are what the
/// serializability oracle interleaves with IC/IS reads.
enum class SnbUpdateKind : uint8_t {
  kAddLike = 0,      // INS2/3: person -likes-> message (creationDate)
  kAddKnows,         // INS8:  person <-knows-> person, both directions
  kAddPost,          // INS6:  new post + containerOf/hasCreator/hasTag
  kAddComment,       // INS7:  new comment + replyOf/hasCreator
  kAddForumMember,   // INS5:  forum -hasMember-> person (joinDate)
};

struct SnbUpdateTxn {
  SnbUpdateKind kind = SnbUpdateKind::kAddLike;
  VertexId person = kInvalidVertex;   // actor
  VertexId person2 = kInvalidVertex;  // kAddKnows: the other endpoint
  VertexId forum = kInvalidVertex;    // kAddPost / kAddForumMember
  VertexId message = kInvalidVertex;  // kAddLike / kAddComment target
  /// Pre-assigned fresh vertex id for kAddPost / kAddComment; derived from
  /// the update's index so the id is the same whatever order commits land.
  VertexId new_vertex = kInvalidVertex;
  VertexId tag = kInvalidVertex;      // kAddPost hasTag target
  int64_t creation_date = 0;
};

/// Generates `count` update operations. Anchors are drawn from a hot window
/// of `hot_persons` persons (and their forums/messages) about half the time,
/// so concurrent transactions genuinely contend for write locks; the rest
/// spread uniformly. Fresh post/comment ids start past the base dataset's
/// counts and step by the update index, keeping the stream replayable.
std::vector<SnbUpdateTxn> GenerateSnbUpdates(const SnbDataset& data,
                                             uint64_t seed, uint32_t count,
                                             uint32_t hot_persons);

/// Buffers one update operation's writes into an open transaction of `mgr`.
/// Purely buffering (OCC): conflicts surface at commit time.
Status BufferSnbUpdate(DistTxnManager* mgr, DistTxnManager::TxnId txn,
                       const SnbDataset& data, const SnbUpdateTxn& u);

}  // namespace graphdance

#endif  // GRAPHDANCE_LDBC_SNB_UPDATES_H_
