#ifndef GRAPHDANCE_LDBC_SNB_GENERATOR_H_
#define GRAPHDANCE_LDBC_SNB_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "ldbc/snb_schema.h"

namespace graphdance {

/// Parameters of the synthetic LDBC SNB dataset. Every other entity count
/// derives from `num_persons` using the benchmark's approximate ratios
/// (posts/comments dominate the edge count, `knows` is power-law).
/// See DESIGN.md §1: the official DATAGEN output is unavailable offline; this
/// generator reproduces the schema and the structural skews the interactive
/// queries exercise.
struct SnbConfig {
  uint64_t num_persons = 1000;
  uint64_t seed = 2024;

  double avg_friends = 14.0;       // knows degree (power-law)
  double forums_per_person = 0.8;
  double members_per_forum = 16.0;
  double posts_per_forum = 8.0;
  double comments_per_post = 3.0;
  double likes_per_message = 1.5;
  double tags_per_message = 1.6;
  uint64_t num_tags = 120;
  uint64_t num_tag_classes = 20;
  uint64_t num_countries = 30;
  uint64_t num_cities = 120;
  uint64_t num_universities = 60;
  uint64_t num_companies = 100;

  /// Simulated calendar range for creationDate/joinDate values (days).
  int64_t min_date = 0;
  int64_t max_date = 3000;

  /// Scale presets mirroring the paper's Table II datasets at laptop scale
  /// (the SF1000:SF300 size ratio of ~3x is preserved).
  static SnbConfig Sf300Sim() {
    SnbConfig c;
    c.num_persons = 9'000;
    return c;
  }
  static SnbConfig Sf1000Sim() {
    SnbConfig c;
    c.num_persons = 27'000;
    return c;
  }
  static SnbConfig Tiny(uint64_t persons = 300) {
    SnbConfig c;
    c.num_persons = persons;
    return c;
  }
};

/// A generated SNB dataset: the partitioned graph plus handles the queries
/// and drivers need (schema ids and derived entity counts).
struct SnbDataset {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  SnbSchema snb;
  SnbConfig config;
  uint64_t num_forums = 0;
  uint64_t num_posts = 0;
  uint64_t num_comments = 0;

  VertexId PersonId(uint64_t i) const { return SnbId(SnbKind::kPerson, i); }
  VertexId PostId(uint64_t i) const { return SnbId(SnbKind::kPost, i); }
  VertexId CommentId(uint64_t i) const { return SnbId(SnbKind::kComment, i); }
  VertexId ForumId(uint64_t i) const { return SnbId(SnbKind::kForum, i); }
  VertexId TagId(uint64_t i) const { return SnbId(SnbKind::kTag, i); }
};

/// Generates the dataset deterministically. Secondary indexes on
/// (Person, firstName) and (Tag, name) are pre-built for the IC queries.
Result<std::shared_ptr<SnbDataset>> GenerateSnb(const SnbConfig& config,
                                                uint32_t num_partitions);

}  // namespace graphdance

#endif  // GRAPHDANCE_LDBC_SNB_GENERATOR_H_
