#include "ldbc/driver.h"

#include <algorithm>
#include <vector>

namespace graphdance {

namespace {

constexpr double kSecondsToNs = 1e9;

const char* kCountries[] = {"Country0", "Country1", "Country2", "Country3"};
const char* kTagClasses[] = {"TagClass0", "TagClass1", "TagClass2"};
const char* kNames[] = {"Jan", "Emma", "Liam", "Olivia", "Wei", "Carlos"};

}  // namespace

SnbParams SnbParamGen::Next() {
  SnbParams p;
  p.person = data_.PersonId(rng_.Below(data_.config.num_persons));
  p.person2 = data_.PersonId(rng_.Below(data_.config.num_persons));
  if (data_.num_posts > 0 && rng_.Chance(0.7)) {
    p.message = data_.PostId(rng_.Below(data_.num_posts));
  } else if (data_.num_comments > 0) {
    p.message = data_.CommentId(rng_.Below(data_.num_comments));
  } else if (data_.num_posts > 0) {
    p.message = data_.PostId(rng_.Below(data_.num_posts));
  }
  p.first_name = kNames[rng_.Below(std::size(kNames))];
  p.tag_name = "Tag" + std::to_string(rng_.Below(data_.config.num_tags));
  p.tag_class = kTagClasses[rng_.Below(std::size(kTagClasses))];
  p.country = kCountries[rng_.Below(std::size(kCountries))];
  int64_t span = data_.config.max_date - data_.config.min_date;
  p.min_date = data_.config.min_date + span / 4;
  p.max_date = data_.config.max_date - span / 4;
  p.year = 2012;
  return p;
}

// The registry records nanoseconds; the report speaks microseconds. "query"
// is the cluster's own all-queries histogram, not a driver family label.
double DriverReport::AvgLatencyMicros(const std::string& prefix) const {
  double sum = 0.0;
  int n = 0;
  for (const auto& [name, hist] : metrics.latency) {
    if (name != "query" && name.rfind(prefix, 0) == 0 && hist.Count() > 0) {
      sum += hist.Avg() / 1000.0;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double DriverReport::P99LatencyMicros(const std::string& prefix) const {
  double worst = 0.0;
  for (const auto& [name, hist] : metrics.latency) {
    if (name != "query" && name.rfind(prefix, 0) == 0 && hist.Count() > 0) {
      worst = std::max(worst, static_cast<double>(hist.P99()) / 1000.0);
    }
  }
  return worst;
}

DriverReport RunMixedWorkload(SimCluster* cluster, TransactionManager* txn,
                              const SnbDataset& data, const DriverConfig& config) {
  DriverReport report;
  report.offered_duration_s = config.duration_s;
  SnbParamGen params(data, config.seed);
  Rng rng(config.seed ^ 0x1234abcdULL);

  struct Arrival {
    SimTime at;
    std::string name;
    int family;  // 0 = IC, 1 = IS, 2 = UP
    int number;
  };
  std::vector<Arrival> arrivals;
  auto add_family = [&](const char* prefix, int family, int variants,
                        double family_rate) {
    if (family_rate <= 0) return;
    // Round-robin the variants along the family's arrival sequence.
    double period_ns = kSecondsToNs * config.tcr / family_rate;
    uint64_t n = static_cast<uint64_t>(config.duration_s * kSecondsToNs / period_ns);
    for (uint64_t i = 0; i < n; ++i) {
      Arrival a;
      a.at = static_cast<SimTime>(i * period_ns + rng.Below(1000));
      a.number = 1 + static_cast<int>(i % variants);
      a.family = family;
      a.name = prefix + std::to_string(a.number);
      if (family == 2) a.name = "UP";
      arrivals.push_back(std::move(a));
    }
  };
  if (config.include_complex) {
    add_family("IC", 0, kNumInteractiveComplex, config.complex_rate);
  }
  if (config.include_short) {
    add_family("IS", 1, kNumInteractiveShort, config.short_rate);
  }
  if (config.include_updates && txn != nullptr) {
    add_family("UP", 2, 5, config.update_rate);
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Arrival& a, const Arrival& b) { return a.at < b.at; });

  // Updates apply in arrival order (the manager serializes commits); queries
  // read the LCT current at their arrival time.
  struct Submitted {
    uint64_t id;
    std::string name;
  };
  std::vector<Submitted> submitted;
  uint64_t dynamic_comment = 1'000'000;  // fresh ids for inserted entities
  uint64_t dynamic_forum = 1'000'000;

  for (const Arrival& a : arrivals) {
    SnbParams p = params.Next();
    if (a.family == 2) {
      // Update stream: likes, comment inserts, friendships (UP2/UP6/UP8).
      auto t = txn->Begin();
      Status s;
      switch (a.number) {
        case 1:
          s = txn->AddEdge(t, p.person, data.snb.likes, p.message,
                           Value(int64_t{2500}));
          break;
        case 2: {
          VertexId cid = data.CommentId(dynamic_comment++);
          s = txn->AddVertex(t, cid, data.snb.comment);
          if (s.ok()) s = txn->AddEdge(t, cid, data.snb.reply_of, p.message);
          if (s.ok()) s = txn->AddEdge(t, cid, data.snb.has_creator, p.person);
          break;
        }
        case 3:
          s = txn->AddEdge(t, p.person, data.snb.knows, p.person2,
                           Value(int64_t{2500}));
          break;
        case 4: {
          // UP4: add forum with moderator (LDBC Update 4).
          VertexId fid = data.ForumId(dynamic_forum++);
          s = txn->AddVertex(t, fid, data.snb.forum);
          if (s.ok()) s = txn->AddEdge(t, fid, data.snb.has_moderator, p.person);
          if (s.ok()) {
            s = txn->AddEdge(t, fid, data.snb.has_member, p.person,
                             Value(int64_t{2500}));
          }
          break;
        }
        case 5:
          // UP5: add forum membership (LDBC Update 5).
          if (data.num_forums > 0) {
            s = txn->AddEdge(t, data.ForumId(p.person2 % data.num_forums),
                             data.snb.has_member, p.person, Value(int64_t{2500}));
          }
          break;
        default:
          break;
      }
      double latency_us = 2.0;  // lock + apply path, charged in virtual time
      if (s.ok()) {
        auto c = txn->Commit(t);
        if (!c.ok()) latency_us = 1.0;
      } else {
        latency_us = 1.0;  // aborted by conflict
      }
      cluster->metrics().latency("UP").Record(
          static_cast<uint64_t>(latency_us * 1000.0));
      ++report.total_operations;
      continue;
    }

    Result<PlanPtr> plan = a.family == 0 ? BuildInteractiveComplex(a.number, data, p)
                                         : BuildInteractiveShort(a.number, data, p);
    if (!plan.ok()) continue;
    Timestamp read_ts = txn != nullptr ? txn->ReadTimestamp() : kMaxTimestamp - 1;
    uint64_t id = cluster->Submit(plan.TakeValue(), a.at, read_ts);
    submitted.push_back(Submitted{id, a.name});
    ++report.total_operations;
  }

  Status s = cluster->RunToCompletion();
  report.makespan = cluster->quiescent_time();
  if (s.ok()) {
    for (const Submitted& sub : submitted) {
      const QueryResult& r = cluster->result(sub.id);
      if (r.done) cluster->metrics().latency(sub.name).Record(r.LatencyNanos());
    }
  }
  report.metrics = cluster->MetricsSnapshot();
  // "Keeping up": the backlog drained within 50% slack of the offered window
  // (TigerGraph-style failures show up as makespans far beyond the window).
  report.kept_up =
      s.ok() && report.makespan <=
                    static_cast<SimTime>(config.duration_s * kSecondsToNs * 1.5) +
                        50'000'000ULL;
  return report;
}

}  // namespace graphdance
