#include "ldbc/reference.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "pstm/steps.h"

namespace graphdance {

namespace {

using Graph = PartitionedGraph;

std::vector<std::pair<VertexId, Value>> Nbrs(const Graph& g, VertexId v,
                                             LabelId elabel, Direction dir) {
  std::vector<std::pair<VertexId, Value>> out;
  g.ForEachNeighbor(v, elabel, dir,
                    [&](VertexId d, const Value& p) { out.emplace_back(d, p); });
  return out;
}

Value P(const Graph& g, VertexId v, PropKeyId key) {
  const Value* p = g.PropertyOf(v, key);
  return p == nullptr ? Value() : *p;
}

/// Min knows-distance within `k` hops of `start` (start included, dist 0).
std::unordered_map<VertexId, int> MinDist(const Graph& g, LabelId knows,
                                          VertexId start, int k) {
  std::unordered_map<VertexId, int> dist = {{start, 0}};
  std::vector<VertexId> frontier = {start};
  for (int hop = 1; hop <= k; ++hop) {
    std::vector<VertexId> next;
    for (VertexId v : frontier) {
      g.ForEachNeighbor(v, knows, Direction::kOut, [&](VertexId d, const Value&) {
        if (dist.emplace(d, hop).second) next.push_back(d);
      });
    }
    frontier = std::move(next);
  }
  return dist;
}

std::vector<Row> TopK(std::vector<Row> rows, const std::vector<SortSpec>& specs,
                      size_t k) {
  std::sort(rows.begin(), rows.end(),
            [&](const Row& a, const Row& b) { return RowLess(a, b, specs); });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

Value Id(VertexId v) { return Value(static_cast<int64_t>(v)); }

/// Group counts -> rows [key, count], only keys with count > 0.
std::vector<Row> CountRows(const std::map<Value, int64_t>& counts) {
  std::vector<Row> rows;
  for (const auto& [key, n] : counts) rows.push_back(Row{key, Value(n)});
  return rows;
}

}  // namespace

std::vector<Row> ReferenceInteractiveComplex(int number, const SnbDataset& data,
                                             const SnbParams& q) {
  const Graph& g = *data.graph;
  const SnbSchema& s = data.snb;

  switch (number) {
    case 1: {
      auto dist = MinDist(g, s.knows, q.person, 3);
      std::vector<Row> rows;
      for (const auto& [v, d] : dist) {
        if (v == q.person) continue;
        if (P(g, v, s.first_name) != Value(q.first_name)) continue;
        rows.push_back(Row{Value(int64_t{d}), P(g, v, s.last_name), Id(v)});
      }
      return TopK(std::move(rows), {{0, true}, {1, true}, {2, true}}, 20);
    }

    case 2: {
      std::vector<Row> rows;
      for (auto& [f, unused] : Nbrs(g, q.person, s.knows, Direction::kOut)) {
        for (auto& [m, u2] : Nbrs(g, f, s.has_creator, Direction::kIn)) {
          Value date = P(g, m, s.creation_date);
          if (date.ToInt() <= q.max_date) rows.push_back(Row{date, Id(m)});
        }
      }
      return TopK(std::move(rows), {{0, false}, {1, true}}, 20);
    }

    case 3: {
      auto dist = MinDist(g, s.knows, q.person, 2);
      std::map<Value, int64_t> counts;
      for (const auto& [f, d] : dist) {
        if (f == q.person) continue;
        for (auto& [m, u] : Nbrs(g, f, s.has_creator, Direction::kIn)) {
          int64_t date = P(g, m, s.creation_date).ToInt();
          if (date < q.min_date || date > q.max_date) continue;
          for (auto& [c, u2] : Nbrs(g, m, s.is_located_in, Direction::kOut)) {
            if (P(g, c, s.name) == Value(q.country)) counts[Id(f)]++;
          }
        }
      }
      return TopK(CountRows(counts), {{1, false}, {0, true}}, 20);
    }

    case 4: {
      std::map<Value, int64_t> counts;  // key: tag vertex id
      for (auto& [f, u] : Nbrs(g, q.person, s.knows, Direction::kOut)) {
        for (auto& [m, u2] : Nbrs(g, f, s.has_creator, Direction::kIn)) {
          int64_t date = P(g, m, s.creation_date).ToInt();
          if (date < q.min_date || date > q.max_date) continue;
          for (auto& [tag, u3] : Nbrs(g, m, s.has_tag, Direction::kOut)) {
            counts[Id(tag)]++;
          }
        }
      }
      std::vector<Row> rows;
      for (const auto& [tag, n] : counts) {
        rows.push_back(
            Row{P(g, static_cast<VertexId>(tag.as_int()), s.name), Value(n)});
      }
      return TopK(std::move(rows), {{1, false}, {0, true}}, 10);
    }

    case 5: {
      auto dist = MinDist(g, s.knows, q.person, 2);
      std::map<Value, int64_t> counts;  // key: forum id
      for (const auto& [f, d] : dist) {
        if (f == q.person) continue;
        for (auto& [forum, join_date] : Nbrs(g, f, s.has_member, Direction::kIn)) {
          if (join_date.ToInt() > q.min_date) counts[Id(forum)]++;
        }
      }
      std::vector<Row> rows;
      for (const auto& [forum, n] : counts) {
        rows.push_back(
            Row{P(g, static_cast<VertexId>(forum.as_int()), s.title), Value(n)});
      }
      return TopK(std::move(rows), {{1, false}, {0, true}}, 20);
    }

    case 6: {
      auto dist = MinDist(g, s.knows, q.person, 2);
      std::set<VertexId> friends;
      for (const auto& [f, d] : dist) {
        if (f != q.person) friends.insert(f);
      }
      std::map<Value, int64_t> counts;  // co-tag vertex id -> count
      // Mirror the join-plan multiplicities: per message, one A-side
      // instance when the creator is a friend, one B-side instance per
      // hasTag edge to the parameter tag, and one output per co-tag edge.
      auto handle_message = [&](VertexId m) {
        bool by_friend = false;
        for (auto& [creator, u] : Nbrs(g, m, s.has_creator, Direction::kOut)) {
          if (friends.count(creator) > 0) by_friend = true;
        }
        if (!by_friend) return;
        int b_side = 0;
        auto tags = Nbrs(g, m, s.has_tag, Direction::kOut);
        for (auto& [tag, u] : tags) {
          if (P(g, tag, s.name) == Value(q.tag_name)) ++b_side;
        }
        if (b_side == 0) return;
        for (auto& [tag, u] : tags) {
          if (P(g, tag, s.name) != Value(q.tag_name)) counts[Id(tag)] += b_side;
        }
      };
      for (uint64_t i = 0; i < data.num_posts; ++i) handle_message(data.PostId(i));
      for (uint64_t i = 0; i < data.num_comments; ++i) {
        handle_message(data.CommentId(i));
      }
      std::vector<Row> rows;
      for (const auto& [tag, n] : counts) {
        rows.push_back(
            Row{P(g, static_cast<VertexId>(tag.as_int()), s.name), Value(n)});
      }
      return TopK(std::move(rows), {{1, false}, {0, true}}, 10);
    }

    case 7: {
      std::vector<Row> rows;
      for (auto& [m, u] : Nbrs(g, q.person, s.has_creator, Direction::kIn)) {
        for (auto& [liker, date] : Nbrs(g, m, s.likes, Direction::kIn)) {
          rows.push_back(Row{date, Id(liker)});
        }
      }
      return TopK(std::move(rows), {{0, false}, {1, true}}, 20);
    }

    case 8: {
      std::vector<Row> rows;
      for (auto& [m, u] : Nbrs(g, q.person, s.has_creator, Direction::kIn)) {
        for (auto& [reply, u2] : Nbrs(g, m, s.reply_of, Direction::kIn)) {
          rows.push_back(Row{P(g, reply, s.creation_date), Id(reply)});
        }
      }
      return TopK(std::move(rows), {{0, false}, {1, true}}, 20);
    }

    case 9: {
      auto dist = MinDist(g, s.knows, q.person, 2);
      std::vector<Row> rows;
      for (const auto& [f, d] : dist) {
        if (f == q.person) continue;
        for (auto& [m, u] : Nbrs(g, f, s.has_creator, Direction::kIn)) {
          Value date = P(g, m, s.creation_date);
          if (date.ToInt() < q.max_date) rows.push_back(Row{date, Id(m)});
        }
      }
      return TopK(std::move(rows), {{0, false}, {1, true}}, 20);
    }

    case 10: {
      auto dist = MinDist(g, s.knows, q.person, 2);
      std::map<Value, int64_t> counts;
      for (const auto& [v, d] : dist) {
        if (d != 2) continue;
        int64_t messages =
            static_cast<int64_t>(Nbrs(g, v, s.has_creator, Direction::kIn).size());
        if (messages > 0) counts[Id(v)] = messages;
      }
      return TopK(CountRows(counts), {{1, false}, {0, true}}, 10);
    }

    case 11: {
      auto dist = MinDist(g, s.knows, q.person, 2);
      std::vector<Row> rows;
      for (const auto& [f, d] : dist) {
        if (f == q.person) continue;
        for (auto& [org, work_from] : Nbrs(g, f, s.work_at, Direction::kOut)) {
          if (work_from.ToInt() >= q.year) continue;
          for (auto& [country, u] : Nbrs(g, org, s.is_located_in, Direction::kOut)) {
            if (P(g, country, s.name) == Value(q.country)) {
              rows.push_back(Row{work_from, Id(f)});
            }
          }
        }
      }
      return TopK(std::move(rows), {{0, true}, {1, true}}, 10);
    }

    case 12: {
      std::map<Value, int64_t> counts;
      for (auto& [f, u] : Nbrs(g, q.person, s.knows, Direction::kOut)) {
        for (auto& [m, u2] : Nbrs(g, f, s.has_creator, Direction::kIn)) {
          if (g.LabelOf(m) != s.comment) continue;
          for (auto& [parent, u3] : Nbrs(g, m, s.reply_of, Direction::kOut)) {
            if (g.LabelOf(parent) != s.post) continue;
            for (auto& [tag, u4] : Nbrs(g, parent, s.has_tag, Direction::kOut)) {
              for (auto& [cls, u5] : Nbrs(g, tag, s.has_type, Direction::kOut)) {
                if (P(g, cls, s.name) == Value(q.tag_class)) counts[Id(f)]++;
              }
            }
          }
        }
      }
      return TopK(CountRows(counts), {{1, false}, {0, true}}, 20);
    }

    case 13: {
      auto dist = MinDist(g, s.knows, q.person, 6);
      auto it = dist.find(q.person2);
      if (it == dist.end()) return {Row{Value()}};
      return {Row{Value(int64_t{it->second})}};
    }

    case 14: {
      auto dist = MinDist(g, s.knows, q.person, 4);
      std::map<Value, int64_t> histogram;
      for (const auto& [v, d] : dist) histogram[Value(int64_t{d})]++;
      return TopK(CountRows(histogram), {{0, true}}, 10);
    }

    default:
      return {};
  }
}

std::vector<Row> ReferenceInteractiveShort(int number, const SnbDataset& data,
                                           const SnbParams& q) {
  const Graph& g = *data.graph;
  const SnbSchema& s = data.snb;
  switch (number) {
    case 1:
      return {Row{P(g, q.person, s.first_name), P(g, q.person, s.last_name),
                  P(g, q.person, s.gender), P(g, q.person, s.birthday),
                  P(g, q.person, s.browser)}};
    case 2: {
      std::vector<Row> rows;
      for (auto& [m, u] : Nbrs(g, q.person, s.has_creator, Direction::kIn)) {
        rows.push_back(Row{P(g, m, s.creation_date), Id(m)});
      }
      return TopK(std::move(rows), {{0, false}, {1, true}}, 10);
    }
    case 3: {
      std::vector<Row> rows;
      for (auto& [f, date] : Nbrs(g, q.person, s.knows, Direction::kOut)) {
        rows.push_back(Row{date, Id(f), P(g, f, s.first_name)});
      }
      return TopK(std::move(rows), {{0, false}, {1, true}}, 1000);
    }
    case 4:
      return {Row{P(g, q.message, s.creation_date), P(g, q.message, s.content)}};
    case 5: {
      std::vector<Row> rows;
      for (auto& [p, u] : Nbrs(g, q.message, s.has_creator, Direction::kOut)) {
        rows.push_back(Row{Id(p), P(g, p, s.first_name), P(g, p, s.last_name)});
      }
      return rows;
    }
    case 6: {
      VertexId m = q.message;
      // Walk the reply chain up to the root post.
      while (g.LabelOf(m) == s.comment) {
        auto parents = Nbrs(g, m, s.reply_of, Direction::kOut);
        if (parents.empty()) return {};
        m = parents[0].first;
      }
      std::vector<Row> rows;
      for (auto& [forum, u] : Nbrs(g, m, s.container_of, Direction::kIn)) {
        rows.push_back(Row{Id(forum), P(g, forum, s.title)});
      }
      return rows;
    }
    case 7: {
      std::vector<Row> rows;
      for (auto& [reply, u] : Nbrs(g, q.message, s.reply_of, Direction::kIn)) {
        rows.push_back(Row{P(g, reply, s.creation_date), Id(reply)});
      }
      return TopK(std::move(rows), {{0, false}, {1, true}}, 100);
    }
    default:
      return {};
  }
}

}  // namespace graphdance
