#include "ldbc/snb_queries.h"

#include "query/gremlin.h"

namespace graphdance {

namespace {

Predicate NotSelf(VertexId person) {
  Predicate p;
  p.lhs = Operand::VertexIdOp();
  p.op = CmpOp::kNe;
  p.rhs = Operand::Const(Value(static_cast<int64_t>(person)));
  return p;
}

Predicate VarPred(uint32_t var, CmpOp op, Value rhs) {
  Predicate p;
  p.lhs = Operand::Var(var);
  p.op = op;
  p.rhs = Operand::Const(std::move(rhs));
  return p;
}

Predicate LabelPred(LabelId label) {
  Predicate p;
  p.lhs = Operand::LabelOp();
  p.op = CmpOp::kEq;
  p.rhs = Operand::Const(Value(static_cast<int64_t>(label)));
  return p;
}

}  // namespace

Result<PlanPtr> BuildInteractiveComplex(int number, const SnbDataset& data,
                                        const SnbParams& params) {
  const SnbSchema& s = data.snb;
  Traversal t(data.graph);
  switch (number) {
    case 1:
      // IC1: persons with the given first name reachable within 3 knows
      // hops, ordered by (distance, lastName, id), top 20.
      // Tee-on-improve + min-aggregation makes the reported distance the
      // true minimum regardless of asynchronous visit order.
      t.V({params.person})
          .RepeatOut("knows", 3, /*dedup=*/true)
          .TeeOnImprove()
          .Has("firstName", CmpOp::kEq, Value(params.first_name))
          .Where(NotSelf(params.person))
          .GroupBy(Operand::VertexIdOp(), Operand::HopOp(), AggFunc::kMin)
          .Project({Operand::Var(1), Operand::Property(s.last_name),
                    Operand::VertexIdOp()})
          .OrderByLimit({{0, true}, {1, true}, {2, true}}, 20);
      break;

    case 2:
      // IC2: recent messages (<= maxDate) by direct friends, newest first.
      t.V({params.person})
          .Out("knows")
          .In("hasCreator")
          .Has("creationDate", CmpOp::kLe, Value(params.max_date))
          .Project({Operand::Property(s.creation_date), Operand::VertexIdOp()})
          .OrderByLimit({{0, false}, {1, true}}, 20);
      break;

    case 3:
      // IC3 (simplified): posts by friends within 2 hops, located in the
      // given country and date window; count per friend, top 20.
      t.V({params.person})
          .RepeatOut("knows", 2, true)
          .Where(NotSelf(params.person))
          .Project({Operand::VertexIdOp()})
          .In("hasCreator")
          .Has("creationDate", CmpOp::kGe, Value(params.min_date))
          .Has("creationDate", CmpOp::kLe, Value(params.max_date))
          .Out("isLocatedIn")
          .Has("name", CmpOp::kEq, Value(params.country))
          .GroupCount(Operand::Var(0))
          .OrderByLimit({{1, false}, {0, true}}, 20);
      break;

    case 4:
      // IC4: tags of posts created by friends in a date window, by count.
      t.V({params.person})
          .Out("knows")
          .In("hasCreator")
          .Has("creationDate", CmpOp::kGe, Value(params.min_date))
          .Has("creationDate", CmpOp::kLe, Value(params.max_date))
          .Out("hasTag")
          .GroupCount(Operand::VertexIdOp())
          .Project({Operand::Property(s.name), Operand::Var(1)})
          .OrderByLimit({{1, false}, {0, true}}, 10);
      break;

    case 5:
      // IC5: forums that friends within 2 hops joined after minDate, by
      // membership count.
      t.V({params.person})
          .RepeatOut("knows", 2, true)
          .Where(NotSelf(params.person))
          .In("hasMember")
          .FilterEdgeProp(CmpOp::kGt, Value(params.min_date))
          .GroupCount(Operand::VertexIdOp())
          .Project({Operand::Property(s.title), Operand::Var(1)})
          .OrderByLimit({{1, false}, {0, true}}, 20);
      break;

    case 6: {
      // IC6: co-occurring tags on messages by friends (<=2 hops) that carry
      // the given tag — executed as a double-pipelined join at the message
      // (the paper's Fig. 3 plan shape).
      Traversal friends_posts(data.graph);
      friends_posts.V({params.person})
          .RepeatOut("knows", 2, true)
          .Where(NotSelf(params.person))
          .In("hasCreator");
      Traversal tagged(data.graph);
      tagged.V("Tag", "name", Value(params.tag_name)).In("hasTag");
      t = Traversal::Join(std::move(friends_posts), Operand::VertexIdOp(),
                          std::move(tagged), Operand::VertexIdOp());
      t.Out("hasTag")
          .Has("name", CmpOp::kNe, Value(params.tag_name))
          .GroupCount(Operand::VertexIdOp())
          .Project({Operand::Property(s.name), Operand::Var(1)})
          .OrderByLimit({{1, false}, {0, true}}, 10);
      break;
    }

    case 7:
      // IC7: most recent likes on the person's messages.
      t.V({params.person})
          .In("hasCreator")
          .In("likes")
          .CaptureEdgeProp()
          .Project({Operand::Var(0), Operand::VertexIdOp()})
          .OrderByLimit({{0, false}, {1, true}}, 20);
      break;

    case 8:
      // IC8: most recent replies to the person's messages.
      t.V({params.person})
          .In("hasCreator")
          .In("replyOf")
          .Project({Operand::Property(s.creation_date), Operand::VertexIdOp()})
          .OrderByLimit({{0, false}, {1, true}}, 20);
      break;

    case 9:
      // IC9: recent messages (< maxDate) by friends within 2 hops.
      t.V({params.person})
          .RepeatOut("knows", 2, true)
          .Where(NotSelf(params.person))
          .In("hasCreator")
          .Has("creationDate", CmpOp::kLt, Value(params.max_date))
          .Project({Operand::Property(s.creation_date), Operand::VertexIdOp()})
          .OrderByLimit({{0, false}, {1, true}}, 20);
      break;

    case 10:
      // IC10 (simplified): friend recommendation — strictly-2-hop persons
      // (min knows-distance exactly 2), scored by message count. Uses
      // tee-on-improve + min-aggregation so asynchronous first-visit order
      // cannot misclassify distances.
      t.V({params.person})
          .RepeatOut("knows", 2, true)
          .TeeOnImprove()
          .Where(NotSelf(params.person))
          .GroupBy(Operand::VertexIdOp(), Operand::HopOp(), AggFunc::kMin)
          .Where(VarPred(1, CmpOp::kEq, Value(int64_t{2})))
          .In("hasCreator")
          .GroupCount(Operand::Var(0))
          .OrderByLimit({{1, false}, {0, true}}, 10);
      break;

    case 11:
      // IC11: friends within 2 hops working at a company in the given
      // country since before `year`, ordered by workFrom.
      t.V({params.person})
          .RepeatOut("knows", 2, true)
          .Where(NotSelf(params.person))
          .Project({Operand::VertexIdOp()})
          .Out("workAt")
          .CaptureEdgeProp()
          .Where(VarPred(1, CmpOp::kLt, Value(params.year)))
          .Out("isLocatedIn")
          .Has("name", CmpOp::kEq, Value(params.country))
          .Project({Operand::Var(1), Operand::Var(0)})
          .OrderByLimit({{0, true}, {1, true}}, 10);
      break;

    case 12:
      // IC12: expert search — friends whose comments reply to posts tagged
      // with a tag of the given class; count per friend.
      t.V({params.person})
          .Out("knows")
          .Project({Operand::VertexIdOp()})
          .In("hasCreator")
          .Where(LabelPred(s.comment))
          .Out("replyOf")
          .Where(LabelPred(s.post))
          .Out("hasTag")
          .Out("hasType")
          .Has("name", CmpOp::kEq, Value(params.tag_class))
          .GroupCount(Operand::Var(0))
          .OrderByLimit({{1, false}, {0, true}}, 20);
      break;

    case 13:
      // IC13: length of the shortest knows-path between two persons (up to
      // 6 hops; empty result means unreachable). Tee-on-improve guarantees
      // the minimal distance is observed regardless of async arrival order.
      t.V({params.person})
          .RepeatOut("knows", 6, true)
          .TeeOnImprove()
          .Where([&] {
            Predicate p;
            p.lhs = Operand::VertexIdOp();
            p.op = CmpOp::kEq;
            p.rhs = Operand::Const(Value(static_cast<int64_t>(params.person2)));
            return p;
          }())
          .Project({Operand::HopOp()})
          .Min(Operand::Var(0));
      break;

    case 14:
      // IC14 (simplified, see DESIGN.md): the min-distance histogram of the
      // person's 4-hop knows-neighborhood — rows [distance, #persons].
      // Deterministic under any engine (min-aggregation absorbs the
      // asynchronous visit order) while exercising the official query's
      // structure: shortest-path traversal plus two chained aggregations.
      t.V({params.person})
          .RepeatOut("knows", 4, true)
          .TeeOnImprove()
          .GroupBy(Operand::VertexIdOp(), Operand::HopOp(), AggFunc::kMin)
          .GroupCount(Operand::Var(1))
          .OrderByLimit({{0, true}}, 10);
      break;

    default:
      return Status::InvalidArgument("IC number out of range: " +
                                     std::to_string(number));
  }
  return t.Build();
}

Result<PlanPtr> BuildInteractiveShort(int number, const SnbDataset& data,
                                      const SnbParams& params) {
  const SnbSchema& s = data.snb;
  Traversal t(data.graph);
  switch (number) {
    case 1:
      // IS1: person profile.
      t.V({params.person})
          .Emit({Operand::Property(s.first_name), Operand::Property(s.last_name),
                 Operand::Property(s.gender), Operand::Property(s.birthday),
                 Operand::Property(s.browser)});
      break;
    case 2:
      // IS2: the person's 10 most recent messages.
      t.V({params.person})
          .In("hasCreator")
          .Project({Operand::Property(s.creation_date), Operand::VertexIdOp()})
          .OrderByLimit({{0, false}, {1, true}}, 10);
      break;
    case 3:
      // IS3: all friends with friendship creation date, newest first.
      t.V({params.person})
          .Out("knows")
          .CaptureEdgeProp()
          .Project({Operand::Var(0), Operand::VertexIdOp(),
                    Operand::Property(s.first_name)})
          .OrderByLimit({{0, false}, {1, true}}, 1000);
      break;
    case 4:
      // IS4: message content.
      t.V({params.message})
          .Emit({Operand::Property(s.creation_date), Operand::Property(s.content)});
      break;
    case 5:
      // IS5: message creator.
      t.V({params.message})
          .Out("hasCreator")
          .Emit({Operand::VertexIdOp(), Operand::Property(s.first_name),
                 Operand::Property(s.last_name)});
      break;
    case 6:
      // IS6: the forum containing the message (walking the reply chain up
      // to the root post first when starting from a comment).
      if (SnbKindOf(params.message) == SnbKind::kComment) {
        t.V({params.message})
            .RepeatOut("replyOf", 16, true)
            .Where(LabelPred(s.post))
            .In("containerOf")
            .Emit({Operand::VertexIdOp(), Operand::Property(s.title)});
      } else {
        t.V({params.message})
            .In("containerOf")
            .Emit({Operand::VertexIdOp(), Operand::Property(s.title)});
      }
      break;
    case 7:
      // IS7: replies to the message, newest first.
      t.V({params.message})
          .In("replyOf")
          .Project({Operand::Property(s.creation_date), Operand::VertexIdOp()})
          .OrderByLimit({{0, false}, {1, true}}, 100);
      break;
    default:
      return Status::InvalidArgument("IS number out of range: " +
                                     std::to_string(number));
  }
  return t.Build();
}

}  // namespace graphdance
