#ifndef GRAPHDANCE_LDBC_REFERENCE_H_
#define GRAPHDANCE_LDBC_REFERENCE_H_

#include <vector>

#include "ldbc/snb_generator.h"
#include "ldbc/snb_queries.h"
#include "pstm/memo.h"

namespace graphdance {

/// Single-threaded, straightforward reference implementations of every
/// interactive complex and short query, used as correctness oracles for the
/// distributed engines. Each returns rows in exactly the shape and order of
/// the corresponding PSTM plan.
std::vector<Row> ReferenceInteractiveComplex(int number, const SnbDataset& data,
                                             const SnbParams& params);
std::vector<Row> ReferenceInteractiveShort(int number, const SnbDataset& data,
                                           const SnbParams& params);

}  // namespace graphdance

#endif  // GRAPHDANCE_LDBC_REFERENCE_H_
