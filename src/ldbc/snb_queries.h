#ifndef GRAPHDANCE_LDBC_SNB_QUERIES_H_
#define GRAPHDANCE_LDBC_SNB_QUERIES_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "ldbc/snb_generator.h"
#include "pstm/plan.h"

namespace graphdance {

using PlanPtr = std::shared_ptr<const Plan>;

/// Parameters for the interactive queries. Each query reads the subset it
/// needs; the driver's parameter generator fills them from seeded draws.
struct SnbParams {
  VertexId person = 0;
  VertexId person2 = 0;      // IC13 / IC14
  VertexId message = 0;      // IS4-IS7
  std::string first_name;    // IC1
  std::string tag_name;      // IC6
  std::string tag_class;     // IC12
  std::string country;       // IC3 / IC11
  int64_t min_date = 0;      // IC3 / IC4 range start
  int64_t max_date = 3000;   // IC2 / IC5 / IC9 cutoff
  int64_t year = 2015;       // IC11 workFrom bound
};

/// Builds the PSTM plan for LDBC SNB Interactive Complex query `number`
/// (1..14). The plans follow the official query semantics with the
/// simplifications documented in DESIGN.md / ldbc/README notes; each keeps
/// the operator structure (multi-hop expansion, filtering, joins, grouped
/// aggregation, distributed top-k) that the paper's evaluation exercises.
Result<PlanPtr> BuildInteractiveComplex(int number, const SnbDataset& data,
                                        const SnbParams& params);

/// Builds Interactive Short query `number` (1..7).
Result<PlanPtr> BuildInteractiveShort(int number, const SnbDataset& data,
                                      const SnbParams& params);

inline constexpr int kNumInteractiveComplex = 14;
inline constexpr int kNumInteractiveShort = 7;

}  // namespace graphdance

#endif  // GRAPHDANCE_LDBC_SNB_QUERIES_H_
