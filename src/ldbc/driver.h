#ifndef GRAPHDANCE_LDBC_DRIVER_H_
#define GRAPHDANCE_LDBC_DRIVER_H_

#include <map>
#include <memory>
#include <string>

#include "common/histogram.h"
#include "ldbc/snb_generator.h"
#include "ldbc/snb_queries.h"
#include "runtime/sim_cluster.h"
#include "txn/txn_manager.h"

namespace graphdance {

/// Configuration of the mixed LDBC SNB Interactive workload (paper §V-A1).
/// Query issue rates follow the benchmark's style: each query family is
/// issued at a fixed frequency; the Time Compression Ratio (TCR) scales all
/// frequencies — a lower TCR means a higher offered load.
struct DriverConfig {
  double tcr = 1.0;
  double duration_s = 0.5;  // virtual seconds of workload
  uint64_t seed = 99;
  bool include_updates = true;
  bool include_complex = true;
  bool include_short = true;
  // Offered rates at TCR = 1 (operations per virtual second, per family).
  double short_rate = 400.0;
  double complex_rate = 28.0;
  double update_rate = 80.0;
};

/// Per-family latency results of one mixed-workload run. Latencies live in
/// the cluster's metrics registry: the driver records each operation into a
/// per-family histogram ("IC1".."IS7", "UP") and `metrics` is the cluster's
/// unified MetricsSnapshot() with those histograms inside.
struct DriverReport {
  obs::MetricsSnapshot metrics;
  uint64_t total_operations = 0;
  SimTime makespan = 0;       // virtual time until quiescence
  double offered_duration_s = 0.0;
  bool kept_up = false;       // finished within slack of the offered window

  /// Mean of per-family average latencies whose name starts with `prefix`
  /// (exact — histograms keep exact sums). P99 carries the histogram's
  /// bucket resolution (<= ~3.1% relative error).
  double AvgLatencyMicros(const std::string& prefix) const;
  double P99LatencyMicros(const std::string& prefix) const;
};

/// Generates parameters for query `seed`-deterministically.
class SnbParamGen {
 public:
  SnbParamGen(const SnbDataset& data, uint64_t seed) : data_(data), rng_(seed) {}
  SnbParams Next();

 private:
  const SnbDataset& data_;
  Rng rng_;
};

/// Runs the mixed interactive workload on `cluster` (any engine). Updates go
/// through `txn` (may be null to skip updates); queries read the LCT current
/// at their arrival. Returns per-family latency statistics.
DriverReport RunMixedWorkload(SimCluster* cluster, TransactionManager* txn,
                              const SnbDataset& data, const DriverConfig& config);

}  // namespace graphdance

#endif  // GRAPHDANCE_LDBC_DRIVER_H_
