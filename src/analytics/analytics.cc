#include "analytics/analytics.h"

#include "query/gremlin.h"

namespace graphdance {

Result<std::shared_ptr<const Plan>> BuildPageRankPlan(
    std::shared_ptr<PartitionedGraph> graph, const std::string& vertex_label,
    const std::string& edge_label, int iterations, double damping) {
  if (iterations < 1) return Status::InvalidArgument("iterations must be >= 1");
  const double n = static_cast<double>(graph->stats().num_vertices);
  if (n == 0) return Status::InvalidArgument("empty graph");

  Traversal t(graph);
  LabelId elabel = t.ELabel(edge_label);
  t.VAll(vertex_label);
  // var0 = rank, seeded uniformly.
  t.Project({Operand::Const(Value(1.0 / n))});
  for (int i = 0; i < iterations; ++i) {
    // share = rank / out-degree, shipped along every outgoing edge.
    t.Project({Operand::Arith(ArithKind::kDiv, Operand::Var(0),
                              Operand::Degree(elabel, Direction::kOut))});
    t.Out(edge_label);
    // Per-destination sum (partitioned by vertex), then the damped update.
    t.GroupBy(Operand::VertexIdOp(), Operand::Var(0), AggFunc::kSum);
    t.Project({Operand::Arith(
        ArithKind::kAdd, Operand::Const(Value((1.0 - damping) / n)),
        Operand::Arith(ArithKind::kMul, Operand::Const(Value(damping)),
                       Operand::Var(1)))});
  }
  t.Emit({Operand::VertexIdOp(), Operand::Var(0)});
  return t.Build();
}

std::unordered_map<VertexId, double> ReferencePageRank(
    const PartitionedGraph& graph, LabelId vlabel, LabelId elabel,
    int iterations, double damping) {
  const double n = static_cast<double>(graph.stats().num_vertices);
  std::unordered_map<VertexId, double> ranks;
  for (VertexId v : graph.VerticesWithLabel(vlabel)) ranks[v] = 1.0 / n;

  for (int i = 0; i < iterations; ++i) {
    std::unordered_map<VertexId, double> sums;
    for (const auto& [v, rank] : ranks) {
      uint64_t deg = graph.partition(graph.PartitionOf(v))
                         .Degree(v, elabel, Direction::kOut, kMaxTimestamp - 1);
      if (deg == 0) continue;
      double share = rank / static_cast<double>(deg);
      graph.ForEachNeighbor(
          v, elabel, Direction::kOut,
          [&](VertexId dst, const Value&) { sums[dst] += share; });
    }
    std::unordered_map<VertexId, double> next;
    for (const auto& [v, sum] : sums) {
      next[v] = (1.0 - damping) / n + damping * sum;
    }
    ranks = std::move(next);
  }
  return ranks;
}

Result<std::shared_ptr<const Plan>> BuildTriangleCountPlan(
    std::shared_ptr<PartitionedGraph> graph, const std::string& vertex_label,
    const std::string& edge_label) {
  // PathA: a -> b -> c carrying a in vars; PathB: a -> c carrying a.
  auto key = [] {
    return Operand::Arith(ArithKind::kPair, Operand::Var(0),
                          Operand::VertexIdOp());
  };
  Traversal wedge(graph);
  wedge.VAll(vertex_label)
      .Project({Operand::VertexIdOp()})
      .Out(edge_label)
      .Out(edge_label);
  Traversal closing(graph);
  closing.VAll(vertex_label).Project({Operand::VertexIdOp()}).Out(edge_label);
  Traversal joined = Traversal::Join(std::move(wedge), key(),
                                     std::move(closing), key());
  joined.Count();
  return joined.Build();
}

int64_t ReferenceTriangleCount(const PartitionedGraph& graph, LabelId vlabel,
                               LabelId elabel) {
  int64_t triangles = 0;
  for (VertexId a : graph.VerticesWithLabel(vlabel)) {
    // Direct neighbors of a (with multiplicity) as the closing edges.
    std::unordered_map<VertexId, int64_t> direct;
    graph.ForEachNeighbor(a, elabel, Direction::kOut,
                          [&](VertexId c, const Value&) { direct[c]++; });
    if (direct.empty()) continue;
    graph.ForEachNeighbor(a, elabel, Direction::kOut, [&](VertexId b, const Value&) {
      graph.ForEachNeighbor(b, elabel, Direction::kOut,
                            [&](VertexId c, const Value&) {
                              auto it = direct.find(c);
                              if (it != direct.end()) triangles += it->second;
                            });
    });
  }
  return triangles;
}

Result<std::shared_ptr<const Plan>> BuildDegreeHistogramPlan(
    std::shared_ptr<PartitionedGraph> graph, const std::string& vertex_label,
    const std::string& edge_label) {
  Traversal t(graph);
  LabelId elabel = t.ELabel(edge_label);
  t.VAll(vertex_label);
  t.Project({Operand::Degree(elabel, Direction::kOut)});
  t.GroupCount(Operand::Var(0));
  t.OrderByLimit({{0, true}}, 1 << 20);
  return t.Build();
}

}  // namespace graphdance
