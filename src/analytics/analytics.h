#ifndef GRAPHDANCE_ANALYTICS_ANALYTICS_H_
#define GRAPHDANCE_ANALYTICS_ANALYTICS_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "graph/graph.h"
#include "pstm/plan.h"

namespace graphdance {

/// Offline analytics expressed as PSTM traversal programs (paper §III:
/// "various specialized graph processing tasks ... can also be expressed
/// using the Gremlin steps"). Each iteration of PageRank compiles to
/// Project(rank/degree) -> Expand -> GroupBy(sum) -> Project(damping),
/// i.e. k iterations become k progress-tracked scopes.
///
/// Semantics note: traversers only reach vertices with at least one
/// in-edge, so vertices that receive no contribution drop out of subsequent
/// iterations (their restart mass is not re-seeded). The reference
/// implementation below follows the same recursion; on the power-law graphs
/// used here the difference from textbook PageRank is small. This
/// "active-set PageRank" keeps the whole computation inside one PSTM query.
Result<std::shared_ptr<const Plan>> BuildPageRankPlan(
    std::shared_ptr<PartitionedGraph> graph, const std::string& vertex_label,
    const std::string& edge_label, int iterations, double damping = 0.85);

/// Single-threaded oracle with the exact recursion of BuildPageRankPlan.
std::unordered_map<VertexId, double> ReferencePageRank(
    const PartitionedGraph& graph, LabelId vlabel, LabelId elabel,
    int iterations, double damping = 0.85);

/// Transitive-triangle count: the number of ordered triads (a, b, c) with
/// edges a->b, b->c and a->c. Compiled to the paper's Fig. 3 shape — a
/// double-pipelined join of 2-hop paths against direct edges on the
/// composite key (a, c) — demonstrating graph pattern matching / mining on
/// PSTM (paper §III). Beware combinatorial 2-path counts on heavy-tailed
/// graphs; intended for moderate-degree inputs.
Result<std::shared_ptr<const Plan>> BuildTriangleCountPlan(
    std::shared_ptr<PartitionedGraph> graph, const std::string& vertex_label,
    const std::string& edge_label);

/// Single-threaded oracle for BuildTriangleCountPlan.
int64_t ReferenceTriangleCount(const PartitionedGraph& graph, LabelId vlabel,
                               LabelId elabel);

/// Out-degree histogram: rows [degree, #vertices], ascending by degree.
Result<std::shared_ptr<const Plan>> BuildDegreeHistogramPlan(
    std::shared_ptr<PartitionedGraph> graph, const std::string& vertex_label,
    const std::string& edge_label);

}  // namespace graphdance

#endif  // GRAPHDANCE_ANALYTICS_ANALYTICS_H_
