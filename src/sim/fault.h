#ifndef GRAPHDANCE_SIM_FAULT_H_
#define GRAPHDANCE_SIM_FAULT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "sim/event_queue.h"

namespace graphdance {

/// Kinds of injectable faults. Message-level faults (drop / duplicate /
/// delay) can be scripted against the N-th remote send or drawn
/// probabilistically per remote send; worker crashes and link degradation
/// are scripted against virtual time.
enum class FaultKind : uint8_t {
  kDropNthRemote = 0,   // the nth remote message vanishes on the wire
  kDuplicateNthRemote,  // the nth remote message is delivered twice
  kDelayNthRemote,      // the nth remote message arrives extra_delay_ns late
  kCrashWorker,         // worker loses volatile state at `at`, restarts later
  kDegradeLink,         // all links transmit `factor`x slower for a window
};

/// One scripted fault. Which fields matter depends on `kind`.
struct FaultEvent {
  FaultKind kind = FaultKind::kDropNthRemote;
  uint64_t nth = 0;            // 1-based remote-send ordinal (message faults)
  SimTime extra_delay_ns = 0;  // kDelayNthRemote
  uint32_t worker = 0;         // kCrashWorker
  SimTime at = 0;              // kCrashWorker / kDegradeLink virtual time
  SimTime duration_ns = 0;     // crash restart delay / degradation window
  double factor = 1.0;         // kDegradeLink transmit-time multiplier
};

/// A deterministic fault schedule: probabilistic per-remote-message knobs
/// (driven by a PRNG seeded from `seed`) plus scripted events. Two runs with
/// the same plan, cluster config and workload inject the exact same faults
/// at the exact same virtual times — chaos tests are fully reproducible.
struct FaultPlan {
  uint64_t seed = 1;

  // Probabilistic per-remote-message faults (0 = disabled).
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double delay_prob = 0.0;
  SimTime delay_ns = 200'000;  // extra latency applied to delayed messages

  std::vector<FaultEvent> scripted;

  bool Active() const;

  // Fluent builders for scripted events.
  FaultPlan& DropNth(uint64_t nth);
  FaultPlan& DuplicateNth(uint64_t nth);
  FaultPlan& DelayNth(uint64_t nth, SimTime extra_ns);
  FaultPlan& CrashWorker(uint32_t worker, SimTime at, SimTime restart_after);
  FaultPlan& DegradeLink(SimTime at, SimTime duration_ns, double factor);
};

/// Cluster-wide fault / recovery statistics, exposed by SimCluster alongside
/// NetStats.
struct FaultStats {
  // Injected faults.
  uint64_t drops = 0;       // messages dropped on the wire
  uint64_t duplicates = 0;  // messages sent twice
  uint64_t delays = 0;      // messages diverted to the straggler path
  uint64_t crashes = 0;     // worker crash events
  uint64_t restarts = 0;    // worker restart events
  // Recovery-protocol activity.
  uint64_t fenced_messages = 0;        // stale epoch or stale query attempt
  uint64_t duplicates_suppressed = 0;  // receive-side sequence dedup hits
  uint64_t lost_in_crash = 0;          // messages addressed to a down worker
  uint64_t retries = 0;                // query attempts restarted
  uint64_t recovered_queries = 0;      // completed correctly after >=1 retry
  uint64_t failed_queries = 0;         // retries exhausted, marked failed
  void Clear() { *this = FaultStats{}; }
  void Merge(const FaultStats& o) {
    drops += o.drops;
    duplicates += o.duplicates;
    delays += o.delays;
    crashes += o.crashes;
    restarts += o.restarts;
    fenced_messages += o.fenced_messages;
    duplicates_suppressed += o.duplicates_suppressed;
    lost_in_crash += o.lost_in_crash;
    retries += o.retries;
    recovered_queries += o.recovered_queries;
    failed_queries += o.failed_queries;
  }
};

/// Per-cluster fault decision engine. The cluster consults OnRemoteSend()
/// once per remote message; scripted time-based events (crash, degrade) are
/// scheduled by the cluster itself from plan().scripted. All randomness
/// comes from an internal PRNG seeded by the plan, so decisions are a pure
/// function of the remote-send sequence.
class FaultInjector {
 public:
  /// What to do with one remote message about to enter the wire.
  struct SendDecision {
    bool drop = false;
    bool duplicate = false;
    SimTime extra_delay_ns = 0;
  };

  explicit FaultInjector(const FaultPlan& plan);

  bool active() const { return active_; }
  const FaultPlan& plan() const { return plan_; }

  /// Decides the fate of the next remote message (advances the ordinal).
  SendDecision OnRemoteSend();

  FaultStats& stats() { return stats_; }
  const FaultStats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  bool active_ = false;
  Rng rng_;
  uint64_t remote_sends_ = 0;
  // Scripted message faults indexed by remote-send ordinal. A multimap:
  // several faults may target the same ordinal (e.g. DuplicateNth(5) +
  // DelayNth(5)) and all of them apply, with drop taking precedence.
  std::unordered_multimap<uint64_t, FaultEvent> by_nth_;
  FaultStats stats_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_SIM_FAULT_H_
