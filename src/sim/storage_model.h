#ifndef GRAPHDANCE_SIM_STORAGE_MODEL_H_
#define GRAPHDANCE_SIM_STORAGE_MODEL_H_

#include <cstdint>

#include "sim/event_queue.h"

namespace graphdance {

/// Categories of virtual storage work charged by the spill manager, parallel
/// to CostKind's CPU taxonomy and the network constants. Kept as its own enum
/// (rather than new CostKind entries) so existing per-kind charge counters
/// keep their layout.
enum class StorageKind : uint8_t {
  kSpillWrite = 0,  // evicting state to the simulated tier
  kSpillRead,       // faulting spilled state back in
  kNumKinds,
};

/// Cost model of the simulated per-worker storage tier (local NVMe-class
/// device). Spilled state is written and read as whole records, so every
/// operation pays one seek (command issue + device latency) plus sequential
/// transfer at the tier's bandwidth. Reads and writes are priced separately:
/// flash reads are lower-latency than program operations, while sustained
/// write bandwidth trails read bandwidth. Defaults are calibrated to
/// datacenter NVMe magnitudes (~25 us read / ~60 us write latency,
/// ~3.5 GB/s read, ~2 GB/s write).
struct StorageModel {
  uint64_t read_seek_ns = 25'000;
  uint64_t write_seek_ns = 60'000;
  double read_bandwidth_gbps = 28.0;   // ~3.5 GB/s sequential read
  double write_bandwidth_gbps = 16.0;  // ~2 GB/s sequential write

  uint64_t SeekNs(StorageKind kind) const {
    return kind == StorageKind::kSpillWrite ? write_seek_ns : read_seek_ns;
  }

  /// Virtual time to stream `bytes` for `kind`, excluding the seek.
  SimTime TransferNs(StorageKind kind, size_t bytes) const {
    double gbps = kind == StorageKind::kSpillWrite ? write_bandwidth_gbps
                                                   : read_bandwidth_gbps;
    // gbps Gbit/s == gbps / 8 bytes per ns.
    double ns = static_cast<double>(bytes) * 8.0 / gbps;
    return static_cast<SimTime>(ns);
  }

  /// Full virtual cost of one record-sized operation: seek + transfer.
  SimTime OpNs(StorageKind kind, size_t bytes) const {
    return SeekNs(kind) + TransferNs(kind, bytes);
  }

  SimTime WriteNs(size_t bytes) const {
    return OpNs(StorageKind::kSpillWrite, bytes);
  }
  SimTime ReadNs(size_t bytes) const {
    return OpNs(StorageKind::kSpillRead, bytes);
  }
};

}  // namespace graphdance

#endif  // GRAPHDANCE_SIM_STORAGE_MODEL_H_
