#ifndef GRAPHDANCE_SIM_COST_MODEL_H_
#define GRAPHDANCE_SIM_COST_MODEL_H_

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/storage_model.h"

namespace graphdance {

/// Categories of virtual CPU work charged by the engines and steps. Keeping
/// the taxonomy explicit makes the simulation auditable: every experiment
/// shape traces back to a handful of constants below.
enum class CostKind : uint8_t {
  kStepBase = 0,     // dispatch + bookkeeping of one traverser step
  kPerEdge,          // scanning one adjacency entry during Expand
  kMemoOp,           // one memorandum read/update (hash probe)
  kPropAccess,       // one property fetch
  kMsgPack,          // serializing one message into a tier-1 buffer
  kMsgUnpack,        // deserializing one received message
  kTrackerReport,    // progress tracker processing one weight report
  kSchedTask,        // generic scheduler overhead per task (dataflow sims)
  kLockHold,         // critical-section hold time (non-partitioned baseline)
  kNumKinds,
};

/// All virtual-time constants for the discrete-event simulation, in
/// nanoseconds. Defaults are calibrated to commodity-server magnitudes
/// (memory-resident hash probes ~50 ns, syscalls ~2 us, 200 Gbps links).
struct CostModel {
  // --- CPU ---
  uint64_t step_base_ns = 80;
  uint64_t per_edge_ns = 12;
  uint64_t memo_op_ns = 50;
  uint64_t prop_access_ns = 40;
  uint64_t msg_pack_ns = 30;
  uint64_t msg_unpack_ns = 30;
  uint64_t tracker_report_ns = 150;
  uint64_t sched_task_ns = 60;
  uint64_t lock_hold_ns = 90;
  /// Weight bookkeeping per finished traverser (coalesced mode): "a single
  /// integer addition per traverser" (paper §I-B) plus the hash-slot touch.
  uint64_t weight_track_ns = 25;

  // --- network ---
  double bandwidth_gbps = 200.0;     // per-link bandwidth
  uint64_t link_latency_ns = 2'000;  // propagation + switching
  uint64_t frame_overhead_ns = 2'500;  // syscall + doorbell per frame (sender)
  uint64_t shm_hop_ns = 300;         // same-node shared-memory delivery

  // --- coordination ---
  /// BSP global barrier per superstep: a cluster-wide synchronization
  /// (coordinator round-trips + worker rendezvous) costs tens of
  /// microseconds even on fast networks.
  uint64_t barrier_ns = 60'000;
  uint64_t finalize_ns = 1'000;      // scope-finalize handling per worker

  // --- baseline-specific ---
  double numa_penalty = 1.6;       // data-access multiplier, non-partitioned
  uint64_t lock_acquire_ns = 120;  // uncontended lock acquire (shared mode)

  // --- storage tier (spill manager) ---
  /// Per-worker simulated spill device; charged by the spill manager when
  /// memoranda or task-queue suffixes move between RAM and the tier.
  StorageModel storage;

  uint64_t Of(CostKind kind) const {
    switch (kind) {
      case CostKind::kStepBase:
        return step_base_ns;
      case CostKind::kPerEdge:
        return per_edge_ns;
      case CostKind::kMemoOp:
        return memo_op_ns;
      case CostKind::kPropAccess:
        return prop_access_ns;
      case CostKind::kMsgPack:
        return msg_pack_ns;
      case CostKind::kMsgUnpack:
        return msg_unpack_ns;
      case CostKind::kTrackerReport:
        return tracker_report_ns;
      case CostKind::kSchedTask:
        return sched_task_ns;
      case CostKind::kLockHold:
        return lock_hold_ns;
      default:
        return 0;
    }
  }

  /// Virtual transmission time of `bytes` over the link.
  SimTime TransmitNs(size_t bytes) const {
    // bandwidth_gbps Gbit/s == bandwidth_gbps / 8 bytes per ns.
    double ns = static_cast<double>(bytes) * 8.0 / bandwidth_gbps;
    return static_cast<SimTime>(ns);
  }
};

}  // namespace graphdance

#endif  // GRAPHDANCE_SIM_COST_MODEL_H_
