#include "sim/fault.h"

#include <algorithm>

namespace graphdance {

bool FaultPlan::Active() const {
  return drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0 ||
         !scripted.empty();
}

FaultPlan& FaultPlan::DropNth(uint64_t nth) {
  FaultEvent e;
  e.kind = FaultKind::kDropNthRemote;
  e.nth = nth;
  scripted.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::DuplicateNth(uint64_t nth) {
  FaultEvent e;
  e.kind = FaultKind::kDuplicateNthRemote;
  e.nth = nth;
  scripted.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::DelayNth(uint64_t nth, SimTime extra_ns) {
  FaultEvent e;
  e.kind = FaultKind::kDelayNthRemote;
  e.nth = nth;
  e.extra_delay_ns = extra_ns;
  scripted.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::CrashWorker(uint32_t worker, SimTime at,
                                  SimTime restart_after) {
  FaultEvent e;
  e.kind = FaultKind::kCrashWorker;
  e.worker = worker;
  e.at = at;
  e.duration_ns = restart_after;
  scripted.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::DegradeLink(SimTime at, SimTime duration_ns,
                                  double factor) {
  FaultEvent e;
  e.kind = FaultKind::kDegradeLink;
  e.at = at;
  e.duration_ns = duration_ns;
  e.factor = factor;
  scripted.push_back(e);
  return *this;
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), active_(plan.Active()), rng_(plan.seed * 0x9e3779b9ULL + 17) {
  for (const FaultEvent& e : plan_.scripted) {
    if (e.kind == FaultKind::kDropNthRemote ||
        e.kind == FaultKind::kDuplicateNthRemote ||
        e.kind == FaultKind::kDelayNthRemote) {
      by_nth_.emplace(e.nth, e);
    }
  }
}

FaultInjector::SendDecision FaultInjector::OnRemoteSend() {
  SendDecision d;
  if (!active_) return d;
  ++remote_sends_;
  auto range = by_nth_.equal_range(remote_sends_);
  for (auto it = range.first; it != range.second; ++it) {
    switch (it->second.kind) {
      case FaultKind::kDropNthRemote:
        d.drop = true;
        break;
      case FaultKind::kDuplicateNthRemote:
        d.duplicate = true;
        break;
      case FaultKind::kDelayNthRemote:
        d.extra_delay_ns = std::max(d.extra_delay_ns, it->second.extra_delay_ns);
        break;
      default:
        break;
    }
  }
  // Probabilistic faults: the PRNG is consumed in a fixed order per send so
  // the schedule is a deterministic function of the remote-send sequence.
  if (plan_.drop_prob > 0.0 && rng_.Chance(plan_.drop_prob)) d.drop = true;
  if (plan_.dup_prob > 0.0 && rng_.Chance(plan_.dup_prob)) d.duplicate = true;
  if (plan_.delay_prob > 0.0 && rng_.Chance(plan_.delay_prob)) {
    d.extra_delay_ns = std::max(d.extra_delay_ns, plan_.delay_ns);
  }
  if (d.drop) {
    d.duplicate = false;
    d.extra_delay_ns = 0;
  }
  if (d.drop) stats_.drops++;
  if (d.duplicate) stats_.duplicates++;
  if (d.extra_delay_ns > 0) stats_.delays++;
  return d;
}

}  // namespace graphdance
