#ifndef GRAPHDANCE_SIM_EVENT_QUEUE_H_
#define GRAPHDANCE_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace graphdance {

/// Virtual time in nanoseconds.
using SimTime = uint64_t;

/// A deterministic virtual-time event queue. Events fire in (time, insertion
/// sequence) order, so simulations are exactly reproducible run-to-run.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Schedules `cb` to run at virtual time `when` (must be >= now()).
  /// Scheduling in the virtual past is a bug (asserts in debug builds);
  /// release builds clamp to now() so the clock can never run backwards and
  /// silently corrupt every duration metric derived from it.
  void Schedule(SimTime when, Callback cb) {
    assert(when >= now_ && "EventQueue::Schedule called with a past time");
    when = std::max(when, now_);
    heap_.push(Event{when, next_seq_++, std::move(cb)});
  }

  /// Pops and runs the earliest event, advancing the clock. Returns false
  /// when the queue is empty.
  bool RunOne() {
    if (heap_.empty()) return false;
    // std::priority_queue::top returns const&; the callback must be moved out
    // before pop, so copy the POD parts and const_cast the callback (safe: the
    // element is removed immediately after).
    Event& top = const_cast<Event&>(heap_.top());
    // Schedule() clamps, so top.when >= now_ always holds; keep the clock
    // monotone regardless so no heap state can ever rewind it.
    SimTime when = std::max(top.when, now_);
    Callback cb = std::move(top.cb);
    heap_.pop();
    now_ = when;
    cb(when);
    return true;
  }

  /// Runs events until the queue drains or `limit` events fire. Returns the
  /// number of events run.
  uint64_t RunUntilEmpty(uint64_t limit = ~0ULL) {
    uint64_t n = 0;
    while (n < limit && RunOne()) ++n;
    return n;
  }

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    Callback cb;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  uint64_t next_seq_ = 0;
  SimTime now_ = 0;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_SIM_EVENT_QUEUE_H_
