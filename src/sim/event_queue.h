#ifndef GRAPHDANCE_SIM_EVENT_QUEUE_H_
#define GRAPHDANCE_SIM_EVENT_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace graphdance {

/// Virtual time in nanoseconds.
using SimTime = uint64_t;

/// Schedule-space exploration knobs (DESIGN.md §10). The default —
/// everything zero — pins the historical schedule exactly: same-timestamp
/// events fire in insertion order and no jitter is applied, so existing
/// fixed-seed runs stay byte-identical. With a nonzero `tiebreak_seed`,
/// same-timestamp ties fire in a seeded pseudo-random permutation instead;
/// with a nonzero `jitter_ns`, every scheduled event is delayed by a seeded
/// uniform draw from [0, jitter_ns]. Both are pure functions of (seed,
/// insertion sequence), so each seed deterministically replays one distinct
/// legal interleaving of the same workload.
struct ScheduleExploration {
  /// 0 = insertion-order ties (the pinned default schedule); nonzero = a
  /// seeded permutation of same-timestamp ties.
  uint64_t tiebreak_seed = 0;
  /// Upper bound of per-event latency jitter (0 = off). Keep it within the
  /// cost model's latency scale (e.g. <= link_latency_ns): jitter only ever
  /// *adds* virtual time, so it can never schedule into the past, but large
  /// values distort the latency distributions the cost model encodes.
  SimTime jitter_ns = 0;

  bool Active() const { return tiebreak_seed != 0 || jitter_ns != 0; }
};

/// A deterministic virtual-time event queue. Events fire in (time, tie-break
/// key, insertion sequence) order; by default the tie-break key IS the
/// insertion sequence, so simulations are exactly reproducible run-to-run.
/// See ScheduleExploration for the seeded tie-break permutation / latency
/// jitter used by the check subsystem to explore distinct legal schedules.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Installs exploration knobs. Must be called before the first Schedule()
  /// so every event of the run is permuted under one seed (a mid-run switch
  /// would mix two incomparable key spaces in the heap).
  void ConfigureExploration(const ScheduleExploration& explore) {
    assert(heap_.empty() && next_seq_ == 0 &&
           "ConfigureExploration must precede the first Schedule");
    explore_ = explore;
  }
  const ScheduleExploration& exploration() const { return explore_; }

  /// Schedules `cb` to run at virtual time `when` (must be >= now()).
  /// Scheduling in the virtual past is a bug (asserts in debug builds);
  /// release builds clamp to now() so the clock can never run backwards and
  /// silently corrupt every duration metric derived from it.
  void Schedule(SimTime when, Callback cb) {
    assert(when >= now_ && "EventQueue::Schedule called with a past time");
    when = std::max(when, now_);
    uint64_t seq = next_seq_++;
    if (explore_.jitter_ns > 0) {
      // Seeded bounded delay. Addition only — a jittered event still honours
      // the >= now() contract, so the clock stays monotone under any seed.
      when += Mix64(seq * 0x9e3779b97f4a7c15ULL ^ explore_.tiebreak_seed ^
                    0x6a09e667f3bcc909ULL) %
              (explore_.jitter_ns + 1);
    }
    // The tie-break key: insertion order by default (the pinned schedule), a
    // seeded permutation when exploring. `seq` stays the last comparand so
    // the order is total and deterministic even on key collisions.
    uint64_t key = explore_.tiebreak_seed == 0
                       ? seq
                       : Mix64(seq ^ explore_.tiebreak_seed * 0xff51afd7ed558ccdULL);
    heap_.push(Event{when, key, seq, std::move(cb)});
  }

  /// Pops and runs the earliest event, advancing the clock. Returns false
  /// when the queue is empty.
  bool RunOne() {
    if (heap_.empty()) return false;
    // std::priority_queue::top returns const&; the callback must be moved out
    // before pop, so copy the POD parts and const_cast the callback (safe: the
    // element is removed immediately after).
    Event& top = const_cast<Event&>(heap_.top());
    // Schedule() clamps, so top.when >= now_ always holds; keep the clock
    // monotone regardless so no heap state can ever rewind it.
    SimTime when = std::max(top.when, now_);
    Callback cb = std::move(top.cb);
    heap_.pop();
    now_ = when;
    cb(when);
    return true;
  }

  /// Runs events until the queue drains or `limit` events fire. Returns the
  /// number of events run.
  uint64_t RunUntilEmpty(uint64_t limit = ~0ULL) {
    uint64_t n = 0;
    while (n < limit && RunOne()) ++n;
    return n;
  }

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t key;  // tie-break: == seq by default, permuted when exploring
    uint64_t seq;
    Callback cb;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      if (key != other.key) return key > other.key;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  uint64_t next_seq_ = 0;
  SimTime now_ = 0;
  ScheduleExploration explore_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_SIM_EVENT_QUEUE_H_
