#ifndef GRAPHDANCE_QUERY_GREMLIN_H_
#define GRAPHDANCE_QUERY_GREMLIN_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "pstm/plan.h"
#include "pstm/steps.h"

namespace graphdance {

/// A fluent Gremlin-style builder that compiles directly to a PSTM physical
/// plan. Mirrors the paper's examples:
///
///   // Fig. 1: top-10 weighted vertices within k hops of `start`
///   auto plan = Traversal(graph)
///                   .V({start})
///                   .RepeatOut("link", k, /*dedup=*/true)
///                   .Project({Operand::VertexIdOp(), weight_prop})
///                   .OrderByLimit({{1, false}, {0, true}}, 10)
///                   .Build();
///
/// Chaining appends steps and wires next-pointers; Build() finalizes the
/// plan (assigning scopes) and applies peephole strategies (filter fusion).
class Traversal {
 public:
  explicit Traversal(std::shared_ptr<PartitionedGraph> graph)
      : graph_(std::move(graph)) {}

  // Move-only: the builder owns its steps.
  Traversal(Traversal&&) = default;
  Traversal& operator=(Traversal&&) = default;
  Traversal(const Traversal&) = delete;
  Traversal& operator=(const Traversal&) = delete;

  /// Starts from explicit vertex ids.
  Traversal& V(std::vector<VertexId> ids);
  /// Starts from a secondary-index probe (IndexLookUpStrategy applied: the
  /// logical scan+filter becomes an index lookup).
  Traversal& V(std::string_view label, std::string_view prop, Value value);
  /// Starts from a full scan of every vertex with `label`. A following
  /// Has(prop, ==, value) is rewritten into an index lookup at Build time
  /// when the index exists (IndexLookUpStrategy).
  Traversal& VAll(std::string_view label);

  /// Single-hop expansion along an edge label.
  Traversal& Out(std::string_view elabel) { return AddExpand(elabel, Direction::kOut); }
  Traversal& In(std::string_view elabel) { return AddExpand(elabel, Direction::kIn); }
  Traversal& Both(std::string_view elabel) { return AddExpand(elabel, Direction::kBoth); }

  /// k-hop looping expansion with optional memo-based distance pruning
  /// (paper Fig. 5). Every visited vertex (including the start) flows to the
  /// step appended after this call (the tee target).
  Traversal& RepeatOut(std::string_view elabel, uint16_t hops, bool dedup = true,
                       Direction dir = Direction::kOut);

  /// Filters on a property / operand predicate.
  Traversal& Has(std::string_view prop, CmpOp op, Value value);
  Traversal& Where(Predicate pred);
  Traversal& Where(std::vector<Predicate> preds);

  /// Appends the current vertex's property (or other operand) to vars.
  Traversal& Values(std::string_view prop);
  Traversal& Project(std::vector<Operand> ops, bool append = false);

  /// Memo-backed deduplication (by current vertex unless keyed otherwise).
  Traversal& Dedup() { return Dedup(Operand::VertexIdOp()); }
  Traversal& Dedup(Operand key);

  /// Blocking grouped aggregation; emits [key, aggregate] per group.
  Traversal& GroupBy(Operand key, Operand value, AggFunc func);
  /// group().by(key).count() shorthand.
  Traversal& GroupCount(Operand key) {
    return GroupBy(std::move(key), Operand::Const(Value(int64_t{1})), AggFunc::kCount);
  }

  /// Blocking distributed top-k over the traverser's vars.
  Traversal& OrderByLimit(std::vector<SortSpec> specs, size_t limit);

  /// Blocking scalar aggregates.
  Traversal& Count() {
    return ScalarAgg(Operand::Const(Value(int64_t{1})), AggFunc::kCount);
  }
  Traversal& Sum(Operand value) { return ScalarAgg(std::move(value), AggFunc::kSum); }
  Traversal& Max(Operand value) { return ScalarAgg(std::move(value), AggFunc::kMax); }
  Traversal& Min(Operand value) { return ScalarAgg(std::move(value), AggFunc::kMin); }
  Traversal& ScalarAgg(Operand value, AggFunc func);

  /// Terminal row emission (defaults to emitting the vars). With limit > 0
  /// the coordinator cancels the query once that many rows arrived.
  Traversal& Emit(std::vector<Operand> projections = {}, size_t limit = 0);

  /// Double-pipelined join of two branches on equal keys (paper Fig. 3).
  /// Output vars = left vars ++ right vars; chaining continues after the
  /// join. Both branches must come from the same graph.
  static Traversal Join(Traversal left, Operand left_key, Traversal right,
                        Operand right_key);

  /// Finalizes into an executable plan. Terminal Emit is added when the last
  /// step is non-blocking and not already an Emit.
  Result<std::shared_ptr<const Plan>> Build();

  /// Schema helpers (intern on demand).
  LabelId VLabel(std::string_view name) { return graph_->mutable_schema().VertexLabel(name); }
  LabelId ELabel(std::string_view name) { return graph_->mutable_schema().EdgeLabel(name); }
  PropKeyId Prop(std::string_view name) { return graph_->mutable_schema().PropKey(name); }

  const PartitionedGraph& graph() const { return *graph_; }

  /// Low-level escape hatch: append a custom step and wire it after the
  /// current tail(s).
  Traversal& Append(std::unique_ptr<Step> step);

  /// Configure the most recent Expand (edge-property capture/filtering).
  Traversal& CaptureEdgeProp();
  Traversal& FilterEdgeProp(CmpOp op, Value rhs);
  /// For a preceding RepeatOut: tee on every distance improvement (needed
  /// by min-distance queries like LDBC IC13).
  Traversal& TeeOnImprove();
  /// For a preceding expand: children record the traversal path (readable
  /// via Operand::PathOp()).
  Traversal& TrackPath();

 private:
  Traversal& AddExpand(std::string_view elabel, Direction dir);

  std::shared_ptr<PartitionedGraph> graph_;
  std::vector<std::unique_ptr<Step>> steps_;
  std::vector<size_t> roots_;
  // Steps whose next() must point at the next appended step. Usually one;
  // two after a Join (both probes), or a looping expand waiting for its tee.
  std::vector<Step*> tails_;
  ExpandStep* pending_tee_ = nullptr;  // RepeatOut waiting for its tee target
  ExpandStep* last_expand_ = nullptr;
  Status error_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_QUERY_GREMLIN_H_
