#include "query/gremlin.h"

#include <cassert>
#include <utility>

namespace graphdance {

Traversal& Traversal::V(std::vector<VertexId> ids) {
  if (!steps_.empty() || !error_.ok()) {
    error_ = Status::InvalidArgument("V() must start a traversal");
    return *this;
  }
  auto step = std::make_unique<IndexLookupStep>(std::move(ids));
  roots_.push_back(steps_.size());
  tails_ = {step.get()};
  steps_.push_back(std::move(step));
  return *this;
}

Traversal& Traversal::V(std::string_view label, std::string_view prop, Value value) {
  if (!steps_.empty() || !error_.ok()) {
    error_ = Status::InvalidArgument("V() must start a traversal");
    return *this;
  }
  auto step = std::make_unique<IndexLookupStep>(VLabel(label), Prop(prop),
                                                std::move(value));
  roots_.push_back(steps_.size());
  tails_ = {step.get()};
  steps_.push_back(std::move(step));
  return *this;
}

Traversal& Traversal::VAll(std::string_view label) {
  if (!steps_.empty() || !error_.ok()) {
    error_ = Status::InvalidArgument("V() must start a traversal");
    return *this;
  }
  auto step = std::make_unique<IndexLookupStep>(VLabel(label));
  roots_.push_back(steps_.size());
  tails_ = {step.get()};
  steps_.push_back(std::move(step));
  return *this;
}

Traversal& Traversal::Append(std::unique_ptr<Step> step) {
  if (!error_.ok()) return *this;
  if (steps_.empty()) {
    error_ = Status::InvalidArgument("traversal must start with V()");
    return *this;
  }
  if (tails_.empty() && pending_tee_ == nullptr) {
    error_ = Status::InvalidArgument("cannot append after a terminal step");
    return *this;
  }
  uint16_t idx = static_cast<uint16_t>(steps_.size());
  for (Step* t : tails_) t->set_next(idx);
  if (pending_tee_ != nullptr) {
    pending_tee_->set_tee(idx);
    pending_tee_ = nullptr;
  }
  tails_ = {step.get()};
  steps_.push_back(std::move(step));
  return *this;
}

Traversal& Traversal::AddExpand(std::string_view elabel, Direction dir) {
  auto step = std::make_unique<ExpandStep>(ELabel(elabel), dir);
  last_expand_ = step.get();
  return Append(std::move(step));
}

Traversal& Traversal::RepeatOut(std::string_view elabel, uint16_t hops, bool dedup,
                                Direction dir) {
  auto step = std::make_unique<ExpandStep>(ELabel(elabel), dir);
  step->set_loop(hops, dedup);
  ExpandStep* raw = step.get();
  last_expand_ = raw;
  Append(std::move(step));
  if (!error_.ok()) return *this;
  // The looping expand has no next; visited vertices flow out via the tee
  // to whatever step is appended next.
  tails_.clear();
  pending_tee_ = raw;
  return *this;
}

Traversal& Traversal::Has(std::string_view prop, CmpOp op, Value value) {
  Predicate p;
  p.lhs = Operand::Property(Prop(prop));
  p.op = op;
  p.rhs = Operand::Const(std::move(value));
  return Where(std::move(p));
}

Traversal& Traversal::Where(Predicate pred) {
  return Where(std::vector<Predicate>{std::move(pred)});
}

Traversal& Traversal::Where(std::vector<Predicate> preds) {
  if (!error_.ok()) return *this;
  // FilterFusionStrategy: merge into an immediately preceding filter instead
  // of adding a new step (fewer dispatches per traverser).
  if (tails_.size() == 1 && tails_[0]->kind() == StepKind::kFilter &&
      pending_tee_ == nullptr) {
    auto* filter = static_cast<FilterStep*>(tails_[0]);
    for (Predicate& p : preds) filter->AddPredicate(std::move(p));
    return *this;
  }
  return Append(std::make_unique<FilterStep>(std::move(preds)));
}

Traversal& Traversal::Values(std::string_view prop) {
  return Project({Operand::Property(Prop(prop))}, /*append=*/true);
}

Traversal& Traversal::Project(std::vector<Operand> ops, bool append) {
  return Append(std::make_unique<ProjectStep>(std::move(ops), append));
}

Traversal& Traversal::Dedup(Operand key) {
  return Append(std::make_unique<DedupStep>(std::move(key)));
}

Traversal& Traversal::GroupBy(Operand key, Operand value, AggFunc func) {
  if (!error_.ok()) return *this;
  if (!key.TraverserLocal() || !value.TraverserLocal()) {
    error_ = Status::InvalidArgument(
        "GroupBy key/value must be traverser-local; Project properties into "
        "vars first");
    return *this;
  }
  return Append(std::make_unique<GroupByStep>(std::move(key), std::move(value), func));
}

Traversal& Traversal::OrderByLimit(std::vector<SortSpec> specs, size_t limit) {
  return Append(std::make_unique<OrderByLimitStep>(std::move(specs), limit));
}

Traversal& Traversal::ScalarAgg(Operand value, AggFunc func) {
  return Append(std::make_unique<ScalarAggStep>(std::move(value), func));
}

Traversal& Traversal::Emit(std::vector<Operand> projections, size_t limit) {
  return Append(std::make_unique<EmitStep>(std::move(projections), limit));
}

Traversal& Traversal::CaptureEdgeProp() {
  if (last_expand_ == nullptr) {
    error_ = Status::InvalidArgument("CaptureEdgeProp needs a preceding expand");
    return *this;
  }
  last_expand_->set_capture_edge_prop(true);
  return *this;
}

Traversal& Traversal::FilterEdgeProp(CmpOp op, Value rhs) {
  if (last_expand_ == nullptr) {
    error_ = Status::InvalidArgument("FilterEdgeProp needs a preceding expand");
    return *this;
  }
  last_expand_->set_edge_prop_filter(op, std::move(rhs));
  return *this;
}

Traversal& Traversal::TrackPath() {
  if (last_expand_ == nullptr) {
    error_ = Status::InvalidArgument("TrackPath needs a preceding expand");
    return *this;
  }
  last_expand_->set_track_path(true);
  return *this;
}

Traversal& Traversal::TeeOnImprove() {
  if (last_expand_ == nullptr || last_expand_->loop_hops() == 0) {
    error_ = Status::InvalidArgument("TeeOnImprove needs a preceding RepeatOut");
    return *this;
  }
  last_expand_->set_tee_on_improve(true);
  return *this;
}

Traversal Traversal::Join(Traversal left, Operand left_key, Traversal right,
                          Operand right_key) {
  Traversal out = std::move(left);
  if (!out.error_.ok()) return out;
  if (!right.error_.ok()) {
    out.error_ = right.error_;
    return out;
  }
  if (out.graph_.get() != right.graph_.get()) {
    out.error_ = Status::InvalidArgument("join branches must share a graph");
    return out;
  }
  if ((out.tails_.empty() && out.pending_tee_ == nullptr) ||
      (right.tails_.empty() && right.pending_tee_ == nullptr)) {
    out.error_ = Status::InvalidArgument("join branches must be open-ended");
    return out;
  }

  // Splice the right branch's steps after the left's, shifting their ids.
  uint16_t delta = static_cast<uint16_t>(out.steps_.size());
  for (auto& step : right.steps_) step->OffsetIds(delta);
  std::vector<Step*> right_tails = std::move(right.tails_);
  for (size_t r : right.roots_) out.roots_.push_back(r + delta);
  for (auto& step : right.steps_) out.steps_.push_back(std::move(step));

  uint16_t left_idx = static_cast<uint16_t>(out.steps_.size());
  uint16_t right_idx = static_cast<uint16_t>(left_idx + 1);
  auto lp = std::make_unique<JoinProbeStep>(true, std::move(left_key));
  auto rp = std::make_unique<JoinProbeStep>(false, std::move(right_key));
  lp->set_memo_step(left_idx);
  rp->set_memo_step(left_idx);
  for (Step* t : out.tails_) t->set_next(left_idx);
  if (out.pending_tee_ != nullptr) {
    out.pending_tee_->set_tee(left_idx);
    out.pending_tee_ = nullptr;
  }
  for (Step* t : right_tails) t->set_next(right_idx);
  if (right.pending_tee_ != nullptr) right.pending_tee_->set_tee(right_idx);

  out.tails_ = {lp.get(), rp.get()};
  out.steps_.push_back(std::move(lp));
  out.steps_.push_back(std::move(rp));
  out.last_expand_ = nullptr;
  return out;
}

Result<std::shared_ptr<const Plan>> Traversal::Build() {
  if (!error_.ok()) return error_;
  if (steps_.empty()) return Status::InvalidArgument("empty traversal");

  // IndexLookUpStrategy (paper §II-B): a label scan followed by an
  // equality filter on an indexed property becomes an index probe, and the
  // satisfied predicate is dropped from the filter.
  if (steps_.size() >= 2) {
    auto* lookup = dynamic_cast<IndexLookupStep*>(steps_[0].get());
    auto* filter = dynamic_cast<FilterStep*>(steps_[1].get());
    if (lookup != nullptr && filter != nullptr &&
        lookup->mode() == IndexLookupStep::Mode::kScanLabel &&
        lookup->next() == 1) {
      const Predicate* match = nullptr;
      for (const Predicate& p : filter->predicates()) {
        if (p.op == CmpOp::kEq && p.lhs.kind == Operand::Kind::kProp &&
            p.rhs.kind == Operand::Kind::kConst &&
            graph_->partition(0).HasIndex(lookup->vlabel(), p.lhs.prop)) {
          match = &p;
          break;
        }
      }
      if (match != nullptr) {
        auto rewritten = std::make_unique<IndexLookupStep>(
            lookup->vlabel(), match->lhs.prop, match->rhs.constant);
        rewritten->set_next(lookup->next());
        filter->RemovePredicate(*match);
        bool was_tail = !tails_.empty() && tails_[0] == steps_[0].get();
        steps_[0] = std::move(rewritten);
        if (was_tail) tails_ = {steps_[0].get()};
      }
    }
  }

  // Ensure a terminal: non-blocking tails (or group-by tails, whose groups
  // would otherwise die silently) get an Emit of the current vars.
  bool needs_emit = false;
  for (Step* t : tails_) {
    if (t->kind() == StepKind::kGroupBy || (!t->blocking() && t->kind() != StepKind::kEmit)) {
      needs_emit = true;
    }
  }
  if (pending_tee_ != nullptr) needs_emit = true;
  if (needs_emit) {
    Emit({});
    if (!error_.ok()) return error_;
  }

  auto plan = std::make_shared<Plan>();
  for (auto& step : steps_) plan->Add(std::move(step));
  for (size_t r : roots_) plan->AddRoot(static_cast<uint16_t>(r));
  steps_.clear();
  roots_.clear();
  tails_.clear();
  Status s = plan->Finalize();
  if (!s.ok()) return s;
  return std::shared_ptr<const Plan>(plan);
}

}  // namespace graphdance
