#ifndef GRAPHDANCE_QUERY_PLANNER_H_
#define GRAPHDANCE_QUERY_PLANNER_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "query/gremlin.h"

namespace graphdance {

/// One hop of a path pattern (edge label + traversal direction).
struct PatternHop {
  std::string elabel;
  Direction dir = Direction::kOut;
};

/// A path pattern anchored at both endpoints, e.g. the paper's Fig. 3:
///   Person --knows*--> Person --hasCreator^-1--> Post --hasTag--> Tag.
struct PathPattern {
  std::vector<PatternHop> hops;
};

/// Outcome of the cost-based join-key selection (JoinSelectionStrategy,
/// paper §III-A): where to break the path into PathA and PathB so the
/// estimated number of matched partial paths is minimized.
struct JoinPlanChoice {
  /// Hops [0, split) traverse forward from A; hops [split, n) traverse
  /// backward from B. split == n means pure forward expansion, split == 0
  /// pure backward.
  size_t split = 0;
  double cost_forward = 0.0;   // estimated partial instances from A
  double cost_backward = 0.0;  // estimated partial instances from B
  double total_cost = 0.0;     // sum of all intermediate cardinalities
  /// True when an interior split beats both single-direction traversals,
  /// i.e. the bidirectional join plan should be used.
  bool use_join = false;
};

/// Estimates per-hop fanout from graph statistics and picks the split
/// minimizing total intermediate cardinality. `card_a` / `card_b` are the
/// anchor-set cardinalities at the two endpoints.
JoinPlanChoice ChooseJoinSplit(const GraphStats& stats, const Schema& schema,
                               const PathPattern& pattern, double card_a,
                               double card_b);

/// Builds the physical traversal for `pattern` between two anchored vertex
/// sets, using the chosen split: a bidirectional double-pipelined join when
/// `choice.use_join`, otherwise a unidirectional expansion. The returned
/// traversal is open-ended at the meeting vertex (vars: [meet vertex id]);
/// chain aggregations or Emit as needed.
Result<Traversal> BuildPathQuery(std::shared_ptr<PartitionedGraph> graph,
                                 std::vector<VertexId> anchors_a,
                                 std::vector<VertexId> anchors_b,
                                 const PathPattern& pattern,
                                 const JoinPlanChoice& choice);

}  // namespace graphdance

#endif  // GRAPHDANCE_QUERY_PLANNER_H_
