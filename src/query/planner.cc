#include "query/planner.h"

#include <algorithm>
#include <limits>

namespace graphdance {

namespace {

Direction Reverse(Direction d) {
  switch (d) {
    case Direction::kOut:
      return Direction::kIn;
    case Direction::kIn:
      return Direction::kOut;
    case Direction::kBoth:
      return Direction::kBoth;
  }
  return Direction::kBoth;
}

/// Estimated fanout of traversing `hop` in its stated direction.
double Fanout(const GraphStats& stats, const Schema& schema, const PatternHop& hop,
              bool reversed) {
  LabelId el = schema.FindEdgeLabel(hop.elabel);
  if (el == kInvalidLabel) return 0.0;
  Direction dir = reversed ? Reverse(hop.dir) : hop.dir;
  switch (dir) {
    case Direction::kOut:
      return stats.AvgOutDegree(el);
    case Direction::kIn:
      return stats.AvgInDegree(el);
    case Direction::kBoth:
      return stats.AvgOutDegree(el) + stats.AvgInDegree(el);
  }
  return 0.0;
}

}  // namespace

JoinPlanChoice ChooseJoinSplit(const GraphStats& stats, const Schema& schema,
                               const PathPattern& pattern, double card_a,
                               double card_b) {
  const size_t n = pattern.hops.size();
  JoinPlanChoice best;
  best.total_cost = std::numeric_limits<double>::infinity();

  for (size_t split = 0; split <= n; ++split) {
    // Forward partial-path cardinalities: A expands hops [0, split).
    double fwd = card_a;
    double fwd_sum = card_a;
    for (size_t i = 0; i < split; ++i) {
      fwd *= std::max(Fanout(stats, schema, pattern.hops[i], false), 1e-9);
      fwd_sum += fwd;
    }
    // Backward: B expands hops (n, split] in reverse.
    double bwd = card_b;
    double bwd_sum = card_b;
    for (size_t i = n; i > split; --i) {
      bwd *= std::max(Fanout(stats, schema, pattern.hops[i - 1], true), 1e-9);
      bwd_sum += bwd;
    }
    double total = fwd_sum + bwd_sum;
    if (total < best.total_cost) {
      best.split = split;
      best.cost_forward = fwd;
      best.cost_backward = bwd;
      best.total_cost = total;
    }
  }
  best.use_join = best.split > 0 && best.split < n;
  return best;
}

Result<Traversal> BuildPathQuery(std::shared_ptr<PartitionedGraph> graph,
                                 std::vector<VertexId> anchors_a,
                                 std::vector<VertexId> anchors_b,
                                 const PathPattern& pattern,
                                 const JoinPlanChoice& choice) {
  const size_t n = pattern.hops.size();
  if (choice.split > n) return Status::InvalidArgument("split out of range");

  auto forward = [&]() {
    Traversal t(graph);
    t.V(anchors_a);
    for (size_t i = 0; i < choice.split; ++i) {
      const PatternHop& hop = pattern.hops[i];
      switch (hop.dir) {
        case Direction::kOut:
          t.Out(hop.elabel);
          break;
        case Direction::kIn:
          t.In(hop.elabel);
          break;
        case Direction::kBoth:
          t.Both(hop.elabel);
          break;
      }
    }
    return t;
  };
  auto backward = [&]() {
    Traversal t(graph);
    t.V(anchors_b);
    for (size_t i = n; i > choice.split; --i) {
      const PatternHop& hop = pattern.hops[i - 1];
      switch (Reverse(hop.dir)) {
        case Direction::kOut:
          t.Out(hop.elabel);
          break;
        case Direction::kIn:
          t.In(hop.elabel);
          break;
        case Direction::kBoth:
          t.Both(hop.elabel);
          break;
      }
    }
    return t;
  };

  if (choice.use_join) {
    return Traversal::Join(forward(), Operand::VertexIdOp(), backward(),
                           Operand::VertexIdOp());
  }
  // Unidirectional plan: expand fully from one endpoint and filter on the
  // other anchor. (Multi-vertex far anchors require the join plan.)
  const bool from_a = choice.split == n;
  const std::vector<VertexId>& near = from_a ? anchors_a : anchors_b;
  const std::vector<VertexId>& far = from_a ? anchors_b : anchors_a;
  (void)near;
  if (far.size() != 1) {
    return Status::InvalidArgument(
        "unidirectional path plan requires a single far anchor; use the join plan");
  }
  Traversal t = from_a ? forward() : backward();
  Predicate pred;
  pred.lhs = Operand::VertexIdOp();
  pred.op = CmpOp::kEq;
  pred.rhs = Operand::Const(Value(static_cast<int64_t>(far[0])));
  t.Where(std::move(pred));
  return t;
}

}  // namespace graphdance
