#ifndef GRAPHDANCE_GRAPH_PARTITIONER_H_
#define GRAPHDANCE_GRAPH_PARTITIONER_H_

#include <cassert>
#include <cstdint>

#include "common/hash.h"
#include "graph/types.h"

namespace graphdance {

/// The graph partitioning function H : V -> PartId (paper §II-C). Vertices
/// are hash-partitioned; each partition is owned by exactly one worker. The
/// same function also partitions memoranda keys (e.g. the Dedup and Join
/// partitioning h_psi of §III-A).
class Partitioner {
 public:
  explicit Partitioner(uint32_t num_partitions) : num_partitions_(num_partitions) {
    assert(num_partitions > 0);
  }

  uint32_t num_partitions() const { return num_partitions_; }

  /// Partition owning vertex `v`.
  PartitionId Of(VertexId v) const {
    return static_cast<PartitionId>(Mix64(v) % num_partitions_);
  }

  /// Partition owning an arbitrary 64-bit key (join keys, group keys).
  PartitionId OfKey(uint64_t key) const {
    return static_cast<PartitionId>(Mix64(key ^ 0xa3c59ac2ULL) % num_partitions_);
  }

 private:
  uint32_t num_partitions_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_GRAPH_PARTITIONER_H_
