#include "graph/graph.h"

#include <algorithm>
#include <unordered_set>

namespace graphdance {

double GraphStats::AvgOutDegree(LabelId elabel) const {
  auto eit = edges_per_label.find(elabel);
  if (eit == edges_per_label.end() || eit->second == 0) return 0.0;
  auto sit = edge_src_label.find(elabel);
  uint64_t src_count = num_vertices;
  if (sit != edge_src_label.end()) {
    auto vit = vertices_per_label.find(sit->second);
    if (vit != vertices_per_label.end()) src_count = vit->second;
  }
  if (src_count == 0) return 0.0;
  return static_cast<double>(eit->second) / static_cast<double>(src_count);
}

double GraphStats::AvgInDegree(LabelId elabel) const {
  auto eit = edges_per_label.find(elabel);
  if (eit == edges_per_label.end() || eit->second == 0) return 0.0;
  auto dit = edge_dst_label.find(elabel);
  uint64_t dst_count = num_vertices;
  if (dit != edge_dst_label.end()) {
    auto vit = vertices_per_label.find(dit->second);
    if (vit != vertices_per_label.end()) dst_count = vit->second;
  }
  if (dst_count == 0) return 0.0;
  return static_cast<double>(eit->second) / static_cast<double>(dst_count);
}

std::vector<VertexId> PartitionedGraph::VerticesWithLabel(LabelId label) const {
  std::vector<VertexId> out;
  for (const auto& p : partitions_) {
    for (uint32_t local = 0; local < p->num_vertices(); ++local) {
      if (p->VertexLabel(local) == label) out.push_back(p->GlobalId(local));
    }
  }
  return out;
}

void GraphBuilder::AddVertex(VertexId v, LabelId label, std::vector<Prop> props) {
  vertices_.push_back(VertexRow{v, label, std::move(props)});
}

void GraphBuilder::AddEdge(VertexId src, VertexId dst, LabelId elabel, Value prop) {
  edges_.push_back(EdgeRow{src, dst, elabel, std::move(prop)});
}

Result<std::shared_ptr<PartitionedGraph>> GraphBuilder::Build() {
  const uint32_t nparts = partitioner_.num_partitions();
  std::vector<std::unique_ptr<PartitionStore>> partitions;
  partitions.reserve(nparts);
  for (uint32_t p = 0; p < nparts; ++p) {
    partitions.push_back(std::make_unique<PartitionStore>());
  }

  GraphStats stats;

  // Distribute vertices.
  std::unordered_set<VertexId> seen;
  seen.reserve(vertices_.size());
  for (VertexRow& row : vertices_) {
    if (!seen.insert(row.id).second) {
      return Status::AlreadyExists("duplicate vertex id " + std::to_string(row.id));
    }
    PartitionId p = partitioner_.Of(row.id);
    stats.raw_bytes += sizeof(VertexId) + sizeof(LabelId);
    for (const Prop& prop : row.props) {
      stats.raw_bytes += sizeof(Prop);
      if (prop.value.type() == Value::Type::kString) {
        stats.raw_bytes += prop.value.as_string().size();
      }
    }
    stats.vertices_per_label[row.label]++;
    partitions[p]->AddVertexForBuild(row.id, row.label, std::move(row.props));
  }
  stats.num_vertices = seen.size();

  // Group edges per (partition, label, direction) and validate endpoints.
  struct HalfEdge {
    uint32_t local;  // local index of the anchor endpoint
    VertexId other;
    uint32_t edge_idx;
  };
  // Keyed by (partition, elabel, dir).
  auto group_key = [](PartitionId p, LabelId l, Direction d) -> uint64_t {
    return (static_cast<uint64_t>(p) << 32) | (static_cast<uint64_t>(l) << 1) |
           (d == Direction::kIn ? 1u : 0u);
  };
  std::unordered_map<uint64_t, std::vector<HalfEdge>> groups;

  for (uint32_t i = 0; i < edges_.size(); ++i) {
    const EdgeRow& e = edges_[i];
    PartitionId sp = partitioner_.Of(e.src);
    PartitionId dp = partitioner_.Of(e.dst);
    auto src_local = partitions[sp]->LocalIndex(e.src);
    auto dst_local = partitions[dp]->LocalIndex(e.dst);
    if (!src_local.has_value()) {
      return Status::NotFound("edge source vertex missing: " + std::to_string(e.src));
    }
    if (!dst_local.has_value()) {
      return Status::NotFound("edge dest vertex missing: " + std::to_string(e.dst));
    }
    groups[group_key(sp, e.label, Direction::kOut)].push_back(
        HalfEdge{*src_local, e.dst, i});
    groups[group_key(dp, e.label, Direction::kIn)].push_back(
        HalfEdge{*dst_local, e.src, i});
    stats.edges_per_label[e.label]++;
    stats.raw_bytes += 2 * sizeof(VertexId);
    if (stats.edge_src_label.find(e.label) == stats.edge_src_label.end()) {
      stats.edge_src_label[e.label] =
          partitions[sp]->VertexLabel(*src_local);
      stats.edge_dst_label[e.label] =
          partitions[dp]->VertexLabel(*dst_local);
    }
  }
  stats.num_edges = edges_.size();

  // Build CSR per group via counting sort on the anchor's local index.
  for (auto& [key, half_edges] : groups) {
    PartitionId p = static_cast<PartitionId>(key >> 32);
    LabelId elabel = static_cast<LabelId>((key & 0xffffffffu) >> 1);
    Direction dir = (key & 1u) ? Direction::kIn : Direction::kOut;
    uint32_t nv = partitions[p]->num_vertices();

    auto adj = std::make_unique<CsrAdjacency>();
    adj->offsets.assign(nv + 1, 0);
    for (const HalfEdge& he : half_edges) adj->offsets[he.local + 1]++;
    for (uint32_t v = 0; v < nv; ++v) adj->offsets[v + 1] += adj->offsets[v];

    adj->targets.resize(half_edges.size());
    bool any_prop = false;
    for (const HalfEdge& he : half_edges) {
      if (!edges_[he.edge_idx].prop.is_null()) {
        any_prop = true;
        break;
      }
    }
    if (any_prop) adj->props.resize(half_edges.size());

    std::vector<uint32_t> cursor(adj->offsets.begin(), adj->offsets.end() - 1);
    for (const HalfEdge& he : half_edges) {
      uint32_t slot = cursor[he.local]++;
      adj->targets[slot] = he.other;
      if (any_prop) adj->props[slot] = edges_[he.edge_idx].prop;
    }
    partitions[p]->InstallAdjacency(elabel, dir, std::move(adj));
  }

  vertices_.clear();
  edges_.clear();
  return std::make_shared<PartitionedGraph>(schema_, partitioner_,
                                            std::move(partitions), std::move(stats));
}

}  // namespace graphdance
