#include "graph/generators.h"

#include <cmath>

#include "common/random.h"

namespace graphdance {

namespace {

/// Draws one RMAT edge endpoint pair over a 2^levels x 2^levels matrix.
std::pair<uint64_t, uint64_t> RmatEdge(Rng* rng, int levels, double a, double b,
                                       double c) {
  uint64_t src = 0, dst = 0;
  for (int level = 0; level < levels; ++level) {
    double r = rng->NextDouble();
    src <<= 1;
    dst <<= 1;
    if (r < a) {
      // top-left: no bits set
    } else if (r < a + b) {
      dst |= 1;
    } else if (r < a + b + c) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  return {src, dst};
}

Result<std::shared_ptr<PartitionedGraph>> BuildFromEdges(
    const PowerLawGraphOptions& options, std::shared_ptr<Schema> schema,
    uint32_t num_partitions,
    const std::vector<std::pair<uint64_t, uint64_t>>& edges) {
  LabelId vlabel = schema->VertexLabel(options.vertex_label);
  LabelId elabel = schema->EdgeLabel(options.edge_label);
  PropKeyId weight_key = schema->PropKey("weight");

  GraphBuilder builder(schema, num_partitions);
  Rng prop_rng(options.seed ^ 0x5bd1e995ULL);
  for (uint64_t v = 0; v < options.num_vertices; ++v) {
    std::vector<Prop> props;
    props.push_back(
        Prop{weight_key, Value(prop_rng.Range(0, options.weight_range - 1))});
    builder.AddVertex(v, vlabel, std::move(props));
  }
  for (const auto& [src, dst] : edges) {
    builder.AddEdge(src, dst, elabel);
  }
  return builder.Build();
}

}  // namespace

Result<std::shared_ptr<PartitionedGraph>> GeneratePowerLawGraph(
    const PowerLawGraphOptions& options, std::shared_ptr<Schema> schema,
    uint32_t num_partitions) {
  if (options.num_vertices == 0) {
    return Status::InvalidArgument("num_vertices must be > 0");
  }
  int levels = 0;
  while ((1ULL << levels) < options.num_vertices) ++levels;

  Rng rng(options.seed);
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  edges.reserve(options.num_edges);
  while (edges.size() < options.num_edges) {
    auto [src, dst] = RmatEdge(&rng, levels, options.a, options.b, options.c);
    if (src >= options.num_vertices || dst >= options.num_vertices) continue;
    if (src == dst) continue;
    edges.emplace_back(src, dst);
  }
  return BuildFromEdges(options, std::move(schema), num_partitions, edges);
}

Result<std::shared_ptr<PartitionedGraph>> GenerateUniformGraph(
    uint64_t num_vertices, uint64_t num_edges, uint64_t seed,
    std::shared_ptr<Schema> schema, uint32_t num_partitions) {
  if (num_vertices == 0) {
    return Status::InvalidArgument("num_vertices must be > 0");
  }
  PowerLawGraphOptions options;
  options.num_vertices = num_vertices;
  options.num_edges = num_edges;
  options.seed = seed;

  Rng rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  edges.reserve(num_edges);
  while (edges.size() < num_edges) {
    uint64_t src = rng.Below(num_vertices);
    uint64_t dst = rng.Below(num_vertices);
    if (src == dst) continue;
    edges.emplace_back(src, dst);
  }
  return BuildFromEdges(options, std::move(schema), num_partitions, edges);
}

Result<std::shared_ptr<PartitionedGraph>> GeneratePreset(
    const std::string& preset, double scale, std::shared_ptr<Schema> schema,
    uint32_t num_partitions, uint64_t seed) {
  PowerLawGraphOptions options;
  options.seed = seed;
  if (preset == "lj-sim") {
    // LiveJournal: 4.0M vertices, 34.7M edges -> avg degree ~8.7.
    options.num_vertices = static_cast<uint64_t>(40'000 * scale);
    options.num_edges = static_cast<uint64_t>(347'000 * scale);
    options.a = 0.57;
    options.b = 0.19;
    options.c = 0.19;
  } else if (preset == "fs-sim") {
    // Friendster: 65.6M vertices, 1.81B edges -> avg degree ~27.5.
    options.num_vertices = static_cast<uint64_t>(65'000 * scale);
    options.num_edges = static_cast<uint64_t>(1'790'000 * scale);
    options.a = 0.55;
    options.b = 0.20;
    options.c = 0.20;
  } else {
    return Status::InvalidArgument("unknown graph preset: " + preset);
  }
  return GeneratePowerLawGraph(options, std::move(schema), num_partitions);
}

}  // namespace graphdance
