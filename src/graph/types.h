#ifndef GRAPHDANCE_GRAPH_TYPES_H_
#define GRAPHDANCE_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace graphdance {

/// Global vertex identifier, unique across the whole graph.
using VertexId = uint64_t;

/// Partition identifier in [0, num_partitions).
using PartitionId = uint32_t;

/// Vertex or edge label identifier (interned via Schema).
using LabelId = uint16_t;

/// Property key identifier (interned via Schema).
using PropKeyId = uint16_t;

/// Commit / visibility timestamp used by the multi-version edge log.
using Timestamp = uint64_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();
inline constexpr PropKeyId kInvalidPropKey = std::numeric_limits<PropKeyId>::max();
inline constexpr Timestamp kMaxTimestamp = std::numeric_limits<Timestamp>::max();

/// Edge traversal direction.
enum class Direction : uint8_t { kOut = 0, kIn = 1, kBoth = 2 };

}  // namespace graphdance

#endif  // GRAPHDANCE_GRAPH_TYPES_H_
