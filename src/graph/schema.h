#ifndef GRAPHDANCE_GRAPH_SCHEMA_H_
#define GRAPHDANCE_GRAPH_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace graphdance {

/// Interns vertex-label, edge-label and property-key names to dense ids.
/// A Schema is built once before graph loading and is immutable afterwards
/// (reads from worker threads are lock-free).
class Schema {
 public:
  LabelId VertexLabel(std::string_view name) {
    return Intern(name, &vlabel_ids_, &vlabel_names_);
  }
  LabelId EdgeLabel(std::string_view name) {
    return Intern(name, &elabel_ids_, &elabel_names_);
  }
  PropKeyId PropKey(std::string_view name) {
    return Intern(name, &prop_ids_, &prop_names_);
  }

  /// Lookup without interning; returns kInvalid* when absent.
  LabelId FindVertexLabel(std::string_view name) const {
    return Find(name, vlabel_ids_, kInvalidLabel);
  }
  LabelId FindEdgeLabel(std::string_view name) const {
    return Find(name, elabel_ids_, kInvalidLabel);
  }
  PropKeyId FindPropKey(std::string_view name) const {
    return Find(name, prop_ids_, kInvalidPropKey);
  }

  const std::string& VertexLabelName(LabelId id) const { return vlabel_names_[id]; }
  const std::string& EdgeLabelName(LabelId id) const { return elabel_names_[id]; }
  const std::string& PropKeyName(PropKeyId id) const { return prop_names_[id]; }

  size_t num_vertex_labels() const { return vlabel_names_.size(); }
  size_t num_edge_labels() const { return elabel_names_.size(); }
  size_t num_prop_keys() const { return prop_names_.size(); }

 private:
  template <typename Id>
  static Id Intern(std::string_view name,
                   std::unordered_map<std::string, Id>* ids,
                   std::vector<std::string>* names) {
    auto it = ids->find(std::string(name));
    if (it != ids->end()) return it->second;
    Id id = static_cast<Id>(names->size());
    names->emplace_back(name);
    ids->emplace(std::string(name), id);
    return id;
  }

  template <typename Id>
  static Id Find(std::string_view name,
                 const std::unordered_map<std::string, Id>& ids, Id missing) {
    auto it = ids.find(std::string(name));
    return it == ids.end() ? missing : it->second;
  }

  std::unordered_map<std::string, LabelId> vlabel_ids_;
  std::unordered_map<std::string, LabelId> elabel_ids_;
  std::unordered_map<std::string, PropKeyId> prop_ids_;
  std::vector<std::string> vlabel_names_;
  std::vector<std::string> elabel_names_;
  std::vector<std::string> prop_names_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_GRAPH_SCHEMA_H_
