#ifndef GRAPHDANCE_GRAPH_GENERATORS_H_
#define GRAPHDANCE_GRAPH_GENERATORS_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace graphdance {

/// Parameters for the synthetic power-law graph generator. The generator is
/// an RMAT-style recursive-quadrant sampler producing a skewed degree
/// distribution like the real LiveJournal / Friendster snapshots used in the
/// paper's scalability study (substituted per DESIGN.md §1: the snapshots
/// themselves are not available offline).
struct PowerLawGraphOptions {
  uint64_t num_vertices = 1 << 14;
  uint64_t num_edges = 1 << 17;
  // RMAT quadrant probabilities; (a, b, c) with d = 1 - a - b - c.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  uint64_t seed = 42;
  /// Every vertex gets an integer `weight` property in [0, weight_range)
  /// (paper §V: "we assign a random integer weight to each vertex for
  /// aggregation queries").
  int64_t weight_range = 1'000'000;
  std::string vertex_label = "node";
  std::string edge_label = "link";
};

/// Generates a power-law directed graph. Deterministic given the seed.
Result<std::shared_ptr<PartitionedGraph>> GeneratePowerLawGraph(
    const PowerLawGraphOptions& options, std::shared_ptr<Schema> schema,
    uint32_t num_partitions);

/// Generates an Erdos–Renyi-ish uniform random graph (used by tests that
/// want unskewed degree distributions).
Result<std::shared_ptr<PartitionedGraph>> GenerateUniformGraph(
    uint64_t num_vertices, uint64_t num_edges, uint64_t seed,
    std::shared_ptr<Schema> schema, uint32_t num_partitions);

/// Named dataset presets from the paper's Table II, scaled to laptop size
/// with matching average degree and skew:
///   "lj-sim" — LiveJournal shape (avg out-degree ~8.7, strong skew)
///   "fs-sim" — Friendster shape (avg out-degree ~27, stronger fan-out)
/// The `scale` multiplier grows both vertex and edge counts.
Result<std::shared_ptr<PartitionedGraph>> GeneratePreset(
    const std::string& preset, double scale, std::shared_ptr<Schema> schema,
    uint32_t num_partitions, uint64_t seed = 42);

}  // namespace graphdance

#endif  // GRAPHDANCE_GRAPH_GENERATORS_H_
