#ifndef GRAPHDANCE_GRAPH_GRAPH_H_
#define GRAPHDANCE_GRAPH_GRAPH_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/partition_store.h"
#include "graph/partitioner.h"
#include "graph/schema.h"
#include "graph/types.h"

namespace graphdance {

/// Aggregate statistics used by the cost-based planner and the dataset
/// summary table (Table II).
struct GraphStats {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t raw_bytes = 0;  // estimated in-memory footprint of the static data
  std::unordered_map<LabelId, uint64_t> vertices_per_label;
  std::unordered_map<LabelId, uint64_t> edges_per_label;
  // First-seen endpoint labels per edge label, for degree estimation.
  std::unordered_map<LabelId, LabelId> edge_src_label;
  std::unordered_map<LabelId, LabelId> edge_dst_label;

  /// Average out-degree of the source-label vertices under `elabel`.
  double AvgOutDegree(LabelId elabel) const;
  /// Average in-degree of the destination-label vertices under `elabel`.
  double AvgInDegree(LabelId elabel) const;
};

/// The partitioned stateful graph model's data component (paper §III-B):
/// (V, E, lambda) plus the partitioning function H. The per-partition
/// memoranda M live in the runtime (they are query-scoped), not here.
class PartitionedGraph {
 public:
  PartitionedGraph(std::shared_ptr<Schema> schema, Partitioner partitioner,
                   std::vector<std::unique_ptr<PartitionStore>> partitions,
                   GraphStats stats)
      : schema_(std::move(schema)),
        partitioner_(partitioner),
        partitions_(std::move(partitions)),
        stats_(std::move(stats)) {}

  const Schema& schema() const { return *schema_; }
  Schema& mutable_schema() { return *schema_; }
  const Partitioner& partitioner() const { return partitioner_; }
  uint32_t num_partitions() const { return partitioner_.num_partitions(); }
  const GraphStats& stats() const { return stats_; }

  PartitionStore& partition(PartitionId p) { return *partitions_[p]; }
  const PartitionStore& partition(PartitionId p) const { return *partitions_[p]; }

  /// Partition owning vertex `v`.
  PartitionId PartitionOf(VertexId v) const { return partitioner_.Of(v); }

  /// Convenience single-threaded accessors (tests, reference oracles).
  bool HasVertex(VertexId v, Timestamp ts = kMaxTimestamp - 1) const {
    return partition(PartitionOf(v)).HasVertex(v, ts);
  }
  const Value* PropertyOf(VertexId v, PropKeyId key,
                          Timestamp ts = kMaxTimestamp - 1) const {
    return partition(PartitionOf(v)).PropertyOf(v, key, ts);
  }
  LabelId LabelOf(VertexId v, Timestamp ts = kMaxTimestamp - 1) const {
    return partition(PartitionOf(v)).LabelOf(v, ts);
  }
  template <typename Fn>
  void ForEachNeighbor(VertexId v, LabelId elabel, Direction dir, Fn&& fn,
                       Timestamp ts = kMaxTimestamp - 1) const {
    partition(PartitionOf(v)).ForEachNeighbor(v, elabel, dir, ts, std::forward<Fn>(fn));
  }

  /// Builds a secondary index on all partitions.
  void BuildIndex(LabelId vlabel, PropKeyId key) {
    for (auto& p : partitions_) p->BuildIndex(vlabel, key);
  }

  /// All static vertex ids with a given label (test/oracle helper).
  std::vector<VertexId> VerticesWithLabel(LabelId label) const;

 private:
  std::shared_ptr<Schema> schema_;
  Partitioner partitioner_;
  std::vector<std::unique_ptr<PartitionStore>> partitions_;
  GraphStats stats_;
};

/// Accumulates vertices and edges, then builds the partitioned CSR store.
/// Building is deterministic: partition contents depend only on insert order
/// and the hash partitioner.
class GraphBuilder {
 public:
  GraphBuilder(std::shared_ptr<Schema> schema, uint32_t num_partitions)
      : schema_(std::move(schema)), partitioner_(num_partitions) {}

  /// Adds a vertex. Duplicate ids are rejected at Build time.
  void AddVertex(VertexId v, LabelId label, std::vector<Prop> props = {});

  /// Adds a directed edge with an optional single edge property.
  void AddEdge(VertexId src, VertexId dst, LabelId elabel, Value prop = Value());

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Consumes the builder and produces the immutable partitioned graph.
  Result<std::shared_ptr<PartitionedGraph>> Build();

 private:
  struct VertexRow {
    VertexId id;
    LabelId label;
    std::vector<Prop> props;
  };
  struct EdgeRow {
    VertexId src;
    VertexId dst;
    LabelId label;
    Value prop;
  };

  std::shared_ptr<Schema> schema_;
  Partitioner partitioner_;
  std::vector<VertexRow> vertices_;
  std::vector<EdgeRow> edges_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_GRAPH_GRAPH_H_
