#ifndef GRAPHDANCE_GRAPH_TEL_H_
#define GRAPHDANCE_GRAPH_TEL_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/value.h"
#include "graph/types.h"

namespace graphdance {

/// One multi-version edge entry. The creation and deletion timestamps are
/// embedded in the edge data (LiveGraph-style transactional edge log, paper
/// §IV-C) so a single sequential scan of the adjacency list finds all edges
/// visible at a read timestamp.
struct TelEdge {
  VertexId dst = kInvalidVertex;
  Timestamp create_ts = 0;
  Timestamp delete_ts = kMaxTimestamp;
  Value prop;  // optional single edge property

  bool VisibleAt(Timestamp ts) const { return create_ts <= ts && ts < delete_ts; }
};

/// One multi-version vertex property entry (latest visible version wins).
struct TelPropVersion {
  Timestamp ts = 0;
  PropKeyId key = kInvalidPropKey;
  Value value;
};

/// Per-vertex dynamic state: creation stamp, adjacency logs per
/// (edge label, direction) and a property version log.
struct TelVertex {
  LabelId label = kInvalidLabel;
  Timestamp create_ts = 0;
  Timestamp delete_ts = kMaxTimestamp;
  // Keyed by (elabel << 1) | dir_bit, dir_bit 0 = out, 1 = in.
  std::unordered_map<uint32_t, std::vector<TelEdge>> adj;
  std::vector<TelPropVersion> props;

  bool VisibleAt(Timestamp ts) const { return create_ts <= ts && ts < delete_ts; }
};

/// Transactional edge log for one partition. Holds all vertices/edges created
/// after the static bulk load, plus tombstones for deletions of static data
/// (not needed by the current workloads, but supported).
///
/// Thread-safety: a TEL is owned by exactly one worker thread (shared-nothing
/// design); all mutation happens on that thread, so no internal locking.
class TransactionalEdgeLog {
 public:
  static uint32_t AdjKey(LabelId elabel, Direction dir) {
    return (static_cast<uint32_t>(elabel) << 1) |
           (dir == Direction::kIn ? 1u : 0u);
  }

  /// Creates a dynamic vertex. Overwrites any prior tombstone.
  void AddVertex(VertexId v, LabelId label, Timestamp ts) {
    TelVertex& rec = vertices_[v];
    rec.label = label;
    rec.create_ts = ts;
    rec.delete_ts = kMaxTimestamp;
  }

  /// Marks a dynamic vertex deleted at `ts` (visible before, gone after).
  bool DeleteVertex(VertexId v, Timestamp ts) {
    auto it = vertices_.find(v);
    if (it == vertices_.end() || !it->second.VisibleAt(ts)) return false;
    it->second.delete_ts = ts;
    return true;
  }

  bool HasVertex(VertexId v, Timestamp ts) const {
    auto it = vertices_.find(v);
    return it != vertices_.end() && it->second.VisibleAt(ts);
  }

  const TelVertex* FindVertex(VertexId v) const {
    auto it = vertices_.find(v);
    return it == vertices_.end() ? nullptr : &it->second;
  }

  /// Appends a half-edge under `anchor` (the endpoint owned by this
  /// partition). The caller adds the mirrored half-edge in the partition of
  /// the other endpoint.
  void AddEdge(VertexId anchor, LabelId elabel, Direction dir, VertexId other,
               Timestamp ts, Value prop = Value()) {
    TelVertex& rec = vertices_[anchor];
    if (rec.create_ts == 0 && rec.label == kInvalidLabel) {
      // Anchor is a static vertex gaining dynamic edges; keep it visible
      // from the beginning of time.
      rec.create_ts = 0;
    }
    rec.adj[AdjKey(elabel, dir)].push_back(TelEdge{other, ts, kMaxTimestamp, std::move(prop)});
  }

  /// Marks the first visible (anchor -> other) edge as deleted at `ts`.
  /// Returns true when such an edge existed.
  bool DeleteEdge(VertexId anchor, LabelId elabel, Direction dir, VertexId other,
                  Timestamp ts) {
    auto vit = vertices_.find(anchor);
    if (vit == vertices_.end()) return false;
    auto ait = vit->second.adj.find(AdjKey(elabel, dir));
    if (ait == vit->second.adj.end()) return false;
    for (TelEdge& e : ait->second) {
      if (e.dst == other && e.VisibleAt(ts)) {
        e.delete_ts = ts;
        return true;
      }
    }
    return false;
  }

  /// Writes a vertex property version at `ts`.
  void SetProperty(VertexId v, PropKeyId key, Value value, Timestamp ts) {
    vertices_[v].props.push_back(TelPropVersion{ts, key, std::move(value)});
  }

  /// Latest property version visible at `ts`, or nullptr.
  const Value* GetProperty(VertexId v, PropKeyId key, Timestamp ts) const {
    auto it = vertices_.find(v);
    if (it == vertices_.end()) return nullptr;
    const Value* best = nullptr;
    Timestamp best_ts = 0;
    for (const TelPropVersion& pv : it->second.props) {
      if (pv.key == key && pv.ts <= ts && pv.ts >= best_ts) {
        best = &pv.value;
        best_ts = pv.ts;
      }
    }
    return best;
  }

  /// Sequentially scans the adjacency log of `anchor`, invoking
  /// `fn(dst, prop)` for every edge visible at `ts` (single-pass visibility,
  /// the TEL property the paper relies on).
  template <typename Fn>
  void ForEachEdge(VertexId anchor, LabelId elabel, Direction dir, Timestamp ts,
                   Fn&& fn) const {
    auto vit = vertices_.find(anchor);
    if (vit == vertices_.end()) return;
    auto ait = vit->second.adj.find(AdjKey(elabel, dir));
    if (ait == vit->second.adj.end()) return;
    for (const TelEdge& e : ait->second) {
      if (e.VisibleAt(ts)) fn(e.dst, e.prop);
    }
  }

  /// Crash recovery (paper §IV-C): removes all versions with timestamps
  /// beyond the last-commit timestamp, as a restarted node would.
  void TruncateAfter(Timestamp lct) {
    for (auto it = vertices_.begin(); it != vertices_.end();) {
      TelVertex& rec = it->second;
      if (rec.create_ts > lct && rec.label != kInvalidLabel) {
        it = vertices_.erase(it);
        continue;
      }
      if (rec.delete_ts != kMaxTimestamp && rec.delete_ts > lct) {
        rec.delete_ts = kMaxTimestamp;
      }
      for (auto& [key, edges] : rec.adj) {
        std::vector<TelEdge> kept;
        kept.reserve(edges.size());
        for (TelEdge& e : edges) {
          if (e.create_ts > lct) continue;
          if (e.delete_ts != kMaxTimestamp && e.delete_ts > lct) {
            e.delete_ts = kMaxTimestamp;
          }
          kept.push_back(std::move(e));
        }
        edges = std::move(kept);
      }
      std::vector<TelPropVersion> kept_props;
      for (TelPropVersion& pv : rec.props) {
        if (pv.ts <= lct) kept_props.push_back(std::move(pv));
      }
      rec.props = std::move(kept_props);
      ++it;
    }
  }

  /// Version compaction (LiveGraph-style GC): drops edge and property
  /// versions that are invisible to every reader at or after `watermark`
  /// (i.e. deleted at or before it), and rewrites surviving pre-watermark
  /// creation stamps to 0 so later compactions stay cheap. Safe when no
  /// active query holds a read timestamp below the watermark.
  void Compact(Timestamp watermark) {
    for (auto it = vertices_.begin(); it != vertices_.end();) {
      TelVertex& rec = it->second;
      if (rec.delete_ts <= watermark) {
        it = vertices_.erase(it);
        continue;
      }
      for (auto& [key, edges] : rec.adj) {
        std::vector<TelEdge> kept;
        kept.reserve(edges.size());
        for (TelEdge& e : edges) {
          if (e.delete_ts <= watermark) continue;  // dead to all readers
          if (e.create_ts <= watermark) e.create_ts = 0;
          kept.push_back(std::move(e));
        }
        edges = std::move(kept);
      }
      // Properties: keep only the latest version at or below the watermark
      // plus everything after it.
      std::vector<TelPropVersion> kept_props;
      std::unordered_map<PropKeyId, size_t> latest_below;
      for (TelPropVersion& pv : rec.props) {
        if (pv.ts > watermark) {
          kept_props.push_back(std::move(pv));
          continue;
        }
        auto [lit, inserted] = latest_below.try_emplace(pv.key, kept_props.size());
        if (inserted) {
          kept_props.push_back(std::move(pv));
        } else if (kept_props[lit->second].ts <= pv.ts) {
          kept_props[lit->second] = std::move(pv);
        }
      }
      rec.props = std::move(kept_props);
      ++it;
    }
  }

  size_t num_vertices() const { return vertices_.size(); }

  /// Total stored edge versions (for compaction tests/metrics).
  size_t num_edge_versions() const {
    size_t n = 0;
    for (const auto& [v, rec] : vertices_) {
      for (const auto& [key, edges] : rec.adj) n += edges.size();
    }
    return n;
  }

 private:
  std::unordered_map<VertexId, TelVertex> vertices_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_GRAPH_TEL_H_
