#ifndef GRAPHDANCE_GRAPH_TEL_H_
#define GRAPHDANCE_GRAPH_TEL_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#ifndef NDEBUG
#include <cassert>
#include <thread>
#endif

#include "common/flat_map.h"
#include "common/small_vector.h"
#include "common/value.h"
#include "graph/types.h"

namespace graphdance {

/// One multi-version edge entry. The creation and deletion timestamps are
/// embedded in the edge data (LiveGraph-style transactional edge log, paper
/// §IV-C) so a single sequential scan of the adjacency list finds all edges
/// visible at a read timestamp.
struct TelEdge {
  VertexId dst = kInvalidVertex;
  Timestamp create_ts = 0;
  Timestamp delete_ts = kMaxTimestamp;
  Value prop;  // optional single edge property

  bool VisibleAt(Timestamp ts) const { return create_ts <= ts && ts < delete_ts; }
};

/// One multi-version vertex property entry (latest visible version wins).
struct TelPropVersion {
  Timestamp ts = 0;
  PropKeyId key = kInvalidPropKey;
  Value value;
};

/// Per-vertex dynamic state: creation stamp, adjacency chains per
/// (edge label, direction) and a property version log. Adjacency is NOT a
/// per-vertex map of edge vectors: each (label, dir) pair holds a chain of
/// blocks inside the log's shared edge arena (see TransactionalEdgeLog).
struct TelVertex {
  /// Chain handle: `key` is (elabel << 1) | dir_bit, `head`/`tail` index the
  /// log's block table. A vertex rarely has more than two active
  /// (label, dir) combinations, so the chains live inline.
  struct AdjChain {
    uint32_t key = 0;
    uint32_t head = 0;
    uint32_t tail = 0;
  };

  LabelId label = kInvalidLabel;
  Timestamp create_ts = 0;
  Timestamp delete_ts = kMaxTimestamp;
  SmallVector<AdjChain, 2> adj;
  std::vector<TelPropVersion> props;

  bool VisibleAt(Timestamp ts) const { return create_ts <= ts && ts < delete_ts; }
};

/// Transactional edge log for one partition. Holds all vertices/edges created
/// after the static bulk load, plus tombstones for deletions of static data
/// (not needed by the current workloads, but supported).
///
/// Storage layout (DESIGN.md §13): all edge versions of the partition live in
/// one contiguous arena, carved into per-(vertex, label, dir) blocks that
/// double in capacity and are linked in append order — a CSR-like layout
/// that keeps a visibility scan on one or two cache lines instead of a
/// pointer chase through per-vertex unordered_map nodes. Scan order equals
/// append order, exactly as the old per-key std::vector gave, which the
/// deterministic scheduler relies on. Compact() is epoch-based: it rebuilds
/// the arena from the survivors (dropping dead blocks and padding) and bumps
/// `compaction_epoch()`; TruncateAfter() rewrites chains in place.
///
/// Thread-safety: a TEL is owned by exactly one worker thread (shared-nothing
/// design); all mutation happens on that thread, so no internal locking.
class TransactionalEdgeLog {
 public:
  static uint32_t AdjKey(LabelId elabel, Direction dir) {
    return (static_cast<uint32_t>(elabel) << 1) |
           (dir == Direction::kIn ? 1u : 0u);
  }

  /// Debug-build enforcement of the one-owner-thread contract above. A
  /// runtime (e.g. rt::ThreadCluster) claims each partition's TEL from the
  /// worker thread that owns it; every mutation then asserts it runs on that
  /// thread. Unclaimed TELs (single-threaded tests, the simulator) assert
  /// nothing. Release builds compile these away entirely.
#ifndef NDEBUG
  void ClaimOwnerThread() {
    assert(owner_thread_ == std::thread::id() &&
           "TEL already claimed by another thread");
    owner_thread_ = std::this_thread::get_id();
  }
  void ReleaseOwnerThread() { owner_thread_ = std::thread::id(); }
  void AssertOwnerThread() const {
    assert((owner_thread_ == std::thread::id() ||
            owner_thread_ == std::this_thread::get_id()) &&
           "TEL mutated off its owner thread");
  }
#else
  void ClaimOwnerThread() {}
  void ReleaseOwnerThread() {}
  void AssertOwnerThread() const {}
#endif

  /// Creates a dynamic vertex. Overwrites any prior tombstone.
  void AddVertex(VertexId v, LabelId label, Timestamp ts) {
    AssertOwnerThread();
    TelVertex& rec = GetOrCreate(v);
    rec.label = label;
    rec.create_ts = ts;
    rec.delete_ts = kMaxTimestamp;
  }

  /// Marks a dynamic vertex deleted at `ts` (visible before, gone after).
  bool DeleteVertex(VertexId v, Timestamp ts) {
    AssertOwnerThread();
    TelVertex* rec = Find(v);
    if (rec == nullptr || !rec->VisibleAt(ts)) return false;
    rec->delete_ts = ts;
    return true;
  }

  bool HasVertex(VertexId v, Timestamp ts) const {
    const TelVertex* rec = Find(v);
    return rec != nullptr && rec->VisibleAt(ts);
  }

  const TelVertex* FindVertex(VertexId v) const { return Find(v); }

  /// Appends a half-edge under `anchor` (the endpoint owned by this
  /// partition). The caller adds the mirrored half-edge in the partition of
  /// the other endpoint.
  void AddEdge(VertexId anchor, LabelId elabel, Direction dir, VertexId other,
               Timestamp ts, Value prop = Value()) {
    AssertOwnerThread();
    TelVertex& rec = GetOrCreate(anchor);
    if (rec.create_ts == 0 && rec.label == kInvalidLabel) {
      // Anchor is a static vertex gaining dynamic edges; keep it visible
      // from the beginning of time.
      rec.create_ts = 0;
    }
    uint32_t slot = AppendSlot(&rec, AdjKey(elabel, dir));
    arena_[slot] = TelEdge{other, ts, kMaxTimestamp, std::move(prop)};
  }

  /// Marks the first visible (anchor -> other) edge as deleted at `ts`.
  /// Returns true when such an edge existed.
  bool DeleteEdge(VertexId anchor, LabelId elabel, Direction dir, VertexId other,
                  Timestamp ts) {
    AssertOwnerThread();
    TelVertex* rec = Find(anchor);
    if (rec == nullptr) return false;
    const TelVertex::AdjChain* chain = FindChain(*rec, AdjKey(elabel, dir));
    if (chain == nullptr) return false;
    for (uint32_t b = chain->head; b != kNoBlock; b = blocks_[b].next) {
      const Block& blk = blocks_[b];
      for (uint32_t i = 0; i < blk.len; ++i) {
        TelEdge& e = arena_[blk.first + i];
        if (e.dst == other && e.VisibleAt(ts)) {
          e.delete_ts = ts;
          return true;
        }
      }
    }
    return false;
  }

  /// Writes a vertex property version at `ts`.
  void SetProperty(VertexId v, PropKeyId key, Value value, Timestamp ts) {
    AssertOwnerThread();
    GetOrCreate(v).props.push_back(TelPropVersion{ts, key, std::move(value)});
  }

  /// Latest property version visible at `ts`, or nullptr.
  const Value* GetProperty(VertexId v, PropKeyId key, Timestamp ts) const {
    const TelVertex* rec = Find(v);
    if (rec == nullptr) return nullptr;
    const Value* best = nullptr;
    Timestamp best_ts = 0;
    for (const TelPropVersion& pv : rec->props) {
      if (pv.key == key && pv.ts <= ts && pv.ts >= best_ts) {
        best = &pv.value;
        best_ts = pv.ts;
      }
    }
    return best;
  }

  /// Sequentially scans the adjacency chain of `anchor`, invoking
  /// `fn(dst, prop)` for every edge visible at `ts` (single-pass visibility,
  /// the TEL property the paper relies on). Scan order is append order.
  template <typename Fn>
  void ForEachEdge(VertexId anchor, LabelId elabel, Direction dir, Timestamp ts,
                   Fn&& fn) const {
    if (index_.empty()) return;  // static-only partition: common fast path
    const TelVertex* rec = Find(anchor);
    if (rec == nullptr) return;
    const TelVertex::AdjChain* chain = FindChain(*rec, AdjKey(elabel, dir));
    if (chain == nullptr) return;
    for (uint32_t b = chain->head; b != kNoBlock; b = blocks_[b].next) {
      const Block& blk = blocks_[b];
      const TelEdge* e = &arena_[blk.first];
      for (uint32_t i = 0; i < blk.len; ++i) {
        if (e[i].VisibleAt(ts)) fn(e[i].dst, e[i].prop);
      }
    }
  }

  /// Like ForEachEdge, but also hands the raw stored version stamps to
  /// `fn(dst, prop, create_ts, delete_ts)`. The snapshot-isolation checker
  /// audits these against the reader's timestamp; everything else should use
  /// the plain scan.
  template <typename Fn>
  void ForEachEdgeStamped(VertexId anchor, LabelId elabel, Direction dir,
                          Timestamp ts, Fn&& fn) const {
    if (index_.empty()) return;  // static-only partition: common fast path
    const TelVertex* rec = Find(anchor);
    if (rec == nullptr) return;
    const TelVertex::AdjChain* chain = FindChain(*rec, AdjKey(elabel, dir));
    if (chain == nullptr) return;
    for (uint32_t b = chain->head; b != kNoBlock; b = blocks_[b].next) {
      const Block& blk = blocks_[b];
      const TelEdge* e = &arena_[blk.first];
      for (uint32_t i = 0; i < blk.len; ++i) {
        if (e[i].VisibleAt(ts)) {
          fn(e[i].dst, e[i].prop, e[i].create_ts, e[i].delete_ts);
        }
      }
    }
  }

  /// Snapshot pinning: a reader that will scan this TEL at `ts` across other
  /// mutations (e.g. a streaming query racing the ingest pipeline) pins its
  /// timestamp so Compact() cannot discard versions it still needs. Pins are
  /// counted, so several readers may share a timestamp. Owner-thread rules
  /// apply: pin/unpin are mutations of the log's bookkeeping.
  void PinSnapshot(Timestamp ts) {
    AssertOwnerThread();
    for (auto& [pinned, count] : pins_) {
      if (pinned == ts) {
        ++count;
        return;
      }
    }
    pins_.push_back({ts, 1});
  }

  void UnpinSnapshot(Timestamp ts) {
    AssertOwnerThread();
    for (size_t i = 0; i < pins_.size(); ++i) {
      if (pins_[i].first == ts) {
        if (--pins_[i].second == 0) {
          pins_[i] = pins_.back();
          pins_.pop_back();
        }
        return;
      }
    }
#ifndef NDEBUG
    assert(false && "UnpinSnapshot without a matching PinSnapshot");
#endif
  }

  /// Oldest pinned read timestamp, or kMaxTimestamp when nothing is pinned.
  Timestamp MinPinnedTs() const {
    Timestamp min_ts = kMaxTimestamp;
    for (const auto& [pinned, count] : pins_) min_ts = std::min(min_ts, pinned);
    return min_ts;
  }

  /// Crash recovery (paper §IV-C): removes all versions with timestamps
  /// beyond the last-commit timestamp, as a restarted node would. Chains are
  /// rewritten in place (surviving edges slide down within their blocks);
  /// vacated arena slots are reset so they hold no stale property Values.
  void TruncateAfter(Timestamp lct) {
    AssertOwnerThread();
    index_.EraseIf([&](const VertexId&, uint32_t idx) {
      TelVertex& rec = recs_[idx];
      if (rec.create_ts > lct && rec.label != kInvalidLabel) {
        ReleaseRec(&rec);
        return true;
      }
      if (rec.delete_ts != kMaxTimestamp && rec.delete_ts > lct) {
        rec.delete_ts = kMaxTimestamp;
      }
      for (const TelVertex::AdjChain& chain : rec.adj) {
        // Two-cursor rewrite: read walks every stored edge, write trails,
        // compacting survivors into the front of the chain.
        uint32_t wb = chain.head;
        uint32_t wi = 0;
        for (uint32_t b = chain.head; b != kNoBlock; b = blocks_[b].next) {
          Block& blk = blocks_[b];
          for (uint32_t i = 0; i < blk.len; ++i) {
            TelEdge& e = arena_[blk.first + i];
            if (e.create_ts > lct) continue;
            if (e.delete_ts != kMaxTimestamp && e.delete_ts > lct) {
              e.delete_ts = kMaxTimestamp;
            }
            if (wi == blocks_[wb].cap) {
              blocks_[wb].len = wi;
              wb = blocks_[wb].next;
              wi = 0;
            }
            if (wb != b || wi != i) {
              arena_[blocks_[wb].first + wi] = std::move(e);
            }
            ++wi;
          }
        }
        // Trim the tail: the write block keeps `wi` edges, later blocks none.
        blocks_[wb].len = wi;
        ClearSlotsAfter(wb, wi);
        for (uint32_t b = blocks_[wb].next; b != kNoBlock; b = blocks_[b].next) {
          blocks_[b].len = 0;
          ClearSlotsAfter(b, 0);
        }
      }
      rec.props.erase(
          std::remove_if(rec.props.begin(), rec.props.end(),
                         [&](const TelPropVersion& pv) { return pv.ts > lct; }),
          rec.props.end());
      return false;
    });
  }

  /// Version compaction (LiveGraph-style GC): drops edge and property
  /// versions that are invisible to every reader at or after `watermark`
  /// (i.e. deleted at or before it), and rewrites surviving pre-watermark
  /// creation stamps to 0 so later compactions stay cheap. Safe when no
  /// active query holds a read timestamp below the watermark.
  ///
  /// That quiescence contract is enforced through the pin registry: callers
  /// that keep a snapshot live across mutations pin its timestamp
  /// (PinSnapshot), and a compaction whose watermark would overtake a pinned
  /// reader asserts in Debug builds and clamps the watermark to the oldest
  /// pin in release builds — the reader keeps every version it can see,
  /// compaction just reclaims less.
  ///
  /// Epoch-based: the whole arena is rebuilt from the survivors — one
  /// exact-size block per chain, dead vertices and padding dropped — and
  /// `compaction_epoch()` advances. Nothing may hold pointers into the old
  /// arena across a compaction (FindVertex/scan results are transient).
  void Compact(Timestamp watermark) {
    AssertOwnerThread();
#ifndef NDEBUG
    assert(watermark <= MinPinnedTs() &&
           "Compact watermark overtakes a pinned snapshot reader");
#endif
    watermark = std::min(watermark, MinPinnedTs());
    ++compaction_epoch_;
    std::vector<TelEdge> old_arena;
    std::vector<Block> old_blocks;
    old_arena.swap(arena_);
    old_blocks.swap(blocks_);

    index_.EraseIf([&](const VertexId&, uint32_t idx) {
      TelVertex& rec = recs_[idx];
      if (rec.delete_ts <= watermark) {
        ReleaseRec(&rec);
        return true;
      }
      for (TelVertex::AdjChain& chain : rec.adj) {
        uint32_t survivors = 0;
        for (uint32_t b = chain.head; b != kNoBlock; b = old_blocks[b].next) {
          const Block& blk = old_blocks[b];
          for (uint32_t i = 0; i < blk.len; ++i) {
            if (old_arena[blk.first + i].delete_ts > watermark) ++survivors;
          }
        }
        uint32_t nb = NewBlock(survivors == 0 ? kFirstBlockCap : survivors);
        Block& dst = blocks_[nb];
        for (uint32_t b = chain.head; b != kNoBlock; b = old_blocks[b].next) {
          const Block& blk = old_blocks[b];
          for (uint32_t i = 0; i < blk.len; ++i) {
            TelEdge& e = old_arena[blk.first + i];
            if (e.delete_ts <= watermark) continue;  // dead to all readers
            if (e.create_ts <= watermark) e.create_ts = 0;
            arena_[dst.first + dst.len] = std::move(e);
            ++dst.len;
          }
        }
        chain.head = chain.tail = nb;
      }
      CompactProps(&rec, watermark);
      return false;
    });
  }

  size_t num_vertices() const { return index_.size(); }

  /// Total stored edge versions (for compaction tests/metrics).
  size_t num_edge_versions() const {
    size_t n = 0;
    index_.ForEach([&](const VertexId&, const uint32_t& idx) {
      for (const TelVertex::AdjChain& chain : recs_[idx].adj) {
        for (uint32_t b = chain.head; b != kNoBlock; b = blocks_[b].next) {
          n += blocks_[b].len;
        }
      }
    });
    return n;
  }

  /// Number of completed epoch compactions (arena rebuilds).
  uint64_t compaction_epoch() const { return compaction_epoch_; }

 private:
  static constexpr uint32_t kNoBlock = 0xffffffffu;
  static constexpr uint32_t kFirstBlockCap = 4;

  /// One capacity-doubling segment of an adjacency chain: `cap` arena slots
  /// starting at `first`, `len` of them in use.
  struct Block {
    uint32_t first = 0;
    uint32_t len = 0;
    uint32_t cap = 0;
    uint32_t next = kNoBlock;
  };

  TelVertex* Find(VertexId v) {
    uint32_t* idx = index_.Find(v);
    return idx == nullptr ? nullptr : &recs_[*idx];
  }
  const TelVertex* Find(VertexId v) const {
    return const_cast<TransactionalEdgeLog*>(this)->Find(v);
  }

  TelVertex& GetOrCreate(VertexId v) {
    auto [idx, inserted] = index_.TryEmplace(v, 0);
    if (inserted) {
      *idx = static_cast<uint32_t>(recs_.size());
      recs_.emplace_back();
    }
    return recs_[*idx];
  }

  static const TelVertex::AdjChain* FindChain(const TelVertex& rec,
                                              uint32_t key) {
    for (const TelVertex::AdjChain& c : rec.adj) {
      if (c.key == key) return &c;
    }
    return nullptr;
  }

  uint32_t NewBlock(uint32_t cap) {
    uint32_t b = static_cast<uint32_t>(blocks_.size());
    Block blk;
    blk.first = static_cast<uint32_t>(arena_.size());
    blk.cap = cap;
    blocks_.push_back(blk);
    arena_.resize(arena_.size() + cap);
    return b;
  }

  /// Returns the arena slot for the next edge appended under (rec, key),
  /// growing the chain with a doubled block when the tail is full.
  uint32_t AppendSlot(TelVertex* rec, uint32_t key) {
    TelVertex::AdjChain* chain = nullptr;
    for (TelVertex::AdjChain& c : rec->adj) {
      if (c.key == key) {
        chain = &c;
        break;
      }
    }
    if (chain == nullptr) {
      uint32_t b = NewBlock(kFirstBlockCap);
      rec->adj.push_back(TelVertex::AdjChain{key, b, b});
      chain = &rec->adj.back();
    }
    if (blocks_[chain->tail].len == blocks_[chain->tail].cap) {
      uint32_t b = NewBlock(blocks_[chain->tail].cap * 2);
      blocks_[chain->tail].next = b;
      chain->tail = b;
    }
    Block& tail = blocks_[chain->tail];
    return tail.first + tail.len++;
  }

  /// Resets vacated slots of `b` past `keep` so they drop any owned Values.
  void ClearSlotsAfter(uint32_t b, uint32_t keep) {
    // Copy-assign from a named empty edge: GCC 12 flags variant move-assign
    // from a temporary as maybe-uninitialized through the visit table.
    static const TelEdge kEmptyEdge{};
    const Block& blk = blocks_[b];
    for (uint32_t i = keep; i < blk.cap; ++i) arena_[blk.first + i] = kEmptyEdge;
  }

  /// Drops an erased vertex's heap state (its arena blocks stay dead until
  /// the next compaction rebuild reclaims them).
  void ReleaseRec(TelVertex* rec) {
    for (const TelVertex::AdjChain& chain : rec->adj) {
      for (uint32_t b = chain.head; b != kNoBlock; b = blocks_[b].next) {
        blocks_[b].len = 0;
        ClearSlotsAfter(b, 0);
      }
    }
    *rec = TelVertex{};
    rec->create_ts = 1;
    rec->delete_ts = 0;  // never visible; unreachable once unindexed
  }

  /// Properties: keep only the latest version at or below the watermark plus
  /// everything after it. `latest_below` is a small inline scan (prop keys
  /// per vertex are few) instead of a per-call unordered_map; replacement
  /// position and the later-in-log-wins tie rule match the original exactly.
  void CompactProps(TelVertex* rec, Timestamp watermark) {
    std::vector<TelPropVersion> kept_props;
    SmallVector<std::pair<PropKeyId, size_t>, 8> latest_below;
    for (TelPropVersion& pv : rec->props) {
      if (pv.ts > watermark) {
        kept_props.push_back(std::move(pv));
        continue;
      }
      size_t* seen = nullptr;
      for (auto& [key, pos] : latest_below) {
        if (key == pv.key) {
          seen = &pos;
          break;
        }
      }
      if (seen == nullptr) {
        latest_below.push_back({pv.key, kept_props.size()});
        kept_props.push_back(std::move(pv));
      } else if (kept_props[*seen].ts <= pv.ts) {
        kept_props[*seen] = std::move(pv);
      }
    }
    rec->props = std::move(kept_props);
  }

  FlatMap<VertexId, uint32_t> index_;
  std::vector<TelVertex> recs_;
  std::vector<TelEdge> arena_;
  std::vector<Block> blocks_;
  uint64_t compaction_epoch_ = 0;
  SmallVector<std::pair<Timestamp, uint32_t>, 4> pins_;  // (read ts, readers)
#ifndef NDEBUG
  // Default-constructed id = unclaimed (no enforcement).
  std::thread::id owner_thread_;
#endif
};

}  // namespace graphdance

#endif  // GRAPHDANCE_GRAPH_TEL_H_
