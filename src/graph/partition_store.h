#ifndef GRAPHDANCE_GRAPH_PARTITION_STORE_H_
#define GRAPHDANCE_GRAPH_PARTITION_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/value.h"
#include "graph/schema.h"
#include "graph/tel.h"
#include "graph/types.h"

namespace graphdance {

/// A (key, value) vertex property pair.
struct Prop {
  PropKeyId key;
  Value value;
};

/// Immutable CSR adjacency for one (edge label, direction) within a
/// partition. Targets are global vertex ids; `props[i]` is the single edge
/// property of edge i (null Value when the label carries no edge property).
struct CsrAdjacency {
  std::vector<uint32_t> offsets;  // size = num_local_vertices + 1
  std::vector<VertexId> targets;
  std::vector<Value> props;  // empty when no edge property for this label
};

/// One graph partition: the static bulk-loaded store (vertex table, property
/// lists, CSR adjacency, secondary indexes) plus the dynamic transactional
/// edge log (TEL) holding post-load updates.
///
/// Thread-safety: the static part is immutable after Build; the TEL part is
/// mutated only by the single worker thread owning this partition.
class PartitionStore {
 public:
  PartitionStore() = default;
  PartitionStore(const PartitionStore&) = delete;
  PartitionStore& operator=(const PartitionStore&) = delete;

  // ---- static store accessors -------------------------------------------

  uint32_t num_vertices() const { return static_cast<uint32_t>(vertex_ids_.size()); }
  uint64_t num_static_edges() const { return num_static_edges_; }

  /// Local dense index of a static vertex, or nullopt if not stored here.
  std::optional<uint32_t> LocalIndex(VertexId v) const {
    const uint32_t* local = local_index_.Find(v);
    if (local == nullptr) return std::nullopt;
    return *local;
  }

  VertexId GlobalId(uint32_t local) const { return vertex_ids_[local]; }
  LabelId VertexLabel(uint32_t local) const { return vertex_labels_[local]; }

  /// Property of a static vertex, or nullptr when absent.
  const Value* GetProperty(uint32_t local, PropKeyId key) const {
    for (const Prop& p : vertex_props_[local]) {
      if (p.key == key) return &p.value;
    }
    return nullptr;
  }

  const std::vector<Prop>& Properties(uint32_t local) const {
    return vertex_props_[local];
  }

  const CsrAdjacency* Adjacency(LabelId elabel, Direction dir) const {
    uint32_t key = AdjMapKey(elabel, dir);
    return key < adjacency_.size() ? adjacency_[key].get() : nullptr;
  }

  /// Degree of a static vertex for one (label, direction), excluding TEL.
  uint32_t StaticDegree(uint32_t local, LabelId elabel, Direction dir) const {
    const CsrAdjacency* adj = Adjacency(elabel, dir);
    if (adj == nullptr) return 0;
    return adj->offsets[local + 1] - adj->offsets[local];
  }

  // ---- unified read path (static CSR + TEL delta) ------------------------

  /// True when vertex `v` exists in this partition at read timestamp `ts`
  /// (static vertices exist at all timestamps).
  bool HasVertex(VertexId v, Timestamp ts) const {
    if (local_index_.Contains(v)) return true;
    return tel_.HasVertex(v, ts);
  }

  /// Label of `v` at `ts`, or kInvalidLabel when absent.
  LabelId LabelOf(VertexId v, Timestamp ts) const {
    const uint32_t* local = local_index_.Find(v);
    if (local != nullptr) return vertex_labels_[*local];
    const TelVertex* rec = tel_.FindVertex(v);
    if (rec != nullptr && rec->VisibleAt(ts)) return rec->label;
    return kInvalidLabel;
  }

  /// Property of `v` at `ts`: TEL versions override static values.
  const Value* PropertyOf(VertexId v, PropKeyId key, Timestamp ts) const {
    const Value* dynamic = tel_.GetProperty(v, key, ts);
    if (dynamic != nullptr) return dynamic;
    const uint32_t* local = local_index_.Find(v);
    if (local == nullptr) return nullptr;
    return GetProperty(*local, key);
  }

  /// Iterates neighbors of `v` for (elabel, dir) visible at `ts`, static
  /// edges first then the TEL delta. `fn(VertexId dst, const Value& eprop)`.
  template <typename Fn>
  void ForEachNeighbor(VertexId v, LabelId elabel, Direction dir, Timestamp ts,
                       Fn&& fn) const {
    if (dir == Direction::kBoth) {
      ForEachNeighbor(v, elabel, Direction::kOut, ts, fn);
      ForEachNeighbor(v, elabel, Direction::kIn, ts, fn);
      return;
    }
    const uint32_t* local = local_index_.Find(v);
    if (local != nullptr) {
      const CsrAdjacency* adj = Adjacency(elabel, dir);
      if (adj != nullptr) {
        uint32_t begin = adj->offsets[*local];
        uint32_t end = adj->offsets[*local + 1];
        const bool has_props = !adj->props.empty();
        for (uint32_t i = begin; i < end; ++i) {
          fn(adj->targets[i], has_props ? adj->props[i] : kNullValue());
        }
      }
    }
    tel_.ForEachEdge(v, elabel, dir, ts,
                     [&](VertexId dst, const Value& prop) { fn(dst, prop); });
  }

  /// Like ForEachNeighbor, but also reports each edge's raw version stamps:
  /// `fn(dst, eprop, create_ts, delete_ts)`. Static edges exist at all
  /// timestamps, so they report (0, kMaxTimestamp); TEL edges report their
  /// stored stamps. Used by the snapshot-isolation checker to audit what the
  /// visibility scan returned.
  template <typename Fn>
  void ForEachNeighborStamped(VertexId v, LabelId elabel, Direction dir,
                              Timestamp ts, Fn&& fn) const {
    if (dir == Direction::kBoth) {
      ForEachNeighborStamped(v, elabel, Direction::kOut, ts, fn);
      ForEachNeighborStamped(v, elabel, Direction::kIn, ts, fn);
      return;
    }
    const uint32_t* local = local_index_.Find(v);
    if (local != nullptr) {
      const CsrAdjacency* adj = Adjacency(elabel, dir);
      if (adj != nullptr) {
        uint32_t begin = adj->offsets[*local];
        uint32_t end = adj->offsets[*local + 1];
        const bool has_props = !adj->props.empty();
        for (uint32_t i = begin; i < end; ++i) {
          fn(adj->targets[i], has_props ? adj->props[i] : kNullValue(),
             Timestamp{0}, kMaxTimestamp);
        }
      }
    }
    tel_.ForEachEdgeStamped(v, elabel, dir, ts,
                            [&](VertexId dst, const Value& prop,
                                Timestamp create_ts, Timestamp delete_ts) {
                              fn(dst, prop, create_ts, delete_ts);
                            });
  }

  /// Total degree (static + TEL) of `v` for (elabel, dir) at `ts`.
  uint64_t Degree(VertexId v, LabelId elabel, Direction dir, Timestamp ts) const {
    uint64_t n = 0;
    ForEachNeighbor(v, elabel, dir, ts, [&](VertexId, const Value&) { ++n; });
    return n;
  }

  // ---- secondary indexes --------------------------------------------------

  /// Static vertices in this partition matching (vlabel, key == value), via
  /// a pre-built secondary index; nullptr when the index is absent.
  const std::vector<VertexId>* IndexLookup(LabelId vlabel, PropKeyId key,
                                           const Value& value) const {
    auto it = indexes_.find(IndexMapKey(vlabel, key));
    if (it == indexes_.end()) return nullptr;
    auto vit = it->second.find(value);
    return vit == it->second.end() ? nullptr : &vit->second;
  }

  bool HasIndex(LabelId vlabel, PropKeyId key) const {
    return indexes_.count(IndexMapKey(vlabel, key)) > 0;
  }

  /// Builds the (vlabel, key) secondary index over static vertices.
  void BuildIndex(LabelId vlabel, PropKeyId key) {
    auto& index = indexes_[IndexMapKey(vlabel, key)];
    for (uint32_t local = 0; local < num_vertices(); ++local) {
      if (vertex_labels_[local] != vlabel) continue;
      const Value* v = GetProperty(local, key);
      if (v != nullptr) index[*v].push_back(vertex_ids_[local]);
    }
  }

  // ---- dynamic (TEL) ------------------------------------------------------

  TransactionalEdgeLog& tel() { return tel_; }
  const TransactionalEdgeLog& tel() const { return tel_; }

  /// Debug-build shared-nothing enforcement: a multi-threaded runtime claims
  /// each partition from its owning worker thread; TEL mutations then assert
  /// they run on that thread (no-ops in release, inert when never claimed).
  void ClaimOwnerThread() { tel_.ClaimOwnerThread(); }
  void ReleaseOwnerThread() { tel_.ReleaseOwnerThread(); }

  // ---- construction (used by GraphBuilder only) ---------------------------

  uint32_t AddVertexForBuild(VertexId v, LabelId label, std::vector<Prop> props) {
    uint32_t local = num_vertices();
    vertex_ids_.push_back(v);
    vertex_labels_.push_back(label);
    vertex_props_.push_back(std::move(props));
    local_index_.TryEmplace(v, local);
    return local;
  }

  void InstallAdjacency(LabelId elabel, Direction dir,
                        std::unique_ptr<CsrAdjacency> adj) {
    num_static_edges_ += dir == Direction::kOut ? adj->targets.size() : 0;
    uint32_t key = AdjMapKey(elabel, dir);
    if (key >= adjacency_.size()) adjacency_.resize(key + 1);
    adjacency_[key] = std::move(adj);
  }

 private:
  static uint32_t AdjMapKey(LabelId elabel, Direction dir) {
    return (static_cast<uint32_t>(elabel) << 1) |
           (dir == Direction::kIn ? 1u : 0u);
  }
  static uint32_t IndexMapKey(LabelId vlabel, PropKeyId key) {
    return (static_cast<uint32_t>(vlabel) << 16) | key;
  }
  static const Value& kNullValue() {
    static const Value null_value;
    return null_value;
  }

  std::vector<VertexId> vertex_ids_;
  std::vector<LabelId> vertex_labels_;
  std::vector<std::vector<Prop>> vertex_props_;
  // Hot per-traverser lookups: open-addressing id->local map, and direct
  // AdjMapKey-indexed adjacency (edge-label ids are small and dense).
  FlatMap<VertexId, uint32_t> local_index_;
  std::vector<std::unique_ptr<CsrAdjacency>> adjacency_;
  std::unordered_map<uint32_t, std::unordered_map<Value, std::vector<VertexId>, ValueHash>>
      indexes_;
  uint64_t num_static_edges_ = 0;
  TransactionalEdgeLog tel_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_GRAPH_PARTITION_STORE_H_
