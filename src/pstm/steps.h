#ifndef GRAPHDANCE_PSTM_STEPS_H_
#define GRAPHDANCE_PSTM_STEPS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pstm/step.h"

namespace graphdance {

/// Arithmetic combinators for computed operands. kPair concatenates the two
/// values into a collision-free "a|b" string — composite join/group keys.
enum class ArithKind : uint8_t { kAdd = 0, kSub, kMul, kDiv, kPair };

/// A value source evaluated against a traverser in its current partition.
/// Operands compose: Arith nodes combine two sub-operands numerically,
/// enabling computed projections (e.g. the PageRank update
/// 0.15/N + 0.85 * sum).
struct Operand {
  enum class Kind : uint8_t {
    kConst = 0,  // a literal Value
    kProp,       // property `prop` of the current vertex
    kVar,        // traverser local variable vars[var]
    kVertexId,   // the current vertex id as an int
    kLabel,      // the current vertex label id as an int
    kHop,        // the traverser's hop counter
    kPathStr,    // the tracked path (plus current vertex) as "a->b->c"
    kDegree,     // degree of the current vertex for (elabel, dir)
    kArith,      // arith(lhs, rhs) evaluated as doubles
  };

  Kind kind = Kind::kConst;
  PropKeyId prop = kInvalidPropKey;
  uint32_t var = 0;
  Value constant;
  // kDegree:
  LabelId elabel = kInvalidLabel;
  Direction dir = Direction::kOut;
  // kArith:
  ArithKind arith = ArithKind::kAdd;
  std::shared_ptr<const Operand> lhs;
  std::shared_ptr<const Operand> rhs;

  static Operand Const(Value v) {
    Operand o;
    o.kind = Kind::kConst;
    o.constant = std::move(v);
    return o;
  }
  static Operand Property(PropKeyId key) {
    Operand o;
    o.kind = Kind::kProp;
    o.prop = key;
    return o;
  }
  static Operand Var(uint32_t index) {
    Operand o;
    o.kind = Kind::kVar;
    o.var = index;
    return o;
  }
  static Operand VertexIdOp() {
    Operand o;
    o.kind = Kind::kVertexId;
    return o;
  }
  static Operand LabelOp() {
    Operand o;
    o.kind = Kind::kLabel;
    return o;
  }
  static Operand HopOp() {
    Operand o;
    o.kind = Kind::kHop;
    return o;
  }
  static Operand PathOp() {
    Operand o;
    o.kind = Kind::kPathStr;
    return o;
  }
  static Operand Degree(LabelId elabel, Direction dir = Direction::kOut) {
    Operand o;
    o.kind = Kind::kDegree;
    o.elabel = elabel;
    o.dir = dir;
    return o;
  }
  static Operand Arith(ArithKind op, Operand a, Operand b) {
    Operand o;
    o.kind = Kind::kArith;
    o.arith = op;
    o.lhs = std::make_shared<Operand>(std::move(a));
    o.rhs = std::make_shared<Operand>(std::move(b));
    return o;
  }

  /// True when evaluation needs no partition data (safe to use for routing
  /// keys and at key-partitioned steps).
  bool TraverserLocal() const {
    switch (kind) {
      case Kind::kConst:
      case Kind::kVar:
      case Kind::kVertexId:
      case Kind::kHop:
      case Kind::kPathStr:
        return true;
      case Kind::kArith:
        return lhs->TraverserLocal() && rhs->TraverserLocal();
      default:
        return false;
    }
  }

  /// Evaluates against `t`. Property access charges `ctx` and reads the
  /// current partition's store.
  Value Eval(const Traverser& t, StepContext& ctx) const;
};

/// Comparison operators for Filter predicates.
enum class CmpOp : uint8_t {
  kEq = 0,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kContains,  // substring test on strings
  kIsNull,
  kNotNull,
};

/// One predicate `lhs op rhs`. kIsNull/kNotNull ignore rhs.
struct Predicate {
  Operand lhs;
  CmpOp op = CmpOp::kEq;
  Operand rhs;

  bool Eval(const Traverser& t, StepContext& ctx) const;
};

/// Sort key for OrderByLimit: row column + direction.
struct SortSpec {
  uint32_t col = 0;
  bool ascending = true;
};

/// Lexicographic row comparison under `specs`.
bool RowLess(const Row& a, const Row& b, const std::vector<SortSpec>& specs);

// ---------------------------------------------------------------------------

/// IndexLookup: launches the traversal from explicit vertex ids, from a
/// secondary-index probe (vlabel, prop == value), or from a full label scan.
/// With explicit ids the engine places one root per id at its owning
/// partition; index probes and scans broadcast one root per partition.
class IndexLookupStep : public Step {
 public:
  enum class Mode : uint8_t { kByIds = 0, kByIndex, kScanLabel };

  /// Point lookup by vertex ids.
  explicit IndexLookupStep(std::vector<VertexId> ids)
      : Step(StepKind::kIndexLookup), ids_(std::move(ids)) {}

  /// Index probe (requires PartitionedGraph::BuildIndex(vlabel, key)).
  IndexLookupStep(LabelId vlabel, PropKeyId key, Value value)
      : Step(StepKind::kIndexLookup),
        vlabel_(vlabel),
        key_(key),
        value_(std::move(value)),
        mode_(Mode::kByIndex) {}

  /// Full scan of every vertex with `vlabel` (the plan the
  /// IndexLookUpStrategy rewrites away when an index is available).
  explicit IndexLookupStep(LabelId vlabel)
      : Step(StepKind::kIndexLookup), vlabel_(vlabel), mode_(Mode::kScanLabel) {}

  void Execute(Traverser t, StepContext& ctx) const override;
  bool BroadcastRoot() const override { return mode_ != Mode::kByIds; }
  std::vector<VertexId> RootVertices() const override { return ids_; }
  std::string Describe() const override;

  Mode mode() const { return mode_; }
  LabelId vlabel() const { return vlabel_; }

 private:
  std::vector<VertexId> ids_;
  LabelId vlabel_ = kInvalidLabel;
  PropKeyId key_ = kInvalidPropKey;
  Value value_;
  Mode mode_ = Mode::kByIds;
};

/// Expand: moves traversers along (elabel, dir) edges.
///
/// Chain mode (loop_hops == 0): each input expands once; every neighbor
/// continues at next().
///
/// Loop mode (loop_hops == k > 0): implements repeat(expand).times(k) with
/// optional distance-memo pruning (Fig. 5). On arrival the traverser first
/// checks/updates the shared DistanceMemo (pruning duplicates with
/// greater-or-equal traversed distance), optionally tees the current vertex
/// to `tee_step`, and re-emits neighbors to itself while hop < k.
class ExpandStep : public Step {
 public:
  ExpandStep(LabelId elabel, Direction dir) : Step(StepKind::kExpand), elabel_(elabel), dir_(dir) {}

  void set_loop(uint16_t hops, bool use_distance_memo) {
    loop_hops_ = hops;
    use_distance_memo_ = use_distance_memo;
  }
  void set_tee(uint16_t tee_step) { tee_step_ = tee_step; }
  /// Tee on every distance improvement instead of only the first visit.
  /// Required by min-distance queries: the first asynchronous visit of a
  /// vertex need not carry its minimal distance, but the last improvement
  /// always does.
  void set_tee_on_improve(bool v) { tee_on_improve_ = v; }
  /// Appends the traversed edge's property to the child traverser's vars.
  void set_capture_edge_prop(bool capture) { capture_edge_prop_ = capture; }
  /// Filters expanded edges by their edge property (evaluated inline).
  void set_edge_prop_filter(CmpOp op, Value rhs) {
    edge_filter_op_ = op;
    edge_filter_rhs_ = std::move(rhs);
  }
  /// Children record the traversal path (Gremlin path()): each expansion
  /// appends the parent vertex to the child's path vector.
  void set_track_path(bool v) { track_path_ = v; }

  LabelId elabel() const { return elabel_; }
  Direction dir() const { return dir_; }
  uint16_t loop_hops() const { return loop_hops_; }

  void Execute(Traverser t, StepContext& ctx) const override;
  std::vector<uint16_t> ExtraSuccessors() const override {
    return tee_step_ == kNoStep ? std::vector<uint16_t>{}
                                : std::vector<uint16_t>{tee_step_};
  }
  std::string Describe() const override;

 protected:
  void OffsetExtraIds(uint16_t delta) override {
    if (tee_step_ != kNoStep) tee_step_ = static_cast<uint16_t>(tee_step_ + delta);
  }

 private:
  LabelId elabel_;
  Direction dir_;
  uint16_t loop_hops_ = 0;
  bool use_distance_memo_ = false;
  uint16_t tee_step_ = kNoStep;
  bool tee_on_improve_ = false;
  bool capture_edge_prop_ = false;
  bool track_path_ = false;
  std::optional<CmpOp> edge_filter_op_;
  Value edge_filter_rhs_;
};

/// Filter: conjunction of predicates; failing traversers terminate.
class FilterStep : public Step {
 public:
  explicit FilterStep(std::vector<Predicate> preds)
      : Step(StepKind::kFilter), preds_(std::move(preds)) {}

  /// FilterFusionStrategy: adjacent filters merge into one step.
  void AddPredicate(Predicate p) { preds_.push_back(std::move(p)); }
  size_t num_predicates() const { return preds_.size(); }
  const std::vector<Predicate>& predicates() const { return preds_; }
  /// Removes the predicate at `p`'s address (used by IndexLookUpStrategy
  /// after the predicate is absorbed into an index probe).
  void RemovePredicate(const Predicate& p) {
    for (auto it = preds_.begin(); it != preds_.end(); ++it) {
      if (&*it == &p) {
        preds_.erase(it);
        return;
      }
    }
  }

  void Execute(Traverser t, StepContext& ctx) const override;
  std::string Describe() const override;

 private:
  std::vector<Predicate> preds_;
};

/// Project: rewrites the traverser's local variables from operand sources.
/// With append=true the new values are appended after the existing vars.
class ProjectStep : public Step {
 public:
  ProjectStep(std::vector<Operand> sources, bool append = false)
      : Step(StepKind::kProject), sources_(std::move(sources)), append_(append) {}

  void Execute(Traverser t, StepContext& ctx) const override;
  std::string Describe() const override;

 private:
  std::vector<Operand> sources_;
  bool append_;
};

/// Dedup: drops traversers whose key was already seen in the key's
/// partition (partitionable per §III-A; executed incrementally, no
/// barriers). The key operand must be traverser-local.
class DedupStep : public Step {
 public:
  explicit DedupStep(Operand key) : Step(StepKind::kDedup), key_(std::move(key)) {}

  void Execute(Traverser t, StepContext& ctx) const override;
  PartitionId Route(const Traverser& t, const Partitioner& p) const override;
  std::string Describe() const override;

  const Operand& key() const { return key_; }

 private:
  Operand key_;
};

/// One side of a double-pipelined join (paper §III-A). Both sides share the
/// JoinMemo stored under the LEFT step's id. An arriving instance inserts
/// itself into its side's table, probes the opposite side, and emits one
/// combined traverser per match (vars = left vars ++ right vars). The join
/// is partitioned by key, so all state for one key lives in one partition.
class JoinProbeStep : public Step {
 public:
  JoinProbeStep(bool left, Operand key)
      : Step(StepKind::kJoinProbe), left_(left), key_(std::move(key)) {}

  /// Both sides must point at the left step's id (memo home).
  void set_memo_step(uint16_t id) { memo_step_ = id; }

  void Execute(Traverser t, StepContext& ctx) const override;
  PartitionId Route(const Traverser& t, const Partitioner& p) const override;
  std::string Describe() const override;

 protected:
  void OffsetExtraIds(uint16_t delta) override {
    if (memo_step_ != kNoStep) memo_step_ = static_cast<uint16_t>(memo_step_ + delta);
  }

 private:
  bool left_;
  Operand key_;
  uint16_t memo_step_ = kNoStep;
};

/// GroupBy: blocking grouped aggregation, partitioned by group key. During
/// the scope it accumulates (key -> agg(value)); at finalization each
/// partition emits one next-scope traverser per local group with
/// vars = [key, aggregate] (local groups need no cross-partition merge
/// because the key partitioning makes groups disjoint).
class GroupByStep : public Step {
 public:
  GroupByStep(Operand key, Operand value, AggFunc func)
      : Step(StepKind::kGroupBy), key_(std::move(key)), value_(std::move(value)), func_(func) {
    set_blocking(true);
  }

  void Execute(Traverser t, StepContext& ctx) const override;
  PartitionId Route(const Traverser& t, const Partitioner& p) const override;
  void OnFinalize(StepContext& ctx) const override;
  std::string Describe() const override;

  const Operand& key() const { return key_; }

 private:
  Operand key_;
  Operand value_;
  AggFunc func_;
};

/// OrderByLimit: blocking distributed top-k. Rows are the traverser's vars.
/// Each partition keeps its local top-k in a memo; at finalization the local
/// buffers travel to the coordinator (CollectReply), which merges, sorts and
/// truncates — local aggregation before global aggregation.
class OrderByLimitStep : public Step {
 public:
  OrderByLimitStep(std::vector<SortSpec> specs, size_t limit)
      : Step(StepKind::kOrderByLimit), specs_(std::move(specs)), limit_(limit) {
    set_blocking(true);
  }

  void Execute(Traverser t, StepContext& ctx) const override;
  /// Rows accumulate where they were produced (local top-k, merged at
  /// finalization) — no routing hop.
  PartitionId Route(const Traverser&, const Partitioner&) const override {
    return kLocalRoute;
  }
  void OnFinalize(StepContext& ctx) const override;
  bool NeedsCollect() const override { return true; }
  void OnCollect(ByteReader* payload, CollectMergeState* state) const override;
  void OnCollectComplete(const CollectMergeState& state, std::vector<Row>* result_rows,
                         std::vector<Traverser>* continuations) const override;
  std::string Describe() const override;

  size_t limit() const { return limit_; }

 private:
  std::vector<SortSpec> specs_;
  size_t limit_;
};

/// ScalarAgg: blocking ungrouped aggregate. Partitions accumulate locally;
/// partial AggStates merge at the coordinator. Terminal when next()==kNoStep
/// (emits a single result row); otherwise the merged value continues as a
/// single next-scope traverser with vars = [aggregate].
class ScalarAggStep : public Step {
 public:
  ScalarAggStep(Operand value, AggFunc func)
      : Step(StepKind::kScalarAgg), value_(std::move(value)), func_(func) {
    set_blocking(true);
  }

  void Execute(Traverser t, StepContext& ctx) const override;
  PartitionId Route(const Traverser& t, const Partitioner& p) const override {
    return value_.TraverserLocal() ? kLocalRoute : p.Of(t.vertex);
  }
  void OnFinalize(StepContext& ctx) const override;
  bool NeedsCollect() const override { return true; }
  void OnCollect(ByteReader* payload, CollectMergeState* state) const override;
  void OnCollectComplete(const CollectMergeState& state, std::vector<Row>* result_rows,
                         std::vector<Traverser>* continuations) const override;
  std::string Describe() const override;

 private:
  Operand value_;
  AggFunc func_;
};

/// Emit: terminal non-blocking step streaming projected rows to the
/// coordinator as they are produced.
class EmitStep : public Step {
 public:
  explicit EmitStep(std::vector<Operand> projections, size_t limit = 0)
      : Step(StepKind::kEmit), projections_(std::move(projections)), limit_(limit) {
    local_ok_ = true;
    for (const Operand& op : projections_) local_ok_ &= op.TraverserLocal();
  }

  /// Result-count limit; the coordinator cancels the query once reached
  /// (scoped early termination). 0 = unlimited.
  size_t limit() const { return limit_; }

  void Execute(Traverser t, StepContext& ctx) const override;
  PartitionId Route(const Traverser& t, const Partitioner& p) const override {
    return local_ok_ ? kLocalRoute : p.Of(t.vertex);
  }
  std::string Describe() const override;

 private:
  std::vector<Operand> projections_;
  size_t limit_;
  bool local_ok_;
};

// --- collect payload helpers (shared with engine tests) ---------------------

void SerializeRow(const Row& row, ByteWriter* out);
Row DeserializeRow(ByteReader* in);
void SerializeAggState(const AggState& agg, ByteWriter* out);
AggState DeserializeAggState(ByteReader* in);

}  // namespace graphdance

#endif  // GRAPHDANCE_PSTM_STEPS_H_
