#ifndef GRAPHDANCE_PSTM_STEP_H_
#define GRAPHDANCE_PSTM_STEP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/serde.h"
#include "common/value.h"
#include "graph/partition_store.h"
#include "graph/partitioner.h"
#include "graph/schema.h"
#include "pstm/memo.h"
#include "pstm/traverser.h"
#include "sim/cost_model.h"

namespace graphdance {

inline constexpr uint16_t kNoStep = 0xffff;

/// Sentinel returned by Step::Route meaning "execute in the partition where
/// the traverser was emitted" (local accumulation, no routing hop).
inline constexpr PartitionId kLocalRoute = 0xffffffffu;

/// Step kinds (for plan printing and tests).
enum class StepKind : uint8_t {
  kIndexLookup = 0,
  kExpand,
  kFilter,
  kProject,
  kDedup,
  kJoinProbe,
  kGroupBy,
  kOrderByLimit,
  kScalarAgg,
  kEmit,
};

const char* StepKindName(StepKind kind);

/// Coordinator-side scratch state while merging one blocking step's
/// CollectReply payloads.
struct CollectMergeState {
  std::vector<Row> rows;
  AggState agg;
  uint32_t replies = 0;
};

/// Per-worker reusable scratch buffers for step execution. Owned by the
/// engine's worker object (one per simulated worker / one per real thread)
/// and handed to steps through the StepContext, so the hot path reuses
/// capacity without function-local `thread_local` state — which would leak
/// one buffer per short-lived worker thread and hide ownership from the
/// engine (see ExpandStep::Execute).
struct StepScratch {
  struct Nbr {
    VertexId v;
    Value prop;
  };
  std::vector<Nbr> nbrs;
};

/// The services a step implementation receives from the executing engine.
/// One StepContext is bound to (worker, partition, query) for the duration
/// of a step execution; all mutation flows through it so the same step code
/// runs under the asynchronous, BSP and shared-memory engines.
class StepContext {
 public:
  virtual ~StepContext() = default;

  virtual const PartitionStore& store() const = 0;
  virtual MemoTable& memo() = 0;
  virtual const Partitioner& partitioner() const = 0;
  virtual const Schema& schema() const = 0;
  virtual uint64_t query_id() const = 0;
  virtual Timestamp read_ts() const = 0;
  virtual Rng& rng() = 0;

  /// Charges virtual CPU time to the executing worker.
  virtual void Charge(CostKind kind, uint64_t count) = 0;
  void Charge(CostKind kind) { Charge(kind, 1); }

  /// Observability hook: one traverser is entering a step of `kind`.
  /// Implementations must be pure observation — no virtual-time charges, no
  /// event scheduling — so metrics never perturb the event schedule.
  virtual void CountTraverser(StepKind kind) { (void)kind; }

  /// True when the engine wants every visibility-scan result audited (the
  /// snapshot-isolation checker is attached). Steps then route their
  /// adjacency scans through the stamped variant and call ObserveEdge per
  /// returned edge. Same purity rule as CountTraverser: observation only.
  virtual bool observe_edges() const { return false; }

  /// Audit hook: the visibility scan returned an edge carrying these raw
  /// version stamps to a reader at read_ts(). Default no-op.
  virtual void ObserveEdge(Timestamp create_ts, Timestamp delete_ts) {
    (void)create_ts;
    (void)delete_ts;
  }

  /// Hands a traverser to the engine for (possibly remote) continuation.
  /// The engine routes it via Step::Route of its target step.
  virtual void Emit(Traverser t) = 0;

  /// Reports `w` finished weight for scope `scope` to the progress tracker
  /// (subject to weight coalescing).
  virtual void Finish(uint32_t scope, Weight w) = 0;

  /// Streams `count` copies of one result row to the query coordinator
  /// (a bulked traverser emits its row once per represented traverser; the
  /// engine may carry the multiplicity on the wire instead of expanding).
  virtual void EmitRow(Row row, uint32_t count) = 0;
  void EmitRow(Row row) { EmitRow(std::move(row), 1); }

  /// Sends a blocking step's per-partition finalization payload to the
  /// coordinator (CollectReply).
  virtual void SendCollect(uint32_t step_id, std::vector<uint8_t> payload) = 0;

  /// Worker-owned scratch buffers (may be null for bare contexts in tests;
  /// steps must fall back to local storage when unset).
  StepScratch* scratch() { return scratch_; }
  void set_scratch(StepScratch* scratch) { scratch_ = scratch; }

 private:
  StepScratch* scratch_ = nullptr;
};

/// Immutable description of one traversal step psi. Step objects carry only
/// configuration and are shared read-only across all workers; all mutable
/// execution state lives in partition memoranda.
class Step {
 public:
  explicit Step(StepKind kind) : kind_(kind) {}
  virtual ~Step() = default;
  Step(const Step&) = delete;
  Step& operator=(const Step&) = delete;

  StepKind kind() const { return kind_; }
  uint16_t id() const { return id_; }
  uint16_t next() const { return next_; }
  uint32_t scope() const { return scope_; }
  bool blocking() const { return blocking_; }

  void set_next(uint16_t next) { next_ = next; }

  /// Shifts all step-id references by `delta` (used when splicing one
  /// pipeline's steps after another's, e.g. building joins).
  void OffsetIds(uint16_t delta) {
    if (next_ != kNoStep) next_ = static_cast<uint16_t>(next_ + delta);
    OffsetExtraIds(delta);
  }

  /// Consumes one input traverser, possibly emitting outputs via `ctx`. The
  /// implementation must conserve weight: every input's weight is either
  /// passed to emitted traversers (split via WeightSplitter) or finished.
  virtual void Execute(Traverser t, StepContext& ctx) const = 0;

  /// Partition where a traverser entering this step must execute (the
  /// partitioning function h_psi of §III-A). Defaults to the vertex's
  /// partition H(mu(t)).
  virtual PartitionId Route(const Traverser& t, const Partitioner& p) const {
    return p.Of(t.vertex);
  }

  /// True when the query-start root of a pipeline beginning at this step
  /// must be broadcast to every partition (e.g. property-index lookups).
  virtual bool BroadcastRoot() const { return false; }

  /// Known start vertices of a pipeline beginning at this step (point index
  /// lookups). When non-empty, the engine launches one root traverser per
  /// vertex at its owning partition instead of broadcasting.
  virtual std::vector<VertexId> RootVertices() const { return {}; }

  /// Additional successor edges beyond next() (tee targets), used for scope
  /// assignment. Loop-back self-edges must not be reported.
  virtual std::vector<uint16_t> ExtraSuccessors() const { return {}; }

  /// Blocking steps only: runs on every worker/partition when the step's
  /// scope completed; may Emit next-scope traversers (weight handled by the
  /// engine via the per-worker share) and/or SendCollect payloads.
  virtual void OnFinalize(StepContext& ctx) const { (void)ctx; }

  /// True when OnFinalize sends a CollectReply from every worker that the
  /// coordinator must merge before the scope transition completes.
  virtual bool NeedsCollect() const { return false; }

  /// Coordinator-side: merges one CollectReply payload.
  virtual void OnCollect(ByteReader* payload, CollectMergeState* state) const {
    (void)payload;
    (void)state;
  }

  /// Coordinator-side: all CollectReplies merged. Appends final rows to
  /// `result_rows` and/or next-scope continuation traversers (executed at
  /// the coordinator) to `continuations`.
  virtual void OnCollectComplete(const CollectMergeState& state,
                                 std::vector<Row>* result_rows,
                                 std::vector<Traverser>* continuations) const {
    (void)state;
    (void)result_rows;
    (void)continuations;
  }

  /// One-line description for plan dumps.
  virtual std::string Describe() const { return StepKindName(kind_); }

 protected:
  void set_blocking(bool blocking) { blocking_ = blocking; }

  /// Standard Execute() prologue: counts the traverser for per-step metrics,
  /// then charges the base dispatch cost.
  void EnterStep(StepContext& ctx) const {
    ctx.CountTraverser(kind_);
    ctx.Charge(CostKind::kStepBase);
  }

  /// Subclasses holding extra step-id references override this to shift them.
  virtual void OffsetExtraIds(uint16_t delta) { (void)delta; }

 private:
  friend class Plan;

  StepKind kind_;
  uint16_t id_ = kNoStep;
  uint16_t next_ = kNoStep;
  uint32_t scope_ = 0;
  bool blocking_ = false;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_PSTM_STEP_H_
