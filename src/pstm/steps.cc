#include "pstm/steps.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "pstm/weight.h"

namespace graphdance {

const char* StepKindName(StepKind kind) {
  switch (kind) {
    case StepKind::kIndexLookup:
      return "IndexLookup";
    case StepKind::kExpand:
      return "Expand";
    case StepKind::kFilter:
      return "Filter";
    case StepKind::kProject:
      return "Project";
    case StepKind::kDedup:
      return "Dedup";
    case StepKind::kJoinProbe:
      return "JoinProbe";
    case StepKind::kGroupBy:
      return "GroupBy";
    case StepKind::kOrderByLimit:
      return "OrderByLimit";
    case StepKind::kScalarAgg:
      return "ScalarAgg";
    case StepKind::kEmit:
      return "Emit";
  }
  return "?";
}

namespace {

/// Evaluates `lhs op rhs` over concrete values.
bool CompareValues(CmpOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs.Compare(rhs) < 0;
    case CmpOp::kLe:
      return lhs.Compare(rhs) <= 0;
    case CmpOp::kGt:
      return lhs.Compare(rhs) > 0;
    case CmpOp::kGe:
      return lhs.Compare(rhs) >= 0;
    case CmpOp::kContains:
      if (lhs.type() != Value::Type::kString || rhs.type() != Value::Type::kString) {
        return false;
      }
      return lhs.as_string().find(rhs.as_string()) != std::string::npos;
    case CmpOp::kIsNull:
      return lhs.is_null();
    case CmpOp::kNotNull:
      return !lhs.is_null();
  }
  return false;
}

/// Routing key for traverser-local operands (no partition data needed).
uint64_t LocalKeyHash(const Operand& op, const Traverser& t) {
  switch (op.kind) {
    case Operand::Kind::kVar:
      return op.var < t.vars.size() ? t.vars[op.var].Hash() : 0;
    case Operand::Kind::kVertexId:
      return t.vertex;
    case Operand::Kind::kHop:
      return t.hop;
    case Operand::Kind::kConst:
      return op.constant.Hash();
    default:
      return t.vertex;
  }
}

/// Route for a key-partitioned step: H(mu(t)) when keyed by vertex (the
/// paper's h_Dedup), otherwise hash-of-key.
PartitionId RouteByKey(const Operand& key, const Traverser& t, const Partitioner& p) {
  if (key.kind == Operand::Kind::kVertexId) return p.Of(t.vertex);
  return p.OfKey(LocalKeyHash(key, t));
}

}  // namespace

Value Operand::Eval(const Traverser& t, StepContext& ctx) const {
  switch (kind) {
    case Kind::kConst:
      return constant;
    case Kind::kProp: {
      ctx.Charge(CostKind::kPropAccess);
      const Value* v = ctx.store().PropertyOf(t.vertex, prop, ctx.read_ts());
      return v == nullptr ? Value() : *v;
    }
    case Kind::kVar:
      return var < t.vars.size() ? t.vars[var] : Value();
    case Kind::kVertexId:
      return Value(static_cast<int64_t>(t.vertex));
    case Kind::kLabel:
      return Value(static_cast<int64_t>(
          ctx.store().LabelOf(t.vertex, ctx.read_ts())));
    case Kind::kHop:
      return Value(static_cast<int64_t>(t.hop));
    case Kind::kPathStr: {
      std::string out;
      for (VertexId v : t.path) {
        out += std::to_string(v);
        out += "->";
      }
      out += std::to_string(t.vertex);
      return Value(std::move(out));
    }
    case Kind::kDegree:
      ctx.Charge(CostKind::kPropAccess);
      return Value(static_cast<int64_t>(
          ctx.store().Degree(t.vertex, elabel, dir, ctx.read_ts())));
    case Kind::kArith: {
      if (arith == ArithKind::kPair) {
        return Value(lhs->Eval(t, ctx).ToString() + "|" +
                     rhs->Eval(t, ctx).ToString());
      }
      double a = lhs->Eval(t, ctx).ToDouble();
      double b = rhs->Eval(t, ctx).ToDouble();
      switch (arith) {
        case ArithKind::kAdd:
          return Value(a + b);
        case ArithKind::kSub:
          return Value(a - b);
        case ArithKind::kMul:
          return Value(a * b);
        case ArithKind::kDiv:
          return Value(b == 0.0 ? 0.0 : a / b);
        case ArithKind::kPair:
          break;  // handled above
      }
      return Value();
    }
  }
  return Value();
}

bool Predicate::Eval(const Traverser& t, StepContext& ctx) const {
  Value l = lhs.Eval(t, ctx);
  if (op == CmpOp::kIsNull || op == CmpOp::kNotNull) {
    return CompareValues(op, l, Value());
  }
  return CompareValues(op, l, rhs.Eval(t, ctx));
}

bool RowLess(const Row& a, const Row& b, const std::vector<SortSpec>& specs) {
  for (const SortSpec& s : specs) {
    const Value& va = s.col < a.size() ? a[s.col] : Value();
    const Value& vb = s.col < b.size() ? b[s.col] : Value();
    int c = va.Compare(vb);
    if (c != 0) return s.ascending ? c < 0 : c > 0;
  }
  return false;
}

// ---- IndexLookupStep --------------------------------------------------------

void IndexLookupStep::Execute(Traverser t, StepContext& ctx) const {
  EnterStep(ctx);
  if (next() == kNoStep) {
    ctx.Finish(t.scope, t.weight);
    return;
  }
  if (mode_ == Mode::kByIds) {
    // Point lookup: the engine placed the root at H(id) with vertex set.
    if (!ctx.store().HasVertex(t.vertex, ctx.read_ts())) {
      ctx.Finish(t.scope, t.weight);
      return;
    }
    t.step = next();
    ctx.Emit(std::move(t));
    return;
  }

  std::vector<VertexId> hits;
  if (mode_ == Mode::kByIndex) {
    ctx.Charge(CostKind::kMemoOp);  // index probe
    const std::vector<VertexId>* indexed =
        ctx.store().IndexLookup(vlabel_, key_, value_);
    if (indexed != nullptr) hits = *indexed;
  } else {
    // Label scan: every static vertex of the label in this partition.
    const PartitionStore& store = ctx.store();
    ctx.Charge(CostKind::kPerEdge, std::max<uint64_t>(store.num_vertices(), 1));
    for (uint32_t local = 0; local < store.num_vertices(); ++local) {
      if (store.VertexLabel(local) == vlabel_) hits.push_back(store.GlobalId(local));
    }
  }
  if (hits.empty()) {
    ctx.Finish(t.scope, t.weight);
    return;
  }
  WeightSplitter split(t.weight, &ctx.rng());
  for (size_t i = 0; i < hits.size(); ++i) {
    Traverser child = t;
    child.vertex = hits[i];
    child.step = next();
    child.weight = (i + 1 == hits.size()) ? split.TakeLast() : split.Take();
    ctx.Emit(std::move(child));
  }
}

std::string IndexLookupStep::Describe() const {
  switch (mode_) {
    case Mode::kByIndex:
      return "IndexLookup(by-index)";
    case Mode::kScanLabel:
      return "IndexLookup(label-scan)";
    default:
      return "IndexLookup(" + std::to_string(ids_.size()) + " ids)";
  }
}

// ---- ExpandStep -------------------------------------------------------------

void ExpandStep::Execute(Traverser t, StepContext& ctx) const {
  EnterStep(ctx);

  bool first_visit = true;
  if (loop_hops_ > 0 && use_distance_memo_) {
    // Memo-assisted pruning (Fig. 5): terminate when a previous traverser
    // reached this vertex with a less-or-equal traversed distance. A visit
    // that *improves* a previously recorded distance continues exploring
    // (Fig. 4c's blue traversers) but must not re-collect the vertex.
    auto& memo = ctx.memo().GetOrCreate<DistanceMemo>(ctx.query_id(), id());
    ctx.Charge(CostKind::kMemoOp);
    first_visit = memo.Lookup(t.vertex) == nullptr;
    if (!memo.TryImprove(t.vertex, t.hop)) {
      ctx.Finish(t.scope, t.weight);
      return;
    }
    // Memo fold: of `bulk` equivalent arrivals, only the first survives the
    // distance check unbulked — the rest would be pruned right here. Continue
    // as that single survivor, carrying the full merged weight (the pruned
    // copies' weight finishes through this traverser's eventual outputs).
    t.bulk = 1;
  }

  // Gather qualifying neighbors (applies the edge-property filter inline).
  // The scratch buffer is worker-owned (reused across tasks: Execute never
  // re-enters itself, Emit only queues) so expand allocates nothing steady-
  // state and short-lived worker threads leave no per-thread residue behind.
  using Nbr = StepScratch::Nbr;
  std::vector<Nbr> local_nbrs;
  std::vector<Nbr>& nbrs = ctx.scratch() ? ctx.scratch()->nbrs : local_nbrs;
  nbrs.clear();
  const bool expand = loop_hops_ == 0 || t.hop < loop_hops_;
  if (expand) {
    auto keep = [&](const Value& eprop) {
      return !edge_filter_op_.has_value() ||
             CompareValues(*edge_filter_op_, eprop, edge_filter_rhs_);
    };
    if (ctx.observe_edges()) {
      // Audited scan: identical neighbor set and charges, but every edge the
      // visibility scan returned is reported (with its raw version stamps)
      // to the snapshot-isolation checker before filtering. Observation is
      // pure, so the event schedule does not change.
      ctx.store().ForEachNeighborStamped(
          t.vertex, elabel_, dir_, ctx.read_ts(),
          [&](VertexId dst, const Value& eprop, Timestamp create_ts,
              Timestamp delete_ts) {
            ctx.ObserveEdge(create_ts, delete_ts);
            if (keep(eprop)) nbrs.push_back(Nbr{dst, eprop});
          });
    } else {
      ctx.store().ForEachNeighbor(t.vertex, elabel_, dir_, ctx.read_ts(),
                                  [&](VertexId dst, const Value& eprop) {
                                    if (keep(eprop)) nbrs.push_back(Nbr{dst, eprop});
                                  });
    }
    ctx.Charge(CostKind::kPerEdge, nbrs.empty() ? 1 : nbrs.size());
  }

  const bool tee =
      loop_hops_ > 0 && tee_step_ != kNoStep && (first_visit || tee_on_improve_);
  const uint16_t child_step = loop_hops_ > 0 ? id() : next();
  size_t outputs = nbrs.size() + (tee ? 1 : 0);
  if (outputs == 0 || (child_step == kNoStep && !tee)) {
    ctx.Finish(t.scope, t.weight);
    return;
  }

  WeightSplitter split(t.weight, &ctx.rng());
  size_t emitted = 0;
  if (tee) {
    ++emitted;
    Traverser copy = t;
    copy.step = tee_step_;
    copy.weight = (emitted == outputs) ? split.TakeLast() : split.Take();
    ctx.Emit(std::move(copy));
  }
  for (size_t i = 0; i < nbrs.size(); ++i) {
    ++emitted;
    Traverser child = t;
    child.vertex = nbrs[i].v;
    child.step = child_step;
    child.hop = static_cast<uint16_t>(t.hop + 1);
    if (capture_edge_prop_) child.vars.push_back(nbrs[i].prop);
    if (track_path_) child.path.push_back(t.vertex);
    child.weight = (emitted == outputs) ? split.TakeLast() : split.Take();
    ctx.Emit(std::move(child));
  }
}

std::string ExpandStep::Describe() const {
  std::string s = "Expand(label=" + std::to_string(elabel_);
  s += dir_ == Direction::kOut ? ",out" : (dir_ == Direction::kIn ? ",in" : ",both");
  if (loop_hops_ > 0) {
    s += ",loop=" + std::to_string(loop_hops_);
    if (use_distance_memo_) s += ",dist-memo";
  }
  return s + ")";
}

// ---- FilterStep -------------------------------------------------------------

void FilterStep::Execute(Traverser t, StepContext& ctx) const {
  EnterStep(ctx);
  for (const Predicate& p : preds_) {
    if (!p.Eval(t, ctx)) {
      ctx.Finish(t.scope, t.weight);
      return;
    }
  }
  if (next() == kNoStep) {
    ctx.Finish(t.scope, t.weight);
    return;
  }
  t.step = next();
  ctx.Emit(std::move(t));
}

std::string FilterStep::Describe() const {
  return "Filter(" + std::to_string(preds_.size()) + " preds)";
}

// ---- ProjectStep ------------------------------------------------------------

void ProjectStep::Execute(Traverser t, StepContext& ctx) const {
  EnterStep(ctx);
  if (next() == kNoStep) {
    ctx.Finish(t.scope, t.weight);
    return;
  }
  SmallVector<Value, 4> vars;
  if (append_) vars = t.vars;
  for (const Operand& src : sources_) vars.push_back(src.Eval(t, ctx));
  t.vars = std::move(vars);
  t.step = next();
  ctx.Emit(std::move(t));
}

std::string ProjectStep::Describe() const {
  return std::string("Project(") + (append_ ? "append," : "") +
         std::to_string(sources_.size()) + " ops)";
}

// ---- DedupStep --------------------------------------------------------------

void DedupStep::Execute(Traverser t, StepContext& ctx) const {
  EnterStep(ctx);
  Value key = key_.Eval(t, ctx);
  auto& memo = ctx.memo().GetOrCreate<DedupMemo>(ctx.query_id(), id());
  ctx.Charge(CostKind::kMemoOp);
  if (!memo.FirstSight(key) || next() == kNoStep) {
    ctx.Finish(t.scope, t.weight);
    return;
  }
  // Memo fold: only the first of `bulk` equivalent traversers passes a dedup
  // unbulked; fold to a single survivor carrying the full merged weight.
  t.bulk = 1;
  t.step = next();
  ctx.Emit(std::move(t));
}

PartitionId DedupStep::Route(const Traverser& t, const Partitioner& p) const {
  return RouteByKey(key_, t, p);
}

std::string DedupStep::Describe() const { return "Dedup"; }

// ---- JoinProbeStep ----------------------------------------------------------

void JoinProbeStep::Execute(Traverser t, StepContext& ctx) const {
  EnterStep(ctx);
  Value key = key_.Eval(t, ctx);
  assert(memo_step_ != kNoStep && "join memo step not wired");
  auto& memo = ctx.memo().GetOrCreate<JoinMemo>(ctx.query_id(), memo_step_);

  // Double-pipelined join: insert into own side, then probe the other side.
  ctx.Charge(CostKind::kMemoOp, 2);
  memo.Side(left_, key).push_back(JoinEntry{t.vertex, t.vars, t.path, t.bulk});
  const std::vector<JoinEntry>* matches = memo.Probe(!left_, key);

  size_t n = matches == nullptr ? 0 : matches->size();
  // The buffered copy waits in the memo without holding weight; all of the
  // input's weight flows to the outputs produced by this probe (or finishes).
  if (n == 0 || next() == kNoStep) {
    ctx.Finish(t.scope, t.weight);
    return;
  }
  // A bulked probe against a bulked entry stands for bulk*bulk joined pairs;
  // products beyond u32 are emitted as multiple chunked outputs.
  struct Out {
    const JoinEntry* other;
    uint32_t bulk;
  };
  std::vector<Out> outs;
  for (size_t i = 0; i < n; ++i) {
    uint64_t product =
        static_cast<uint64_t>(t.bulk) * (*matches)[i].bulk;
    while (product > 0) {
      uint32_t chunk = static_cast<uint32_t>(
          std::min<uint64_t>(product, UINT32_MAX));
      outs.push_back(Out{&(*matches)[i], chunk});
      product -= chunk;
    }
  }
  WeightSplitter split(t.weight, &ctx.rng());
  for (size_t i = 0; i < outs.size(); ++i) {
    const JoinEntry& other = *outs[i].other;
    // The freshly inserted copy of `t` is in the *own* side table, never in
    // `matches` (opposite side), so no self-join artifacts arise.
    Traverser out;
    out.vertex = t.vertex;
    out.step = next();
    out.hop = t.hop;
    out.bulk = outs[i].bulk;
    const auto& lvars = left_ ? t.vars : other.vars;
    const auto& rvars = left_ ? other.vars : t.vars;
    for (const Value& v : lvars) out.vars.push_back(v);
    for (const Value& v : rvars) out.vars.push_back(v);
    const auto& lpath = left_ ? t.path : other.path;
    const auto& rpath = left_ ? other.path : t.path;
    out.path.reserve(lpath.size() + rpath.size());
    out.path.insert(out.path.end(), lpath.begin(), lpath.end());
    out.path.insert(out.path.end(), rpath.begin(), rpath.end());
    out.weight = (i + 1 == outs.size()) ? split.TakeLast() : split.Take();
    ctx.Emit(std::move(out));
  }
}

PartitionId JoinProbeStep::Route(const Traverser& t, const Partitioner& p) const {
  return RouteByKey(key_, t, p);
}

std::string JoinProbeStep::Describe() const {
  return std::string("JoinProbe(") + (left_ ? "left" : "right") + ")";
}

// ---- GroupByStep ------------------------------------------------------------

void GroupByStep::Execute(Traverser t, StepContext& ctx) const {
  EnterStep(ctx);
  Value key = key_.Eval(t, ctx);
  Value value = value_.Eval(t, ctx);
  auto& memo = ctx.memo().GetOrCreate<GroupAggMemo>(ctx.query_id(), id());
  ctx.Charge(CostKind::kMemoOp);
  memo.Group(key).Update(value, t.bulk);
  ctx.Finish(t.scope, t.weight);
}

PartitionId GroupByStep::Route(const Traverser& t, const Partitioner& p) const {
  return RouteByKey(key_, t, p);
}

void GroupByStep::OnFinalize(StepContext& ctx) const {
  if (next() == kNoStep) return;
  auto* memo = ctx.memo().Find<GroupAggMemo>(ctx.query_id(), id());
  if (memo == nullptr) return;
  for (const auto& [key, agg] : memo->groups()) {
    Traverser t;
    t.vertex = key_.kind == Operand::Kind::kVertexId
                   ? static_cast<VertexId>(key.as_int())
                   : kInvalidVertex;
    t.step = next();
    t.vars.push_back(key);
    t.vars.push_back(agg.Finish(func_));
    ctx.Emit(std::move(t));  // weight assigned by the engine's finalize share
  }
}

std::string GroupByStep::Describe() const { return "GroupBy"; }

// ---- OrderByLimitStep -------------------------------------------------------

void OrderByLimitStep::Execute(Traverser t, StepContext& ctx) const {
  EnterStep(ctx);
  auto& memo = ctx.memo().GetOrCreate<TopKMemo>(ctx.query_id(), id());
  ctx.Charge(CostKind::kMemoOp);
  Row row(t.vars.begin(), t.vars.end());
  auto& rows = memo.rows();
  // A bulked traverser splits across the limit: copies are inserted one at a
  // time until one fails to beat the buffer's worst row — the remaining
  // multiplicity is the remainder the cap would have dropped anyway.
  for (uint32_t c = 0; c < t.bulk; ++c) {
    if (rows.size() >= limit_ &&
        (limit_ == 0 || !RowLess(row, rows.back(), specs_))) {
      break;
    }
    rows.push_back(row);
    // Insertion-sort from the back; the buffer stays sorted and capped.
    for (size_t i = rows.size() - 1; i > 0 && RowLess(rows[i], rows[i - 1], specs_); --i) {
      std::swap(rows[i], rows[i - 1]);
    }
    if (rows.size() > limit_) rows.pop_back();
  }
  ctx.Finish(t.scope, t.weight);
}

void OrderByLimitStep::OnFinalize(StepContext& ctx) const {
  // Local top-k travels to the coordinator: local-then-global aggregation.
  ByteWriter out;
  auto* memo = ctx.memo().Find<TopKMemo>(ctx.query_id(), id());
  uint32_t n = memo == nullptr ? 0 : static_cast<uint32_t>(memo->rows().size());
  out.WriteU32(n);
  if (memo != nullptr) {
    for (const Row& row : memo->rows()) SerializeRow(row, &out);
  }
  ctx.SendCollect(id(), out.Take());
}

void OrderByLimitStep::OnCollect(ByteReader* payload, CollectMergeState* state) const {
  uint32_t n = payload->ReadU32();
  // Each serialized row is at least 4 bytes (its count prefix); see
  // DeserializeRow for the same truncated-frame guard.
  n = std::min<uint32_t>(n, static_cast<uint32_t>(payload->remaining() / 4));
  for (uint32_t i = 0; i < n; ++i) state->rows.push_back(DeserializeRow(payload));
}

void OrderByLimitStep::OnCollectComplete(const CollectMergeState& state,
                                         std::vector<Row>* result_rows,
                                         std::vector<Traverser>* continuations) const {
  (void)continuations;
  std::vector<Row> merged = state.rows;
  std::sort(merged.begin(), merged.end(),
            [this](const Row& a, const Row& b) { return RowLess(a, b, specs_); });
  if (merged.size() > limit_) merged.resize(limit_);
  for (Row& row : merged) result_rows->push_back(std::move(row));
}

std::string OrderByLimitStep::Describe() const {
  return "OrderByLimit(k=" + std::to_string(limit_) + ")";
}

// ---- ScalarAggStep ----------------------------------------------------------

void ScalarAggStep::Execute(Traverser t, StepContext& ctx) const {
  EnterStep(ctx);
  Value value = value_.Eval(t, ctx);
  auto& memo = ctx.memo().GetOrCreate<ScalarAggMemo>(ctx.query_id(), id());
  ctx.Charge(CostKind::kMemoOp);
  memo.state().Update(value, t.bulk);
  ctx.Finish(t.scope, t.weight);
}

void ScalarAggStep::OnFinalize(StepContext& ctx) const {
  ByteWriter out;
  auto* memo = ctx.memo().Find<ScalarAggMemo>(ctx.query_id(), id());
  SerializeAggState(memo == nullptr ? AggState{} : memo->state(), &out);
  ctx.SendCollect(id(), out.Take());
}

void ScalarAggStep::OnCollect(ByteReader* payload, CollectMergeState* state) const {
  state->agg.Merge(DeserializeAggState(payload));
}

void ScalarAggStep::OnCollectComplete(const CollectMergeState& state,
                                      std::vector<Row>* result_rows,
                                      std::vector<Traverser>* continuations) const {
  Value result = state.agg.Finish(func_);
  if (next() == kNoStep) {
    result_rows->push_back(Row{result});
    return;
  }
  Traverser t;
  t.step = next();
  t.vars.push_back(result);
  continuations->push_back(std::move(t));
}

std::string ScalarAggStep::Describe() const { return "ScalarAgg"; }

// ---- EmitStep ---------------------------------------------------------------

void EmitStep::Execute(Traverser t, StepContext& ctx) const {
  EnterStep(ctx);
  Row row;
  if (projections_.empty()) {
    row.assign(t.vars.begin(), t.vars.end());
  } else {
    for (const Operand& op : projections_) row.push_back(op.Eval(t, ctx));
  }
  ctx.EmitRow(std::move(row), t.bulk);
  ctx.Finish(t.scope, t.weight);
}

std::string EmitStep::Describe() const { return "Emit"; }

// ---- payload serde ----------------------------------------------------------

void SerializeRow(const Row& row, ByteWriter* out) {
  out->WriteU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) v.Serialize(out);
}

Row DeserializeRow(ByteReader* in) {
  uint32_t n = in->ReadU32();
  // Every serialized Value is at least one byte, so a count beyond
  // remaining() can only come from a truncated/corrupted frame.
  n = std::min<uint32_t>(n, static_cast<uint32_t>(in->remaining()));
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) row.push_back(Value::Deserialize(in));
  return row;
}

void SerializeAggState(const AggState& agg, ByteWriter* out) {
  out->WriteI64(agg.count);
  out->WriteDouble(agg.sum);
  agg.min.Serialize(out);
  agg.max.Serialize(out);
}

AggState DeserializeAggState(ByteReader* in) {
  AggState agg;
  agg.count = in->ReadI64();
  agg.sum = in->ReadDouble();
  agg.min = Value::Deserialize(in);
  agg.max = Value::Deserialize(in);
  return agg;
}

}  // namespace graphdance
