#include "pstm/plan.h"

#include <deque>

#include "pstm/steps.h"

namespace graphdance {

std::vector<uint16_t> Plan::SuccessorsOf(uint16_t id) const {
  std::vector<uint16_t> out;
  const Step& s = *steps_[id];
  if (s.next() != kNoStep) out.push_back(s.next());
  for (uint16_t extra : s.ExtraSuccessors()) {
    if (extra != kNoStep && extra != id) out.push_back(extra);
  }
  return out;
}

Status Plan::Finalize() {
  if (finalized_) return Status::OK();
  if (roots_.empty()) return Status::InvalidArgument("plan has no roots");
  for (uint16_t r : roots_) {
    if (r >= steps_.size()) return Status::InvalidArgument("root out of range");
  }

  // Propagate scopes from the roots: passing through a blocking step
  // increments the scope of its downstream steps.
  for (auto& s : steps_) s->scope_ = 0;
  std::vector<bool> visited(steps_.size(), false);
  std::deque<uint16_t> queue;
  for (uint16_t r : roots_) {
    steps_[r]->scope_ = 0;
    if (!visited[r]) {
      visited[r] = true;
      queue.push_back(r);
    }
  }
  while (!queue.empty()) {
    uint16_t id = queue.front();
    queue.pop_front();
    const Step& s = *steps_[id];
    uint32_t succ_scope = s.scope_ + (s.blocking() ? 1 : 0);
    for (uint16_t nxt : SuccessorsOf(id)) {
      if (nxt >= steps_.size()) {
        return Status::InvalidArgument("step successor out of range");
      }
      if (!visited[nxt]) {
        visited[nxt] = true;
        steps_[nxt]->scope_ = succ_scope;
        queue.push_back(nxt);
      } else if (steps_[nxt]->scope_ != succ_scope) {
        return Status::InvalidArgument(
            "step " + std::to_string(nxt) + " reachable under two scopes");
      }
    }
  }

  // Collect scope closers: exactly one blocking step may close each scope.
  num_scopes_ = 1;
  for (const auto& s : steps_) {
    if (visited[s->id()] && s->blocking()) {
      num_scopes_ = std::max(num_scopes_, s->scope_ + 2);
    }
  }
  scope_closers_.assign(num_scopes_, kNoStep);
  for (const auto& s : steps_) {
    if (!visited[s->id()] || !s->blocking()) continue;
    if (scope_closers_[s->scope_] != kNoStep) {
      return Status::InvalidArgument(
          "scope " + std::to_string(s->scope_) + " has two blocking steps");
    }
    scope_closers_[s->scope_] = s->id();
  }
  // Scopes 0..num_scopes_-2 must each have a closer; the final scope has
  // none (query ends when its weight completes).
  for (uint32_t sc = 0; sc + 1 < num_scopes_; ++sc) {
    if (scope_closers_[sc] == kNoStep) {
      return Status::InvalidArgument("scope " + std::to_string(sc) +
                                     " has no blocking closer");
    }
  }

  // Record a terminal Emit limit for coordinator-side early termination.
  result_limit_ = 0;
  for (const auto& s : steps_) {
    if (visited[s->id()] && s->kind() == StepKind::kEmit) {
      result_limit_ = static_cast<const EmitStep&>(*s).limit();
    }
  }

  finalized_ = true;
  return Status::OK();
}

std::string Plan::Describe() const {
  std::string out;
  for (const auto& s : steps_) {
    out += "#" + std::to_string(s->id()) + " [scope " + std::to_string(s->scope_) +
           "] " + s->Describe();
    if (s->next() != kNoStep) out += " -> #" + std::to_string(s->next());
    out += "\n";
  }
  return out;
}

}  // namespace graphdance
