#ifndef GRAPHDANCE_PSTM_PLAN_H_
#define GRAPHDANCE_PSTM_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "pstm/step.h"

namespace graphdance {

/// A compiled traversal program Psi: an immutable DAG of steps plus the
/// pipeline roots that receive the initial traversers. Scopes (progress-
/// tracking stages) are assigned at Finalize time: every blocking step
/// closes its scope, and its downstream steps belong to the next scope.
class Plan {
 public:
  /// Adds a step, assigning its id. Returns a non-owning pointer for wiring.
  template <typename T>
  T* Add(std::unique_ptr<T> step) {
    T* raw = step.get();
    raw->id_ = static_cast<uint16_t>(steps_.size());
    steps_.push_back(std::move(step));
    return raw;
  }

  /// Marks `step` as a pipeline root (receives initial traversers).
  void AddRoot(uint16_t step_id) { roots_.push_back(step_id); }

  /// Assigns scopes and validates the DAG. Must be called once after all
  /// steps are wired and before execution.
  Status Finalize();

  const Step& step(uint16_t id) const { return *steps_[id]; }
  size_t num_steps() const { return steps_.size(); }
  const std::vector<uint16_t>& roots() const { return roots_; }
  uint32_t num_scopes() const { return num_scopes_; }

  /// The blocking step closing scope `s`, or kNoStep when `s` is the final
  /// scope (query completes when it terminates).
  uint16_t scope_closer(uint32_t s) const { return scope_closers_[s]; }

  bool finalized() const { return finalized_; }

  /// Result-row limit declared by a terminal Emit step (0 = unlimited). The
  /// engines cancel the query early once the coordinator holds this many
  /// rows (scoped early termination).
  size_t result_limit() const { return result_limit_; }

  /// Multi-line plan dump for debugging and tests.
  std::string Describe() const;

 private:
  /// Successor step ids of `id` for scope propagation: next() plus any
  /// step-specific extra edges (tee targets, loop-back edges are ignored
  /// for scope purposes as they stay within the same scope).
  std::vector<uint16_t> SuccessorsOf(uint16_t id) const;

  std::vector<std::unique_ptr<Step>> steps_;
  std::vector<uint16_t> roots_;
  std::vector<uint16_t> scope_closers_;
  uint32_t num_scopes_ = 1;
  size_t result_limit_ = 0;
  bool finalized_ = false;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_PSTM_PLAN_H_
