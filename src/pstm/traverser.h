#ifndef GRAPHDANCE_PSTM_TRAVERSER_H_
#define GRAPHDANCE_PSTM_TRAVERSER_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/small_vector.h"
#include "common/value.h"
#include "graph/types.h"
#include "pstm/weight.h"

namespace graphdance {

/// A PSTM traverser (paper §III-B): the 4-tuple (v, psi, pi, w) extended
/// with a scope id (for per-stage progress tracking), a hop counter, and a
/// bulk multiplicity (Rodriguez 2015): `bulk` equivalent traversers collapsed
/// into one. Two traversers are equivalent ("same site") when everything but
/// (weight, bulk) matches; merging sums weights in Z_2^64 and adds bulks.
struct Traverser {
  /// Current position mu(t). May be kInvalidVertex for traversers that carry
  /// only values (e.g. after a projection or inside a join pipeline).
  VertexId vertex = kInvalidVertex;
  /// Index into Plan::steps of the step this traverser is about to execute.
  uint16_t step = 0;
  /// Path length / loop counter (used by multi-hop expansion and pruning).
  uint16_t hop = 0;
  /// Progress-tracking scope (stage) this traverser's weight belongs to.
  uint32_t scope = 0;
  /// Progression weight w in Z_2^64 (the summed weight of all `bulk` merged
  /// traversers).
  Weight weight = 0;
  /// Multiplicity: how many equivalent traversers this one stands for.
  uint32_t bulk = 1;
  /// Local variables pi, interpreted per step specification (projected
  /// properties, join attributes, sort keys, ...).
  SmallVector<Value, 4> vars;
  /// Optional traversal path (kept only by path-carrying plans like joins
  /// over patterns; empty otherwise to keep traversers small).
  std::vector<VertexId> path;

  // Fixed payload layout (bytes, little-endian):
  //   [0,8)   vertex        -+
  //   [8,12)  step<<16|hop   | site prefix
  //   [12,16) scope         -+
  //   [16,24) weight        -- summed on merge (wrapping u64)
  //   [24,28) bulk          -- added on merge (refuse on u32 overflow)
  //   [28,30) vars count (u16), then vars, then path count (u32) + path:
  //           the site suffix. Same site <=> prefix and suffix bytes equal.
  static constexpr size_t kWeightOffset = 16;
  static constexpr size_t kBulkOffset = 24;
  static constexpr size_t kSiteSuffixOffset = 28;

  void Serialize(ByteWriter* out) const {
    // u16 vars count: >255 used to truncate silently as a raw u8.
    assert(vars.size() <= 0xffff && "Traverser vars overflow u16 count");
    // The whole fixed-offset prefix goes out in one append (byte-identical
    // to the per-field writes it replaces; see the layout table above).
    uint8_t prefix[kSiteSuffixOffset + 2];
    const uint32_t sh = (static_cast<uint32_t>(step) << 16) | hop;
    const uint16_t nvars = static_cast<uint16_t>(vars.size());
    std::memcpy(prefix, &vertex, 8);
    std::memcpy(prefix + 8, &sh, 4);
    std::memcpy(prefix + 12, &scope, 4);
    std::memcpy(prefix + kWeightOffset, &weight, 8);
    std::memcpy(prefix + kBulkOffset, &bulk, 4);
    std::memcpy(prefix + kSiteSuffixOffset, &nvars, 2);
    out->WriteRaw(prefix, sizeof(prefix));
    for (const Value& v : vars) v.Serialize(out);
    out->WriteU32(static_cast<uint32_t>(path.size()));
    // VertexId elements are written as raw little-endian u64s, so a
    // contiguous vector appends in one shot.
    if (!path.empty()) out->WriteRaw(path.data(), path.size() * 8);
  }

  static Traverser Deserialize(ByteReader* in) {
    Traverser t;
    DeserializeInto(in, &t);
    return t;
  }

  /// Decodes into an existing traverser (a pooled one keeps its vars/path
  /// heap capacity across reuse). Well-formed payloads take the zero-copy
  /// fast path: one bounds check covers the whole fixed-offset prefix,
  /// copied out with a single 30-byte memcpy instead of five checked
  /// cursor reads; only the variable-width suffix (vars, path) streams
  /// through the reader. Short buffers fall back to the checked
  /// field-by-field decode, so the total-function guarantee is unchanged.
  static void DeserializeInto(ByteReader* in, Traverser* t) {
    t->vars.clear();
    t->path.clear();
    uint32_t sh;
    if (in->remaining() >= kSiteSuffixOffset + 2) {
      uint8_t prefix[kSiteSuffixOffset + 2];
      in->ReadRaw(prefix, sizeof(prefix));
      std::memcpy(&t->vertex, prefix, 8);
      std::memcpy(&sh, prefix + 8, 4);
      std::memcpy(&t->scope, prefix + 12, 4);
      std::memcpy(&t->weight, prefix + kWeightOffset, 8);
      std::memcpy(&t->bulk, prefix + kBulkOffset, 4);
      uint16_t nvars;
      std::memcpy(&nvars, prefix + kSiteSuffixOffset, 2);
      t->step = static_cast<uint16_t>(sh >> 16);
      t->hop = static_cast<uint16_t>(sh & 0xffff);
      for (uint16_t i = 0; i < nvars; ++i) {
        t->vars.push_back(Value::Deserialize(in));
      }
    } else {
      t->vertex = in->ReadU64();
      sh = in->ReadU32();
      t->step = static_cast<uint16_t>(sh >> 16);
      t->hop = static_cast<uint16_t>(sh & 0xffff);
      t->scope = in->ReadU32();
      t->weight = in->ReadU64();
      t->bulk = in->ReadU32();
      uint16_t nvars = in->ReadU16();
      for (uint16_t i = 0; i < nvars; ++i) {
        t->vars.push_back(Value::Deserialize(in));
      }
    }
    uint32_t plen = in->ReadU32();
    // A valid stream carries 8 bytes per path element; clamping keeps a
    // garbage count from a truncated frame from driving a giant allocation.
    // Post-clamp the elements are guaranteed in bounds, so they copy out in
    // one raw read instead of per-element checked cursor reads.
    plen = std::min<uint32_t>(plen, static_cast<uint32_t>(in->remaining() / 8));
    t->path.resize(plen);
    if (plen > 0) in->ReadRaw(t->path.data(), plen * 8ULL);
  }

  /// Approximate in-flight size for the network model.
  size_t WireSize() const {
    size_t n = 8 + 4 + 4 + 8 + 4 + 2 + 4 + 8 * path.size();
    for (const Value& v : vars) {
      n += 1;
      switch (v.type()) {
        case Value::Type::kNull:
          break;
        case Value::Type::kBool:
          n += 1;
          break;
        case Value::Type::kInt:
        case Value::Type::kDouble:
          n += 8;
          break;
        case Value::Type::kString:
          n += 4 + v.as_string().size();
          break;
      }
    }
    return n;
  }

  /// True when `other` occupies the same site: equal on everything except
  /// (weight, bulk). Such traversers are behaviourally interchangeable and
  /// may be merged.
  bool SameSite(const Traverser& other) const {
    return vertex == other.vertex && step == other.step && hop == other.hop &&
           scope == other.scope && vars == other.vars && path == other.path;
  }

  /// Hash of the site key (vertex, step, hop, scope, vars, path). Used as a
  /// prefilter for merge candidates; equality is always confirmed byte- or
  /// field-wise before merging.
  uint64_t SiteHash() const {
    uint64_t h = Mix64(vertex);
    h = HashCombine(h, Mix64((static_cast<uint64_t>(step) << 32) |
                             (static_cast<uint64_t>(hop) << 16) | scope));
    for (const Value& v : vars) h = HashCombine(h, v.Hash());
    for (VertexId v : path) h = HashCombine(h, Mix64(v));
    return h;
  }

  /// Folds `other` (same site) into this traverser. Returns false — and
  /// leaves both untouched — if the combined bulk would overflow u32.
  bool MergeFrom(const Traverser& other) {
    assert(SameSite(other));
    uint64_t b = static_cast<uint64_t>(bulk) + other.bulk;
    if (b > UINT32_MAX) return false;
    weight += other.weight;  // Z_2^64: wraps
    bulk = static_cast<uint32_t>(b);
    return true;
  }

  /// Merges a serialized traverser `src` into serialized `dst` in place, iff
  /// both encode the same site (byte-equal outside the weight/bulk fields).
  /// Returns false (dst untouched) when the sites differ or bulk would
  /// overflow. Payload-level so the send path can merge without
  /// deserializing.
  static bool MergePayloads(std::vector<uint8_t>& dst,
                            const std::vector<uint8_t>& src) {
    if (dst.size() != src.size() || dst.size() < kSiteSuffixOffset) return false;
    if (std::memcmp(dst.data(), src.data(), kWeightOffset) != 0) return false;
    if (std::memcmp(dst.data() + kSiteSuffixOffset,
                    src.data() + kSiteSuffixOffset,
                    dst.size() - kSiteSuffixOffset) != 0) {
      return false;
    }
    uint64_t wd, ws;
    uint32_t bd, bs;
    std::memcpy(&wd, dst.data() + kWeightOffset, 8);
    std::memcpy(&ws, src.data() + kWeightOffset, 8);
    std::memcpy(&bd, dst.data() + kBulkOffset, 4);
    std::memcpy(&bs, src.data() + kBulkOffset, 4);
    uint64_t b = static_cast<uint64_t>(bd) + bs;
    if (b > UINT32_MAX) return false;
    wd += ws;  // Z_2^64: wraps
    bd = static_cast<uint32_t>(b);
    std::memcpy(dst.data() + kWeightOffset, &wd, 8);
    std::memcpy(dst.data() + kBulkOffset, &bd, 4);
    return true;
  }
};

}  // namespace graphdance

#endif  // GRAPHDANCE_PSTM_TRAVERSER_H_
