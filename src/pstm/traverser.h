#ifndef GRAPHDANCE_PSTM_TRAVERSER_H_
#define GRAPHDANCE_PSTM_TRAVERSER_H_

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "common/small_vector.h"
#include "common/value.h"
#include "graph/types.h"
#include "pstm/weight.h"

namespace graphdance {

/// A PSTM traverser (paper §III-B): the 4-tuple (v, psi, pi, w) extended
/// with a scope id (for per-stage progress tracking) and a hop counter.
struct Traverser {
  /// Current position mu(t). May be kInvalidVertex for traversers that carry
  /// only values (e.g. after a projection or inside a join pipeline).
  VertexId vertex = kInvalidVertex;
  /// Index into Plan::steps of the step this traverser is about to execute.
  uint16_t step = 0;
  /// Path length / loop counter (used by multi-hop expansion and pruning).
  uint16_t hop = 0;
  /// Progress-tracking scope (stage) this traverser's weight belongs to.
  uint32_t scope = 0;
  /// Progression weight w in Z_2^64.
  Weight weight = 0;
  /// Local variables pi, interpreted per step specification (projected
  /// properties, join attributes, sort keys, ...).
  SmallVector<Value, 4> vars;
  /// Optional traversal path (kept only by path-carrying plans like joins
  /// over patterns; empty otherwise to keep traversers small).
  std::vector<VertexId> path;

  void Serialize(ByteWriter* out) const {
    out->WriteU64(vertex);
    out->WriteU32((static_cast<uint32_t>(step) << 16) | hop);
    out->WriteU32(scope);
    out->WriteU64(weight);
    out->WriteU8(static_cast<uint8_t>(vars.size()));
    for (const Value& v : vars) v.Serialize(out);
    out->WriteU32(static_cast<uint32_t>(path.size()));
    for (VertexId v : path) out->WriteU64(v);
  }

  static Traverser Deserialize(ByteReader* in) {
    Traverser t;
    t.vertex = in->ReadU64();
    uint32_t sh = in->ReadU32();
    t.step = static_cast<uint16_t>(sh >> 16);
    t.hop = static_cast<uint16_t>(sh & 0xffff);
    t.scope = in->ReadU32();
    t.weight = in->ReadU64();
    uint8_t nvars = in->ReadU8();
    for (uint8_t i = 0; i < nvars; ++i) t.vars.push_back(Value::Deserialize(in));
    uint32_t plen = in->ReadU32();
    t.path.reserve(plen);
    for (uint32_t i = 0; i < plen; ++i) t.path.push_back(in->ReadU64());
    return t;
  }

  /// Approximate in-flight size for the network model.
  size_t WireSize() const {
    size_t n = 8 + 4 + 4 + 8 + 1 + 4 + 8 * path.size();
    for (const Value& v : vars) {
      n += 1;
      switch (v.type()) {
        case Value::Type::kNull:
          break;
        case Value::Type::kBool:
          n += 1;
          break;
        case Value::Type::kInt:
        case Value::Type::kDouble:
          n += 8;
          break;
        case Value::Type::kString:
          n += 4 + v.as_string().size();
          break;
      }
    }
    return n;
  }
};

}  // namespace graphdance

#endif  // GRAPHDANCE_PSTM_TRAVERSER_H_
