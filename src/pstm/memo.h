#ifndef GRAPHDANCE_PSTM_MEMO_H_
#define GRAPHDANCE_PSTM_MEMO_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_map.h"
#include "common/small_vector.h"
#include "common/value.h"
#include "graph/types.h"
#include "pstm/traverser.h"

namespace graphdance {

/// Base class for per-partition, per-step mutable execution state — the
/// paper's query memoranda M_p (§III-B). Memo records are created lazily by
/// the step that owns them, are visible only to traversers of the creating
/// query executing in the same partition, and are destroyed when the query
/// terminates.
class MemoState {
 public:
  virtual ~MemoState() = default;

  /// Approximate resident bytes of this state (container contents, not
  /// malloc-exact). Feeds the QoS memo budget and the resource-ledger
  /// checker; what matters is that it is monotone in the real footprint and
  /// deterministic, not that it matches the allocator.
  virtual size_t ApproxBytes() const { return kBaseBytes; }

 protected:
  static constexpr size_t kBaseBytes = 64;  // object + empty containers
};

/// Memo for distance-pruned multi-hop expansion (Fig. 5): best-known hop
/// count per vertex. A traverser is pruned when its traversed distance is
/// no less than the recorded shortest distance.
class DistanceMemo : public MemoState {
 public:
  /// Returns true when a visit at `hop` improves on the recorded distance
  /// (and records it); false when the traverser should be pruned.
  bool TryImprove(VertexId v, uint16_t hop) {
    auto [best, inserted] = best_.TryEmplace(v, hop);
    if (inserted) return true;
    if (hop < *best) {
      *best = hop;
      return true;
    }
    return false;
  }

  /// Best-known distance, or nullptr when unvisited.
  const uint16_t* Lookup(VertexId v) const { return best_.Find(v); }

  size_t size() const { return best_.size(); }

  size_t ApproxBytes() const override {
    return kBaseBytes + best_.size() * 16;  // key + value + bucket overhead
  }

 private:
  // Pure lookup table (never iterated), so an open-addressing map is
  // schedule-neutral here. The bytes formula is unchanged: it prices the
  // record for the spill cost model, not the allocator.
  FlatMap<VertexId, uint16_t> best_;
};

/// Memo for the Dedup step: the set of already-seen keys in this partition.
class DedupMemo : public MemoState {
 public:
  /// Returns true on first sight of `key` (traverser passes), false on a
  /// duplicate (traverser terminates).
  bool FirstSight(const Value& key) { return seen_.Insert(key); }

  size_t size() const { return seen_.size(); }

  size_t ApproxBytes() const override {
    return kBaseBytes + seen_.size() * 48;  // Value + node + bucket overhead
  }

 private:
  // Membership-only (never iterated) — safe as an open-addressing set.
  FlatSet<Value, ValueHash> seen_;
};

/// One buffered input of a double-pipelined join: the traverser's carried
/// state minus its weight (weights never rest in memos).
struct JoinEntry {
  VertexId vertex;
  SmallVector<Value, 4> vars;
  std::vector<VertexId> path;
  /// Multiplicity of the buffered input (bulked traversers rest here with
  /// their bulk; a probe match contributes probe.bulk * entry.bulk outputs).
  uint32_t bulk = 1;
};

/// Memo for the double-pipelined Join step (paper §III-A): per join key, the
/// sets of partial-path instances found so far on each side. An arriving
/// left instance is inserted then immediately probed against all buffered
/// right instances (and vice versa), producing outputs incrementally.
class JoinMemo : public MemoState {
 public:
  std::vector<JoinEntry>& Side(bool left, const Value& key) {
    return (left ? left_ : right_)[key];
  }
  const std::vector<JoinEntry>* Probe(bool left, const Value& key) const {
    const auto& table = left ? left_ : right_;
    auto it = table.find(key);
    return it == table.end() ? nullptr : &it->second;
  }

  size_t left_size() const { return left_.size(); }
  size_t right_size() const { return right_.size(); }

  size_t ApproxBytes() const override {
    size_t b = kBaseBytes;
    for (const auto* table : {&left_, &right_}) {
      for (const auto& [key, entries] : *table) {
        (void)key;
        b += 48;  // key + bucket overhead
        for (const JoinEntry& e : entries) {
          b += sizeof(JoinEntry) + e.vars.size() * sizeof(Value) +
               e.path.size() * sizeof(VertexId);
        }
      }
    }
    return b;
  }

 private:
  std::unordered_map<Value, std::vector<JoinEntry>, ValueHash> left_;
  std::unordered_map<Value, std::vector<JoinEntry>, ValueHash> right_;
};

/// Aggregation functions supported by grouped and scalar aggregation.
enum class AggFunc : uint8_t { kCount = 0, kSum, kMin, kMax, kAvg };

/// Commutative/associative accumulator (paper §III-C: such aggregations can
/// be computed per-partition and merged).
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  Value min;
  Value max;

  /// Folds `n` occurrences of `v` (a bulked traverser contributes its value
  /// once per represented traverser; min/max are idempotent in n).
  void Update(const Value& v, uint64_t n = 1) {
    count += static_cast<int64_t>(n);
    sum += v.ToDouble() * static_cast<double>(n);
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || max < v) max = v;
  }

  void Merge(const AggState& other) {
    count += other.count;
    sum += other.sum;
    if (min.is_null() || (!other.min.is_null() && other.min < min)) min = other.min;
    if (max.is_null() || (!other.max.is_null() && max < other.max)) max = other.max;
  }

  Value Finish(AggFunc func) const {
    switch (func) {
      case AggFunc::kCount:
        return Value(count);
      case AggFunc::kSum:
        return Value(sum);
      case AggFunc::kMin:
        return min;
      case AggFunc::kMax:
        return max;
      case AggFunc::kAvg:
        return Value(count == 0 ? 0.0 : sum / static_cast<double>(count));
    }
    return Value();
  }
};

/// Memo for grouped aggregation: group key -> accumulator.
class GroupAggMemo : public MemoState {
 public:
  AggState& Group(const Value& key) { return groups_[key]; }
  const std::unordered_map<Value, AggState, ValueHash>& groups() const {
    return groups_;
  }

  size_t ApproxBytes() const override {
    return kBaseBytes + groups_.size() * (48 + sizeof(AggState));
  }

 private:
  std::unordered_map<Value, AggState, ValueHash> groups_;
};

/// Memo for a scalar (ungrouped) aggregate.
class ScalarAggMemo : public MemoState {
 public:
  AggState& state() { return state_; }
  const AggState& state() const { return state_; }

  size_t ApproxBytes() const override { return kBaseBytes + sizeof(AggState); }

 private:
  AggState state_;
};

/// A result row: the projected values of one output.
using Row = std::vector<Value>;

/// Memo for distributed top-k: a size-capped, locally-sorted buffer of rows.
/// Workers keep their local top-k; the coordinator merges them at scope
/// finalization (local aggregation before global aggregation).
class TopKMemo : public MemoState {
 public:
  std::vector<Row>& rows() { return rows_; }
  const std::vector<Row>& rows() const { return rows_; }

  size_t ApproxBytes() const override {
    size_t b = kBaseBytes;
    for (const Row& r : rows_) b += sizeof(Row) + r.size() * sizeof(Value);
    return b;
  }

 private:
  std::vector<Row> rows_;
};

/// All memoranda of one partition: (query, step) -> state. Owned and
/// accessed by exactly one worker (shared-nothing), so no locking.
///
/// Residency: each record is either resident (in modelled RAM) or spilled to
/// the simulated storage tier (DESIGN.md §12). Spilling is purely a cost
/// annotation — the state object itself never leaves the process; a spilled
/// record is frozen (every access path faults it back in first) so its byte
/// snapshot taken at eviction stays exact. The table does not charge virtual
/// time itself; it accumulates pending fault work for the owning worker to
/// drain (see TakePendingFaults).
class MemoTable {
 public:
  /// Lookup/lifetime counters, surfaced through the cluster-wide
  /// MetricsSnapshot(). Maintained unconditionally — plain integer bumps on
  /// paths that already pay a hash lookup.
  struct Stats {
    uint64_t hits = 0;     // lookups that found existing state
    uint64_t misses = 0;   // lookups that found nothing
    uint64_t created = 0;  // states materialized by GetOrCreate
    uint64_t cleared = 0;  // states dropped (query end or crash wipe)
  };

  /// Cumulative spill ledger. Invariant (checked by the resource-ledger
  /// checker): bytes_written == bytes_read + bytes_dropped + SpilledBytes().
  /// All-zero while spill is disabled.
  struct SpillStats {
    uint64_t bytes_written = 0;    // evicted to the tier
    uint64_t bytes_read = 0;       // faulted back into RAM
    uint64_t bytes_dropped = 0;    // spilled state discarded (query end/crash)
    uint64_t records_spilled = 0;  // eviction operations
    uint64_t faults = 0;           // fault-in operations
  };

  /// Gets or creates the state of type T for (query, step).
  template <typename T>
  T& GetOrCreate(uint64_t query_id, uint32_t step_id) {
    Slot& slot = states_[Key(query_id, step_id)];
    slot.last_access = ++access_tick_;
    if (slot.state == nullptr) {
      slot.state = std::make_unique<T>();
      stats_.misses++;
      stats_.created++;
    } else {
      stats_.hits++;
      FaultIn(slot);
    }
    return static_cast<T&>(*slot.state);
  }

  /// Looks up existing state or returns nullptr.
  template <typename T>
  T* Find(uint64_t query_id, uint32_t step_id) {
    Slot* slot = states_.Find(Key(query_id, step_id));
    if (slot == nullptr) {
      stats_.misses++;
      return nullptr;
    }
    stats_.hits++;
    slot->last_access = ++access_tick_;
    FaultIn(*slot);
    return static_cast<T*>(slot->state.get());
  }

  /// Drops every memo record owned by `query_id` (automatic cleanup after
  /// query termination, per the memoranda lifetime rule). Spilled records go
  /// straight from the tier to dropped — no fault-in, no read charge.
  void ClearQuery(uint64_t query_id) {
    stats_.cleared += states_.EraseIf([&](uint64_t key, Slot& slot) {
      if ((key >> 32) != query_id) return false;
      DropSpilled(slot);
      return true;
    });
  }

  size_t size() const { return states_.size(); }

  /// Visits every live (query_id, step_id) key. Unordered (hash-map walk);
  /// callers needing determinism must sort. Used by the residency checker.
  template <typename Fn>
  void ForEachKey(Fn&& fn) const {
    states_.ForEach([&fn](uint64_t key, const Slot&) {
      fn(key >> 32, static_cast<uint32_t>(key & 0xffffffffULL));
    });
  }

  /// Approximate bytes of every live state, resident or spilled. Walks the
  /// table — intended for interval sweeps (the QoS memo budget checks every
  /// `memo_check_interval` tasks) and quiescence audits, not per-task use.
  size_t LiveBytes() const {
    size_t b = 0;
    states_.ForEach(
        [&b](uint64_t, const Slot& slot) { b += slot.state->ApproxBytes(); });
    return b;
  }

  /// Bytes currently parked on the simulated storage tier.
  uint64_t SpilledBytes() const { return spilled_now_bytes_; }

  /// Bytes occupying modelled RAM (what the memo budget governs once the
  /// spill manager is on).
  size_t ResidentBytes() const { return LiveBytes() - spilled_now_bytes_; }

  /// Approximate bytes owned by one query in this partition.
  size_t BytesForQuery(uint64_t query_id) const {
    size_t b = 0;
    states_.ForEach([&](uint64_t key, const Slot& slot) {
      if ((key >> 32) == query_id) b += slot.state->ApproxBytes();
    });
    return b;
  }

  /// Visits every live state as (query_id, step_id, approx_bytes). Unordered
  /// (hash-map walk); callers needing determinism must sort. Used by the QoS
  /// memo budget to find the biggest per-query consumer.
  template <typename Fn>
  void ForEachState(Fn&& fn) const {
    states_.ForEach([&fn](uint64_t key, const Slot& slot) {
      fn(key >> 32, static_cast<uint32_t>(key & 0xffffffffULL),
         slot.state->ApproxBytes());
    });
  }

  /// One eviction pass's outcome, for the caller to price (records seeks +
  /// bytes of sequential transfer on the write path).
  struct EvictResult {
    uint64_t records = 0;
    uint64_t bytes = 0;
  };

  /// Evicts coldest-first (least-recently-accessed, key-ordered on ties —
  /// deterministic) resident records until ResidentBytes() <= `target_bytes`
  /// or the tier's remaining `room_bytes` cannot absorb more. Records larger
  /// than the remaining room are skipped in favor of smaller cold ones.
  EvictResult EvictColdest(uint64_t target_bytes, uint64_t room_bytes) {
    EvictResult out;
    size_t resident = ResidentBytes();
    if (resident <= target_bytes) return out;
    std::vector<std::pair<uint64_t, uint64_t>> order;  // (last_access, key)
    order.reserve(states_.size());
    states_.ForEach([&order](uint64_t key, const Slot& slot) {
      if (slot.spilled_bytes == 0) order.emplace_back(slot.last_access, key);
    });
    std::sort(order.begin(), order.end());
    for (const auto& [tick, key] : order) {
      (void)tick;
      if (resident <= target_bytes || room_bytes == 0) break;
      Slot& slot = *states_.Find(key);
      uint64_t b = slot.state->ApproxBytes();
      if (b > room_bytes) continue;  // does not fit; try a smaller cold one
      slot.spilled_bytes = b;
      spilled_now_bytes_ += b;
      spill_stats_.bytes_written += b;
      spill_stats_.records_spilled++;
      resident -= b;
      room_bytes -= b;
      out.records++;
      out.bytes += b;
    }
    return out;
  }

  /// Hands the accumulated fault-in work (record count + bytes faulted since
  /// the last call) to the owning worker, which charges virtual read time
  /// for it. Resets the accumulator.
  void TakePendingFaults(uint64_t* records, uint64_t* bytes) {
    *records = pending_fault_records_;
    *bytes = pending_fault_bytes_;
    pending_fault_records_ = 0;
    pending_fault_bytes_ = 0;
  }

  bool HasPendingFaults() const { return pending_fault_records_ != 0; }

  /// Drops everything. Used by the fault injector when a worker crashes:
  /// memoranda are volatile per-worker state and do not survive a restart
  /// (the TEL-backed graph storage does), and the crash also takes the
  /// worker's spill files with it.
  void Clear() {
    states_.ForEach([this](uint64_t, Slot& slot) { DropSpilled(slot); });
    stats_.cleared += states_.size();
    states_.Clear();
    pending_fault_records_ = 0;
    pending_fault_bytes_ = 0;
  }

  const Stats& stats() const { return stats_; }
  const SpillStats& spill_stats() const { return spill_stats_; }

 private:
  struct Slot {
    std::unique_ptr<MemoState> state;
    /// Logical access clock value of the most recent touch (LRU ordering).
    uint64_t last_access = 0;
    /// 0 = resident; otherwise the record's byte snapshot at eviction time
    /// (exact, because spilled records are frozen until faulted back in).
    uint64_t spilled_bytes = 0;
  };

  void FaultIn(Slot& slot) {
    if (slot.spilled_bytes == 0) return;
    pending_fault_records_++;
    pending_fault_bytes_ += slot.spilled_bytes;
    spill_stats_.faults++;
    spill_stats_.bytes_read += slot.spilled_bytes;
    spilled_now_bytes_ -= slot.spilled_bytes;
    slot.spilled_bytes = 0;
  }

  void DropSpilled(Slot& slot) {
    if (slot.spilled_bytes == 0) return;
    spill_stats_.bytes_dropped += slot.spilled_bytes;
    spilled_now_bytes_ -= slot.spilled_bytes;
    slot.spilled_bytes = 0;
  }

  /// Full 32/32 split, mirroring WeightKey in the runtime: a 20-bit step
  /// field would let step_id >= 2^20 bleed into the query bits, aliasing
  /// another query's memoranda and making ClearQuery erase or miss records.
  static uint64_t Key(uint64_t query_id, uint32_t step_id) {
    assert(query_id < (1ULL << 32));
    return (query_id << 32) | step_id;
  }

  // Open-addressing: the per-traverser memo lookup is the hottest map in the
  // execute path. Iterating walks (ForEachKey/ForEachState) stay unordered,
  // as documented; EvictColdest sorts before acting.
  FlatMap<uint64_t, Slot> states_;
  Stats stats_;
  SpillStats spill_stats_;
  uint64_t access_tick_ = 0;
  uint64_t spilled_now_bytes_ = 0;
  uint64_t pending_fault_records_ = 0;
  uint64_t pending_fault_bytes_ = 0;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_PSTM_MEMO_H_
