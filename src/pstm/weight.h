#ifndef GRAPHDANCE_PSTM_WEIGHT_H_
#define GRAPHDANCE_PSTM_WEIGHT_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace graphdance {

/// Progression weights (paper §III-B / §IV-A). Weights are elements of the
/// finite abelian group Z_2^64 with wrapping addition. The root traverser of
/// a scope carries kUnitWeight; splitting a weight w among n children draws
/// n-1 uniformly random group elements and gives the last child the
/// remainder, preserving the invariant
///
///     sum of active weights + finished weight == kUnitWeight  (mod 2^64).
///
/// Termination of a scope is detected when the coalesced finished weight
/// reaches kUnitWeight; by Theorem 1 the false-positive probability after n
/// coalesced reports is at most (n-1)/2^64.
using Weight = uint64_t;

inline constexpr Weight kUnitWeight = 1;

/// Key for per-worker coalesced-weight maps: (query id, scope id) packed into
/// one word. Query ids are dense counters and scope ids are plan-step
/// indices, so 32 bits each is ample; a 16-bit scope field would make
/// query 1 / scope 65541 collide with query 2 / scope 5. Shared by the
/// simulated and real-thread runtimes.
inline uint64_t WeightKey(uint64_t query, uint32_t scope) {
  assert(query < (1ULL << 32) && "query id overflows WeightKey packing");
  return (query << 32) | scope;
}
inline uint64_t WeightKeyQuery(uint64_t key) { return key >> 32; }
inline uint32_t WeightKeyScope(uint64_t key) {
  return static_cast<uint32_t>(key & 0xffffffffULL);
}

/// Splits `w` into `n` shares summing to `w` (mod 2^64), n >= 1. Shares are
/// uniform random group elements except the last, which is the remainder.
/// n == 0 is a caller bug (asserts in debug builds); release builds return
/// an empty vector instead of indexing shares[n - 1] out of bounds.
inline std::vector<Weight> SplitWeight(Weight w, size_t n, Rng* rng) {
  assert(n >= 1 && "SplitWeight: cannot split a weight into zero shares");
  if (n == 0) return {};
  std::vector<Weight> shares(n);
  Weight used = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    shares[i] = rng->Next();
    used += shares[i];
  }
  shares[n - 1] = w - used;  // wrapping subtraction closes the sum
  return shares;
}

/// Incremental splitter used on hot paths to avoid allocating a share
/// vector: call Take() for each child but the last, then TakeLast().
class WeightSplitter {
 public:
  WeightSplitter(Weight total, Rng* rng) : remaining_(total), rng_(rng) {
    assert(rng != nullptr);
  }

  /// A uniformly random share (for a non-final child).
  Weight Take() {
    assert(rng_ != nullptr);
    Weight share = rng_->Next();
    remaining_ -= share;
    return share;
  }

  /// The remainder (for the final child). The splitter must not be used
  /// afterwards.
  Weight TakeLast() {
    Weight share = remaining_;
    remaining_ = 0;
    return share;
  }

  Weight remaining() const { return remaining_; }

 private:
  Weight remaining_;
  Rng* rng_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_PSTM_WEIGHT_H_
