#ifndef GRAPHDANCE_CHECK_TXN_ORACLE_H_
#define GRAPHDANCE_CHECK_TXN_ORACLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "ldbc/snb_generator.h"
#include "ldbc/snb_queries.h"
#include "ldbc/snb_updates.h"

namespace graphdance {
namespace check {

/// The serializability / snapshot-isolation oracle for distributed write
/// transactions (txn/dist_txn.h).
///
/// Each cell drives a stream of LDBC SNB interactive update transactions
/// through the distributed commit protocol while IC/IS-style reads run at the
/// advancing LCT ("read waves"). The cell's committed schedule — the commit
/// log, in commit-timestamp order — is then replayed against a single-worker
/// *serial* executor: a fresh one-partition copy of the dataset to which the
/// committed transactions are applied one at a time, in exactly commit-ts
/// order, with no concurrency anywhere. Every read wave at LCT = T must be
/// row-identical to the serial executor after the prefix of commits with
/// ts <= T. That is the whole correctness claim in one sentence: a read at
/// the LCT observes some serial prefix of the commit order — never a torn
/// transaction, whatever the chaos matrix did to the protocol mid-commit.
///
/// Like the stream oracle, the scenario carries *factories*, not instances:
/// cells mutate their graphs, so every cell regenerates its own dataset (and
/// the serial replay regenerates a one-partition copy).
struct TxnScenario {
  std::function<std::shared_ptr<SnbDataset>(uint32_t num_partitions)> dataset;
  std::function<std::vector<std::shared_ptr<const Plan>>(const SnbDataset&)>
      plans;
  /// The update-transaction stream (deterministic; anchors drawn from a hot
  /// window so transactions genuinely conflict).
  std::vector<SnbUpdateTxn> updates;
};

inline constexpr uint64_t kDefaultTxnScenarioSeed = 13;

/// Builds the default scenario: a Tiny SNB dataset, `num_updates` update
/// transactions contending over `hot_persons` hot anchors, and a panel of
/// IS2/IS3/IS7/IC2/IC7 read plans rooted at the hot entities (these are the
/// reads whose answers the updates change).
TxnScenario MakeTxnScenario(uint64_t seed, uint32_t num_updates = 48,
                            uint32_t hot_persons = 8);

/// Matrix shape. `base` carries the shared knobs (cluster size, modes,
/// seeds, fault plan, event budget); txn cells add the chaos-phase axis and
/// the wave cadence. Default modes include "threads" — the real-thread
/// ThreadCluster engine reading between phased commits.
struct TxnDifferentialOptions {
  DifferentialOptions base;
  /// Crash-chaos phases explored per (mode, seed): "" = fault-free, plus
  /// crash-during-{prepare,commit,apply}. The crashed worker / torn point is
  /// derived deterministically from the cell's tiebreak seed.
  std::vector<std::string> phases = {"", "prepare", "commit", "apply"};
  /// A read wave (every plan, at the current LCT) runs after every
  /// `wave_every` commits, plus one final wave after quiescence.
  uint32_t wave_every = 8;
  /// Thread counts explored by "threads" cells (picked by tiebreak seed).
  std::vector<uint32_t> thread_counts = {2, 4};
  /// Non-vacuity mutations (0 = off): corrupt_nth_apply plants a torn write
  /// inside the commit protocol (the oracle must catch it);
  /// corrupt_nth_visibility mutates the nth wave comparison's observed rows
  /// (the harness itself must catch it).
  uint64_t corrupt_nth_apply = 0;
  uint64_t corrupt_nth_visibility = 0;

  TxnDifferentialOptions() {
    base.modes = {"async", "bsp", "hybrid", "threads"};
    base.num_seeds = 4;
  }
};

/// One cell's outcome: the generic report plus the transaction-side tallies
/// the bench gate cares about.
struct TxnCellReport {
  CellReport base;
  uint64_t committed = 0;
  uint64_t finally_aborted = 0;  // retries exhausted (legal under contention)
  uint64_t retried = 0;          // conflict retry rounds
  uint64_t waves = 0;            // read waves compared
  /// Rows diverging from the serial prefix replay, summed over mismatched
  /// waves (symmetric difference). Non-zero means a reader saw a torn or
  /// otherwise non-serializable state — must be zero in every real run.
  uint64_t partial_visibility_rows = 0;
  uint64_t crashes = 0;  // chaos crashes / phased recoveries in this cell
  bool ok() const { return base.ok(); }
};

struct TxnDifferentialReport {
  DifferentialReport base;
  uint64_t committed = 0;
  uint64_t finally_aborted = 0;
  uint64_t retried = 0;
  uint64_t waves = 0;
  uint64_t partial_visibility_rows = 0;
  uint64_t crashes = 0;
  bool ok() const { return base.ok(); }
  std::string Summary() const;
};

/// Runs one txn cell: drive the updates through the protocol under
/// spec.mode, interleave read waves, then replay the committed schedule
/// serially and diff every wave. spec.txn_phase selects the chaos phase.
Result<TxnCellReport> RunTxnCell(const TxnScenario& s, const ReplaySpec& spec,
                                 const TxnDifferentialOptions& opt);

/// The full matrix: modes x chaos phases x tie-break seeds.
Result<TxnDifferentialReport> RunTxnDifferential(
    const TxnScenario& s, const TxnDifferentialOptions& opt);

}  // namespace check
}  // namespace graphdance

#endif  // GRAPHDANCE_CHECK_TXN_ORACLE_H_
