#include "check/invariants.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace graphdance::check {

std::string Trip::ToString() const {
  std::string s = "[" + checker + "] " + what + " (t=" + std::to_string(at);
  if (query != 0) s += " query=" + std::to_string(query);
  s += " scope=" + std::to_string(scope) + ")";
  return s;
}

void InvariantChecker::ReportTrip(std::string what, SimTime at, uint64_t query,
                                  uint32_t scope) {
  harness_->Report(name(), std::move(what), at, query, scope);
}

const RunInfo& InvariantChecker::run() const { return harness_->info_; }

void CheckHarness::Register(std::unique_ptr<InvariantChecker> checker) {
  checker->harness_ = this;
  checkers_.push_back(std::move(checker));
}

std::unique_ptr<CheckHarness> CheckHarness::WithAllCheckers() {
  auto h = std::make_unique<CheckHarness>();
  h->Register(MakeWeightConservationChecker());
  h->Register(MakeMemoResidencyChecker());
  h->Register(MakeRowLedgerChecker());
  h->Register(MakeSeqWindowChecker());
  h->Register(MakeClockChecker());
  h->Register(MakeResourceLedgerChecker());
  h->Register(MakeSnapshotIsolationChecker());
  return h;
}

void CheckHarness::BeginRun(const RunInfo& info) {
  info_ = info;
  for (auto& c : checkers_) c->OnRunBegin(info);
}

void CheckHarness::Report(const char* checker, std::string what, SimTime at,
                          uint64_t query, uint32_t scope) {
  trip_count_++;
  by_checker_[checker]++;
  if (trips_.size() < kMaxStoredTrips) {
    trips_.push_back(Trip{checker, std::move(what), at, query, scope});
  }
}

std::string CheckHarness::Summary() const {
  if (trip_count_ == 0) return "";
  std::string s = std::to_string(trip_count_) + " invariant trip(s):\n";
  for (const Trip& t : trips_) s += "  " + t.ToString() + "\n";
  if (trip_count_ > trips_.size()) {
    s += "  ... " + std::to_string(trip_count_ - trips_.size()) +
         " further trip(s) not stored\n";
  }
  return s;
}

namespace {

// ---- weight conservation ----------------------------------------------------

class WeightConservationChecker final : public InvariantChecker {
 public:
  const char* name() const override { return "weight-conservation"; }

  void OnRunBegin(const RunInfo&) override {
    live_.clear();
    done_.clear();
  }

  void OnWeightSplit(uint64_t q, uint32_t /*a*/, uint32_t s, Weight parent,
                     const Weight* shares, size_t n, SimTime at) override {
    Weight sum = 0;
    for (size_t i = 0; i < n; ++i) sum += shares[i];
    if (sum != parent) {
      ReportTrip("weight split does not conserve: sum(shares)=" +
                     std::to_string(sum) + " != parent=" + std::to_string(parent),
                 at, q, s);
    }
  }

  void OnWeightMerge(uint64_t q, uint32_t /*a*/, uint32_t s, Weight before,
                     Weight added, Weight after, SimTime at) override {
    if (after != before + added) {  // wrapping add: exact in Z_2^64
      ReportTrip("weight merge lost mass: " + std::to_string(before) + " + " +
                     std::to_string(added) + " -> " + std::to_string(after),
                 at, q, s);
    }
  }

  void OnTaskWeight(uint64_t q, uint32_t /*a*/, uint32_t s, Weight in,
                    Weight emitted, Weight finished, SimTime at) override {
    if (in != emitted + finished) {
      ReportTrip("task did not conserve its weight: in=" + std::to_string(in) +
                     " emitted=" + std::to_string(emitted) +
                     " finished=" + std::to_string(finished),
                 at, q, s);
    }
  }

  void OnWeightFinish(uint64_t q, uint32_t a, uint32_t s, Weight w,
                      SimTime /*at*/) override {
    if (done_.count(q) != 0) return;
    Scope(q, a, s).finished += w;
  }

  void OnWeightAccumulate(uint64_t q, uint32_t a, uint32_t s, Weight w,
                          Weight acc_after, SimTime at) override {
    if (done_.count(q) != 0) return;
    ScopeLedger& led = Scope(q, a, s);
    led.accumulated += w;
    if (led.accumulated != acc_after) {
      // The coordinator's accumulator and our independent mirror disagree:
      // some accumulate bypassed the hook or the accumulator was corrupted.
      ReportTrip("coordinator accumulator diverged from mirror: acc=" +
                     std::to_string(acc_after) +
                     " mirror=" + std::to_string(led.accumulated),
                 at, q, s);
      led.accumulated = acc_after;  // resync: report each corruption once
    }
  }

  void OnLateWeight(uint64_t q, uint32_t s, Weight w, bool after_done,
                    SimTime at) override {
    if (run().fault_active) return;  // legal residue of retries / fencing
    if (after_done) {
      // Weight trailing a completed query is expected only when completion
      // abandoned outstanding weight (early cancel / timeout / failure).
      auto it = done_.find(q);
      if (it != done_.end() && !it->second) {
        ReportTrip("weight arrived after normal completion (w=" +
                       std::to_string(w) + ")",
                   at, q, s);
      }
      return;
    }
    ReportTrip("weight report for an already-closed scope (w=" +
                   std::to_string(w) + ")",
               at, q, s);
  }

  void OnScopeClose(uint64_t q, uint32_t a, uint32_t s, Weight acc,
                    SimTime at) override {
    if (done_.count(q) != 0) return;
    if (acc != kUnitWeight) {
      ReportTrip("scope closed at acc=" + std::to_string(acc) +
                     " != kUnitWeight",
                 at, q, s);
    }
    ScopeLedger& led = Scope(q, a, s);
    if (led.accumulated != kUnitWeight) {
      ReportTrip("mirror accumulator closed at " +
                     std::to_string(led.accumulated) + " != kUnitWeight",
                 at, q, s);
    }
    if (!run().fault_active && led.finished != kUnitWeight) {
      // Fault-free, every Finish for this scope was flushed and delivered
      // before the accumulator could reach unity, so the finished mass must
      // be exactly the unit too. (Under faults, fenced stale reports make
      // the sum of *observed* finishes unreliable.)
      ReportTrip("finished mass at close is " + std::to_string(led.finished) +
                     " != kUnitWeight",
                 at, q, s);
    }
    led.closed = true;
  }

  void OnAttemptAbort(uint64_t q, uint32_t /*new_attempt*/, SimTime /*at*/) override {
    // The abort fences everything in flight; the retry starts a fresh ledger.
    live_.erase(q);
  }

  void OnQueryComplete(const QueryProbe& q, SimTime at) override {
    bool exempt = q.failed || q.timed_out || q.early_cancel;
    if (!exempt) {
      auto it = live_.find(q.id);
      if (it != live_.end()) {
        for (const auto& [scope, led] : it->second.scopes) {
          if (!led.closed && led.accumulated != 0) {
            ReportTrip("query completed with a partially accumulated open "
                       "scope (acc mirror=" +
                           std::to_string(led.accumulated) + ")",
                       at, q.id, scope);
          }
        }
      }
    }
    live_.erase(q.id);
    done_[q.id] = exempt;
  }

  void OnQuiescence(const ClusterProbe& p, SimTime at, bool drained) override {
    if (!drained) return;
    if (!run().fault_active) {
      // Fault-free, a drained queue with an unfinished query means its
      // weight evaporated without any message loss to blame.
      p.ProbeQueries([&](const QueryProbe& q) {
        if (!q.done) {
          ReportTrip("queue drained with unfinished query (lost weight)", at,
                     q.id, 0);
        }
      });
    }
    // Flush-before-sleep: at a true drain every worker went idle and flushed,
    // and crashed workers had their cells wiped — any residue is a leak.
    p.ProbePendingWeights([&](uint32_t worker, uint64_t query, uint32_t scope,
                              Weight w) {
      ReportTrip("stranded coalesced weight at worker " +
                     std::to_string(worker) + " (w=" + std::to_string(w) + ")",
                 at, query, scope);
    });
  }

 private:
  struct ScopeLedger {
    Weight accumulated = 0;  // mirror of the coordinator's acc
    Weight finished = 0;     // sum of observed Finish() mass
    bool closed = false;
  };
  struct QueryLedger {
    uint32_t attempt = 0;
    std::map<uint32_t, ScopeLedger> scopes;
  };

  ScopeLedger& Scope(uint64_t q, uint32_t attempt, uint32_t scope) {
    QueryLedger& led = live_[q];
    if (led.attempt != attempt) {
      // Defensive: hooks are attempt-fenced at the call sites, so a mismatch
      // only appears if an abort hook was missed. Reset rather than mixing
      // two attempts' mass.
      led.attempt = attempt;
      led.scopes.clear();
    }
    return led.scopes[scope];
  }

  std::map<uint64_t, QueryLedger> live_;
  std::map<uint64_t, bool> done_;  // query -> exempt from strict checks
};

// ---- memo residency ---------------------------------------------------------

class MemoResidencyChecker final : public InvariantChecker {
 public:
  const char* name() const override { return "memo-residency"; }

  void OnQuiescence(const ClusterProbe& p, SimTime at, bool drained) override {
    if (!drained) return;  // control fences may still be in flight mid-run
    std::unordered_map<uint64_t, bool> done;  // query -> done
    p.ProbeQueries([&](const QueryProbe& q) { done[q.id] = q.done; });
    p.ProbeMemos([&](uint32_t partition, uint64_t query, uint32_t step) {
      auto it = done.find(query);
      if (it == done.end()) {
        ReportTrip("memo owned by unknown query (partition " +
                       std::to_string(partition) + ", step " +
                       std::to_string(step) + ")",
                   at, query, 0);
      } else if (it->second) {
        ReportTrip("memo outlives completed query (partition " +
                       std::to_string(partition) + ", step " +
                       std::to_string(step) + ")",
                   at, query, 0);
      }
    });
  }
};

// ---- row-ledger symmetry ----------------------------------------------------

class RowLedgerChecker final : public InvariantChecker {
 public:
  const char* name() const override { return "row-ledger"; }

  void OnQueryComplete(const QueryProbe& q, SimTime at) override {
    // The ledgers are only maintained when faults are active, and a query
    // that failed / timed out / cancelled early legitimately abandons
    // announced rows.
    if (!run().fault_active) return;
    if (q.failed || q.timed_out || q.early_cancel) return;
    if (q.rows_received != q.rows_expected) {
      ReportTrip("row ledgers asymmetric at completion: received=" +
                     std::to_string(q.rows_received) +
                     " expected=" + std::to_string(q.rows_expected),
                 at, q.id, 0);
    }
  }
};

// ---- seq-window monotonicity ------------------------------------------------

class SeqWindowChecker final : public InvariantChecker {
 public:
  const char* name() const override { return "seq-window"; }

  void OnRunBegin(const RunInfo&) override { pairs_.clear(); }

  void OnSeqAssign(uint32_t src, uint32_t dst, uint64_t seq) override {
    PairState& p = pairs_[Key(src, dst)];
    if (seq <= p.last_assigned) {
      ReportTrip("send seq not strictly increasing on pair " +
                     std::to_string(src) + "->" + std::to_string(dst) + ": " +
                     std::to_string(seq) + " after " +
                     std::to_string(p.last_assigned),
                 0, 0, 0);
    }
    p.last_assigned = seq;
  }

  void OnSeqDeliver(uint32_t src, uint32_t dst, uint64_t seq, bool accepted,
                    uint64_t low, uint64_t max_seen) override {
    PairState& p = pairs_[Key(src, dst)];
    if (low < p.last_low) {
      ReportTrip("dedup low-water mark regressed on pair " +
                     std::to_string(src) + "->" + std::to_string(dst),
                 0, 0, 0);
    }
    if (max_seen < low) {
      ReportTrip("dedup window inverted (max_seen < low) on pair " +
                     std::to_string(src) + "->" + std::to_string(dst),
                 0, 0, 0);
    }
    if (accepted) {
      // Independent dedup oracle: remember every accepted seq still above
      // the window's low-water mark; accepting one twice means a duplicate
      // slipped through.
      if (!p.accepted.insert(seq).second) {
        ReportTrip("seq " + std::to_string(seq) +
                       " accepted twice on pair " + std::to_string(src) +
                       "->" + std::to_string(dst),
                   0, 0, 0);
      }
    }
    if (low > p.last_low) {
      // Seqs at or below low can never be accepted again (Insert rejects
      // them), so the mirror set stays bounded like the window itself.
      p.accepted.erase(p.accepted.begin(), p.accepted.upper_bound(low));
    }
    p.last_low = low;
  }

 private:
  static uint64_t Key(uint32_t src, uint32_t dst) {
    return (static_cast<uint64_t>(src) << 32) | dst;
  }
  struct PairState {
    uint64_t last_assigned = 0;
    uint64_t last_low = 0;
    std::set<uint64_t> accepted;
  };
  std::unordered_map<uint64_t, PairState> pairs_;
};

// ---- virtual-clock monotonicity ---------------------------------------------

class ClockChecker final : public InvariantChecker {
 public:
  const char* name() const override { return "clock"; }

  void OnRunBegin(const RunInfo&) override {
    last_now_ = 0;
    events_ = 0;
    worker_clocks_.clear();
  }

  void OnEventBoundary(const ClusterProbe& p, SimTime now) override {
    if (now < last_now_) {
      ReportTrip("event-queue clock ran backwards: " + std::to_string(now) +
                     " after " + std::to_string(last_now_),
                 now, 0, 0);
    }
    last_now_ = now;
    // Worker clocks only ever advance; sweep them periodically (every event
    // would be quadratic in cluster size for no extra coverage).
    if ((++events_ & 63) == 0) SweepWorkers(p, now);
  }

  void OnQuiescence(const ClusterProbe& p, SimTime at, bool) override {
    if (at < last_now_) {
      ReportTrip("quiescent time precedes the last event boundary", at, 0, 0);
    }
    SweepWorkers(p, at);
  }

 private:
  void SweepWorkers(const ClusterProbe& p, SimTime at) {
    uint32_t n = p.ProbeNumWorkers();
    if (worker_clocks_.size() < n) worker_clocks_.resize(n, 0);
    for (uint32_t w = 0; w < n; ++w) {
      SimTime t = p.ProbeWorkerClock(w);
      if (t < worker_clocks_[w]) {
        ReportTrip("worker " + std::to_string(w) + " clock ran backwards: " +
                       std::to_string(t) + " after " +
                       std::to_string(worker_clocks_[w]),
                   at, 0, 0);
      }
      worker_clocks_[w] = t;
    }
  }

  SimTime last_now_ = 0;
  uint64_t events_ = 0;
  std::vector<SimTime> worker_clocks_;
};

// ---- qos resource ledgers ---------------------------------------------------

class ResourceLedgerChecker final : public InvariantChecker {
 public:
  const char* name() const override { return "resource-ledger"; }

  void OnRunBegin(const RunInfo&) override {
    links_.clear();
    saturated_reported_.clear();
    mirror_ = AdmissionMirror{};
    events_ = 0;
  }

  void OnCreditConsume(uint32_t src, uint32_t dst, uint64_t bytes,
                       SimTime /*at*/) override {
    links_[Key(src, dst)] += bytes;  // consumed minus returned
  }

  void OnCreditReturn(uint32_t src, uint32_t dst, uint64_t bytes,
                      SimTime at) override {
    uint64_t& balance = links_[Key(src, dst)];
    if (bytes > balance) {
      ReportTrip("link " + LinkName(src, dst) + " returned " +
                     std::to_string(bytes) + " credits with only " +
                     std::to_string(balance) + " outstanding in the mirror",
                 at, 0, 0);
      balance = 0;
      return;
    }
    balance -= bytes;
  }

  void OnAdmission(uint64_t q, AdmissionEvent ev, SimTime at) override {
    switch (ev) {
      case AdmissionEvent::kAdmit:
        ++mirror_.submitted;
        ++mirror_.admitted;
        ++mirror_.running;
        break;
      case AdmissionEvent::kQueue:
        ++mirror_.submitted;
        ++mirror_.queued;
        break;
      case AdmissionEvent::kShed:
        ++mirror_.submitted;
        ++mirror_.shed;
        break;
      case AdmissionEvent::kDequeueAdmit:
        TakeQueued(q, at);
        ++mirror_.admitted;
        ++mirror_.running;
        break;
      case AdmissionEvent::kDequeueShed:
        TakeQueued(q, at);
        ++mirror_.shed;
        break;
      case AdmissionEvent::kCancel:
        TakeQueued(q, at);
        ++mirror_.cancelled;
        break;
      case AdmissionEvent::kComplete:
        if (mirror_.running == 0) {
          ReportTrip("admission completion with no running query in the mirror",
                     at, q, 0);
        } else {
          --mirror_.running;
        }
        ++mirror_.completed;
        break;
    }
  }

  void OnEventBoundary(const ClusterProbe& p, SimTime at) override {
    // Sampled: link conservation cannot transiently break, so per-event
    // checking would buy nothing over a periodic sweep.
    if ((++events_ & 63) == 0) CheckLinks(p, at);
  }

  void OnQuiescence(const ClusterProbe& p, SimTime at, bool drained) override {
    QosProbe q = p.ProbeQos();
    if (!q.enabled) return;
    CheckLinks(p, at);

    // Admission ledger: internal conservation, then against our mirror.
    if (q.submitted != q.admitted + q.shed + q.cancelled + q.queued) {
      ReportTrip("admission ledger unbalanced: submitted=" +
                     std::to_string(q.submitted) + " != admitted=" +
                     std::to_string(q.admitted) + " + shed=" +
                     std::to_string(q.shed) + " + cancelled=" +
                     std::to_string(q.cancelled) + " + queued=" +
                     std::to_string(q.queued),
                 at, 0, 0);
    }
    if (q.admitted != q.completed + q.running) {
      ReportTrip("admitted=" + std::to_string(q.admitted) + " != completed=" +
                     std::to_string(q.completed) + " + running=" +
                     std::to_string(q.running),
                 at, 0, 0);
    }
    CompareMirror("submitted", q.submitted, mirror_.submitted, at);
    CompareMirror("admitted", q.admitted, mirror_.admitted, at);
    CompareMirror("shed", q.shed, mirror_.shed, at);
    CompareMirror("cancelled", q.cancelled, mirror_.cancelled, at);
    CompareMirror("completed", q.completed, mirror_.completed, at);
    CompareMirror("queued", q.queued, mirror_.queued, at);
    CompareMirror("running", q.running, mirror_.running, at);

    // Task-byte ledger (holds even mid-run; queued bytes absorb the slack).
    // With the spill manager on, bytes parked on the storage tier are the
    // fourth resting place; the spill term is zero when spill is off.
    if (q.task_bytes_enqueued != q.task_bytes_dequeued + q.task_bytes_dropped +
                                     q.task_bytes_queued +
                                     q.spill_task_bytes_now) {
      ReportTrip("task-byte ledger unbalanced: enqueued=" +
                     std::to_string(q.task_bytes_enqueued) + " dequeued=" +
                     std::to_string(q.task_bytes_dequeued) + " dropped=" +
                     std::to_string(q.task_bytes_dropped) + " queued=" +
                     std::to_string(q.task_bytes_queued) + " spilled=" +
                     std::to_string(q.spill_task_bytes_now),
                 at, 0, 0);
    }

    // Spill ledgers ("no spilled memo lost"): every byte written to the tier
    // is faulted back in, dropped with its owner, or still parked there.
    // Trivially 0 == 0 + 0 + 0 while the spill manager is off.
    if (q.spill_memo_bytes_written != q.spill_memo_bytes_read +
                                          q.spill_memo_bytes_dropped +
                                          q.spill_memo_bytes_now) {
      ReportTrip("memo spill ledger unbalanced: written=" +
                     std::to_string(q.spill_memo_bytes_written) + " read=" +
                     std::to_string(q.spill_memo_bytes_read) + " dropped=" +
                     std::to_string(q.spill_memo_bytes_dropped) + " parked=" +
                     std::to_string(q.spill_memo_bytes_now),
                 at, 0, 0);
    }
    if (q.spill_task_bytes_written != q.spill_task_bytes_read +
                                          q.spill_task_bytes_dropped +
                                          q.spill_task_bytes_now) {
      ReportTrip("task spill ledger unbalanced: written=" +
                     std::to_string(q.spill_task_bytes_written) + " read=" +
                     std::to_string(q.spill_task_bytes_read) + " dropped=" +
                     std::to_string(q.spill_task_bytes_dropped) + " parked=" +
                     std::to_string(q.spill_task_bytes_now),
                 at, 0, 0);
    }

    if (!drained) return;
    bool all_done = true;
    p.ProbeQueries([&](const QueryProbe& qq) { all_done &= qq.done; });
    if (!all_done) return;  // a stuck run trips other checkers; zeros are
                            // only guaranteed once every query resolved
    if (q.queued != 0 || q.running != 0) {
      ReportTrip("queries still queued/running at drained quiescence (queued=" +
                     std::to_string(q.queued) + " running=" +
                     std::to_string(q.running) + ")",
                 at, 0, 0);
    }
    if (q.task_bytes_queued != 0) {
      ReportTrip("queued task bytes nonzero at drained quiescence: " +
                     std::to_string(q.task_bytes_queued),
                 at, 0, 0);
    }
    if (q.memo_live_bytes != 0) {
      ReportTrip("live memo bytes nonzero at drained quiescence: " +
                     std::to_string(q.memo_live_bytes),
                 at, 0, 0);
    }
    if (q.spill_memo_bytes_now != 0 || q.spill_task_bytes_now != 0) {
      ReportTrip("spilled state stranded on the storage tier at drained "
                 "quiescence (memo=" +
                     std::to_string(q.spill_memo_bytes_now) + " task=" +
                     std::to_string(q.spill_task_bytes_now) + ")",
                 at, 0, 0);
    }
    p.ProbeLinkCredits([&](const LinkCreditProbe& l) {
      if (l.outstanding != 0) {
        ReportTrip("link " + LinkName(l.src_node, l.dst_node) + " has " +
                       std::to_string(l.outstanding) +
                       " credits outstanding at drained quiescence",
                   at, 0, 0);
      }
    });
  }

 private:
  struct AdmissionMirror {
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t cancelled = 0;
    uint64_t completed = 0;
    uint64_t queued = 0;
    uint64_t running = 0;
  };

  static uint64_t Key(uint32_t src, uint32_t dst) {
    return (static_cast<uint64_t>(src) << 32) | dst;
  }
  static std::string LinkName(uint32_t src, uint32_t dst) {
    return std::to_string(src) + "->" + std::to_string(dst);
  }

  void TakeQueued(uint64_t q, SimTime at) {
    if (mirror_.queued == 0) {
      ReportTrip("admission dequeue with an empty backlog in the mirror", at, q,
                 0);
      return;
    }
    --mirror_.queued;
  }

  void CompareMirror(const char* field, uint64_t probe, uint64_t mirror,
                     SimTime at) {
    if (probe != mirror) {
      ReportTrip("admission mirror diverged on " + std::string(field) +
                     ": probe=" + std::to_string(probe) +
                     " mirror=" + std::to_string(mirror),
                 at, 0, 0);
    }
  }

  void CheckLinks(const ClusterProbe& p, SimTime at) {
    p.ProbeLinkCredits([&](const LinkCreditProbe& l) {
      uint64_t key = Key(l.src_node, l.dst_node);
      if (l.available + l.outstanding != l.granted) {
        ReportTrip("link " + LinkName(l.src_node, l.dst_node) +
                       " credits not conserved: available=" +
                       std::to_string(l.available) + " + outstanding=" +
                       std::to_string(l.outstanding) +
                       " != granted=" + std::to_string(l.granted),
                   at, 0, 0);
      }
      if (l.saturated && saturated_reported_.insert(key).second) {
        ReportTrip("link " + LinkName(l.src_node, l.dst_node) +
                       " credit meter saturated (release-mode clamp fired)",
                   at, 0, 0);
      }
      auto it = links_.find(key);
      uint64_t balance = it == links_.end() ? 0 : it->second;
      if (l.outstanding != balance) {
        ReportTrip("link " + LinkName(l.src_node, l.dst_node) +
                       " outstanding=" + std::to_string(l.outstanding) +
                       " diverged from hook mirror " + std::to_string(balance),
                   at, 0, 0);
        links_[key] = l.outstanding;  // resync: report each divergence once
      }
    });
  }

  std::unordered_map<uint64_t, uint64_t> links_;  // consumed - returned
  std::unordered_set<uint64_t> saturated_reported_;
  AdmissionMirror mirror_;
  uint64_t events_ = 0;
};

// ---- snapshot isolation -----------------------------------------------------

class SnapshotIsolationChecker final : public InvariantChecker {
 public:
  const char* name() const override { return "snapshot-isolation"; }

  void OnEdgeObserved(uint64_t q, uint32_t /*attempt*/, Timestamp read_ts,
                      Timestamp create_ts, Timestamp delete_ts,
                      SimTime at) override {
    if (create_ts > read_ts) {
      ReportTrip("reader at ts " + std::to_string(read_ts) +
                     " observed an edge created at ts " +
                     std::to_string(create_ts) + " (from the future)",
                 at, q, 0);
    }
    if (delete_ts <= read_ts) {
      ReportTrip("reader at ts " + std::to_string(read_ts) +
                     " observed an edge deleted at ts " +
                     std::to_string(delete_ts) + " (already dead)",
                 at, q, 0);
    }
  }
};

}  // namespace

std::unique_ptr<InvariantChecker> MakeWeightConservationChecker() {
  return std::make_unique<WeightConservationChecker>();
}
std::unique_ptr<InvariantChecker> MakeMemoResidencyChecker() {
  return std::make_unique<MemoResidencyChecker>();
}
std::unique_ptr<InvariantChecker> MakeRowLedgerChecker() {
  return std::make_unique<RowLedgerChecker>();
}
std::unique_ptr<InvariantChecker> MakeSeqWindowChecker() {
  return std::make_unique<SeqWindowChecker>();
}
std::unique_ptr<InvariantChecker> MakeClockChecker() {
  return std::make_unique<ClockChecker>();
}
std::unique_ptr<InvariantChecker> MakeResourceLedgerChecker() {
  return std::make_unique<ResourceLedgerChecker>();
}
std::unique_ptr<InvariantChecker> MakeSnapshotIsolationChecker() {
  return std::make_unique<SnapshotIsolationChecker>();
}

}  // namespace graphdance::check
