#include "check/shrink.h"

#include <algorithm>
#include <vector>

namespace graphdance {
namespace check {

namespace {

/// Budget-capped predicate wrapper: counts evaluations and reports success
/// only while budget remains (a spent budget freezes the current spec).
class Evaluator {
 public:
  Evaluator(const std::function<bool(const ReplaySpec&)>& fails, int budget)
      : fails_(fails), budget_(budget) {}

  bool Fails(const ReplaySpec& spec) {
    if (evaluations_ >= budget_) return false;
    ++evaluations_;
    return fails_(spec);
  }

  int evaluations() const { return evaluations_; }
  bool exhausted() const { return evaluations_ >= budget_; }

 private:
  const std::function<bool(const ReplaySpec&)>& fails_;
  int budget_;
  int evaluations_ = 0;
};

/// ddmin over the scripted fault events: repeatedly try dropping chunks
/// (halves first, then smaller) as long as the failure survives.
void ShrinkScript(ReplaySpec* spec, Evaluator* eval) {
  size_t chunk = spec->fault.scripted.size();
  while (chunk >= 1 && !spec->fault.scripted.empty() && !eval->exhausted()) {
    bool removed_any = false;
    for (size_t start = 0; start < spec->fault.scripted.size();) {
      ReplaySpec candidate = *spec;
      size_t end = std::min(start + chunk, candidate.fault.scripted.size());
      candidate.fault.scripted.erase(candidate.fault.scripted.begin() + start,
                                     candidate.fault.scripted.begin() + end);
      if (eval->Fails(candidate)) {
        *spec = candidate;  // the chunk was irrelevant: keep it gone
        removed_any = true;
        // start stays: the next chunk slid into this position.
      } else {
        start += chunk;
      }
      if (eval->exhausted()) return;
    }
    if (!removed_any) chunk /= 2;  // refine granularity only when stuck
  }
}

}  // namespace

ShrinkResult Shrink(const ReplaySpec& failing,
                    const std::function<bool(const ReplaySpec&)>& fails,
                    int budget) {
  ShrinkResult result;
  result.minimal = failing;
  Evaluator eval(fails, budget);
  if (!eval.Fails(failing)) {
    // Nothing to shrink: either the spec passes or the budget was <= 0.
    result.token = FormatReplayToken(result.minimal);
    result.evaluations = eval.evaluations();
    return result;
  }
  result.reproduced = true;

  ShrinkScript(&result.minimal, &eval);

  // Zero each probabilistic knob independently; an accepted zero means that
  // fault family was not needed to reproduce.
  ReplaySpec candidate = result.minimal;
  candidate.fault.drop_prob = 0.0;
  if (eval.Fails(candidate)) result.minimal = candidate;
  candidate = result.minimal;
  candidate.fault.dup_prob = 0.0;
  if (eval.Fails(candidate)) result.minimal = candidate;
  candidate = result.minimal;
  candidate.fault.delay_prob = 0.0;
  if (eval.Fails(candidate)) result.minimal = candidate;

  // Simplify the schedule-exploration half of the pair: no jitter, then the
  // pinned tie-break order.
  candidate = result.minimal;
  candidate.jitter_ns = 0;
  if (candidate.jitter_ns != result.minimal.jitter_ns && eval.Fails(candidate)) {
    result.minimal = candidate;
  }
  candidate = result.minimal;
  candidate.tiebreak_seed = 0;
  if (candidate.tiebreak_seed != result.minimal.tiebreak_seed &&
      eval.Fails(candidate)) {
    result.minimal = candidate;
  }

  result.token = FormatReplayToken(result.minimal);
  result.evaluations = eval.evaluations();
  return result;
}

}  // namespace check
}  // namespace graphdance
