#include "check/thread_oracle.h"

#include <sstream>

#include "rt/thread_cluster.h"

namespace graphdance {
namespace check {

std::string ThreadDifferentialReport::Summary() const {
  std::ostringstream os;
  os << "thread-differential: " << cells << " cells, " << queries
     << " queries, " << mismatches << " mismatches";
  if (!failures.empty()) os << "; first: " << failures.front();
  return os.str();
}

Result<ThreadDifferentialReport> RunThreadDifferential(
    const WorkloadFactory& factory, const ThreadDifferentialOptions& opt) {
  Result<std::vector<std::vector<Row>>> reference = ComputeReference(factory);
  if (!reference.ok()) return reference.status();
  const std::vector<std::vector<Row>>& ref = reference.value();

  ThreadDifferentialReport report;
  for (uint32_t threads : opt.thread_counts) {
    for (uint64_t seed = 1; seed <= opt.num_seeds; ++seed) {
      WorkloadInstance wl = factory(opt.num_partitions);
      if (wl.plans.size() != ref.size()) {
        return Status::Internal("workload factory is not deterministic");
      }
      rt::ThreadClusterConfig cfg;
      cfg.num_threads = threads;
      cfg.seed = seed;
      cfg.traverser_bulking = opt.traverser_bulking;
      cfg.flush_threshold_bytes = opt.flush_threshold_bytes;
      rt::ThreadCluster cluster(cfg, wl.graph);
      std::vector<uint64_t> ids;
      ids.reserve(wl.plans.size());
      for (const auto& plan : wl.plans) ids.push_back(cluster.Submit(plan));
      Status st = cluster.RunToCompletion(opt.run_timeout_ms);
      if (!st.ok()) {
        return Status::Internal("threads=" + std::to_string(threads) +
                                " seed=" + std::to_string(seed) + ": " +
                                st.ToString());
      }
      ++report.cells;
      for (size_t i = 0; i < ids.size(); ++i) {
        ++report.queries;
        const QueryResult& r = cluster.result(ids[i]);
        if (!r.done) {
          ++report.mismatches;
          report.failures.push_back(
              "threads=" + std::to_string(threads) + " seed=" +
              std::to_string(seed) + " plan=" + std::to_string(i) +
              ": query not done");
          continue;
        }
        std::vector<Row> got = CanonicalRows(r.rows);
        std::vector<Row> want = CanonicalRows(ref[i]);
        if (got != want) {
          ++report.mismatches;
          report.failures.push_back(
              "threads=" + std::to_string(threads) + " seed=" +
              std::to_string(seed) + " plan=" + std::to_string(i) + ": " +
              std::to_string(got.size()) + " rows vs reference " +
              std::to_string(want.size()));
        }
      }
    }
  }
  return report;
}

}  // namespace check
}  // namespace graphdance
