#include "check/txn_oracle.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "check/invariants.h"
#include "rt/thread_cluster.h"
#include "runtime/config.h"
#include "runtime/hybrid.h"
#include "runtime/sim_cluster.h"
#include "txn/dist_txn.h"

namespace graphdance {
namespace check {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

/// One read wave as observed by the cell: every plan of the group submitted
/// at the same LCT, rows canonicalized. `valid[k]` is false when the query
/// failed or timed out (legal mid-chaos; the wave comparison skips it).
struct Wave {
  Timestamp read_ts = 0;
  std::vector<std::vector<Row>> rows;
  std::vector<bool> valid;
};

/// Chaos knobs for one cell, derived deterministically from the spec: the
/// phase comes from the token, the exact nth protocol action from the
/// tie-break seed (so different seeds tear different transactions).
DistTxnManager::Options CellTxnOptions(const ReplaySpec& spec,
                                       const TxnDifferentialOptions& opt) {
  DistTxnManager::Options o;
  if (spec.txn_phase == "prepare") {
    o.crash_phase = DistTxnManager::CrashPhase::kPrepare;
  } else if (spec.txn_phase == "commit") {
    o.crash_phase = DistTxnManager::CrashPhase::kCommit;
  } else if (spec.txn_phase == "apply") {
    o.crash_phase = DistTxnManager::CrashPhase::kApply;
  }
  o.crash_nth = 1 + spec.tiebreak_seed % 5;
  o.corrupt_nth_apply = opt.corrupt_nth_apply;
  return o;
}

/// Cell cluster shape, mirroring the stream oracle's StreamCellConfig.
ClusterConfig TxnCellConfig(const ReplaySpec& spec,
                            const TxnDifferentialOptions& opt,
                            EngineKind engine) {
  ClusterConfig cfg;
  cfg.num_nodes = opt.base.num_nodes;
  cfg.workers_per_node = opt.base.workers_per_node;
  cfg.engine = engine;
  cfg.traverser_bulking = opt.base.traverser_bulking;
  cfg.progress_timeout_ns = 20'000'000;
  cfg.fault = spec.fault;
  if (!cfg.fault.Active() && !spec.txn_phase.empty()) {
    // Chaos cells must run with the fault machinery armed (epoch fences,
    // crashed-delivery drops, query retry) even when no message faults are
    // scheduled. A scripted delay against an unreachable ordinal activates
    // the path without perturbing any schedule — and is derived here, from
    // the spec, so token replay reproduces it.
    cfg.fault.DelayNth(~0ull, 1);
  }
  cfg.explore.tiebreak_seed = spec.tiebreak_seed;
  cfg.explore.jitter_ns = spec.jitter_ns;
  return cfg;
}

/// Divergence size between two canonical row multisets: positionally
/// differing rows plus the length difference. Zero iff identical.
uint64_t RowDivergence(const std::vector<Row>& got,
                       const std::vector<Row>& want) {
  size_t common = std::min(got.size(), want.size());
  uint64_t d = 0;
  for (size_t i = 0; i < common; ++i) {
    if (got[i] != want[i]) d++;
  }
  return d + (std::max(got.size(), want.size()) - common);
}

/// Replays the cell's committed schedule against a serial single-partition
/// executor and diffs every wave against the matching serial prefix. This is
/// the serializability check proper: commit order is timestamp order, so the
/// wave at LCT = T must equal the serial execution of exactly the commits
/// with ts <= T — applied one at a time, on one partition, no concurrency.
Status DiffWavesAgainstSerial(
    const TxnScenario& s, const std::vector<size_t>& plan_idx,
    const std::vector<std::pair<Timestamp, DistTxnManager::TxnId>>& commit_log,
    const std::unordered_map<DistTxnManager::TxnId, size_t>& update_of_txn,
    const std::vector<Wave>& waves, const TxnDifferentialOptions& opt,
    uint64_t* comparisons, TxnCellReport* rep) {
  std::shared_ptr<SnbDataset> serial = s.dataset(1);
  if (serial == nullptr) {
    return Status::Internal("txn scenario produced no serial dataset");
  }
  std::vector<std::shared_ptr<const Plan>> plans = s.plans(*serial);
  DistTxnManager serial_mgr(serial->graph.get());
  size_t applied = 0;
  for (const Wave& w : waves) {
    while (applied < commit_log.size() &&
           commit_log[applied].first <= w.read_ts) {
      size_t u = update_of_txn.at(commit_log[applied].second);
      DistTxnManager::TxnId id = serial_mgr.Begin();
      Status st = BufferSnbUpdate(&serial_mgr, id, *serial, s.updates[u]);
      if (!st.ok()) return st;
      Result<Timestamp> r = serial_mgr.CommitDirect(id);
      if (!r.ok()) {
        return Status::Internal("serial replay aborted (it must never): " +
                                r.status().message());
      }
      applied++;
    }
    // The serial answer: a fresh single-worker cluster over the serially
    // materialized graph, reading at its own (fully applied) LCT.
    ClusterConfig cfg;
    cfg.num_nodes = 1;
    cfg.workers_per_node = 1;
    cfg.engine = EngineKind::kAsync;
    SimCluster cluster(cfg, serial->graph);
    std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
    cluster.AttachChecker(harness.get());
    std::vector<uint64_t> ids;
    ids.reserve(plan_idx.size());
    for (size_t idx : plan_idx) {
      ids.push_back(cluster.Submit(plans[idx], /*at=*/0,
                                   serial_mgr.ReadTimestamp()));
    }
    Status st = cluster.RunToCompletion(opt.base.max_events);
    if (!st.ok()) return st;
    if (harness->trip_count() > 0) {
      return Status::Internal("invariant trip in the serial replay: " +
                              harness->trips().front().ToString());
    }
    rep->waves++;
    for (size_t k = 0; k < plan_idx.size(); ++k) {
      rep->base.queries++;
      if (!w.valid[k]) {
        rep->base.explicit_failures++;
        continue;
      }
      const QueryResult& r = cluster.result(ids[k]);
      if (!r.done || r.failed || r.timed_out) {
        return Status::Internal("serial replay query did not complete");
      }
      std::vector<Row> want = CanonicalRows(r.rows);
      std::vector<Row> got = w.rows[k];  // canonicalized at collection
      (*comparisons)++;
      if (opt.corrupt_nth_visibility != 0 &&
          *comparisons == opt.corrupt_nth_visibility) {
        // Planted harness bug: mutate what the cell observed. A comparison
        // that cannot catch this would be vacuous.
        if (!got.empty()) {
          got.pop_back();
        } else {
          got.push_back(Row{Value(static_cast<int64_t>(0xbad))});
        }
      }
      if (got != want) {
        rep->base.mismatches++;
        rep->partial_visibility_rows += RowDivergence(got, want);
        if (rep->base.detail.empty()) {
          rep->base.detail = "wave lct=" + U64(w.read_ts) + " plan " +
                             U64(plan_idx[k]) + ": got " + U64(got.size()) +
                             " rows, serial prefix replay " +
                             U64(want.size());
        }
      }
    }
  }
  return Status::OK();
}

/// Event-driven group: the full two-round commit protocol over an async
/// SimCluster, read waves submitted from commit callbacks, one final wave
/// after quiescence (by then every decided transaction has fully applied).
Status RunTxnGroupAsync(const TxnScenario& s,
                        const std::vector<size_t>& plan_idx,
                        const ReplaySpec& spec,
                        const TxnDifferentialOptions& opt,
                        uint64_t* comparisons, TxnCellReport* rep) {
  if (plan_idx.empty()) return Status::OK();
  uint32_t num_partitions = opt.base.num_nodes * opt.base.workers_per_node;
  std::shared_ptr<SnbDataset> data = s.dataset(num_partitions);
  if (data == nullptr) return Status::Internal("txn scenario has no dataset");
  std::vector<std::shared_ptr<const Plan>> plans = s.plans(*data);
  ClusterConfig cfg = TxnCellConfig(spec, opt, EngineKind::kAsync);
  SimCluster cluster(cfg, data->graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());
  DistTxnManager mgr(&cluster, CellTxnOptions(spec, opt));

  std::unordered_map<DistTxnManager::TxnId, size_t> update_of_txn;
  struct PendingWave {
    Timestamp read_ts = 0;
    std::vector<uint64_t> ids;
  };
  std::vector<PendingWave> pending;
  uint64_t commits_seen = 0;
  Status buffer_error = Status::OK();

  auto submit_wave = [&](SimTime at) {
    PendingWave w;
    w.read_ts = mgr.ReadTimestamp();
    for (size_t idx : plan_idx) {
      w.ids.push_back(cluster.Submit(plans[idx], at, w.read_ts));
    }
    pending.push_back(std::move(w));
  };

  // One transaction enters every 20us of virtual time: enough overlap that
  // hot-anchor transactions genuinely race through prepare concurrently.
  for (size_t i = 0; i < s.updates.size(); ++i) {
    SimTime at = static_cast<SimTime>((i + 1) * 20'000);
    cluster.ScheduleAt(at, [&, i](SimTime) {
      DistTxnManager::TxnId id = mgr.Begin();
      Status st = BufferSnbUpdate(&mgr, id, *data, s.updates[i]);
      if (!st.ok()) {
        if (buffer_error.ok()) buffer_error = st;
        mgr.Abort(id);
        return;
      }
      update_of_txn[id] = i;
      mgr.CommitAsync(id, [&](Result<Timestamp> r, SimTime t2) {
        if (!r.ok()) return;  // final conflict abort: legal under contention
        commits_seen++;
        if (commits_seen % opt.wave_every == 0) submit_wave(t2);
      });
    });
  }
  Status run = cluster.RunToCompletion(opt.base.max_events);
  if (!buffer_error.ok()) return buffer_error;
  if (!run.ok()) {
    rep->base.mismatches++;
    if (rep->base.detail.empty()) {
      rep->base.detail = "run: " + run.ToString();
    }
  }
  if (mgr.active() != 0) {
    rep->base.mismatches++;
    if (rep->base.detail.empty()) {
      rep->base.detail = "quiescent with " + U64(mgr.active()) +
                         " transactions stuck mid-protocol";
    }
  }
  // Final wave: everything decided is applied, the LCT covers the full log.
  size_t final_wave = pending.size();
  submit_wave(cluster.now());
  run = cluster.RunToCompletion(opt.base.max_events);
  if (!run.ok()) {
    rep->base.mismatches++;
    if (rep->base.detail.empty()) {
      rep->base.detail = "final wave run: " + run.ToString();
    }
  }
  rep->base.trips += harness->trip_count();
  if (harness->trip_count() > 0 && rep->base.detail.empty()) {
    rep->base.detail = harness->trips().front().ToString();
  }

  // Collect the waves. LCT monotonicity rides along: waves were submitted in
  // virtual-time order, so their read timestamps must never go backwards.
  std::vector<Wave> waves;
  Timestamp prev_ts = 0;
  for (size_t wi = 0; wi < pending.size(); ++wi) {
    const PendingWave& pw = pending[wi];
    if (pw.read_ts < prev_ts) {
      rep->base.mismatches++;
      if (rep->base.detail.empty()) {
        rep->base.detail = "LCT went backwards: wave at " + U64(pw.read_ts) +
                           " after " + U64(prev_ts);
      }
    }
    prev_ts = pw.read_ts;
    Wave w;
    w.read_ts = pw.read_ts;
    for (uint64_t id : pw.ids) {
      const QueryResult& r = cluster.result(id);
      bool clean = r.done && !r.failed && !r.timed_out;
      if (!clean && wi == final_wave) {
        // The final wave runs after every crash has restarted; it failing
        // would leave a chaos cell with nothing checked (vacuity).
        rep->base.mismatches++;
        if (rep->base.detail.empty()) {
          rep->base.detail = "final wave query " + U64(id) +
                             " did not complete cleanly";
        }
      }
      w.valid.push_back(clean);
      w.rows.push_back(clean ? CanonicalRows(r.rows) : std::vector<Row>{});
    }
    waves.push_back(std::move(w));
  }

  rep->committed += mgr.stats().committed;
  rep->finally_aborted += mgr.stats().aborted;
  rep->retried += mgr.stats().retried;
  rep->crashes += mgr.stats().crashes_injected;
  if (mgr.commit_log().size() != mgr.stats().committed) {
    rep->base.mismatches++;
    if (rep->base.detail.empty()) {
      rep->base.detail = "decided " + U64(mgr.commit_log().size()) +
                         " transactions but completed " +
                         U64(mgr.stats().committed);
    }
  }
  return DiffWavesAgainstSerial(s, plan_idx, mgr.commit_log(), update_of_txn,
                                waves, opt, comparisons, rep);
}

/// Phased group: CommitDirect between read waves. BSP waves run on a fresh
/// BSP SimCluster over the shared graph; "threads" waves run on a fresh
/// rt::ThreadCluster — real cores reading a TEL that the phased protocol
/// mutates strictly between cluster lifetimes. Chaos leaves transactions
/// torn; the wave *before* recovery is the partial-visibility check, then
/// RecoverDirect() redoes the missing partitions from the decision record.
Status RunTxnGroupPhased(const TxnScenario& s,
                         const std::vector<size_t>& plan_idx,
                         bool threads_mode, const ReplaySpec& spec,
                         const TxnDifferentialOptions& opt,
                         uint64_t* comparisons, TxnCellReport* rep) {
  if (plan_idx.empty()) return Status::OK();
  uint32_t num_partitions = opt.base.num_nodes * opt.base.workers_per_node;
  std::shared_ptr<SnbDataset> data = s.dataset(num_partitions);
  if (data == nullptr) return Status::Internal("txn scenario has no dataset");
  std::vector<std::shared_ptr<const Plan>> plans = s.plans(*data);
  DistTxnManager mgr(data->graph.get(), CellTxnOptions(spec, opt));
  std::unordered_map<DistTxnManager::TxnId, size_t> update_of_txn;
  std::vector<Wave> waves;
  uint32_t threads =
      opt.thread_counts.empty()
          ? 2
          : opt.thread_counts[spec.tiebreak_seed % opt.thread_counts.size()];

  auto run_wave = [&]() -> Status {
    Wave w;
    w.read_ts = mgr.ReadTimestamp();
    if (!waves.empty() && w.read_ts < waves.back().read_ts) {
      rep->base.mismatches++;
      if (rep->base.detail.empty()) {
        rep->base.detail = "LCT went backwards: wave at " + U64(w.read_ts) +
                           " after " + U64(waves.back().read_ts);
      }
    }
    if (threads_mode) {
      rt::ThreadClusterConfig tcfg;
      tcfg.num_threads = threads;
      tcfg.seed = spec.tiebreak_seed + 1;
      tcfg.traverser_bulking = opt.base.traverser_bulking;
      rt::ThreadCluster cluster(tcfg, data->graph);
      std::vector<uint64_t> ids;
      ids.reserve(plan_idx.size());
      for (size_t idx : plan_idx) {
        ids.push_back(cluster.Submit(plans[idx], w.read_ts));
      }
      Status st = cluster.RunToCompletion();
      if (!st.ok()) return st;
      for (uint64_t id : ids) {
        const QueryResult& r = cluster.result(id);
        w.valid.push_back(r.done);
        w.rows.push_back(r.done ? CanonicalRows(r.rows)
                                : std::vector<Row>{});
      }
    } else {
      ClusterConfig cfg = TxnCellConfig(spec, opt, EngineKind::kBsp);
      SimCluster cluster(cfg, data->graph);
      std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
      cluster.AttachChecker(harness.get());
      std::vector<uint64_t> ids;
      ids.reserve(plan_idx.size());
      for (size_t idx : plan_idx) {
        ids.push_back(cluster.Submit(plans[idx], /*at=*/0, w.read_ts));
      }
      Status st = cluster.RunToCompletion(opt.base.max_events);
      if (!st.ok()) return st;
      rep->base.trips += harness->trip_count();
      if (harness->trip_count() > 0 && rep->base.detail.empty()) {
        rep->base.detail = harness->trips().front().ToString();
      }
      for (uint64_t id : ids) {
        const QueryResult& r = cluster.result(id);
        bool clean = r.done && !r.failed && !r.timed_out;
        w.valid.push_back(clean);
        w.rows.push_back(clean ? CanonicalRows(r.rows)
                               : std::vector<Row>{});
      }
    }
    waves.push_back(std::move(w));
    return Status::OK();
  };

  uint64_t commits = 0;
  for (size_t i = 0; i < s.updates.size(); ++i) {
    DistTxnManager::TxnId id = mgr.Begin();
    Status st = BufferSnbUpdate(&mgr, id, *data, s.updates[i]);
    if (!st.ok()) return st;
    update_of_txn[id] = i;
    Result<Timestamp> r = mgr.CommitDirect(id);
    // Aborts are legal: while a chaos-torn transaction holds its write
    // locks, later transactions on the same anchors conflict and retry out.
    if (!r.ok()) continue;
    commits++;
    if (commits % opt.wave_every == 0) {
      // The wave runs BEFORE recovery: a torn transaction must be entirely
      // invisible at the (held-back) LCT.
      Status ws = run_wave();
      if (!ws.ok()) return ws;
      if (mgr.HasTorn()) {
        mgr.RecoverDirect();
        rep->crashes++;
      }
    }
  }
  if (mgr.HasTorn()) {
    mgr.RecoverDirect();
    rep->crashes++;
  }
  Status ws = run_wave();
  if (!ws.ok()) return ws;
  // Final-wave queries must be clean: after recovery nothing may fail.
  if (!waves.back().valid.empty() &&
      !std::all_of(waves.back().valid.begin(), waves.back().valid.end(),
                   [](bool v) { return v; })) {
    rep->base.mismatches++;
    if (rep->base.detail.empty()) {
      rep->base.detail = "final phased wave did not complete cleanly";
    }
  }

  rep->committed += mgr.stats().committed;
  rep->finally_aborted += mgr.stats().aborted;
  rep->retried += mgr.stats().retried;
  rep->crashes += mgr.stats().crashes_injected;
  if (mgr.commit_log().size() != mgr.stats().committed) {
    rep->base.mismatches++;
    if (rep->base.detail.empty()) {
      rep->base.detail = "decided " + U64(mgr.commit_log().size()) +
                         " transactions but completed " +
                         U64(mgr.stats().committed);
    }
  }
  return DiffWavesAgainstSerial(s, plan_idx, mgr.commit_log(), update_of_txn,
                                waves, opt, comparisons, rep);
}

}  // namespace

TxnScenario MakeTxnScenario(uint64_t seed, uint32_t num_updates,
                            uint32_t hot_persons) {
  SnbConfig cfg = SnbConfig::Tiny(60);
  TxnScenario s;
  s.dataset = [cfg](uint32_t num_partitions) -> std::shared_ptr<SnbDataset> {
    auto r = GenerateSnb(cfg, num_partitions);
    return r.ok() ? r.TakeValue() : nullptr;
  };
  s.plans = [](const SnbDataset& d) {
    std::vector<std::shared_ptr<const Plan>> plans;
    auto add = [&](Result<PlanPtr> r) {
      if (r.ok()) plans.push_back(r.TakeValue());
    };
    SnbParams p;
    // Reads rooted at the hot anchors — the entities the update stream
    // mutates. Between them they observe every update kind: hasCreator
    // in-edges (IS2/IC2 see new posts and comments), knows (IS3), replyOf
    // (IS7 sees new comments), likes (IC7), plus creationDate properties of
    // freshly inserted vertices.
    p.person = d.PersonId(0);
    add(BuildInteractiveShort(2, d, p));
    add(BuildInteractiveShort(3, d, p));
    p.person = d.PersonId(1);
    p.max_date = d.config.max_date + 400;  // update dates stay below this
    add(BuildInteractiveComplex(2, d, p));
    p.person = d.PersonId(2);
    add(BuildInteractiveComplex(7, d, p));
    if (d.num_posts > 0) {
      p.message = d.PostId(0);
      add(BuildInteractiveShort(7, d, p));
    }
    p.person = d.PersonId(3);
    add(BuildInteractiveShort(3, d, p));
    return plans;
  };
  auto probe = GenerateSnb(cfg, 1);
  if (probe.ok()) {
    s.updates =
        GenerateSnbUpdates(*probe.value(), seed, num_updates, hot_persons);
  }
  return s;
}

std::string TxnDifferentialReport::Summary() const {
  std::ostringstream os;
  os << "txn-differential: " << base.cells << " cells, " << base.queries
     << " queries, " << waves << " waves, " << committed << " committed, "
     << finally_aborted << " aborted, " << retried << " retries, " << crashes
     << " crash wipes, " << base.trips << " trips, " << base.mismatches
     << " mismatches, " << partial_visibility_rows
     << " partial-visibility rows";
  if (!base.failures.empty()) os << "; first: " << base.failures.front().what;
  return os.str();
}

Result<TxnCellReport> RunTxnCell(const TxnScenario& s, const ReplaySpec& spec,
                                 const TxnDifferentialOptions& opt) {
  if (s.updates.empty()) {
    return Status::Internal("txn scenario has no update stream");
  }
  // Probe instance: plan count and (for hybrid) per-plan engine choice. The
  // choice depends only on plan shape and graph stats, both
  // partition-independent.
  std::shared_ptr<SnbDataset> probe = s.dataset(1);
  if (probe == nullptr) return Status::Internal("txn scenario has no dataset");
  std::vector<std::shared_ptr<const Plan>> probe_plans = s.plans(*probe);
  if (probe_plans.empty()) {
    return Status::Internal("txn scenario produced no plans");
  }
  std::vector<size_t> all(probe_plans.size());
  std::iota(all.begin(), all.end(), size_t{0});

  TxnCellReport rep;
  uint64_t comparisons = 0;
  Status st = Status::OK();
  if (spec.mode == "async") {
    st = RunTxnGroupAsync(s, all, spec, opt, &comparisons, &rep);
  } else if (spec.mode == "bsp") {
    st = RunTxnGroupPhased(s, all, /*threads_mode=*/false, spec, opt,
                           &comparisons, &rep);
  } else if (spec.mode == "threads") {
    st = RunTxnGroupPhased(s, all, /*threads_mode=*/true, spec, opt,
                           &comparisons, &rep);
  } else if (spec.mode == "hybrid") {
    uint32_t workers = opt.base.num_nodes * opt.base.workers_per_node;
    std::vector<size_t> async_group, bsp_group;
    for (size_t i = 0; i < probe_plans.size(); ++i) {
      HybridChoice choice =
          ChooseEngine(*probe_plans[i], probe->graph->stats(), workers,
                       /*threshold_tasks=*/0.0, opt.base.traverser_bulking);
      (choice.engine == EngineKind::kBsp ? bsp_group : async_group)
          .push_back(i);
    }
    st = RunTxnGroupAsync(s, async_group, spec, opt, &comparisons, &rep);
    if (st.ok()) {
      st = RunTxnGroupPhased(s, bsp_group, /*threads_mode=*/false, spec, opt,
                             &comparisons, &rep);
    }
  } else {
    return Status::InvalidArgument("unknown txn oracle mode: " + spec.mode);
  }
  if (!st.ok()) return st;
  return rep;
}

Result<TxnDifferentialReport> RunTxnDifferential(
    const TxnScenario& s, const TxnDifferentialOptions& opt) {
  TxnDifferentialReport report;
  for (const std::string& mode : opt.base.modes) {
    for (const std::string& phase : opt.phases) {
      for (uint64_t seed = 0; seed < opt.base.num_seeds; ++seed) {
        ReplaySpec spec;
        spec.mode = mode;
        spec.tiebreak_seed = seed;
        spec.jitter_ns = seed == 0 ? 0 : opt.base.jitter_ns;
        if (opt.base.fault_active) spec.fault = opt.base.fault;
        spec.txn = true;
        spec.txn_phase = phase;
        auto cell = RunTxnCell(s, spec, opt);
        if (!cell.ok()) return cell.status();
        const TxnCellReport& c = cell.value();
        report.base.cells++;
        report.base.queries += c.base.queries;
        report.base.trips += c.base.trips;
        report.base.mismatches += c.base.mismatches;
        report.base.explicit_failures += c.base.explicit_failures;
        report.committed += c.committed;
        report.finally_aborted += c.finally_aborted;
        report.retried += c.retried;
        report.waves += c.waves;
        report.partial_visibility_rows += c.partial_visibility_rows;
        report.crashes += c.crashes;
        if (!c.ok()) {
          report.base.failures.push_back(DifferentialFailure{
              spec, FormatReplayToken(spec),
              "txn mode=" + mode +
                  (phase.empty() ? std::string() : " phase=" + phase) +
                  " seed=" + U64(seed) + ": " + c.base.detail});
        }
      }
    }
  }
  return report;
}

}  // namespace check
}  // namespace graphdance
