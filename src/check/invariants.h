#ifndef GRAPHDANCE_CHECK_INVARIANTS_H_
#define GRAPHDANCE_CHECK_INVARIANTS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "pstm/weight.h"
#include "sim/event_queue.h"

namespace graphdance::check {

/// One invariant violation. Trips are recorded (bounded) and counted
/// (unbounded) by the harness; a single trip means the run found a real
/// schedule-dependent bug, so tests assert trip_count() == 0.
struct Trip {
  std::string checker;
  std::string what;
  SimTime at = 0;
  uint64_t query = 0;
  uint32_t scope = 0;

  std::string ToString() const;
};

/// A point-in-time view of one query's externally observable state.
struct QueryProbe {
  uint64_t id = 0;
  uint32_t attempt = 0;
  bool done = false;
  bool failed = false;
  bool timed_out = false;
  /// The result limit was reached and the remaining traversal was cancelled
  /// with its weight deliberately unclaimed; weight/row invariants that
  /// assume a full run are vacuous for such queries.
  bool early_cancel = false;
  uint64_t rows_expected = 0;
  uint64_t rows_received = 0;
  uint64_t row_count = 0;
};

/// A point-in-time view of the cluster's QoS resource ledgers (all zero /
/// disabled when ClusterConfig::qos is off).
struct QosProbe {
  bool enabled = false;
  // Admission ledger. Conservation: submitted == admitted + shed + cancelled
  // + queued, and admitted == completed + running.
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t cancelled = 0;
  uint64_t completed = 0;
  uint64_t queued = 0;
  uint64_t running = 0;
  // Per-worker queued-task-byte ledger, cluster-summed. Conservation:
  // enqueued == dequeued + dropped + queued.
  uint64_t task_bytes_enqueued = 0;
  uint64_t task_bytes_dequeued = 0;
  uint64_t task_bytes_dropped = 0;
  uint64_t task_bytes_queued = 0;
  // Live memo-table bytes, cluster-summed (0 at quiescence once every query
  // is done — memoranda never outlive their query). Includes spilled state:
  // a memo parked on the storage tier is still live.
  uint64_t memo_live_bytes = 0;
  // --- spill ledgers (every field zero while the spill manager is off) ---
  bool spill_enabled = false;
  // Memo spill conservation: written == read + dropped + now. "No spilled
  // memo lost": every byte evicted to the tier is faulted back, dropped
  // with its owning query, or still parked there.
  uint64_t spill_memo_bytes_written = 0;
  uint64_t spill_memo_bytes_read = 0;
  uint64_t spill_memo_bytes_dropped = 0;
  uint64_t spill_memo_bytes_now = 0;
  // Task spill conservation: written == read + dropped + now. `now` is also
  // a term of the task-byte law above, which becomes enqueued == dequeued +
  // dropped + queued + spill_task_bytes_now.
  uint64_t spill_task_bytes_written = 0;
  uint64_t spill_task_bytes_read = 0;
  uint64_t spill_task_bytes_dropped = 0;
  uint64_t spill_task_bytes_now = 0;
};

/// One directed inter-node link's credit meter. Conservation at any event
/// boundary: available + outstanding == granted; saturated means the meter
/// had to clamp a release-mode over/underflow (always a trip).
struct LinkCreditProbe {
  uint32_t src_node = 0;
  uint32_t dst_node = 0;
  uint64_t granted = 0;
  uint64_t available = 0;
  uint64_t outstanding = 0;
  bool saturated = false;
};

/// Admission-controller transitions, mirrored by the resource-ledger checker
/// independently of the controller's own counters.
enum class AdmissionEvent : uint8_t {
  kAdmit = 0,     // arrival admitted straight into a running slot
  kQueue,         // arrival parked in the backlog
  kShed,          // arrival rejected (backlog full)
  kDequeueAdmit,  // popped from the backlog into a running slot
  kDequeueShed,   // popped from the backlog and shed (deadline blown)
  kCancel,        // removed from the backlog externally (deadline timer)
  kComplete,      // a running (admitted) query finished
};

/// Read-only introspection surface the cluster exposes to checkers.
/// Everything is pure observation — probing never charges virtual time or
/// schedules events — and every sweep enumerates in a sorted, deterministic
/// order so trip output is reproducible run-to-run.
class ClusterProbe {
 public:
  virtual ~ClusterProbe() = default;

  virtual uint32_t ProbeNumWorkers() const = 0;
  virtual SimTime ProbeWorkerClock(uint32_t worker) const = 0;
  virtual bool ProbeWorkerCrashed(uint32_t worker) const = 0;
  /// Every submitted query, ascending id.
  virtual void ProbeQueries(
      const std::function<void(const QueryProbe&)>& fn) const = 0;
  /// Every live memorandum as (partition, owning query, step), sorted.
  virtual void ProbeMemos(const std::function<void(
      uint32_t partition, uint64_t query, uint32_t step)>& fn) const = 0;
  /// Every nonzero coalesced-but-unflushed weight cell, sorted.
  virtual void ProbePendingWeights(
      const std::function<void(uint32_t worker, uint64_t query, uint32_t scope,
                               Weight w)>& fn) const = 0;

  // Default-implemented (unlike the pure hooks above) so probe
  // implementations predating the QoS subsystem keep compiling.
  /// The QoS resource ledgers; `enabled == false` when QoS is off.
  virtual QosProbe ProbeQos() const { return QosProbe{}; }
  /// Every inter-node link credit meter, src-major then dst-major order.
  /// No-op when QoS is off.
  virtual void ProbeLinkCredits(
      const std::function<void(const LinkCreditProbe&)>& fn) const {
    (void)fn;
  }
};

/// Static facts about the run, published once at attach time.
struct RunInfo {
  bool fault_active = false;    // any fault source configured
  bool recovery_active = false; // fault_active && fault_recovery
  uint32_t total_workers = 0;
};

class CheckHarness;

/// Interface evaluated at event boundaries, weight-lifecycle sites and
/// quiescence inside SimCluster. Every hook defaults to a no-op, so a
/// checker only pays for what it watches; with no harness attached the
/// cluster skips the calls entirely (a single null check per site).
///
/// Hook vocabulary (all times are virtual ns):
///  - weight lifecycle: a scope's unit weight is split at creation
///    (OnWeightSplit), conserved through every task (OnTaskWeight), finished
///    at the workers (OnWeightFinish), coalesced per worker (OnWeightMerge),
///    accumulated at the coordinator (OnWeightAccumulate) and closed when
///    the accumulator reaches kUnitWeight (OnScopeClose).
///  - recovery: OnAttemptAbort fences an attempt; OnLateWeight flags weight
///    arriving for a finished query or an already-closed scope.
///  - transport: OnSeqAssign / OnSeqDeliver mirror the per-pair sequence
///    numbers the duplicate-suppression window sees.
class InvariantChecker {
 public:
  virtual ~InvariantChecker() = default;
  virtual const char* name() const = 0;

  virtual void OnRunBegin(const RunInfo&) {}
  virtual void OnEventBoundary(const ClusterProbe&, SimTime) {}
  /// `drained` — the event queue is empty (true quiescence, not an event
  /// budget stop); global sweeps are only sound then.
  virtual void OnQuiescence(const ClusterProbe&, SimTime, bool /*drained*/) {}

  virtual void OnWeightSplit(uint64_t /*query*/, uint32_t /*attempt*/,
                             uint32_t /*scope*/, Weight /*parent*/,
                             const Weight* /*shares*/, size_t /*n*/,
                             SimTime /*at*/) {}
  virtual void OnWeightMerge(uint64_t /*query*/, uint32_t /*attempt*/,
                             uint32_t /*scope*/, Weight /*before*/,
                             Weight /*added*/, Weight /*after*/,
                             SimTime /*at*/) {}
  virtual void OnTaskWeight(uint64_t /*query*/, uint32_t /*attempt*/,
                            uint32_t /*scope*/, Weight /*in*/,
                            Weight /*emitted*/, Weight /*finished*/,
                            SimTime /*at*/) {}
  virtual void OnWeightFinish(uint64_t /*query*/, uint32_t /*attempt*/,
                              uint32_t /*scope*/, Weight /*w*/, SimTime /*at*/) {}
  virtual void OnWeightAccumulate(uint64_t /*query*/, uint32_t /*attempt*/,
                                  uint32_t /*scope*/, Weight /*w*/,
                                  Weight /*acc_after*/, SimTime /*at*/) {}
  virtual void OnLateWeight(uint64_t /*query*/, uint32_t /*scope*/, Weight /*w*/,
                            bool /*after_done*/, SimTime /*at*/) {}
  virtual void OnScopeClose(uint64_t /*query*/, uint32_t /*attempt*/,
                            uint32_t /*scope*/, Weight /*acc*/, SimTime /*at*/) {}
  virtual void OnAttemptAbort(uint64_t /*query*/, uint32_t /*new_attempt*/,
                              SimTime /*at*/) {}
  virtual void OnQueryComplete(const QueryProbe& /*q*/, SimTime /*at*/) {}

  virtual void OnSeqAssign(uint32_t /*src*/, uint32_t /*dst*/, uint64_t /*seq*/) {}
  virtual void OnSeqDeliver(uint32_t /*src*/, uint32_t /*dst*/, uint64_t /*seq*/,
                            bool /*accepted*/, uint64_t /*low*/,
                            uint64_t /*max_seen*/) {}

  // --- qos: link credits and admission (fire only when QoS is enabled) ---
  virtual void OnCreditConsume(uint32_t /*src_node*/, uint32_t /*dst_node*/,
                               uint64_t /*bytes*/, SimTime /*at*/) {}
  virtual void OnCreditReturn(uint32_t /*src_node*/, uint32_t /*dst_node*/,
                              uint64_t /*bytes*/, SimTime /*at*/) {}
  virtual void OnAdmission(uint64_t /*query*/, AdmissionEvent /*ev*/,
                           SimTime /*at*/) {}

  // --- storage: multi-version visibility (fires per scanned edge when a
  // harness is attached; the raw stored stamps of every edge the TEL
  // visibility scan returned to a reader at read_ts) ---
  virtual void OnEdgeObserved(uint64_t /*query*/, uint32_t /*attempt*/,
                              Timestamp /*read_ts*/, Timestamp /*create_ts*/,
                              Timestamp /*delete_ts*/, SimTime /*at*/) {}

 protected:
  void ReportTrip(std::string what, SimTime at, uint64_t query = 0,
                  uint32_t scope = 0);
  const RunInfo& run() const;

 private:
  friend class CheckHarness;
  CheckHarness* harness_ = nullptr;
};

/// Owns a set of checkers and fans every cluster hook out to them. One
/// harness observes one cluster at a time (BeginRun resets per-run state).
/// Also hosts the mutation hook used by the checker's own smoke test: the
/// nth coalescing weight merge is corrupted by +1, which a live weight-
/// conservation checker must catch (guards against a vacuously green
/// checker).
class CheckHarness {
 public:
  /// Stored-trip cap; trip_count() keeps counting past it so a pathological
  /// run cannot OOM the harness.
  static constexpr size_t kMaxStoredTrips = 1024;

  void Register(std::unique_ptr<InvariantChecker> checker);
  /// A harness with every built-in checker registered.
  static std::unique_ptr<CheckHarness> WithAllCheckers();

  void BeginRun(const RunInfo& info);

  // --- fan-out (called by SimCluster; hot paths are simple loops) ---
  void OnEventBoundary(const ClusterProbe& p, SimTime at) {
    for (auto& c : checkers_) c->OnEventBoundary(p, at);
  }
  void OnQuiescence(const ClusterProbe& p, SimTime at, bool drained) {
    for (auto& c : checkers_) c->OnQuiescence(p, at, drained);
  }
  void OnWeightSplit(uint64_t q, uint32_t a, uint32_t s, Weight parent,
                     const Weight* shares, size_t n, SimTime at) {
    for (auto& c : checkers_) c->OnWeightSplit(q, a, s, parent, shares, n, at);
  }
  void OnWeightMerge(uint64_t q, uint32_t a, uint32_t s, Weight before,
                     Weight added, Weight after, SimTime at) {
    for (auto& c : checkers_) c->OnWeightMerge(q, a, s, before, added, after, at);
  }
  void OnTaskWeight(uint64_t q, uint32_t a, uint32_t s, Weight in,
                    Weight emitted, Weight finished, SimTime at) {
    for (auto& c : checkers_) c->OnTaskWeight(q, a, s, in, emitted, finished, at);
  }
  void OnWeightFinish(uint64_t q, uint32_t a, uint32_t s, Weight w, SimTime at) {
    for (auto& c : checkers_) c->OnWeightFinish(q, a, s, w, at);
  }
  void OnWeightAccumulate(uint64_t q, uint32_t a, uint32_t s, Weight w,
                          Weight acc_after, SimTime at) {
    for (auto& c : checkers_) c->OnWeightAccumulate(q, a, s, w, acc_after, at);
  }
  void OnLateWeight(uint64_t q, uint32_t s, Weight w, bool after_done,
                    SimTime at) {
    for (auto& c : checkers_) c->OnLateWeight(q, s, w, after_done, at);
  }
  void OnScopeClose(uint64_t q, uint32_t a, uint32_t s, Weight acc, SimTime at) {
    for (auto& c : checkers_) c->OnScopeClose(q, a, s, acc, at);
  }
  void OnAttemptAbort(uint64_t q, uint32_t new_attempt, SimTime at) {
    for (auto& c : checkers_) c->OnAttemptAbort(q, new_attempt, at);
  }
  void OnQueryComplete(const QueryProbe& q, SimTime at) {
    for (auto& c : checkers_) c->OnQueryComplete(q, at);
  }
  void OnSeqAssign(uint32_t src, uint32_t dst, uint64_t seq) {
    for (auto& c : checkers_) c->OnSeqAssign(src, dst, seq);
  }
  void OnSeqDeliver(uint32_t src, uint32_t dst, uint64_t seq, bool accepted,
                    uint64_t low, uint64_t max_seen) {
    for (auto& c : checkers_) c->OnSeqDeliver(src, dst, seq, accepted, low, max_seen);
  }
  void OnCreditConsume(uint32_t src_node, uint32_t dst_node, uint64_t bytes,
                       SimTime at) {
    for (auto& c : checkers_) c->OnCreditConsume(src_node, dst_node, bytes, at);
  }
  void OnCreditReturn(uint32_t src_node, uint32_t dst_node, uint64_t bytes,
                      SimTime at) {
    for (auto& c : checkers_) c->OnCreditReturn(src_node, dst_node, bytes, at);
  }
  void OnAdmission(uint64_t query, AdmissionEvent ev, SimTime at) {
    for (auto& c : checkers_) c->OnAdmission(query, ev, at);
  }
  void OnEdgeObserved(uint64_t q, uint32_t a, Timestamp read_ts,
                      Timestamp create_ts, Timestamp delete_ts, SimTime at) {
    for (auto& c : checkers_) {
      c->OnEdgeObserved(q, a, read_ts, create_ts, delete_ts, at);
    }
  }

  // --- mutation hook (test-only; see class comment) ---
  void CorruptNthWeightMerge(uint64_t nth) { corrupt_nth_merge_ = nth; }
  void MaybeCorruptWeightCell(Weight* cell) {
    if (corrupt_nth_merge_ != 0 && ++merge_counter_ == corrupt_nth_merge_) {
      *cell += 1;
    }
  }

  /// Mutation hook for the snapshot-isolation checker's own smoke test: the
  /// nth observed edge has its create stamp pushed past the reader's
  /// timestamp *between* the visibility scan and the observation, which a
  /// live SI checker must catch (guards against a vacuously green checker).
  void CorruptNthVisibility(uint64_t nth) { corrupt_nth_visibility_ = nth; }
  void MaybeCorruptVisibility(Timestamp* create_ts, Timestamp read_ts) {
    if (corrupt_nth_visibility_ != 0 &&
        ++visibility_counter_ == corrupt_nth_visibility_) {
      *create_ts = read_ts + 1;
    }
  }

  // --- results ---
  const std::vector<Trip>& trips() const { return trips_; }
  uint64_t trip_count() const { return trip_count_; }
  const std::map<std::string, uint64_t>& TripsByChecker() const {
    return by_checker_;
  }
  /// Multi-line human-readable report ("" when clean).
  std::string Summary() const;

 private:
  friend class InvariantChecker;
  void Report(const char* checker, std::string what, SimTime at,
              uint64_t query, uint32_t scope);

  std::vector<std::unique_ptr<InvariantChecker>> checkers_;
  RunInfo info_;
  std::vector<Trip> trips_;
  uint64_t trip_count_ = 0;
  std::map<std::string, uint64_t> by_checker_;
  uint64_t corrupt_nth_merge_ = 0;
  uint64_t merge_counter_ = 0;
  uint64_t corrupt_nth_visibility_ = 0;
  uint64_t visibility_counter_ = 0;
};

// --- built-in checkers -------------------------------------------------------

/// Z_2^64 weight conservation (paper §III-B Theorem 1): every split preserves
/// its parent, every coalescing merge adds exactly what was finished, every
/// task's input weight equals its emissions plus finishes, and the
/// coordinator's accumulator closes each scope at exactly kUnitWeight.
std::unique_ptr<InvariantChecker> MakeWeightConservationChecker();

/// Memoranda lifetime: at (drained) quiescence no memo survives a completed
/// or aborted query, and none belongs to an unknown query.
std::unique_ptr<InvariantChecker> MakeMemoResidencyChecker();

/// Row-ledger symmetry under faults: a normally completed query's
/// rows_received must equal rows_expected.
std::unique_ptr<InvariantChecker> MakeRowLedgerChecker();

/// Per-pair sequence numbers: send-side strictly increasing; receive-side
/// low-water mark monotone and no seq accepted twice (an independent oracle
/// for the duplicate-suppression window).
std::unique_ptr<InvariantChecker> MakeSeqWindowChecker();

/// Virtual clocks never run backwards: the event queue's now() and every
/// worker-local clock are monotone non-decreasing.
std::unique_ptr<InvariantChecker> MakeClockChecker();

/// QoS resource ledgers (DESIGN.md §11; inert when QoS is off): link credits
/// conserved (available + outstanding == granted at every sampled boundary,
/// the hook-mirrored consumed-minus-returned balance matches the meter, all
/// returned by drained quiescence), the admission ledger balances against an
/// independent event mirror (submitted == admitted + shed + cancelled +
/// queued), and the task/memo byte ledgers drain to zero at quiescence.
std::unique_ptr<InvariantChecker> MakeResourceLedgerChecker();

/// Snapshot isolation over the multi-version TEL: an edge handed to a reader
/// at timestamp T must carry create_ts <= T and delete_ts > T. Not a
/// tautology — the hook reports the *stored* stamps of whatever the
/// visibility scan returned, so a compaction that rewrites stamps wrongly, a
/// torn batch leaking pre-commit writes, or a scan bug all trip it.
std::unique_ptr<InvariantChecker> MakeSnapshotIsolationChecker();

}  // namespace graphdance::check

#endif  // GRAPHDANCE_CHECK_INVARIANTS_H_
