#include "check/oracle.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "check/invariants.h"
#include "graph/generators.h"
#include "query/gremlin.h"
#include "runtime/hybrid.h"
#include "runtime/sim_cluster.h"

namespace graphdance {
namespace check {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

/// Round-trippable double formatting for replay tokens.
std::string G17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool RowLess(const Row& a, const Row& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  for (size_t i = 0; i < a.size(); ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return false;
}

/// The one QoS shape every `;qos=1` cell replays: concurrency low enough to
/// force real backlog queueing, credit windows small enough to hold flushes,
/// and shed/abort limits high enough that no oracle query is ever rejected —
/// governance must reshape timing only, never answers.
qos::QosConfig StressQosConfig() {
  qos::QosConfig q;
  q.enabled = true;
  q.max_concurrent_queries = 2;
  q.max_queued_queries = 256;
  q.link_credit_bytes = 4'096;
  q.sender_stall_bytes = 2'048;
  return q;
}

/// The one spill shape every `;spill=1` cell replays: the QoS stress config
/// plus a memo budget tight enough that real eviction and fault-in traffic
/// happens, a sweep every task so pressure is caught immediately, and a tier
/// big enough that nothing ever reaches the last-resort abort — spilling
/// must reshape timing only, never answers.
qos::QosConfig StressSpillConfig() {
  qos::QosConfig q = StressQosConfig();
  q.spill.enabled = true;
  q.worker_memo_budget_bytes = 4'096;
  q.memo_check_interval = 1;
  q.spill.memo_spill_watermark = 0.5;
  q.spill.memo_low_watermark = 0.25;
  return q;
}

ClusterConfig CellConfig(const ReplaySpec& spec, const DifferentialOptions& opt,
                         EngineKind engine) {
  ClusterConfig cfg;
  cfg.num_nodes = opt.num_nodes;
  cfg.workers_per_node = opt.workers_per_node;
  cfg.engine = engine;
  cfg.traverser_bulking = opt.traverser_bulking;
  // Oracle queries finish in well under a virtual millisecond; a short
  // silence window keeps faulted retry chains fast without firing spuriously.
  cfg.progress_timeout_ns = 20'000'000;
  cfg.fault = spec.fault;
  cfg.explore.tiebreak_seed = spec.tiebreak_seed;
  cfg.explore.jitter_ns = spec.jitter_ns;
  if (spec.spill) {
    cfg.qos = StressSpillConfig();
  } else if (spec.qos) {
    cfg.qos = StressQosConfig();
  }
  return cfg;
}

/// Runs `plan_indices` of the workload on one cluster and diffs each query
/// against the reference multiset. Infrastructure errors (empty workload)
/// surface as Status; behavioural failures (trips, mismatches, a run that
/// ends in kInternal) are recorded in `report` — they are exactly what the
/// oracle exists to catch, and what the shrinker's predicate replays.
Status RunGroup(const WorkloadInstance& wl,
                const std::vector<size_t>& plan_indices, EngineKind engine,
                const ReplaySpec& spec,
                const std::vector<std::vector<Row>>& reference,
                const DifferentialOptions& opt, CellReport* report) {
  if (plan_indices.empty()) return Status::OK();
  ClusterConfig cfg = CellConfig(spec, opt, engine);
  SimCluster cluster(cfg, wl.graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  if (opt.corrupt_nth_merge != 0) {
    harness->CorruptNthWeightMerge(opt.corrupt_nth_merge);
  }
  cluster.AttachChecker(harness.get());
  std::vector<uint64_t> ids;
  for (size_t idx : plan_indices) {
    ids.push_back(cluster.Submit(wl.plans[idx], /*at=*/0));
  }
  Status s = cluster.RunToCompletion(opt.max_events);
  if (!s.ok()) {
    report->mismatches++;
    if (report->detail.empty()) report->detail = "run: " + s.ToString();
  }
  report->trips += harness->trip_count();
  if (harness->trip_count() > 0 && report->detail.empty()) {
    report->detail = harness->trips().front().ToString();
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    report->queries++;
    const QueryResult& r = cluster.result(ids[i]);
    if (!r.done || r.failed || r.timed_out) {
      report->explicit_failures++;  // explicit, never silent: legal
      continue;
    }
    std::vector<Row> got = CanonicalRows(r.rows);
    if (got != reference[plan_indices[i]]) {
      report->mismatches++;
      if (report->detail.empty()) {
        report->detail = "plan " + U64(plan_indices[i]) + ": got " +
                         U64(got.size()) + " rows, reference " +
                         U64(reference[plan_indices[i]].size());
      }
    }
  }
  return Status::OK();
}

// ---- replay-token parsing helpers --------------------------------------------

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool ParseScriptItem(const std::string& item, FaultEvent* ev) {
  if (item.size() < 2) return false;
  std::vector<std::string> parts = SplitOn(item.substr(1), ':');
  uint64_t a = 0, b = 0, c = 0;
  switch (item[0]) {
    case 'D':
      if (parts.size() != 1 || !ParseU64(parts[0], &a)) return false;
      ev->kind = FaultKind::kDropNthRemote;
      ev->nth = a;
      return true;
    case 'U':
      if (parts.size() != 1 || !ParseU64(parts[0], &a)) return false;
      ev->kind = FaultKind::kDuplicateNthRemote;
      ev->nth = a;
      return true;
    case 'L':
      if (parts.size() != 2 || !ParseU64(parts[0], &a) ||
          !ParseU64(parts[1], &b)) {
        return false;
      }
      ev->kind = FaultKind::kDelayNthRemote;
      ev->nth = a;
      ev->extra_delay_ns = b;
      return true;
    case 'C':
      if (parts.size() != 3 || !ParseU64(parts[0], &a) ||
          !ParseU64(parts[1], &b) || !ParseU64(parts[2], &c)) {
        return false;
      }
      ev->kind = FaultKind::kCrashWorker;
      ev->worker = static_cast<uint32_t>(a);
      ev->at = b;
      ev->duration_ns = c;
      return true;
    case 'G': {
      double f = 1.0;
      if (parts.size() != 3 || !ParseU64(parts[0], &a) ||
          !ParseU64(parts[1], &b) || !ParseF64(parts[2], &f)) {
        return false;
      }
      ev->kind = FaultKind::kDegradeLink;
      ev->at = a;
      ev->duration_ns = b;
      ev->factor = f;
      return true;
    }
    default:
      return false;
  }
}

std::string FormatScriptItem(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kDropNthRemote:
      return "D" + U64(ev.nth);
    case FaultKind::kDuplicateNthRemote:
      return "U" + U64(ev.nth);
    case FaultKind::kDelayNthRemote:
      return "L" + U64(ev.nth) + ":" + U64(ev.extra_delay_ns);
    case FaultKind::kCrashWorker:
      return "C" + U64(ev.worker) + ":" + U64(ev.at) + ":" +
             U64(ev.duration_ns);
    case FaultKind::kDegradeLink:
      return "G" + U64(ev.at) + ":" + U64(ev.duration_ns) + ":" +
             G17(ev.factor);
  }
  return "";
}

}  // namespace

std::vector<Row> CanonicalRows(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), RowLess);
  return rows;
}

WorkloadFactory MakeDefaultCheckWorkload() {
  return [](uint32_t num_partitions) {
    WorkloadInstance wl;
    auto schema = std::make_shared<Schema>();
    PowerLawGraphOptions opt;
    opt.num_vertices = 1024;
    opt.num_edges = 8192;
    opt.seed = 11;
    opt.weight_range = 10'000;
    auto graph = GeneratePowerLawGraph(opt, schema, num_partitions);
    if (!graph.ok()) return wl;  // empty instance: callers see zero plans
    wl.graph = graph.TakeValue();
    PropKeyId weight = schema->PropKey("weight");
    auto topk = [&](VertexId start, uint16_t k, size_t limit) {
      auto plan =
          Traversal(wl.graph)
              .V({start})
              .RepeatOut("link", k, /*dedup=*/true)
              .Project({Operand::VertexIdOp(), Operand::Property(weight)})
              .OrderByLimit({{1, false}, {0, true}}, limit)
              .Build();
      if (plan.ok()) wl.plans.push_back(plan.TakeValue());
    };
    auto count = [&](VertexId start, uint16_t k) {
      auto plan = Traversal(wl.graph)
                      .V({start})
                      .RepeatOut("link", k, /*dedup=*/true)
                      .Count()
                      .Build();
      if (plan.ok()) wl.plans.push_back(plan.TakeValue());
    };
    topk(1, 3, 10);
    topk(17, 3, 5);
    count(5, 2);
    count(42, 3);
    topk(99, 2, 10);
    return wl;
  };
}

std::string FormatReplayToken(const ReplaySpec& spec) {
  std::string out = "gdchk1;mode=" + spec.mode +
                    ";seed=" + U64(spec.tiebreak_seed) +
                    ";jitter=" + U64(spec.jitter_ns) +
                    ";fseed=" + U64(spec.fault.seed) +
                    ";drop=" + G17(spec.fault.drop_prob) +
                    ";dup=" + G17(spec.fault.dup_prob) +
                    ";delayp=" + G17(spec.fault.delay_prob) +
                    ";delayns=" + U64(spec.fault.delay_ns);
  if (!spec.fault.scripted.empty()) {
    out += ";script=";
    for (size_t i = 0; i < spec.fault.scripted.size(); ++i) {
      if (i > 0) out += "|";
      out += FormatScriptItem(spec.fault.scripted[i]);
    }
  }
  // Emitted only when set: the strict parser predates this key, so pre-QoS
  // tokens keep round-tripping and new default tokens parse on old builds.
  if (spec.qos) out += ";qos=1";
  if (spec.spill) out += ";spill=1";
  if (spec.stream) out += ";stream=1";
  if (spec.txn) out += ";txn=1";
  if (!spec.txn_phase.empty()) out += ";txnphase=" + spec.txn_phase;
  return out;
}

Result<ReplaySpec> ParseReplayToken(const std::string& token) {
  std::vector<std::string> fields = SplitOn(token, ';');
  if (fields.empty() || fields[0] != "gdchk1") {
    return Status::InvalidArgument("replay token must start with gdchk1");
  }
  ReplaySpec spec;
  for (size_t i = 1; i < fields.size(); ++i) {
    size_t eq = fields[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed token field: " + fields[i]);
    }
    std::string key = fields[i].substr(0, eq);
    std::string val = fields[i].substr(eq + 1);
    bool ok = true;
    if (key == "mode") {
      spec.mode = val;
      // "threads" (the real-thread ThreadCluster engine) exists only for
      // transactional cells; non-txn uses reject it at the cell runner.
      ok = val == "async" || val == "bsp" || val == "hybrid" ||
           val == "threads";
    } else if (key == "seed") {
      ok = ParseU64(val, &spec.tiebreak_seed);
    } else if (key == "jitter") {
      ok = ParseU64(val, &spec.jitter_ns);
    } else if (key == "fseed") {
      ok = ParseU64(val, &spec.fault.seed);
    } else if (key == "drop") {
      ok = ParseF64(val, &spec.fault.drop_prob);
    } else if (key == "dup") {
      ok = ParseF64(val, &spec.fault.dup_prob);
    } else if (key == "delayp") {
      ok = ParseF64(val, &spec.fault.delay_prob);
    } else if (key == "delayns") {
      ok = ParseU64(val, &spec.fault.delay_ns);
    } else if (key == "qos") {
      uint64_t v = 0;
      ok = ParseU64(val, &v);
      spec.qos = v != 0;
    } else if (key == "spill") {
      uint64_t v = 0;
      ok = ParseU64(val, &v);
      spec.spill = v != 0;
    } else if (key == "stream") {
      uint64_t v = 0;
      ok = ParseU64(val, &v);
      spec.stream = v != 0;
    } else if (key == "txn") {
      uint64_t v = 0;
      ok = ParseU64(val, &v);
      spec.txn = v != 0;
    } else if (key == "txnphase") {
      spec.txn_phase = val;
      ok = val == "prepare" || val == "commit" || val == "apply";
    } else if (key == "script") {
      for (const std::string& item : SplitOn(val, '|')) {
        FaultEvent ev;
        if (!ParseScriptItem(item, &ev)) {
          return Status::InvalidArgument("malformed script item: " + item);
        }
        spec.fault.scripted.push_back(ev);
      }
    } else {
      return Status::InvalidArgument("unknown token key: " + key);
    }
    if (!ok) {
      return Status::InvalidArgument("malformed token value: " + fields[i]);
    }
  }
  return spec;
}

std::string DifferentialReport::Summary() const {
  std::string out = "cells=" + U64(cells) + " queries=" + U64(queries) +
                    " trips=" + U64(trips) + " mismatches=" + U64(mismatches) +
                    " explicit_failures=" + U64(explicit_failures) +
                    " failing_cells=" + U64(failures.size());
  for (size_t i = 0; i < failures.size() && i < 4; ++i) {
    out += "\n  FAIL " + failures[i].what + "\n    replay: " +
           failures[i].token;
  }
  return out;
}

Result<std::vector<std::vector<Row>>> ComputeReference(
    const WorkloadFactory& factory, uint64_t max_events) {
  WorkloadInstance wl = factory(1);
  if (wl.graph == nullptr || wl.plans.empty()) {
    return Status::Internal("workload factory produced no plans");
  }
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.workers_per_node = 1;
  cfg.engine = EngineKind::kAsync;
  SimCluster cluster(cfg, wl.graph);
  std::unique_ptr<CheckHarness> harness = CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());
  std::vector<uint64_t> ids;
  for (const auto& p : wl.plans) ids.push_back(cluster.Submit(p, /*at=*/0));
  Status s = cluster.RunToCompletion(max_events);
  if (!s.ok()) return s;
  if (harness->trip_count() > 0) {
    return Status::Internal("invariant trip in the reference run: " +
                            harness->trips().front().ToString());
  }
  std::vector<std::vector<Row>> out;
  for (uint64_t id : ids) {
    const QueryResult& r = cluster.result(id);
    if (!r.done || r.failed || r.timed_out) {
      return Status::Internal("reference query " + U64(id) +
                              " did not complete cleanly");
    }
    out.push_back(CanonicalRows(r.rows));
  }
  return out;
}

Result<CellReport> RunCell(const WorkloadFactory& factory,
                           const std::vector<std::vector<Row>>& reference,
                           const ReplaySpec& spec,
                           const DifferentialOptions& opt) {
  WorkloadInstance wl = factory(opt.num_nodes * opt.workers_per_node);
  if (wl.graph == nullptr || wl.plans.size() != reference.size()) {
    return Status::Internal("workload/reference plan count mismatch");
  }
  CellReport report;
  std::vector<size_t> all(wl.plans.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  Status s = Status::OK();
  if (spec.mode == "async") {
    s = RunGroup(wl, all, EngineKind::kAsync, spec, reference, opt, &report);
  } else if (spec.mode == "bsp") {
    s = RunGroup(wl, all, EngineKind::kBsp, spec, reference, opt, &report);
  } else if (spec.mode == "hybrid") {
    // Per-plan engine selection, each group on its own cluster (one
    // SimCluster runs one engine).
    std::vector<size_t> async_group, bsp_group;
    uint32_t workers = opt.num_nodes * opt.workers_per_node;
    for (size_t i = 0; i < wl.plans.size(); ++i) {
      HybridChoice choice =
          ChooseEngine(*wl.plans[i], wl.graph->stats(), workers,
                       /*threshold_tasks=*/0.0, opt.traverser_bulking);
      (choice.engine == EngineKind::kBsp ? bsp_group : async_group)
          .push_back(i);
    }
    s = RunGroup(wl, async_group, EngineKind::kAsync, spec, reference, opt,
                 &report);
    if (s.ok()) {
      s = RunGroup(wl, bsp_group, EngineKind::kBsp, spec, reference, opt,
                   &report);
    }
  } else {
    return Status::InvalidArgument("unknown oracle mode: " + spec.mode);
  }
  if (!s.ok()) return s;
  return report;
}

Result<DifferentialReport> RunDifferential(const WorkloadFactory& factory,
                                           const DifferentialOptions& opt) {
  auto reference = ComputeReference(factory, opt.max_events);
  if (!reference.ok()) return reference.status();
  DifferentialReport report;
  for (const std::string& mode : opt.modes) {
    for (uint64_t seed = 0; seed < opt.num_seeds; ++seed) {
      ReplaySpec spec;
      spec.mode = mode;
      spec.tiebreak_seed = seed;
      spec.jitter_ns = seed == 0 ? 0 : opt.jitter_ns;
      if (opt.fault_active) spec.fault = opt.fault;
      spec.qos = opt.qos;
      spec.spill = opt.spill;
      auto cell = RunCell(factory, reference.value(), spec, opt);
      if (!cell.ok()) return cell.status();
      report.cells++;
      report.queries += cell.value().queries;
      report.trips += cell.value().trips;
      report.mismatches += cell.value().mismatches;
      report.explicit_failures += cell.value().explicit_failures;
      if (!cell.value().ok()) {
        report.failures.push_back(DifferentialFailure{
            spec, FormatReplayToken(spec),
            "mode=" + mode + " seed=" + U64(seed) + ": " +
                cell.value().detail});
      }
    }
  }
  return report;
}

}  // namespace check
}  // namespace graphdance
