#ifndef GRAPHDANCE_CHECK_SHRINK_H_
#define GRAPHDANCE_CHECK_SHRINK_H_

#include <functional>
#include <string>

#include "check/oracle.h"

namespace graphdance {
namespace check {

/// Outcome of minimizing a failing (fault schedule, tie-break seed) pair.
struct ShrinkResult {
  ReplaySpec minimal;
  std::string token;    // FormatReplayToken(minimal): the one-line repro
  int evaluations = 0;  // predicate calls spent
  /// False when the input spec did not fail under the predicate (nothing to
  /// shrink) — `minimal` is then the unmodified input.
  bool reproduced = false;
};

/// Minimizes `failing` while `fails(candidate)` stays true, ddmin-style:
/// scripted fault events are bisected away in shrinking chunks, then each
/// probabilistic knob is zeroed, then latency jitter, then the tie-break
/// seed — every accepted step keeps the failure alive, so the result is a
/// locally minimal repro. `budget` caps predicate evaluations (each one
/// replays the workload).
ShrinkResult Shrink(const ReplaySpec& failing,
                    const std::function<bool(const ReplaySpec&)>& fails,
                    int budget = 256);

}  // namespace check
}  // namespace graphdance

#endif  // GRAPHDANCE_CHECK_SHRINK_H_
