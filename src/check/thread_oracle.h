#ifndef GRAPHDANCE_CHECK_THREAD_ORACLE_H_
#define GRAPHDANCE_CHECK_THREAD_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.h"

namespace graphdance {
namespace check {

/// Matrix shape for the real-thread differential gate: the workload is run on
/// a rt::ThreadCluster at every (thread count, seed) cell and each plan's
/// canonical row multiset is compared against the single-worker simulated
/// reference (ComputeReference). Together with RunDifferential this closes
/// the loop sim == reference == threads: the real-thread engine must produce
/// byte-identical rows no matter how the OS schedules its workers.
struct ThreadDifferentialOptions {
  /// Partition count of the workload under test (matches the sim matrix's
  /// num_nodes * workers_per_node so the same reference applies).
  uint32_t num_partitions = 4;
  std::vector<uint32_t> thread_counts = {1, 2, 4, 8};
  /// Weight-split RNG seeds explored per thread count. Weights never affect
  /// rows, so every seed must agree; a divergence means lost or double
  /// weight, i.e. a real termination bug.
  uint64_t num_seeds = 8;
  bool traverser_bulking = true;
  /// Small flush threshold keeps cross-thread traffic frequent under test.
  size_t flush_threshold_bytes = 512;
  uint64_t run_timeout_ms = 120'000;
};

struct ThreadDifferentialReport {
  uint64_t cells = 0;
  uint64_t queries = 0;
  uint64_t mismatches = 0;
  std::vector<std::string> failures;  // "threads=4 seed=3 plan=2: ..." lines
  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

/// Runs the full threads x seeds matrix against the simulated single-worker
/// reference. Errors (not mismatches) when a cell fails to terminate.
Result<ThreadDifferentialReport> RunThreadDifferential(
    const WorkloadFactory& factory, const ThreadDifferentialOptions& opt);

}  // namespace check
}  // namespace graphdance

#endif  // GRAPHDANCE_CHECK_THREAD_ORACLE_H_
