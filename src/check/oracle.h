#ifndef GRAPHDANCE_CHECK_ORACLE_H_
#define GRAPHDANCE_CHECK_ORACLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "pstm/plan.h"
#include "sim/fault.h"

namespace graphdance {
namespace check {

/// One materialized workload: a partitioned graph plus the plans to run on
/// it. Plans hold a reference to the graph they were built against, so a
/// factory regenerates both together for any partition count — partitioning
/// must never change the logical dataset (generators assign global ids), or
/// the single-worker reference would diverge for structural reasons.
struct WorkloadInstance {
  std::shared_ptr<PartitionedGraph> graph;
  std::vector<std::shared_ptr<const Plan>> plans;
};

using WorkloadFactory = std::function<WorkloadInstance(uint32_t num_partitions)>;

/// The default oracle workload: a small power-law graph with a mix of
/// k-hop top-k and count queries (the same shapes the chaos harness uses).
WorkloadFactory MakeDefaultCheckWorkload();

/// Canonical row multiset: sorted with Value::Compare so two runs compare
/// order-insensitively but multiplicity-sensitively.
std::vector<Row> CanonicalRows(std::vector<Row> rows);

/// Everything needed to replay one explored cell bit-for-bit: the engine
/// mode, the schedule-exploration knobs, and the fault schedule. Encoded as
/// a one-line token (`gdchk1;...`) for bug reports and `check replay`.
struct ReplaySpec {
  std::string mode = "async";  // async | bsp | hybrid
  uint64_t tiebreak_seed = 0;  // 0 = pinned legacy schedule
  uint64_t jitter_ns = 0;
  FaultPlan fault;
  /// Run the cell under the standard QoS stress config (small admission and
  /// credit windows; see StressQosConfig in oracle.cc). Encoded as `;qos=1`
  /// only when set, so old tokens round-trip unchanged.
  bool qos = false;
  /// Additionally enable the spill manager with a tight memo budget (see
  /// StressSpillConfig in oracle.cc) — implies the QoS stress config.
  /// Encoded as `;spill=1` only when set, like `;qos=1`.
  bool spill = false;
  /// Run the cell as a *streaming* cell: the stream oracle applies a
  /// deterministic batch scenario while snapshot queries run concurrently,
  /// and rows are compared against graphs materialized at each read ts
  /// (stream::RunStreamCell). Encoded as `;stream=1` only when set, like
  /// `;qos=1`, so old tokens round-trip unchanged.
  bool stream = false;
  /// Run the cell as a *transactional* cell: the txn oracle drives LDBC
  /// update transactions through the distributed commit protocol while
  /// IC/IS-style reads run at the advancing LCT, and committed schedules are
  /// replayed against a single-worker serial executor (RunTxnCell in
  /// check/txn_oracle.h). Encoded as `;txn=1` only when set. `mode` may
  /// additionally be "threads" for txn cells (the real-thread ThreadCluster
  /// engine with phased commits).
  bool txn = false;
  /// Crash-chaos phase for txn cells: "" (none), "prepare", "commit" or
  /// "apply" — which protocol action the deterministic crash targets (the
  /// exact nth action derives from tiebreak_seed). Encoded as `;txnphase=`
  /// only when non-empty.
  std::string txn_phase;
};

std::string FormatReplayToken(const ReplaySpec& spec);
Result<ReplaySpec> ParseReplayToken(const std::string& token);

/// Differential-oracle matrix shape. Every cell is one (mode, tie-break
/// seed) pair run under every invariant checker and compared row-for-row
/// against the single-worker reference.
struct DifferentialOptions {
  uint32_t num_nodes = 2;
  uint32_t workers_per_node = 2;
  std::vector<std::string> modes = {"async", "bsp", "hybrid"};
  /// Tie-break seeds explored per mode: seed 0 (the pinned schedule) plus
  /// 1..num_seeds-1 permuted schedules.
  uint64_t num_seeds = 8;
  uint64_t jitter_ns = 0;
  /// Fault schedule applied to every cell (BSP bypasses the message layer
  /// and ignores it). Default: fault-free.
  FaultPlan fault;
  bool fault_active = false;  // apply `fault` (kept separate so a default
                              // FaultPlan{} with seed=1 stays inactive)
  uint64_t max_events = 200'000'000ULL;
  bool traverser_bulking = true;
  /// Test-only mutation hook: corrupt the nth weight merge in every cell
  /// (CheckHarness::CorruptNthWeightMerge). Plants a known conservation bug
  /// so the mutation smoke test and the shrinker have a real failure to
  /// find. 0 = off.
  uint64_t corrupt_nth_merge = 0;
  /// Apply the standard QoS stress config to every cell: governed admission
  /// plus tight credit windows, with budgets generous enough that no oracle
  /// query is ever shed — so governed rows must still match the ungoverned
  /// single-worker reference exactly.
  bool qos = false;
  /// Every cell also runs the spill manager under a memo budget tight enough
  /// to force evictions and fault-ins — spilled rows must still match the
  /// reference exactly (weight conservation across spill/reload).
  bool spill = false;
};

/// Outcome of one replayed cell.
struct CellReport {
  uint64_t queries = 0;
  uint64_t trips = 0;              // invariant-checker trips
  uint64_t mismatches = 0;         // silent wrong answers vs the reference
  uint64_t explicit_failures = 0;  // failed / timed-out queries (legal)
  std::string detail;              // first trip or mismatch, for humans
  bool ok() const { return trips == 0 && mismatches == 0; }
};

struct DifferentialFailure {
  ReplaySpec spec;
  std::string token;  // FormatReplayToken(spec)
  std::string what;
};

struct DifferentialReport {
  uint64_t cells = 0;
  uint64_t queries = 0;
  uint64_t trips = 0;
  uint64_t mismatches = 0;
  uint64_t explicit_failures = 0;
  std::vector<DifferentialFailure> failures;
  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

/// Reference rows per plan: the workload regenerated for one partition and
/// run on a 1-node x 1-worker async cluster — no faults, no exploration,
/// every checker attached (a trip in the reference run is an error).
Result<std::vector<std::vector<Row>>> ComputeReference(
    const WorkloadFactory& factory, uint64_t max_events = 200'000'000ULL);

/// Runs one cell of the matrix and compares against `reference`. `hybrid`
/// mode splits plans by ChooseEngine and runs each group on its own cluster.
Result<CellReport> RunCell(const WorkloadFactory& factory,
                           const std::vector<std::vector<Row>>& reference,
                           const ReplaySpec& spec,
                           const DifferentialOptions& opt);

/// The full matrix: every mode x every tie-break seed, all checkers, all
/// cells diffed against the single-worker reference.
Result<DifferentialReport> RunDifferential(const WorkloadFactory& factory,
                                           const DifferentialOptions& opt);

}  // namespace check
}  // namespace graphdance

#endif  // GRAPHDANCE_CHECK_ORACLE_H_
