#ifndef GRAPHDANCE_RUNTIME_HYBRID_H_
#define GRAPHDANCE_RUNTIME_HYBRID_H_

#include <algorithm>
#include <memory>

#include "graph/graph.h"
#include "pstm/plan.h"
#include "pstm/steps.h"
#include "runtime/config.h"

namespace graphdance {

/// PowerSwitch-style sync/async selection (the hybrid direction the paper's
/// related-work section points at): interactive queries run on the
/// asynchronous PSTM engine, while very large traversals — where global
/// barriers amortize over huge frontiers (paper Fig. 9, Friendster 4-hop) —
/// run under BSP. The choice is made per query from a cheap cardinality
/// estimate over the plan.
struct HybridChoice {
  EngineKind engine = EngineKind::kAsync;
  double estimated_tasks = 0.0;
};

/// Estimates the traverser count a plan will generate: expansion steps
/// multiply the frontier by the average degree of their edge label; looping
/// expansions are capped at the vertex count times the hop count (the
/// memo-pruned O(k|E|)-style bound).
inline double EstimatePlanTasks(const Plan& plan, const GraphStats& stats) {
  double frontier = 1.0;
  double total = 1.0;
  const double nv = std::max<double>(1.0, static_cast<double>(stats.num_vertices));
  for (size_t i = 0; i < plan.num_steps(); ++i) {
    const Step& step = plan.step(i);
    if (step.kind() == StepKind::kIndexLookup &&
        static_cast<const IndexLookupStep&>(step).mode() !=
            IndexLookupStep::Mode::kByIds) {
      frontier = std::max(frontier, nv / 16.0);  // scans/index probes fan out
      total += frontier;
      continue;
    }
    if (step.kind() != StepKind::kExpand) continue;
    const auto& expand = static_cast<const ExpandStep&>(step);
    double fanout = std::max(
        1.0, expand.dir() == Direction::kIn ? stats.AvgInDegree(expand.elabel())
                                            : stats.AvgOutDegree(expand.elabel()));
    if (expand.loop_hops() > 0) {
      // Memo-pruned multi-hop: bounded by (hops * reachable vertices).
      double reach = frontier;
      for (uint16_t h = 0; h < expand.loop_hops(); ++h) {
        reach = std::min(reach * fanout, nv);
        total += reach;
      }
      frontier = reach;
    } else {
      frontier *= fanout;
      total += frontier;
    }
  }
  return total;
}

/// Chooses the engine for one query. The crossover depends on parallelism
/// (Fig. 9: BSP only wins whole-graph traversals at low worker counts, where
/// barriers amortize and async gains little overlap), so the threshold
/// scales with `num_workers`. Traverser bulking compresses async's per-task
/// and per-message cost on exactly the redundant-frontier workloads where
/// BSP used to win, moving the crossover several times further out; pass the
/// cluster's `traverser_bulking` so the estimate matches the engine that
/// will actually run. Pass `threshold_tasks` to override.
inline HybridChoice ChooseEngine(const Plan& plan, const GraphStats& stats,
                                 uint32_t num_workers = 1,
                                 double threshold_tasks = 0.0,
                                 bool traverser_bulking = true) {
  HybridChoice choice;
  choice.estimated_tasks = EstimatePlanTasks(plan, stats);
  if (threshold_tasks <= 0.0) {
    threshold_tasks = static_cast<double>(stats.num_vertices) *
                      (0.4 + 0.15 * static_cast<double>(num_workers));
    if (traverser_bulking) threshold_tasks *= 4.0;
  }
  choice.engine = choice.estimated_tasks > threshold_tasks ? EngineKind::kBsp
                                                           : EngineKind::kAsync;
  return choice;
}

}  // namespace graphdance

#endif  // GRAPHDANCE_RUNTIME_HYBRID_H_
