#ifndef GRAPHDANCE_RUNTIME_SIM_CLUSTER_H_
#define GRAPHDANCE_RUNTIME_SIM_CLUSTER_H_

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/invariants.h"
#include "common/flat_map.h"
#include "common/pool.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pstm/memo.h"
#include "pstm/plan.h"
#include "pstm/traverser.h"
#include "qos/admission.h"
#include "qos/credit.h"
#include "qos/qos.h"
#include "runtime/config.h"
#include "runtime/query.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "sim/fault.h"

namespace graphdance {

// WeightKey/WeightKeyQuery/WeightKeyScope moved to pstm/weight.h (included
// via pstm/plan.h above): the coalesced-weight key is shared with the
// real-thread runtime (src/rt/), which must not depend on this header.

/// A simulated GraphDance cluster: the asynchronous PSTM runtime (plus the
/// BSP / non-partitioned / dataflow baseline engines) executing real query
/// plans over a real partitioned graph, with time and parallelism modelled
/// by a deterministic discrete-event simulation (see DESIGN.md §1).
///
/// Usage:
///   SimCluster cluster(config, graph);
///   uint64_t q = cluster.Submit(plan, /*at=*/0);
///   cluster.RunToCompletion();
///   const QueryResult& r = cluster.result(q);
class SimCluster : public check::ClusterProbe {
 public:
  SimCluster(ClusterConfig config, std::shared_ptr<PartitionedGraph> graph);
  ~SimCluster();
  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  /// Submits a query arriving at virtual time `at` (clamped to now()).
  /// `read_ts` is the snapshot timestamp (defaults to "read everything").
  /// A non-zero `deadline_ns` aborts the query that much virtual time after
  /// arrival, marking the result timed_out (the interactive time-budget
  /// semantics of paper §II-A). Deadlines are only honoured by the
  /// asynchronous engines; BSP cannot abort mid-superstep.
  /// `client_class` selects the QoS fairness class (qos/qos.h class_weights;
  /// ignored when QoS is off).
  uint64_t Submit(std::shared_ptr<const Plan> plan, SimTime at = 0,
                  Timestamp read_ts = kMaxTimestamp - 1,
                  SimTime deadline_ns = 0, uint32_t client_class = 0);

  /// Runs the simulation until every submitted query completes. Fails with
  /// kInternal if the event queue drains while queries are unfinished
  /// (i.e. termination detection lost weight — should never happen).
  Status RunToCompletion(uint64_t max_events = 2'000'000'000ULL);

  /// Convenience: submit a single query now and run it to completion.
  Result<QueryResult> Run(std::shared_ptr<const Plan> plan,
                          Timestamp read_ts = kMaxTimestamp - 1);

  const QueryResult& result(uint64_t query_id) const;
  /// Thin views into the registry-owned counters (kept for existing call
  /// sites; MetricsSnapshot() is the unified surface).
  const NetStats& net_stats() const { return metrics_.net(); }
  NetStats& mutable_net_stats() { return metrics_.net(); }
  /// Injected-fault and recovery-protocol counters (all zero when no fault
  /// plan is configured).
  const FaultStats& fault_stats() const { return fault_.stats(); }

  /// One unified, deterministic snapshot of every runtime metric: network
  /// counters (subsuming NetStats), fault/recovery counters (subsuming
  /// FaultStats), per-step traverser counts, memo hit/miss behaviour,
  /// weight-report coalescing, per-link traffic, per-(src,dst) worker
  /// message counts and virtual-latency histograms.
  obs::MetricsSnapshot MetricsSnapshot() const;
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Per-query virtual-time spans (enabled via ClusterConfig::trace),
  /// exportable as Chrome trace_event JSON.
  const obs::Tracer& tracer() const { return tracer_; }
  obs::Tracer& mutable_tracer() { return tracer_; }

  SimTime now() const { return events_.now(); }
  /// Virtual time at which the whole simulation went quiescent.
  SimTime quiescent_time() const { return quiescent_time_; }

  const ClusterConfig& config() const { return config_; }
  const PartitionedGraph& graph() const { return *graph_; }
  PartitionedGraph& mutable_graph() { return *graph_; }

  /// Per-partition memoranda (exposed for tests and the txn module).
  MemoTable& memo(PartitionId p) { return memos_[p]; }

  /// Applies a mutation to partition `p`'s store at the owning worker,
  /// charging it `cost_ns` of virtual time (used by the txn module).
  void ApplyAtPartition(PartitionId p, uint64_t cost_ns,
                        const std::function<void(PartitionStore&)>& fn);

  /// Schedules `fn(fire_time)` on the event queue at virtual time `at`
  /// (clamped to now()). Used by external drivers — e.g. the streaming
  /// ingest pipeline — to interleave their own work with query execution
  /// under the same deterministic schedule. Async-engine only: the BSP
  /// driver runs its own synchronous loop and never drains these events
  /// between supersteps.
  void ScheduleAt(SimTime at, std::function<void(SimTime)> fn);

  /// Registers a callback invoked when query `id` reaches a terminal state
  /// (completed, failed, timed out, or shed). Async engine: invoked via a
  /// zero-delay event so the callback may Submit() freely; BSP engine:
  /// invoked synchronously at the end of the query's run. Must be set
  /// before the run starts processing the query.
  void SetCompletionCallback(uint64_t id,
                             std::function<void(const QueryResult&, SimTime)> fn);

  /// Points the metrics snapshot at a live streaming-ingest stats block
  /// (stream/stream.h). While attached, MetricsSnapshot() copies it into
  /// the `stream` section with stream_enabled = true. Pass nullptr to
  /// detach. Pure observation: attaching never perturbs the schedule.
  void AttachStreamStats(const obs::StreamSnapshot* stats) {
    stream_stats_ = stats;
  }

  /// Points the metrics snapshot at a live distributed-transaction stats
  /// block (txn/dist_txn.h). While attached, MetricsSnapshot() copies it into
  /// the `txn` section with txn_enabled = true. Pass nullptr to detach.
  /// Pure observation: attaching never perturbs the schedule.
  void AttachTxnStats(const obs::TxnSnapshot* stats) { txn_stats_ = stats; }

  /// Registers the handler for transaction-protocol control messages
  /// (kControl with tag >= kTxnControlTagBase). Routed at the top of
  /// HandleMessage — before the per-query lookup and attempt fence — because
  /// txn messages carry synthetic query ids that never appear in queries_
  /// and the transaction manager does its own attempt fencing. Pass nullptr
  /// to detach.
  void SetTxnHandler(std::function<void(uint32_t worker, const Message&)> fn) {
    txn_handler_ = std::move(fn);
  }

  /// Registers a callback invoked from CrashWorkerNow after the worker's
  /// volatile state is wiped (but before restart is scheduled). The
  /// transaction manager uses it to discard the crashed partition's volatile
  /// lock table and prepared set — durable state (version table, applied
  /// ledger) survives, mirroring the TEL. Pass nullptr to detach.
  void SetCrashObserver(std::function<void(uint32_t worker, SimTime at)> fn) {
    crash_observer_ = std::move(fn);
  }

  /// Sends a transaction-protocol message from `src_worker` through the
  /// normal transport (epoch/seq stamping, fault injection, tier buffers)
  /// and immediately flushes the destination's tier buffer: the coordinator
  /// side of the commit protocol runs from scheduled events, not worker
  /// task quanta, so nothing else would drain the buffer.
  void TxnSend(uint32_t src_worker, Message&& msg);

  /// Crashes `worker` at the current virtual time, restarting it
  /// `restart_after` ns later. Same code path as a scripted kCrashWorker
  /// fault event; exposed so the transaction chaos matrix can target the
  /// exact protocol phase (nth prepare / decision / apply) instead of an
  /// absolute timestamp.
  void InjectCrash(uint32_t worker, SimTime restart_after);

  /// Current incarnation number of `worker` (bumped on every restart).
  uint32_t WorkerEpoch(uint32_t worker) const { return workers_[worker].epoch; }

  /// Total traverser tasks executed across all workers (a proxy for the
  /// amount of graph data touched; used by the workload-characterization
  /// bench).
  uint64_t TotalTasksExecuted() const {
    uint64_t n = 0;
    for (const Worker& w : workers_) n += w.tasks_executed;
    return n;
  }

  /// Cumulative count of operations charged under `kind` (e.g. kPerEdge =
  /// adjacency entries scanned). Drives the Table I data-access metrics.
  uint64_t ChargedCount(CostKind kind) const {
    return charge_counts_[static_cast<int>(kind)];
  }

  uint32_t WorkerOfPartition(PartitionId p) const { return p; }
  uint32_t NodeOfWorker(uint32_t w) const { return w / config_.workers_per_node; }

  /// Attaches an invariant-checking harness (check subsystem, DESIGN.md §10).
  /// The harness observes every weight split/merge/finish, scope close,
  /// query completion, seq assignment/delivery, event boundary and the final
  /// quiescence sweep. Pass nullptr to detach. With no harness attached
  /// (the default) every hook site is a single branch on a null pointer, so
  /// unchecked runs keep the historical event schedule and cost exactly.
  void AttachChecker(check::CheckHarness* harness) {
    check_ = harness;
    if (check_ != nullptr) {
      check_->BeginRun(check::RunInfo{fault_active_, recovery_active_,
                                      config_.total_workers()});
    }
  }
  check::CheckHarness* checker() const { return check_; }

  // --- check::ClusterProbe (read-only, deterministic enumeration order) ---
  uint32_t ProbeNumWorkers() const override;
  SimTime ProbeWorkerClock(uint32_t worker) const override;
  bool ProbeWorkerCrashed(uint32_t worker) const override;
  void ProbeQueries(
      const std::function<void(const check::QueryProbe&)>& fn) const override;
  void ProbeMemos(const std::function<void(uint32_t partition, uint64_t query,
                                           uint32_t step)>& fn) const override;
  void ProbePendingWeights(
      const std::function<void(uint32_t worker, uint64_t query, uint32_t scope,
                               Weight w)>& fn) const override;
  check::QosProbe ProbeQos() const override;
  void ProbeLinkCredits(const std::function<void(const check::LinkCreditProbe&)>&
                            fn) const override;

 private:
  friend class ExecContext;

  struct Task {
    uint64_t query = 0;
    PartitionId partition = 0;
    Traverser trav;
    // Query attempt the task belongs to; stale-attempt tasks left in worker
    // queues after a recovery abort are fenced at execution time.
    uint32_t attempt = 0;
    // Site hash of `trav`, carried from the send side (Message::trav_site)
    // so the queue-merge probe never recomputes it; 0 = not a bulking
    // candidate.
    uint64_t site = 0;
  };

  struct TierBuffer {
    std::vector<Message> msgs;
    size_t bytes = 0;
    // Traverser-bulking merge index: site hash -> index into `msgs` of the
    // latest buffered kTraverserBatch merge candidate. Hash hits are
    // confirmed by byte comparison before merging (a collision just misses
    // a merge); cleared on every flush. Open-addressing (never iterated,
    // so schedule-neutral); Clear keeps the slot array across flushes.
    FlatMap<uint64_t, uint32_t> merge_index;
    // QoS flow control: a flush attempt found the link out of credits; the
    // buffer waits sender-side and is retried when credits return
    // (RetryHeldFlushes). Never set when QoS is off.
    bool held = false;
  };

  struct Worker {
    uint32_t id = 0;
    uint32_t node = 0;
    SimTime now = 0;
    bool wake_pending = false;
    bool running = false;  // inside RunWorker: suppress redundant self-wakes
    SimTime next_wake = 0;
    // Tasks bucketed by hop count: shorter trajectories run first (§III-B).
    // A flat vector indexed by bucket id replaces the old std::map — the
    // enqueue sits in the innermost loop and a red-black tree rebalances on
    // every push. `first_bucket` lower-bounds the lowest non-empty bucket.
    // With traverser bulking, `index` maps a (site, query, attempt,
    // partition) hash to the absolute position (`base` + queue offset) of
    // the latest still-queued merge target, so an incoming task merges in
    // O(1) at push time. Stale (already-dispatched) positions and the rare
    // hash collision just miss a merge — the hash only gates a full
    // field-by-field comparison, never replaces it.
    struct TaskBucket {
      std::deque<Task> q;
      uint64_t base = 0;  // absolute position of q.front()
      FlatMap<uint64_t, uint64_t> index;  // lookup-only: schedule-neutral
    };
    std::vector<TaskBucket> tasks;
    uint32_t first_bucket = 0;
    size_t num_tasks = 0;
    std::vector<Message> inbox;
    std::vector<TierBuffer> out;  // per destination node
    // Coalesced finished weights: WeightKey(query, scope) -> weight.
    std::unordered_map<uint64_t, Weight> pending_weights;
    Rng rng{0};
    uint64_t tasks_executed = 0;
    // --- fault / recovery state ---
    uint32_t epoch = 0;       // incarnation; bumps on every restart
    bool crashed = false;     // currently down (between crash and restart)
    SimTime down_until = 0;   // restart time of the most recent crash
    // Result rows sent remotely per query since the last weight report
    // (piggybacked onto the next report as Message::row_delta). Looked up
    // by query id only, never iterated.
    FlatMap<uint64_t, uint32_t> rows_unreported;
    // Scratch vector for the inbox swap in IngestInbox: keeps one batch's
    // capacity alive across drains instead of reallocating per swap.
    std::vector<Message> inbox_scratch;
    // Reusable step-execution buffers, handed to steps via the StepContext
    // (e.g. ExpandStep's neighbor gather).
    StepScratch scratch;
    // --- QoS task-byte ledger (maintained only when QoS is enabled) ---
    // Conservation: enqueued == dequeued + dropped + queued. `queued` is the
    // quantity the worker_task_budget_bytes budget bounds; `dropped` counts
    // bytes wiped by a crash.
    uint64_t task_bytes_queued = 0;
    uint64_t task_bytes_peak = 0;
    uint64_t task_bytes_enqueued = 0;
    uint64_t task_bytes_dequeued = 0;
    uint64_t task_bytes_dropped = 0;
    // --- spill manager state (maintained only when qos.spill is enabled) ---
    // Deep task-queue suffixes evicted to the storage tier, oldest-evicted
    // first. With spill on, the task-byte conservation law gains a term:
    // enqueued == dequeued + dropped + queued + spilled.
    std::deque<Task> spilled_tasks;
    uint64_t task_bytes_spilled = 0;        // bytes currently on the tier
    uint64_t task_spill_bytes_written = 0;  // cumulative bytes evicted
    uint64_t task_spill_bytes_read = 0;     // cumulative bytes reloaded
    uint64_t task_spill_bytes_dropped = 0;  // cumulative bytes crash-wiped
    uint8_t pressure = 0;                   // PressureState of the last sweep
  };

  /// Receive-side duplicate suppression for one (src,dst) worker pair.
  /// Sequence numbers are assigned monotonically at send, so instead of
  /// remembering every delivered seq forever the window keeps a low-water
  /// mark (seqs at or below it count as already seen) plus the delivered
  /// seqs above it, bounded to kReorderWindow entries. A straggler older
  /// than the window is indistinguishable from a duplicate and is
  /// suppressed — equivalent to a drop, which the recovery protocol
  /// already tolerates — so memory stays bounded on long chaos runs.
  /// Implementation: a flat 4096-bit ring indexed by seq modulo the window
  /// (512 bytes per worker pair) instead of an unordered_set node per
  /// delivered seq. At most one in-window seq maps to each bit because
  /// max_seen - low never exceeds kReorderWindow, and bits are cleared as
  /// `low` passes them, so a set bit always means "this exact seq". Aging
  /// runs before the membership test; the return value ("seen before?") is
  /// unchanged from the set-based version — both reduce to the predicate
  /// seq <= low || delivered(seq).
  struct SeqWindow {
    static constexpr uint64_t kReorderWindow = 4096;
    uint64_t low = 0;       // every seq <= low counts as already seen
    uint64_t max_seen = 0;
    std::array<uint64_t, kReorderWindow / 64> bits{};  // seqs in (low, max_seen]
    bool Test(uint64_t seq) const {
      uint64_t b = seq & (kReorderWindow - 1);
      return (bits[b >> 6] >> (b & 63)) & 1;
    }
    void Set(uint64_t seq) {
      uint64_t b = seq & (kReorderWindow - 1);
      bits[b >> 6] |= 1ULL << (b & 63);
    }
    void ClearBit(uint64_t seq) {
      uint64_t b = seq & (kReorderWindow - 1);
      bits[b >> 6] &= ~(1ULL << (b & 63));
    }
    /// Records a delivery; returns true iff this seq was not seen before.
    bool Insert(uint64_t seq) {
      if (seq <= low) return false;
      uint64_t new_max = std::max(max_seen, seq);
      while (new_max - low > kReorderWindow) {  // age out gaps (drops)
        ++low;
        ClearBit(low);
      }
      max_seen = new_max;
      // Aging only runs when seq == new_max, which lands above the aged
      // floor, so the recheck is defensive; the ring bit is unambiguous.
      if (seq <= low || Test(seq)) return false;
      Set(seq);
      while (Test(low + 1)) {  // advance contiguous prefix
        ClearBit(low + 1);
        ++low;
      }
      return true;
    }
  };

  /// Tier-2 egress combiner state for one (src node, dst node) pair.
  /// Submitted tier-1 packs are kept whole (one inner vector per pack) so
  /// combining moves vectors, not every Message; delivery walks packs in
  /// submission order, which is exactly the order a flat append would give.
  struct EgressSlot {
    std::vector<std::vector<Message>> pending;
    size_t bytes = 0;
    bool send_scheduled = false;
  };

  struct QueryState {
    uint64_t id = 0;
    std::shared_ptr<const Plan> plan;
    uint32_t coordinator = 0;
    Timestamp read_ts = 0;
    uint32_t scope = 0;       // scope currently tracked
    Weight acc = 0;           // coalesced finished weight of current scope
    bool collecting = false;  // a collect-finalize is in flight
    CollectMergeState collect;
    uint32_t replies_expected = 0;
    QueryResult result;
    // --- recovery state (coordinator-side) ---
    uint32_t attempt = 0;         // current execution attempt
    SimTime last_progress = 0;    // virtual time of the last progress signal
    uint64_t rows_expected = 0;   // remote rows announced via row_delta
    uint64_t rows_received = 0;   // kResultRow messages actually delivered
    bool awaiting_rows = false;   // weight done, waiting on trailing rows
    bool restart_pending = false; // AbortAttempt scheduled a StartQuery
    // Watchdog chain generation: arming bumps it, invalidating every
    // previously scheduled check (exactly one live chain per query).
    uint64_t watchdog_gen = 0;
    // --- observability (tracer span anchors; never read by execution) ---
    SimTime attempt_start = 0;  // StartQuery time of the current attempt
    SimTime scope_start = 0;    // start of the scope currently tracked
    // --- QoS admission state ---
    uint32_t client_class = 0;  // fairness class (qos/qos.h class_weights)
    SimTime deadline_ns = 0;    // relative deadline (0 = none); also used by
                                // admission's queued-too-long shedding
    bool admitted = false;      // holds (or held) a running slot; a query
                                // shed or cancelled from the backlog never
                                // sets it. Only meaningful when QoS is on.
    // Terminal-state callback (SetCompletionCallback); fired exactly once.
    std::function<void(const QueryResult&, SimTime)> on_complete;
  };

  // --- query lifecycle ---
  void StartQuery(QueryState& qs, SimTime at);
  void HandleWeight(QueryState& qs, uint32_t scope, Weight w, Worker& at_worker);
  void ScopeComplete(QueryState& qs, Worker& at_worker);
  void HandleCollectReply(QueryState& qs, const Message& msg, Worker& at_worker);
  void CompleteQuery(QueryState& qs, SimTime at);
  /// Fires a query's SetCompletionCallback exactly once (async: zero-delay
  /// event; BSP: synchronous). Called from every terminal site.
  void FireCompletionCallback(QueryState& qs, SimTime at);
  /// Cancels the query early once the terminal Emit limit is reached.
  void MaybeCancelOnLimit(QueryState& qs, SimTime at);

  // --- fault injection & recovery ---
  /// Marks a query's coordinator-observed progress (resets the watchdog).
  void NoteProgress(QueryState& qs, SimTime at);
  /// Arms / re-arms the per-query progress watchdog chain.
  void ArmWatchdog(QueryState& qs, SimTime at);
  void WatchdogCheck(uint64_t query_id, uint64_t gen, SimTime at);
  /// Tears down the current attempt (fencing its in-flight messages) and
  /// either reschedules StartQuery with exponential backoff or, with
  /// retries exhausted, marks the query failed.
  void AbortAttempt(QueryState& qs, SimTime at, const char* why);
  void CrashWorkerNow(uint32_t worker, SimTime at, SimTime restart_after);
  void RestartWorker(uint32_t worker, SimTime at);
  /// Recomputes link_degrade_ from the currently active degradation windows.
  void RecomputeLinkDegrade();

  // --- QoS: admission, credits, budgets (every caller gates on qos_active_) ---
  /// Runs the admission decision for an arrived query: start it, park it in
  /// the controller's backlog, or shed it.
  void AdmitOrQueue(QueryState& qs, SimTime at);
  /// Grants the query its running slot and starts it.
  void AdmitQuery(QueryState& qs, SimTime at);
  /// Completes a query as resource-exhausted without ever starting it (no
  /// fences / memo sweeps — it owns nothing). Works for both engines.
  void ShedQuery(QueryState& qs, SimTime at, const char* why);
  /// Returns a message's carried credits to its (src,dst) link meter and
  /// retries any held buffers on that link. Idempotent: zeroes credit_bytes.
  void ReturnCredits(Message& msg, SimTime at);
  void RetryHeldFlushes(uint32_t src_node, uint32_t dst_node, SimTime at);
  /// True when the worker's credit-blocked send buffers exceed the stall
  /// threshold — it must pause execution until credits return.
  bool SendStalled(const Worker& w) const;
  /// Every `memo_check_interval` tasks: if the partition's memo bytes exceed
  /// the budget, relieve pressure. With the spill manager off, abort the
  /// biggest per-query consumer; with it on, run the pressure state machine
  /// (normal -> spilling -> abort-hungriest only as last resort).
  void MemoBudgetSweep(Worker& w);

  // --- spill manager (every caller gates on spill_active_) ---
  /// Pressure states of one worker's memory-relief state machine.
  enum class PressureState : uint8_t { kNormal = 0, kSpilling, kLastResort };
  static const char* PressureName(uint8_t s);
  /// Current storage-tier occupancy of worker `w` (memo + task spill).
  uint64_t SpillBytesOf(const Worker& w) const;
  /// Evicts cold memoranda until resident bytes reach the low watermark or
  /// the tier fills; charges virtual write time. Returns bytes evicted.
  uint64_t SpillMemos(Worker& w);
  /// Moves the deepest queued-task suffix to the tier (charged write time)
  /// until queued bytes reach the task low watermark or the tier fills.
  void SpillTasks(Worker& w);
  /// Faults up to one batch of spilled tasks back in (charged read time)
  /// once queued bytes are below the reload watermark.
  void ReloadSpilledTasks(Worker& w);
  /// Charges read time for memo fault-ins accumulated by the partition's
  /// MemoTable since the last drain.
  void ChargeMemoFaults(Worker& w);
  /// Records a pressure transition: counters + tracer instant on change.
  void SetPressure(Worker& w, PressureState next);
  qos::CreditMeter& LinkCreditRef(uint32_t src_node, uint32_t dst_node) {
    return link_credits_[src_node * config_.num_nodes + dst_node];
  }
  /// Oldest unfinished queries and deepest worker queues, for the
  /// RunToCompletion event-budget diagnostic.
  std::string DescribeStuck() const;

  // --- worker execution ---
  void ScheduleWake(Worker& w, SimTime at);
  void RunWorker(Worker& w, SimTime at);
  void IngestInbox(Worker& w);
  void HandleMessage(Worker& w, Message&& msg);
  // Task / traverser handoffs take rvalue refs: each hop of the
  // emit -> route -> enqueue chain runs a few million times per second, and
  // a by-value parameter costs one extra Traverser move per hop.
  void ExecuteTask(Worker& w, Task&& task);
  void RunFinalize(Worker& w, const Message& msg);
  void PushTask(Worker& w, Task&& task);
  bool HasTask(const Worker& w) const { return w.num_tasks > 0; }
  Task PopTask(Worker& w);

  // --- routing / transport ---
  /// Routes an emitted traverser to its target step's partition. `from` is
  /// the emitting worker, `current` the partition it was emitted from.
  void EmitTraverser(Worker& from, QueryState& qs, PartitionId current, Traverser&& t);
  void SendTraverser(Worker& from, uint64_t query, PartitionId partition, Traverser&& t);
  void Send(Worker& from, Message&& msg);
  void DeliverLocal(Worker& from, Message&& msg, SimTime at);
  /// Common delivery path (local + framed): crash loss, epoch fencing and
  /// sequence dedup happen here before the message reaches the inbox.
  void DeliverToWorker(Message&& msg, SimTime at);
  /// Hands one remote message to the tiered I/O pipeline (post fault
  /// decisions).
  void EnqueueRemote(Worker& from, uint32_t dst_node, Message&& msg);
  void FlushBuffer(Worker& w, uint32_t dst_node);
  /// FlushBuffer at an explicit time >= w.now (credit-return retries run at
  /// the returning event's time, not the sender's possibly older clock).
  void FlushBufferAt(Worker& w, uint32_t dst_node, SimTime at);
  void FlushAll(Worker& w);
  void FlushWeights(Worker& w);
  void SubmitPack(uint32_t src_node, uint32_t dst_node, std::vector<Message> msgs,
                  size_t bytes, SimTime at, bool charge_sender, Worker* sender);
  void SendFrame(uint32_t src_node, uint32_t dst_node,
                 std::vector<std::vector<Message>> packs, size_t bytes,
                 SimTime at);
  void DeliverFrame(std::vector<std::vector<Message>> packs, SimTime at);

  /// Virtual-time charge helper honouring the shared-state/NUMA/swap models.
  void Charge(Worker& w, CostKind kind, uint64_t count);
  /// Serializes shared-state critical sections on the node lock.
  void ChargeLock(Worker& w);

  uint32_t ExecWorkerFor(PartitionId p);
  SimTime& LinkBusy(uint32_t src_node, uint32_t dst_node) {
    return link_busy_[src_node * config_.num_nodes + dst_node];
  }
  uint64_t& PairSeq(uint32_t src, uint32_t dst) {
    return pair_seq_[static_cast<size_t>(src) * config_.total_workers() + dst];
  }

  // --- BSP driver ---
  struct BspSubmission {
    uint64_t id;
    std::shared_ptr<const Plan> plan;
    SimTime at;
    Timestamp read_ts;
  };
  Status RunBspToCompletion();
  void RunBspQuery(QueryState& qs, SimTime start);

  ClusterConfig config_;
  EngineTuning tuning_;
  std::shared_ptr<PartitionedGraph> graph_;
  EventQueue events_;
  std::vector<Worker> workers_;
  std::vector<MemoTable> memos_;          // one per partition
  std::vector<SimTime> link_busy_;        // per (src,dst) node pair
  std::vector<EgressSlot> egress_;        // per (src,dst) node pair
  std::vector<SimTime> node_lock_busy_;   // shared-state mode
  std::vector<uint32_t> node_rr_;         // shared-state round-robin cursor
  std::unordered_map<uint64_t, QueryState> queries_;
  std::vector<BspSubmission> bsp_queue_;  // BSP engine submissions
  uint64_t next_query_id_ = 1;
  uint64_t pending_queries_ = 0;
  SimTime quiescent_time_ = 0;
  SimTime bsp_clock_ = 0;
  // --- fault injection & recovery ---
  FaultInjector fault_;
  bool fault_active_ = false;     // any fault source configured
  bool recovery_active_ = false;  // fault_active_ && config.fault_recovery
  // Per-(src,dst) worker-pair send sequence numbers (remote messages only).
  std::vector<uint64_t> pair_seq_;
  // Receive-side dedup: (src<<32|dst) -> bounded delivered-seq window.
  FlatMap<uint64_t, SeqWindow> seen_seqs_;
  // Currently active kDegradeLink factors; overlapping windows compound
  // instead of the end of one window cancelling another still-active one.
  std::vector<double> degrade_active_;
  double link_degrade_ = 1.0;  // product of degrade_active_ (kDegradeLink)
  // Observability sinks. Pure observation: nothing here feeds back into the
  // event schedule, so metrics/tracing cannot perturb virtual time.
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  // --- QoS (resource governance; everything below is inert when off) ---
  bool qos_active_ = false;  // config_.qos.enabled, cached
  std::unique_ptr<qos::AdmissionController> admission_;
  std::vector<qos::CreditMeter> link_credits_;  // per (src,dst) node pair
  struct QosRuntimeStats {
    uint64_t flushes_held = 0;
    uint64_t ingest_deferrals = 0;
    uint64_t credit_bytes_consumed = 0;
    uint64_t credit_bytes_returned = 0;
    uint64_t peak_memo_bytes = 0;
    uint64_t memo_aborts = 0;
  };
  QosRuntimeStats qos_stats_;
  // --- spill manager (inert when off) ---
  bool spill_active_ = false;  // qos_active_ && config_.qos.spill.enabled
  struct SpillRuntimeStats {
    uint64_t peak_spill_bytes = 0;      // max per-worker tier occupancy seen
    uint64_t pressure_transitions = 0;  // entries into kSpilling
    uint64_t last_resort = 0;           // entries into kLastResort
  };
  SpillRuntimeStats spill_stats_;
  // Invariant-checking harness (null = detached; every hook site checks).
  check::CheckHarness* check_ = nullptr;
  // Live streaming-ingest stats block (null = no stream attached). Owned by
  // the ingestor; read only by MetricsSnapshot().
  const obs::StreamSnapshot* stream_stats_ = nullptr;
  // Live distributed-transaction stats block (null = no manager attached).
  // Owned by the DistTxnManager; read only by MetricsSnapshot().
  const obs::TxnSnapshot* txn_stats_ = nullptr;
  // Transaction-protocol message handler (null = no manager attached).
  std::function<void(uint32_t, const Message&)> txn_handler_;
  // Crash observer (null = detached); see SetCrashObserver.
  std::function<void(uint32_t, SimTime)> crash_observer_;
  /// Builds the QueryProbe view of one query (shared by CompleteQuery's
  /// completion hook and the ProbeQueries sweep).
  check::QueryProbe ProbeOf(const QueryState& qs) const;
  uint64_t charge_counts_[static_cast<int>(CostKind::kNumKinds)] = {0};
  Rng rng_;
  bool swap_thrashing_ = false;  // dataset exceeds simulated node memory
  // --- hot-path free lists (allocation recycling only; the DES charges
  // virtual time through the cost model, so pooling cannot perturb it) ---
  BufferPool payload_pool_;            // message payload / serde buffers
  VectorPool<Message> frame_pool_;     // frame + flush message vectors
  VectorPool<std::vector<Message>> pack_pool_;  // frame pack-of-packs shells
  ObjectPool<Traverser> trav_pool_;    // recycles vars/path heap storage
  // Distinct destination workers of one DeliverFrame, first-seen order:
  // frames wake each destination once instead of once per message. Frames
  // fan out to a handful of workers, so a linear scan beats a hash set.
  std::vector<uint32_t> wake_scratch_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_RUNTIME_SIM_CLUSTER_H_
